//! A tiny, dependency-free, offline stand-in for the `proptest` crate.
//!
//! The container this repository builds in has no network access and no
//! vendored registry, so the real `proptest` cannot be fetched. This crate
//! implements exactly the slice of its API that our test suite uses:
//! the `proptest!` macro, `Strategy` with `prop_map`, `any::<T>()`,
//! integer/float range strategies, tuples, `Just`, `prop_oneof!`,
//! `collection::vec`, `option::of`, `bool::ANY`, `sample::Index`,
//! `prop_assert!`/`prop_assert_eq!`, `ProptestConfig`, and
//! `TestCaseError`.
//!
//! Semantics differ from the real crate in two deliberate ways:
//! inputs are drawn from a deterministic per-test SplitMix64 stream (no
//! OS entropy, so failures reproduce exactly), and there is **no
//! shrinking** — a failing case reports the case number and message only.

pub mod test_runner {
    /// Runner configuration. Only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// A failed test case. `prop_assert!` and friends return this through
    /// the hidden `Result` the `proptest!` macro wraps each body in.
    #[derive(Debug)]
    pub enum TestCaseError {
        Fail(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            Self::Fail(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                Self::Fail(m) => write!(f, "{m}"),
            }
        }
    }

    impl std::error::Error for TestCaseError {}

    /// SplitMix64: tiny, fast, and good enough for test-input generation.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            Self {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; returns 0 when `n == 0`.
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                self.next_u64() % n
            }
        }

        /// Uniform f64 in `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Compile-time FNV-1a over the test's path, used as its base seed so
    /// every test draws an independent, stable input stream.
    pub const fn fnv1a(s: &str) -> u64 {
        let bytes = s.as_bytes();
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut i = 0;
        while i < bytes.len() {
            h = (h ^ bytes[i] as u64).wrapping_mul(0x100_0000_01b3);
            i += 1;
        }
        h
    }
}

pub mod strategy {
    use std::rc::Rc;

    use crate::test_runner::TestRng;

    /// A recipe for generating values. Unlike the real crate there is no
    /// value tree and no shrinking: `generate` draws one value.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, T, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// Type-erased strategy handle, cheap to clone.
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            Self(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Uniform choice among alternatives — the engine behind `prop_oneof!`.
    pub struct Union<T> {
        variants: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(variants: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!variants.is_empty(), "prop_oneof! needs at least one arm");
            Self { variants }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.variants.len() as u64) as usize;
            self.variants[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128) - (self.start as u128);
                    (self.start as u128 + (rng.next_u64() as u128) % span) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as u128, *self.end() as u128);
                    assert!(lo <= hi, "empty range strategy");
                    (lo + (rng.next_u64() as u128) % (hi - lo + 1)) as $t
                }
            }

            impl Strategy for std::ops::RangeFrom<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = self.start as u128;
                    let span = (<$t>::MAX as u128) - lo + 1;
                    (lo + (rng.next_u64() as u128) % span) as $t
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategies {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }
}

pub mod arbitrary {
    use std::marker::PhantomData;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut TestRng) -> Self {
            let mut out = [0u8; N];
            for b in &mut out {
                *b = rng.next_u64() as u8;
            }
            out
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            crate::sample::Index(rng.next_u64())
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T> Any<T> {
        pub const fn new() -> Self {
            Any(PhantomData)
        }
    }

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any::new()
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.end.saturating_sub(self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `vec(strategy, len_range)`: a vector whose length is drawn from the
    /// (half-open) range and whose elements come from `strategy`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            // Bias toward Some, matching the real crate's default weighting.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

pub mod bool {
    /// `proptest::bool::ANY` — either boolean, uniformly.
    pub const ANY: crate::arbitrary::Any<::core::primitive::bool> = crate::arbitrary::Any::new();
}

pub mod sample {
    /// An index into a collection whose size is unknown at generation
    /// time; resolved against a concrete length with [`Index::index`].
    #[derive(Clone, Copy, Debug)]
    pub struct Index(pub(crate) u64);

    impl Index {
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{:?}` == `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{:?}` == `{:?}`: {}",
            lhs,
            rhs,
            format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// The test-defining macro. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` (the attribute is written by the caller, as with the
/// real crate) that runs the body against `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            const SEED: u64 =
                $crate::test_runner::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cfg.cases {
                let mut rng = $crate::test_runner::TestRng::from_seed(
                    SEED ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = result {
                    panic!(
                        "proptest {} failed at case {}/{} (seed {:#x}): {}",
                        stringify!($name),
                        case + 1,
                        cfg.cases,
                        SEED,
                        e
                    );
                }
            }
        }
    )*};
}
