//! Streaming-observer pipeline: the pluggable fan-out behind the emit path.
//!
//! [`crate::emit`] no longer writes into a hard-wired journal vector.
//! Instead every [`Record`] is dispatched, at emission time, to whatever
//! observers are attached to the current thread. The classic full journal
//! is just one observer ([`Journal`]); the online conformance monitor
//! (`crate::monitor::Monitor`) and the bounded [`FlightRecorder`] are
//! others. Observers see records in emission order, synchronously, on the
//! emitting thread — the simulation is single-threaded and deterministic,
//! so the stream is too.
//!
//! The pipeline preserves the journal's zero-overhead discipline: with no
//! observers attached a quiescent emission point still costs one
//! thread-local flag read, and the event-construction closure never runs.
//! Observation stays observation-only — an observer cannot charge
//! simulated cost, schedule events, or (re-entrantly) emit records; an
//! emission made from inside an observer callback is dropped.
//!
//! This module compiles unconditionally (no `journal` feature gate): with
//! the feature off no emission site ever calls [`dispatch`], so attaching
//! an observer is harmless and examples need no `cfg` scaffolding.

use crate::Record;
use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, VecDeque};

/// Object-safe downcast support for boxed observers. Blanket-implemented
/// for every `'static` type so [`detach_as`] can recover the concrete
/// observer (e.g. a `Monitor` full of violation state) without relying on
/// `dyn` trait upcasting.
pub trait AsAny {
    /// Converts the boxed observer into a boxed [`Any`] for downcasting.
    fn as_any_box(self: Box<Self>) -> Box<dyn Any>;
}

impl<T: Any> AsAny for T {
    fn as_any_box(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// A streaming consumer of journal records, attached at [`attach`] and fed
/// synchronously from the emit path. Implementations must be cheap: they
/// run inline on every emission while attached.
pub trait Observer: AsAny {
    /// Called for every record emitted while this observer is attached.
    fn on_record(&mut self, rec: &Record);

    /// Called once when the observer is detached — the stream is over.
    /// Final-accounting checks (e.g. "the frame pool drained back to its
    /// baseline") belong here.
    fn on_finish(&mut self) {}
}

/// Handle returned by [`attach`]; redeem it at [`detach`] / [`detach_as`].
/// Deliberately neither `Copy` nor `Clone`: one attach, one detach.
#[derive(Debug, PartialEq, Eq)]
pub struct ObserverHandle(u64);

impl ObserverHandle {
    /// The raw handle id (stable for the lifetime of the attachment).
    pub fn id(&self) -> u64 {
        self.0
    }

    /// Rebuilds a handle from [`ObserverHandle::id`]. The emit path keeps
    /// no registry of outstanding ids; redeeming a stale one at [`detach`]
    /// just returns `None`.
    pub fn from_id(id: u64) -> ObserverHandle {
        ObserverHandle(id)
    }
}

thread_local! {
    static OBSERVERS: RefCell<Vec<(u64, Box<dyn Observer>)>> = const { RefCell::new(Vec::new()) };
    static NEXT_HANDLE: Cell<u64> = const { Cell::new(1) };
    static ATTACHED: Cell<usize> = const { Cell::new(0) };
    static DISPATCHING: Cell<bool> = const { Cell::new(false) };
    static VIOLATIONS: Cell<u64> = const { Cell::new(0) };
    static RECORDER_OCC: Cell<u64> = const { Cell::new(0) };
    static RECORDER_CAP: Cell<u64> = const { Cell::new(0) };
    static JOURNAL_DROPPED: Cell<u64> = const { Cell::new(0) };
}

/// Attaches an observer to the current thread's emit path. Observers are
/// fed in attach order. Must not be called from inside an observer
/// callback.
pub fn attach(obs: Box<dyn Observer>) -> ObserverHandle {
    let id = NEXT_HANDLE.with(|c| {
        let id = c.get();
        c.set(id + 1);
        id
    });
    OBSERVERS.with(|o| o.borrow_mut().push((id, obs)));
    ATTACHED.with(|c| c.set(c.get() + 1));
    ObserverHandle(id)
}

/// Detaches an observer, firing its [`Observer::on_finish`], and returns
/// the box (with all its accumulated state). `None` if the handle was
/// already redeemed.
pub fn detach(handle: ObserverHandle) -> Option<Box<dyn Observer>> {
    let found = OBSERVERS.with(|o| {
        let mut obs = o.borrow_mut();
        let idx = obs.iter().position(|(id, _)| *id == handle.0)?;
        Some(obs.remove(idx).1)
    });
    let mut obs = found?;
    ATTACHED.with(|c| c.set(c.get().saturating_sub(1)));
    obs.on_finish();
    Some(obs)
}

/// [`detach`], then downcast to the concrete observer type. `None` if the
/// handle was stale; panics if the handle resolves to a different type
/// (that's a caller bug, not a runtime condition).
pub fn detach_as<T: Observer + 'static>(handle: ObserverHandle) -> Option<Box<T>> {
    let obs = detach(handle)?;
    Some(
        obs.as_any_box()
            .downcast::<T>()
            .expect("observer handle redeemed at a mismatched type"),
    )
}

/// How many observers are attached to this thread's emit path.
pub fn observer_count() -> usize {
    ATTACHED.with(|c| c.get())
}

/// The emit path's hot gate: one thread-local read while quiescent.
#[cfg_attr(not(feature = "journal"), allow(dead_code))]
#[inline]
pub(crate) fn any_attached() -> bool {
    ATTACHED.with(|c| c.get() > 0)
}

/// Fans a record out to every attached observer, in attach order.
/// Re-entrant dispatch (an observer emitting during its callback) is
/// dropped: observation must stay observation-only.
#[doc(hidden)]
pub fn dispatch(rec: &Record) {
    if DISPATCHING.with(|c| c.replace(true)) {
        return;
    }
    OBSERVERS.with(|o| {
        for (_, obs) in o.borrow_mut().iter_mut() {
            obs.on_record(rec);
        }
    });
    DISPATCHING.with(|c| c.set(false));
}

/// Cross-observer stream counters, mirrored into `Metrics` by
/// `core::world::sync_monitor_stats` for the live dashboards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamStats {
    /// Total conformance violations flagged on this thread (all monitors,
    /// all runs since [`reset_stats`]).
    pub violations: u64,
    /// Records currently held by the most recently active flight
    /// recorder.
    pub recorder_occupancy: u64,
    /// That recorder's total capacity (per-host ring capacity × hosts
    /// seen).
    pub recorder_capacity: u64,
}

/// Reads the thread's stream counters.
pub fn stats() -> StreamStats {
    StreamStats {
        violations: VIOLATIONS.with(|c| c.get()),
        recorder_occupancy: RECORDER_OCC.with(|c| c.get()),
        recorder_capacity: RECORDER_CAP.with(|c| c.get()),
    }
}

/// Zeroes the thread's stream counters (start of a dashboard run).
pub fn reset_stats() {
    VIOLATIONS.with(|c| c.set(0));
    RECORDER_OCC.with(|c| c.set(0));
    RECORDER_CAP.with(|c| c.set(0));
}

/// Bumps the global violation counter (called by the monitor's checkers).
pub(crate) fn note_violation() {
    VIOLATIONS.with(|c| c.set(c.get() + 1));
}

/// Publishes a flight recorder's occupancy/capacity (last writer wins —
/// dashboards attach exactly one recorder).
pub(crate) fn set_recorder_level(occupancy: u64, capacity: u64) {
    RECORDER_OCC.with(|c| c.set(occupancy));
    RECORDER_CAP.with(|c| c.set(capacity));
}

/// Records dropped by the current (or most recent) bounded [`Journal`]
/// because its capacity was exhausted. Zeroed by `journal_start`.
pub fn journal_dropped() -> u64 {
    JOURNAL_DROPPED.with(|c| c.get())
}

#[cfg_attr(not(feature = "journal"), allow(dead_code))]
pub(crate) fn reset_journal_dropped() {
    JOURNAL_DROPPED.with(|c| c.set(0));
}

/// The classic full journal, demoted to an observer. Unbounded by
/// default; [`Journal::bounded`] keeps only the most recent `cap` records
/// (drop-oldest), counting evictions in [`journal_dropped`] so soak runs
/// stop carrying peak-journal memory.
pub struct Journal {
    records: VecDeque<Record>,
    cap: Option<usize>,
}

impl Journal {
    /// A journal that keeps every record (the pre-pipeline behavior).
    pub fn unbounded() -> Journal {
        Journal {
            records: VecDeque::new(),
            cap: None,
        }
    }

    /// A journal that keeps only the most recent `cap` records.
    pub fn bounded(cap: usize) -> Journal {
        assert!(cap > 0, "bounded journal capacity must be positive");
        Journal {
            records: VecDeque::with_capacity(cap.min(4096)),
            cap: Some(cap),
        }
    }

    /// Drains the journal into a right-sized `Vec` (shrunk to its length:
    /// repeated start/stop cycles no longer hand peak-capacity allocations
    /// to the caller).
    pub fn into_records(self) -> Vec<Record> {
        let mut v = Vec::from(self.records);
        v.shrink_to_fit();
        v
    }

    /// Records currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the journal holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

impl Observer for Journal {
    fn on_record(&mut self, rec: &Record) {
        if let Some(cap) = self.cap {
            if self.records.len() == cap {
                self.records.pop_front();
                JOURNAL_DROPPED.with(|c| c.set(c.get() + 1));
            }
        }
        self.records.push_back(rec.clone());
    }
}

/// A fixed-capacity per-host ring of the most recent records: the
/// postmortem memory of the conformance monitor, and a standalone
/// observer in its own right. Each host (plus the host-less `None` lane)
/// gets its own `cap`-deep ring, so a chatty host cannot evict another
/// host's recent history. A global monotonic sequence number preserves
/// emission order across lanes for [`FlightRecorder::dump_all`].
pub struct FlightRecorder {
    cap: usize,
    seq: u64,
    held: usize,
    evicted: u64,
    rings: BTreeMap<Option<u16>, VecDeque<(u64, Record)>>,
}

impl FlightRecorder {
    /// A recorder keeping the last `cap` records per host.
    pub fn new(cap: usize) -> FlightRecorder {
        assert!(cap > 0, "flight recorder capacity must be positive");
        FlightRecorder {
            cap,
            seq: 0,
            held: 0,
            evicted: 0,
            rings: BTreeMap::new(),
        }
    }

    /// The tail window for one host lane, oldest first.
    pub fn dump(&self, host: Option<u16>) -> Vec<Record> {
        self.rings
            .get(&host)
            .map(|ring| ring.iter().map(|(_, r)| r.clone()).collect())
            .unwrap_or_default()
    }

    /// All lanes' tail windows merged back into emission order.
    pub fn dump_all(&self) -> Vec<Record> {
        let mut tagged: Vec<(u64, &Record)> = self
            .rings
            .values()
            .flat_map(|ring| ring.iter().map(|(s, r)| (*s, r)))
            .collect();
        tagged.sort_by_key(|(s, _)| *s);
        tagged.into_iter().map(|(_, r)| r.clone()).collect()
    }

    /// Records currently held across all lanes.
    pub fn occupancy(&self) -> usize {
        self.held
    }

    /// Per-host ring capacity.
    pub fn capacity_per_host(&self) -> usize {
        self.cap
    }

    /// Records evicted (overwritten) so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }
}

impl Observer for FlightRecorder {
    fn on_record(&mut self, rec: &Record) {
        let ring = self.rings.entry(rec.host).or_default();
        if ring.len() == self.cap {
            ring.pop_front();
            self.held -= 1;
            self.evicted += 1;
        }
        ring.push_back((self.seq, rec.clone()));
        self.seq += 1;
        self.held += 1;
        let cap_total = (self.cap * self.rings.len()) as u64;
        set_recorder_level(self.held as u64, cap_total);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Event;

    fn rec(time: u64, host: Option<u16>, len: u32) -> Record {
        Record {
            time,
            host,
            frame: None,
            event: Event::NicTx { len },
        }
    }

    struct Counter {
        seen: usize,
        finished: bool,
    }

    impl Observer for Counter {
        fn on_record(&mut self, _rec: &Record) {
            self.seen += 1;
        }
        fn on_finish(&mut self) {
            self.finished = true;
        }
    }

    #[test]
    fn attach_dispatch_detach_roundtrip() {
        assert_eq!(observer_count(), 0);
        let h = attach(Box::new(Counter {
            seen: 0,
            finished: false,
        }));
        assert_eq!(observer_count(), 1);
        dispatch(&rec(1, None, 5));
        dispatch(&rec(2, None, 6));
        let c = detach_as::<Counter>(h).expect("live handle");
        assert_eq!(c.seen, 2);
        assert!(c.finished, "detach fires on_finish");
        assert_eq!(observer_count(), 0);
    }

    #[test]
    fn stale_handle_detaches_to_none() {
        let h = attach(Box::new(Counter {
            seen: 0,
            finished: false,
        }));
        let id = h.id();
        assert!(detach(h).is_some());
        assert!(detach(ObserverHandle::from_id(id)).is_none());
    }

    #[test]
    fn bounded_journal_keeps_tail_and_counts_drops() {
        reset_journal_dropped();
        let mut j = Journal::bounded(3);
        for t in 0..5 {
            j.on_record(&rec(t, None, t as u32));
        }
        assert_eq!(journal_dropped(), 2);
        let recs = j.into_records();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs.capacity(), recs.len(), "shrunk on stop");
        assert_eq!(
            recs.iter().map(|r| r.time).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
    }

    #[test]
    fn recorder_rings_are_per_host() {
        let mut fr = FlightRecorder::new(2);
        fr.on_record(&rec(1, Some(0), 1));
        fr.on_record(&rec(2, Some(1), 2));
        fr.on_record(&rec(3, Some(0), 3));
        fr.on_record(&rec(4, Some(0), 4));
        // Host 0 overflowed its 2-deep lane; host 1 kept its record.
        assert_eq!(fr.occupancy(), 3);
        assert_eq!(fr.evicted(), 1);
        let h0 = fr.dump(Some(0));
        assert_eq!(h0.iter().map(|r| r.time).collect::<Vec<_>>(), vec![3, 4]);
        assert_eq!(fr.dump(Some(1)).len(), 1);
        let all = fr.dump_all();
        assert_eq!(
            all.iter().map(|r| r.time).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
    }

    #[test]
    fn reentrant_dispatch_is_dropped() {
        struct Reentrant {
            fired: bool,
        }
        impl Observer for Reentrant {
            fn on_record(&mut self, rec: &Record) {
                if !self.fired {
                    self.fired = true;
                    // An observer must not feed the stream; this inner
                    // dispatch is silently dropped (no double-count, no
                    // RefCell panic).
                    dispatch(rec);
                }
            }
        }
        let hr = attach(Box::new(Reentrant { fired: false }));
        let hc = attach(Box::new(Counter {
            seen: 0,
            finished: false,
        }));
        dispatch(&rec(1, None, 1));
        let c = detach_as::<Counter>(hc).expect("live handle");
        assert_eq!(c.seen, 1);
        let _ = detach(hr);
    }
}
