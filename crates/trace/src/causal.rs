//! Cross-host causal tracing: the journal joined into end-to-end frame
//! **journeys**, plus root-cause attribution for every retransmit and
//! loss.
//!
//! The PR 5 profiler ([`crate::profile`]) reconstructs what happened to
//! a frame *inside the receiving host*. This module stitches the other
//! two thirds on: the transmit side (`tcp_segment tx` → template check →
//! `nic_tx`) and the wire hop (`link_tx` queue/serialization split plus
//! any `fault_inject` verdicts), all joined on the world-unique frame
//! id. A [`Journey`] therefore spans hosts: it starts when the sender's
//! TCP builds the segment and ends when the receiver's application takes
//! delivery — or earlier, with a [`Loss`] naming the proximate cause.
//!
//! On top of the journeys sits the attribution layer: every
//! `tcp_rexmit` record is traced back to the latest prior transmission
//! of the resent sequence range, and that journey's fate names the
//! root [`Cause`] — an injected wire drop, an outage window, a
//! checksum-caught corruption, a ring overflow (genuine or
//! pressure-clamped), a reorder-induced spurious retransmit, a lost
//! ACK, or a crashed peer. Under a seeded `FaultPlan` the injected
//! schedule is the oracle: `tests/causal.rs` cross-checks that every
//! attribution points at a genuinely injected fault and that every
//! dropped data frame is claimed exactly once.
//!
//! Latency is decomposed the same way: [`Journey::lat_split`] labels
//! every nanosecond between segment build and application delivery as
//! queue-wait (link access, ring residency, reorder delay) or service
//! time (tx build, serialization, demux, wakeup, protocol, delivery),
//! and the components telescope **exactly** to the cross-host
//! end-to-end latency — sim time is deterministic, so
//! [`CausalGraph::check_consistency`] asserts equality, not tolerance.
//!
//! Known limits: the cause taxonomy tracks the user-library receive
//! path; frames the monolithic organization routes to the kernel
//! default close at `Arrived` without per-stage decomposition, and a
//! corrupted frame that dies of ring overflow before its checksum runs
//! is attributed to the overflow (the *proximate* cause, by design).

use std::collections::HashMap;

use crate::profile::{PathOutcome, PathTrace, Profile, Stage};
use crate::{Dir, Event, FaultKind, Nanos, Record, RexmitReason};

/// The transmit-side TCP segment record of a journey.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegTx {
    /// Sim time the sender's TCP built the segment.
    pub t: Nanos,
    /// Sender-side local port.
    pub local_port: u16,
    /// Sender-side remote port.
    pub remote_port: u16,
    /// First sequence number carried.
    pub seq: u32,
    /// Payload bytes carried (0 = pure ACK / control).
    pub payload: u32,
    /// Wire bytes past the link header.
    pub wire: u32,
}

/// Where and why a frame was lost in flight or at the receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loss {
    /// Random injected drop on the link `from → to`.
    WireDrop {
        /// Sending host.
        from: u16,
        /// Receiving host.
        to: u16,
    },
    /// The frame fell inside a scheduled outage window on `from → to`.
    Outage {
        /// Sending host.
        from: u16,
        /// Receiving host.
        to: u16,
    },
    /// Injected corruption on `from → to`, caught by the receiver's
    /// checksum and discarded.
    Corrupt {
        /// Sending host.
        from: u16,
        /// Receiving host.
        to: u16,
    },
    /// Dropped at ring placement. `pressure == true` means a fault
    /// plan's slow-consumer window clamped the ring below its real
    /// capacity — injected pressure, not genuine load.
    RingOverflow {
        /// The overflowed channel.
        channel: u32,
        /// Whether an injected pressure clamp caused the drop.
        pressure: bool,
    },
    /// Dropped at ring placement because the owning tenant had exhausted
    /// its aggregate ring-slot quota — the channel itself still had room,
    /// so the root cause is the tenant overrunning its budget, not load
    /// on this channel.
    QuotaExceeded {
        /// The channel the frame was bound for.
        channel: u32,
        /// The tenant whose exhausted quota caused the drop.
        tenant: u64,
    },
    /// Dropped at NIC receive staging overflow.
    NicOverflow,
}

impl Loss {
    /// Stable report keyword for the loss kind.
    pub fn label(self) -> &'static str {
        match self {
            Loss::WireDrop { .. } => "wire_drop",
            Loss::Outage { .. } => "outage",
            Loss::Corrupt { .. } => "corrupt",
            Loss::RingOverflow { pressure: true, .. } => "ring_pressure",
            Loss::RingOverflow { .. } => "ring_overflow",
            Loss::QuotaExceeded { .. } => "quota_exceeded",
            Loss::NicOverflow => "nic_overflow",
        }
    }

    /// Human-readable description.
    pub fn describe(self) -> String {
        match self {
            Loss::WireDrop { from, to } => format!("injected drop on link {from}\u{2192}{to}"),
            Loss::Outage { from, to } => format!("outage window on link {from}\u{2192}{to}"),
            Loss::Corrupt { from, to } => {
                format!("injected corruption on link {from}\u{2192}{to} (discarded on receive)")
            }
            Loss::RingOverflow { channel, pressure } => {
                if pressure {
                    format!("ring overflow on ch{channel} (injected slow-consumer pressure)")
                } else {
                    format!("ring overflow on ch{channel}")
                }
            }
            Loss::QuotaExceeded { channel, tenant } => {
                format!("ring quota exhausted by tenant {tenant} (drop on ch{channel})")
            }
            Loss::NicOverflow => "NIC staging overflow".into(),
        }
    }
}

/// How a journey ended, cross-host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JourneyFate {
    /// Reached the peer's TCP (payload delivered or pure ACK processed).
    Arrived,
    /// Lost in flight or at the receiver.
    Lost(Loss),
    /// The journal stopped (or the run ended) with the frame still
    /// pending — no verdict.
    InFlight,
}

/// One frame's end-to-end journey: tx-side spans, wire hop, fault
/// verdicts, and every receive-side [`PathTrace`] copy (a duplicated
/// frame arrives more than once), joined by frame id.
#[derive(Debug, Clone, PartialEq)]
pub struct Journey {
    /// The world-unique frame id joined on.
    pub frame: u64,
    /// Transmitting host, when a tx-side record named it.
    pub tx_host: Option<u16>,
    /// The TCP segment the sender built into this frame.
    pub seg: Option<SegTx>,
    /// Kernel template-check verdict on transmit.
    pub template_ok: Option<bool>,
    /// Sim time the frame was handed to the NIC for transmit.
    pub nic_tx: Option<Nanos>,
    /// Wait for link access (CSMA backoff / token rotation).
    pub link_queue: Option<Nanos>,
    /// Serialization plus propagation time on the wire.
    pub link_wire: Option<Nanos>,
    /// Fault-plan verdicts on this frame: `(time, kind, from, to)`.
    pub faults: Vec<(Nanos, FaultKind, u16, u16)>,
    /// Receive-side traces, in arrival order (duplicates queue).
    pub rx: Vec<PathTrace>,
    /// The journey's cross-host verdict.
    pub fate: JourneyFate,
}

/// One latency component of a journey, labeled queue-wait or service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatComp {
    /// Stage label (`tx_build`, `link_queue`, `link_wire`,
    /// `reorder_wait`, then the receive-path stage keywords).
    pub label: &'static str,
    /// Nanoseconds attributed to the stage.
    pub ns: Nanos,
    /// `true` = the frame sat in a queue; `false` = something worked on
    /// it (service time).
    pub queue: bool,
}

impl Journey {
    fn new(frame: u64) -> Journey {
        Journey {
            frame,
            tx_host: None,
            seg: None,
            template_ok: None,
            nic_tx: None,
            link_queue: None,
            link_wire: None,
            faults: Vec::new(),
            rx: Vec::new(),
            fate: JourneyFate::InFlight,
        }
    }

    /// Whether the fault plan hit this frame with `kind`.
    pub fn has_fault(&self, kind: FaultKind) -> bool {
        self.faults.iter().any(|&(_, k, _, _)| k == kind)
    }

    /// The receive-side copy that reached the peer's protocol (delivered
    /// payload, or a processed pure ACK), if any.
    pub fn primary_rx(&self) -> Option<&PathTrace> {
        self.rx
            .iter()
            .find(|tr| tr.outcome == PathOutcome::Delivered)
            .or_else(|| {
                self.rx.iter().find(|tr| {
                    matches!(
                        tr.outcome,
                        PathOutcome::Processed | PathOutcome::KernelDefault
                    )
                })
            })
    }

    /// Sim time the frame's primary copy reached the peer's TCP (or its
    /// last recorded stage), if it arrived.
    pub fn arrival(&self) -> Option<Nanos> {
        let tr = self.primary_rx()?;
        tr.stage_time(Stage::Tcp)
            .or_else(|| Stage::ALL.iter().rev().find_map(|&s| tr.stage_time(s)))
    }

    /// The journey's anchor timestamp: segment build when known, else
    /// NIC transmit, else the first receive-side stage.
    pub fn start(&self) -> Option<Nanos> {
        self.seg
            .as_ref()
            .map(|s| s.t)
            .or(self.nic_tx)
            .or_else(|| self.rx.first().and_then(|tr| tr.stage_time(Stage::NicRx)))
    }

    /// Cross-host end-to-end latency of the primary copy: last receive
    /// stage minus the anchor ([`start`](Self::start)).
    pub fn end_to_end(&self) -> Option<Nanos> {
        let tr = self.primary_rx()?;
        let last = Stage::ALL.iter().rev().find_map(|&s| tr.stage_time(s))?;
        Some(last - self.start()?)
    }

    /// Decomposes the primary copy's cross-host latency into labeled
    /// queue-wait / service components that telescope **exactly** to
    /// [`end_to_end`](Self::end_to_end). `None` when no copy arrived.
    pub fn lat_split(&self) -> Option<Vec<LatComp>> {
        let tr = self.primary_rx()?;
        let rx0 = tr.stage_time(Stage::NicRx)?;
        let mut out = Vec::new();
        let mut cursor = self.start()?;
        if let (Some(s), Some(tx)) = (self.seg.as_ref(), self.nic_tx) {
            out.push(LatComp {
                label: "tx_build",
                ns: tx - s.t,
                queue: false,
            });
            cursor = tx;
        }
        if let (Some(tx), Some(q), Some(w)) = (self.nic_tx, self.link_queue, self.link_wire) {
            out.push(LatComp {
                label: "link_queue",
                ns: q,
                queue: true,
            });
            out.push(LatComp {
                label: "link_wire",
                ns: w,
                queue: false,
            });
            cursor = tx + q + w;
        }
        // Anything between the modeled wire arrival and the NIC seeing
        // the frame is injected reorder delay (zero otherwise).
        out.push(LatComp {
            label: "reorder_wait",
            ns: rx0 - cursor,
            queue: true,
        });
        for (stage, dt) in tr.components() {
            out.push(LatComp {
                label: stage.label(),
                ns: dt,
                queue: stage == Stage::Ring,
            });
        }
        Some(out)
    }

    /// One-line fate description for reports.
    pub fn describe_fate(&self) -> String {
        match self.fate {
            JourneyFate::Arrived => "arrived".into(),
            JourneyFate::Lost(loss) => format!("lost: {}", loss.describe()),
            JourneyFate::InFlight => "in flight at journal stop".into(),
        }
    }
}

/// The root cause attributed to one retransmit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cause {
    /// The previous transmission of these bytes was lost.
    DataLoss {
        /// The lost frame.
        frame: u64,
        /// Where and why it was lost.
        loss: Loss,
    },
    /// The data arrived; the acknowledgment coming back was lost.
    AckLoss {
        /// The data frame that arrived.
        data_frame: u64,
        /// The reverse-direction frame that was lost.
        ack_frame: u64,
        /// Where and why the ACK was lost.
        loss: Loss,
    },
    /// The previous transmission arrived, but late (injected reorder) —
    /// dup-ACKs or the RTO beat it. A spurious retransmit.
    Reorder {
        /// The late frame.
        frame: u64,
    },
    /// The peer crashed; nothing will acknowledge.
    PeerCrash {
        /// The crashed host.
        host: u16,
    },
    /// The previous transmission had no verdict when the journal
    /// stopped (RTO raced a slow wire at the end of the run).
    InFlight {
        /// The still-pending frame.
        frame: u64,
    },
    /// The previous transmission arrived, but the retransmit fired
    /// before the delivery (or the ACK carrying the news) could reach
    /// the sender — queueing delay, not loss. A spurious retransmit.
    LateDelivery {
        /// The frame that was still on the wire when the retransmit
        /// fired.
        frame: u64,
    },
    /// No prior transmission overlapping the resent range was found.
    Unattributed,
}

impl Cause {
    /// Stable report keyword.
    pub fn label(self) -> &'static str {
        match self {
            Cause::DataLoss { loss, .. } => loss.label(),
            Cause::AckLoss { .. } => "ack_loss",
            Cause::Reorder { .. } => "reorder",
            Cause::PeerCrash { .. } => "peer_crash",
            Cause::InFlight { .. } => "in_flight",
            Cause::LateDelivery { .. } => "late_delivery",
            Cause::Unattributed => "unattributed",
        }
    }

    /// Whether a concrete cause was established.
    pub fn is_attributed(self) -> bool {
        !matches!(self, Cause::Unattributed)
    }

    /// Human-readable cause chain.
    pub fn describe(self) -> String {
        match self {
            Cause::DataLoss { frame, loss } => {
                format!("previous tx f{frame} {}", loss.describe())
            }
            Cause::AckLoss {
                data_frame,
                ack_frame,
                loss,
            } => format!(
                "data f{data_frame} arrived; ACK f{ack_frame} {}",
                loss.describe()
            ),
            Cause::Reorder { frame } => {
                format!("spurious: previous tx f{frame} arrived late (injected reorder)")
            }
            Cause::PeerCrash { host } => format!("peer host{host} crashed"),
            Cause::InFlight { frame } => {
                format!("previous tx f{frame} still in flight at journal stop")
            }
            Cause::LateDelivery { frame } => format!(
                "spurious: previous tx f{frame} was still on the wire when the retransmit fired (delay, not loss)"
            ),
            Cause::Unattributed => "no prior transmission found".into(),
        }
    }
}

/// One retransmit with its attributed root cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Attribution {
    /// Sim time the retransmit fired.
    pub t: Nanos,
    /// Retransmitting host, when known.
    pub host: Option<u16>,
    /// Sender-side local port.
    pub local_port: u16,
    /// Sender-side remote port.
    pub remote_port: u16,
    /// First resent sequence number.
    pub seq: u32,
    /// Resent bytes.
    pub bytes: u32,
    /// Which loss-detection mechanism fired.
    pub reason: RexmitReason,
    /// The attributed root cause.
    pub cause: Cause,
}

/// `lo <= x < lo + len` in sequence-number space (wrapping).
fn seq_contains(lo: u32, len: u32, x: u32) -> bool {
    len > 0 && x.wrapping_sub(lo) < len
}

/// The cross-host causal trace graph: every journey, every retransmit
/// attribution, and the crash schedule observed in one journal.
#[derive(Debug, Clone)]
pub struct CausalGraph {
    /// Every journey, in frame-creation (emission) order.
    pub journeys: Vec<Journey>,
    /// Every retransmit with its attributed cause, in firing order.
    pub rexmits: Vec<Attribution>,
    /// Observed crash events: `(time, host)`.
    pub crashes: Vec<(Nanos, u16)>,
    by_frame: HashMap<u64, usize>,
}

/// A `tcp_rexmit` record before attribution: `(time, host, local_port,
/// remote_port, seq, bytes, reason)`.
type RawRexmit = (Nanos, Option<u16>, u16, u16, u32, u32, RexmitReason);

impl CausalGraph {
    /// Joins a journal (emission order) into journeys and attributes
    /// every retransmit. Receive-side traces come from
    /// [`Profile::build`], so the join discipline (FIFO duplicate ids,
    /// ring-order wakeups) is shared with the PR 5 profiler.
    pub fn build(records: &[Record]) -> CausalGraph {
        let mut journeys: Vec<Journey> = Vec::new();
        let mut by_frame: HashMap<u64, usize> = HashMap::new();
        let mut ring_pressure: HashMap<u64, Vec<bool>> = HashMap::new();
        let mut quota_tenant: HashMap<u64, u64> = HashMap::new();
        let mut raw_rexmits: Vec<RawRexmit> = Vec::new();
        let mut crashes: Vec<(Nanos, u16)> = Vec::new();

        fn entry<'a>(
            journeys: &'a mut Vec<Journey>,
            by_frame: &mut HashMap<u64, usize>,
            frame: u64,
        ) -> &'a mut Journey {
            let idx = *by_frame.entry(frame).or_insert_with(|| {
                journeys.push(Journey::new(frame));
                journeys.len() - 1
            });
            &mut journeys[idx]
        }

        for rec in records {
            match &rec.event {
                Event::TcpSegment {
                    dir: Dir::Tx,
                    local_port,
                    remote_port,
                    seq,
                    payload,
                    wire,
                    ..
                } => {
                    let Some(f) = rec.frame else { continue };
                    let j = entry(&mut journeys, &mut by_frame, f);
                    j.tx_host = j.tx_host.or(rec.host);
                    j.seg = Some(SegTx {
                        t: rec.time,
                        local_port: *local_port,
                        remote_port: *remote_port,
                        seq: *seq,
                        payload: *payload,
                        wire: *wire,
                    });
                }
                Event::TxTemplateCheck { ok, .. } => {
                    let Some(f) = rec.frame else { continue };
                    entry(&mut journeys, &mut by_frame, f).template_ok = Some(*ok);
                }
                Event::NicTx { .. } => {
                    let Some(f) = rec.frame else { continue };
                    let j = entry(&mut journeys, &mut by_frame, f);
                    j.tx_host = j.tx_host.or(rec.host);
                    j.nic_tx = Some(rec.time);
                }
                Event::LinkTx { queue, wire } => {
                    let Some(f) = rec.frame else { continue };
                    let j = entry(&mut journeys, &mut by_frame, f);
                    j.link_queue = Some(*queue);
                    j.link_wire = Some(*wire);
                }
                Event::FaultInject { kind, from, to } => match rec.frame {
                    Some(f) => entry(&mut journeys, &mut by_frame, f)
                        .faults
                        .push((rec.time, *kind, *from, *to)),
                    None if *kind == FaultKind::Crash => crashes.push((rec.time, *from)),
                    None => {}
                },
                Event::RingDrop { pressure, .. } => {
                    let Some(f) = rec.frame else { continue };
                    ring_pressure.entry(f).or_default().push(*pressure);
                }
                Event::QuotaDrop { tenant, .. } => {
                    let Some(f) = rec.frame else { continue };
                    quota_tenant.entry(f).or_insert(*tenant);
                }
                Event::TcpRexmit {
                    local_port,
                    remote_port,
                    seq,
                    bytes,
                    reason,
                    ..
                } => raw_rexmits.push((
                    rec.time,
                    rec.host,
                    *local_port,
                    *remote_port,
                    *seq,
                    *bytes,
                    *reason,
                )),
                _ => {}
            }
        }

        // Fold the receive side in via the shared profiler join.
        for tr in Profile::build(records).traces {
            entry(&mut journeys, &mut by_frame, tr.frame).rx.push(tr);
        }

        for j in journeys.iter_mut() {
            j.fate = fate_of(
                j,
                ring_pressure.get(&j.frame),
                quota_tenant.get(&j.frame).copied(),
            );
        }

        let rexmits = raw_rexmits
            .into_iter()
            .map(|(t, host, local_port, remote_port, seq, bytes, reason)| {
                let cause = attribute(&journeys, &crashes, t, host, local_port, remote_port, seq);
                Attribution {
                    t,
                    host,
                    local_port,
                    remote_port,
                    seq,
                    bytes,
                    reason,
                    cause,
                }
            })
            .collect();

        CausalGraph {
            journeys,
            rexmits,
            crashes,
            by_frame,
        }
    }

    /// The journey of `frame`, if the journal saw it.
    pub fn journey(&self, frame: u64) -> Option<&Journey> {
        self.by_frame.get(&frame).map(|&i| &self.journeys[i])
    }

    /// Fraction of retransmits with an established cause (1.0 when no
    /// retransmit happened).
    pub fn coverage(&self) -> f64 {
        if self.rexmits.is_empty() {
            return 1.0;
        }
        let attributed = self
            .rexmits
            .iter()
            .filter(|a| a.cause.is_attributed())
            .count();
        attributed as f64 / self.rexmits.len() as f64
    }

    /// Every lost journey with its loss cause (losses are self-
    /// attributing: the fate *is* the cause).
    pub fn losses(&self) -> impl Iterator<Item = (&Journey, Loss)> {
        self.journeys.iter().filter_map(|j| match j.fate {
            JourneyFate::Lost(loss) => Some((j, loss)),
            _ => None,
        })
    }

    /// How many attributions claim each lost data frame (oracle
    /// surface: under a seeded drop plan every lost *data* frame must be
    /// claimed exactly once, or superseded by a redundant delivery).
    pub fn claims(&self) -> HashMap<u64, usize> {
        let mut out = HashMap::new();
        for a in &self.rexmits {
            match a.cause {
                Cause::DataLoss { frame, .. } => *out.entry(frame).or_insert(0) += 1,
                Cause::AckLoss { ack_frame, .. } => *out.entry(ack_frame).or_insert(0) += 1,
                _ => {}
            }
        }
        out
    }

    /// Whether another transmission of an overlapping sequence range on
    /// the same connection arrived — a lost frame with a redundant
    /// delivery needs no retransmit to claim it.
    pub fn superseded(&self, j: &Journey) -> bool {
        let Some(s) = &j.seg else { return false };
        self.journeys.iter().any(|o| {
            o.frame != j.frame
                && o.fate == JourneyFate::Arrived
                && o.seg.as_ref().is_some_and(|os| {
                    os.local_port == s.local_port
                        && os.remote_port == s.remote_port
                        && os.payload > 0
                        && (seq_contains(os.seq, os.payload, s.seq)
                            || seq_contains(s.seq, s.payload, os.seq))
                })
        })
    }

    /// Asserts the latency-split invariant over every arrived journey:
    /// the labeled components sum **exactly** to the cross-host
    /// end-to-end latency, and tx-side timestamps are monotone.
    pub fn check_consistency(&self) -> Result<(), String> {
        for j in &self.journeys {
            if let (Some(s), Some(tx)) = (&j.seg, j.nic_tx) {
                if tx < s.t {
                    return Err(format!("f{}: nic_tx before segment build", j.frame));
                }
            }
            let Some(split) = j.lat_split() else { continue };
            let sum: Nanos = split.iter().map(|c| c.ns).sum();
            let e2e = j.end_to_end().unwrap_or(0);
            if sum != e2e {
                return Err(format!(
                    "f{}: components sum to {sum} ns but end-to-end is {e2e} ns",
                    j.frame
                ));
            }
        }
        Ok(())
    }

    /// Per-cause retransmit counts, sorted by label.
    pub fn cause_counts(&self) -> Vec<(&'static str, usize)> {
        let mut map: HashMap<&'static str, usize> = HashMap::new();
        for a in &self.rexmits {
            *map.entry(a.cause.label()).or_insert(0) += 1;
        }
        let mut out: Vec<_> = map.into_iter().collect();
        out.sort();
        out
    }

    /// Per-kind loss counts, sorted by label.
    pub fn loss_counts(&self) -> Vec<(&'static str, usize)> {
        let mut map: HashMap<&'static str, usize> = HashMap::new();
        for (_, loss) in self.losses() {
            *map.entry(loss.label()).or_insert(0) += 1;
        }
        let mut out: Vec<_> = map.into_iter().collect();
        out.sort();
        out
    }

    /// The postmortem timeline of one frame's journey, with the
    /// attributed cause chain of any retransmit it triggered.
    pub fn explain_frame(&self, frame: u64) -> String {
        let Some(j) = self.journey(frame) else {
            return format!("frame {frame}: not in journal\n");
        };
        let mut out = String::new();
        let peer =
            j.rx.first()
                .and_then(|tr| tr.host)
                .map_or("?".to_string(), |h| h.to_string());
        let me = j.tx_host.map_or("?".to_string(), |h| h.to_string());
        out.push_str(&format!("frame {frame}: host {me} \u{2192} host {peer}\n"));
        let t0 = j.start().unwrap_or(0);
        let line = |t: Nanos, what: String| format!("  +{:<9} {}\n", t.saturating_sub(t0), what);
        if let Some(s) = &j.seg {
            out.push_str(&line(
                s.t,
                format!(
                    "tcp tx   lp={} rp={} seq={} payload={}",
                    s.local_port, s.remote_port, s.seq, s.payload
                ),
            ));
        }
        if let Some(ok) = j.template_ok {
            if let Some(s) = &j.seg {
                out.push_str(&line(s.t, format!("template check ok={ok}")));
            }
        }
        if let Some(tx) = j.nic_tx {
            out.push_str(&line(tx, "nic_tx".into()));
            if let (Some(q), Some(w)) = (j.link_queue, j.link_wire) {
                out.push_str(&line(tx + q, format!("wire     queue={q} serialize={w}")));
            }
        }
        for &(t, kind, from, to) in &j.faults {
            out.push_str(&line(
                t,
                format!("fault    {} on link {from}\u{2192}{to}", kind.label()),
            ));
        }
        for tr in &j.rx {
            for (stage, t) in Stage::ALL
                .iter()
                .filter_map(|&s| tr.stage_time(s).map(|t| (s, t)))
            {
                out.push_str(&line(t, stage.label().to_string()));
            }
            out.push_str(&format!("  rx outcome: {}\n", tr.outcome.label()));
        }
        out.push_str(&format!("  fate: {}\n", j.describe_fate()));
        if let Some(split) = j.lat_split() {
            let e2e = j.end_to_end().unwrap_or(0);
            out.push_str(&format!("  latency split (end-to-end {e2e} ns):\n"));
            for c in split {
                if c.ns == 0 {
                    continue;
                }
                out.push_str(&format!(
                    "    {:<14} {:>9} ns  [{}]\n",
                    c.label,
                    c.ns,
                    if c.queue { "queue" } else { "service" }
                ));
            }
        }
        for a in self.rexmits.iter().filter(|a| match a.cause {
            Cause::DataLoss { frame: f, .. }
            | Cause::AckLoss { data_frame: f, .. }
            | Cause::Reorder { frame: f }
            | Cause::InFlight { frame: f }
            | Cause::LateDelivery { frame: f } => f == frame,
            _ => false,
        }) {
            out.push_str(&format!(
                "  triggered rexmit at t={} seq={} reason={} \u{2014} {}\n",
                a.t,
                a.seq,
                a.reason.label(),
                a.cause.describe()
            ));
        }
        out
    }

    /// The postmortem report of one connection (any attribution or
    /// journey touching `port` on either side).
    pub fn explain_conn(&self, port: u16) -> String {
        let mut out = String::new();
        let rexmits: Vec<&Attribution> = self
            .rexmits
            .iter()
            .filter(|a| a.local_port == port || a.remote_port == port)
            .collect();
        let journeys = self
            .journeys
            .iter()
            .filter(|j| {
                j.seg
                    .as_ref()
                    .is_some_and(|s| s.local_port == port || s.remote_port == port)
            })
            .count();
        out.push_str(&format!(
            "conn :{port} \u{2014} {journeys} transmissions, {} retransmits\n",
            rexmits.len()
        ));
        for a in &rexmits {
            out.push_str(&format!(
                "  t={:<11} rexmit lp={} seq={} bytes={} reason={:<7} \u{2190} {}\n",
                a.t,
                a.local_port,
                a.seq,
                a.bytes,
                a.reason.label(),
                a.cause.describe()
            ));
        }
        let losses: Vec<_> = self
            .losses()
            .filter(|(j, _)| {
                j.seg
                    .as_ref()
                    .is_some_and(|s| s.local_port == port || s.remote_port == port)
            })
            .collect();
        if !losses.is_empty() {
            out.push_str("  losses:\n");
            for (j, loss) in losses {
                let s = j.seg.as_ref().unwrap();
                out.push_str(&format!(
                    "    f{:<5} seq={} payload={} \u{2014} {}\n",
                    j.frame,
                    s.seq,
                    s.payload,
                    loss.describe()
                ));
            }
        }
        out
    }

    /// Summary block for reports: coverage plus cause/loss breakdowns.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "journeys: {} ({} arrived, {} lost, {} in flight)\n",
            self.journeys.len(),
            self.journeys
                .iter()
                .filter(|j| j.fate == JourneyFate::Arrived)
                .count(),
            self.losses().count(),
            self.journeys
                .iter()
                .filter(|j| j.fate == JourneyFate::InFlight)
                .count(),
        ));
        out.push_str(&format!(
            "rexmits: {} attributed {:.1}%\n",
            self.rexmits.len(),
            self.coverage() * 100.0
        ));
        for (label, n) in self.cause_counts() {
            out.push_str(&format!("  cause {label:<14} {n}\n"));
        }
        for (label, n) in self.loss_counts() {
            out.push_str(&format!("  loss  {label:<14} {n}\n"));
        }
        out
    }

    /// Serializes the graph as Chrome trace-event JSON (the
    /// `chrome://tracing` / Perfetto format): one process per host, a
    /// `tx path` and an `rx path` track each, duration events per
    /// journey stage, flow arrows (`s`/`f`) tying each wire hop from
    /// sender to receiver, and instant events for fault verdicts and
    /// retransmits. Deterministic: journeys serialize in creation order
    /// and timestamps are exact decimal microseconds.
    pub fn render_chrome_trace(&self) -> String {
        let us = |ns: Nanos| format!("{}.{:03}", ns / 1000, ns % 1000);
        let mut ev: Vec<String> = Vec::new();
        let mut hosts: Vec<u16> = self
            .journeys
            .iter()
            .flat_map(|j| {
                j.tx_host
                    .into_iter()
                    .chain(j.rx.iter().filter_map(|tr| tr.host))
            })
            .collect();
        hosts.sort_unstable();
        hosts.dedup();
        for &h in &hosts {
            ev.push(format!(
                "{{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": {h}, \"args\": {{\"name\": \"host{h}\"}}}}"
            ));
            ev.push(format!(
                "{{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": {h}, \"tid\": 0, \"args\": {{\"name\": \"tx path\"}}}}"
            ));
            ev.push(format!(
                "{{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": {h}, \"tid\": 1, \"args\": {{\"name\": \"rx path\"}}}}"
            ));
        }
        for j in &self.journeys {
            let f = j.frame;
            let txh = j.tx_host.unwrap_or(0);
            if let (Some(s), Some(tx)) = (&j.seg, j.nic_tx) {
                ev.push(format!(
                    "{{\"ph\": \"X\", \"name\": \"tx_build\", \"cat\": \"tx\", \"pid\": {txh}, \"tid\": 0, \"ts\": {}, \"dur\": {}, \"args\": {{\"frame\": {f}, \"seq\": {}, \"payload\": {}}}}}",
                    us(s.t),
                    us(tx - s.t),
                    s.seq,
                    s.payload
                ));
            }
            if let (Some(tx), Some(q), Some(w)) = (j.nic_tx, j.link_queue, j.link_wire) {
                if q > 0 {
                    ev.push(format!(
                        "{{\"ph\": \"X\", \"name\": \"link_queue\", \"cat\": \"wire\", \"pid\": {txh}, \"tid\": 0, \"ts\": {}, \"dur\": {}, \"args\": {{\"frame\": {f}}}}}",
                        us(tx),
                        us(q)
                    ));
                }
                ev.push(format!(
                    "{{\"ph\": \"X\", \"name\": \"link_wire\", \"cat\": \"wire\", \"pid\": {txh}, \"tid\": 0, \"ts\": {}, \"dur\": {}, \"args\": {{\"frame\": {f}}}}}",
                    us(tx + q),
                    us(w)
                ));
                ev.push(format!(
                    "{{\"ph\": \"s\", \"id\": {f}, \"name\": \"hop\", \"cat\": \"wire\", \"pid\": {txh}, \"tid\": 0, \"ts\": {}}}",
                    us(tx)
                ));
            }
            for (ci, tr) in j.rx.iter().enumerate() {
                let Some(h) = tr.host else { continue };
                let Some(t0) = tr.stage_time(Stage::NicRx) else {
                    continue;
                };
                if ci == 0 && j.nic_tx.is_some() {
                    ev.push(format!(
                        "{{\"ph\": \"f\", \"bp\": \"e\", \"id\": {f}, \"name\": \"hop\", \"cat\": \"wire\", \"pid\": {h}, \"tid\": 1, \"ts\": {}}}",
                        us(t0)
                    ));
                }
                for (stage, dt) in tr.components() {
                    let end = tr.stage_time(stage).unwrap_or(t0);
                    ev.push(format!(
                        "{{\"ph\": \"X\", \"name\": \"{}\", \"cat\": \"rx\", \"pid\": {h}, \"tid\": 1, \"ts\": {}, \"dur\": {}, \"args\": {{\"frame\": {f}}}}}",
                        stage.label(),
                        us(end - dt),
                        us(dt)
                    ));
                }
            }
            for &(t, kind, from, to) in &j.faults {
                ev.push(format!(
                    "{{\"ph\": \"i\", \"s\": \"p\", \"name\": \"fault:{}\", \"pid\": {from}, \"tid\": 0, \"ts\": {}, \"args\": {{\"frame\": {f}, \"to\": {to}}}}}",
                    kind.label(),
                    us(t)
                ));
            }
        }
        for a in &self.rexmits {
            ev.push(format!(
                "{{\"ph\": \"i\", \"s\": \"p\", \"name\": \"rexmit:{}\", \"pid\": {}, \"tid\": 0, \"ts\": {}, \"args\": {{\"seq\": {}, \"cause\": \"{}\"}}}}",
                a.reason.label(),
                a.host.unwrap_or(0),
                us(a.t),
                a.seq,
                a.cause.label()
            ));
        }
        let mut out = String::from("{\"displayTimeUnit\": \"ns\",\n \"traceEvents\": [\n  ");
        out.push_str(&ev.join(",\n  "));
        out.push_str("\n]}\n");
        out
    }
}

/// Convenience wrapper: journal records straight to Chrome trace JSON.
pub fn render_chrome_trace(records: &[Record]) -> String {
    CausalGraph::build(records).render_chrome_trace()
}

/// Computes a journey's cross-host verdict from its fault records and
/// receive-side outcomes.
fn fate_of(
    j: &Journey,
    ring_pressure: Option<&Vec<bool>>,
    quota_tenant: Option<u64>,
) -> JourneyFate {
    for &(_, kind, from, to) in &j.faults {
        match kind {
            FaultKind::Outage => return JourneyFate::Lost(Loss::Outage { from, to }),
            FaultKind::Drop => return JourneyFate::Lost(Loss::WireDrop { from, to }),
            _ => {}
        }
    }
    if j.primary_rx().is_some() {
        return JourneyFate::Arrived;
    }
    let corrupt_link = j
        .faults
        .iter()
        .find(|&&(_, k, _, _)| k == FaultKind::Corrupt)
        .map(|&(_, _, from, to)| (from, to));
    for tr in &j.rx {
        match tr.outcome {
            // A corrupted frame dies at the receiver either way: a
            // flipped payload byte fails the checksum, a flipped length
            // byte truncates the parse.
            PathOutcome::CorruptDiscarded | PathOutcome::Truncated => {
                let (from, to) =
                    corrupt_link.unwrap_or((j.tx_host.unwrap_or(0), tr.host.unwrap_or(0)));
                return JourneyFate::Lost(Loss::Corrupt { from, to });
            }
            PathOutcome::RingDropped => {
                // A quota record outranks the generic ring verdict: the
                // channel had room, the tenant's budget did not.
                if let Some(tenant) = quota_tenant {
                    return JourneyFate::Lost(Loss::QuotaExceeded {
                        channel: tr.channel.unwrap_or(0),
                        tenant,
                    });
                }
                // No copy arrived (checked above), so the first
                // ring-dropped copy pairs with the first recorded flag.
                let pressure = ring_pressure
                    .and_then(|v| v.first())
                    .copied()
                    .unwrap_or(false);
                return JourneyFate::Lost(Loss::RingOverflow {
                    channel: tr.channel.unwrap_or(0),
                    pressure,
                });
            }
            PathOutcome::NicDropped => return JourneyFate::Lost(Loss::NicOverflow),
            _ => {}
        }
    }
    JourneyFate::InFlight
}

/// Attributes one retransmit: walk every prior transmission of the
/// resent range on the same connection, latest first, and let the first
/// fate that explains the retransmit name the cause. A transmission
/// that *arrived* but whose delivery (or the ACK carrying the news)
/// post-dates the retransmit is merely late — the walk keeps going, and
/// if no older transmission was genuinely lost the retransmit is
/// attributed to that delay ([`Cause::LateDelivery`]): queueing can
/// hold a frame past the dup-ACK threshold without any fault injected.
fn attribute(
    journeys: &[Journey],
    crashes: &[(Nanos, u16)],
    t: Nanos,
    host: Option<u16>,
    local_port: u16,
    remote_port: u16,
    seq: u32,
) -> Cause {
    let matches_conn = |s: &SegTx| s.local_port == local_port && s.remote_port == remote_port;
    let mut candidates: Vec<&Journey> = journeys
        .iter()
        .filter(|j| {
            let Some(s) = &j.seg else { return false };
            // Strictly earlier: the resend the rexmit itself triggers
            // can share the firing tick, and it must never claim
            // itself.
            if !matches_conn(s) || s.t >= t || !seq_contains(s.seq, s.payload, seq) {
                return false;
            }
            match (host, j.tx_host) {
                (Some(h), Some(jh)) => h == jh,
                _ => true,
            }
        })
        .collect();
    candidates.sort_by_key(|j| std::cmp::Reverse((j.seg.as_ref().unwrap().t, j.frame)));
    let mut late: Option<u64> = None;
    for j in candidates {
        match j.fate {
            JourneyFate::Lost(loss) => {
                return Cause::DataLoss {
                    frame: j.frame,
                    loss,
                };
            }
            JourneyFate::InFlight => {
                return if j.has_fault(FaultKind::Reorder) {
                    Cause::Reorder { frame: j.frame }
                } else {
                    Cause::InFlight { frame: j.frame }
                };
            }
            JourneyFate::Arrived => {
                if j.has_fault(FaultKind::Reorder) {
                    return Cause::Reorder { frame: j.frame };
                }
                let peer = j.rx.first().and_then(|tr| tr.host);
                if let Some(p) = peer {
                    if let Some(&(_, h)) = crashes.iter().find(|&&(ct, h)| h == p && ct <= t) {
                        return Cause::PeerCrash { host: h };
                    }
                }
                // The data got there: look for a lost reverse-direction
                // frame (the ACK) between its arrival and the
                // retransmit, and check whether ANY reverse frame sent
                // after the arrival reached the sender in time to carry
                // the news.
                let arrival = j.arrival().unwrap_or(0);
                let mut ack: Option<(&Journey, Loss)> = None;
                let mut heard = false;
                for o in journeys {
                    let Some(s) = &o.seg else { continue };
                    if s.local_port != remote_port || s.remote_port != local_port {
                        continue;
                    }
                    if s.t < arrival || s.t > t {
                        continue;
                    }
                    match o.fate {
                        JourneyFate::Lost(loss) => {
                            if ack.is_none_or(|(b, _)| b.seg.as_ref().unwrap().t <= s.t) {
                                ack = Some((o, loss));
                            }
                        }
                        JourneyFate::Arrived => {
                            if o.arrival().unwrap_or(Nanos::MAX) <= t {
                                heard = true;
                            }
                        }
                        JourneyFate::InFlight => {}
                    }
                }
                if let Some((a, loss)) = ack {
                    return Cause::AckLoss {
                        data_frame: j.frame,
                        ack_frame: a.frame,
                        loss,
                    };
                }
                if arrival > t || !heard {
                    // The delivery — or every ACK that could report it —
                    // post-dates the retransmit. Delay, not loss: keep
                    // walking in case an older transmission was the real
                    // trigger.
                    late.get_or_insert(j.frame);
                    continue;
                }
                return Cause::Unattributed;
            }
        }
    }
    match late {
        Some(frame) => Cause::LateDelivery { frame },
        None => Cause::Unattributed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PathKind;

    fn rec(time: Nanos, host: u16, frame: Option<u64>, event: Event) -> Record {
        Record {
            time,
            host: Some(host),
            frame,
            event,
        }
    }

    /// A hand-built journal: host 0 sends one data segment (frame 1),
    /// it is dropped by the fault plan, the RTO fires, and the resend
    /// (frame 2) arrives and delivers.
    fn dropped_then_resent() -> Vec<Record> {
        vec![
            rec(
                100,
                0,
                Some(1),
                Event::TcpSegment {
                    dir: Dir::Tx,
                    local_port: 9000,
                    remote_port: 80,
                    remote_ip: [10, 0, 0, 2],
                    seq: 1000,
                    ack: 0,
                    wnd: 8192,
                    flags: crate::SegFlags::default(),
                    payload: 500,
                    wire: 540,
                },
            ),
            rec(
                150,
                0,
                Some(1),
                Event::TxTemplateCheck {
                    channel: 1,
                    ok: true,
                },
            ),
            rec(200, 0, Some(1), Event::NicTx { len: 554 }),
            rec(
                200,
                0,
                Some(1),
                Event::LinkTx {
                    queue: 40,
                    wire: 400,
                },
            ),
            rec(
                200,
                0,
                Some(1),
                Event::FaultInject {
                    kind: FaultKind::Drop,
                    from: 0,
                    to: 1,
                },
            ),
            rec(
                5_000_000,
                0,
                None,
                Event::TcpRexmit {
                    local_port: 9000,
                    remote_port: 80,
                    remote_ip: [10, 0, 0, 2],
                    seq: 1000,
                    bytes: 500,
                    reason: RexmitReason::Rto,
                },
            ),
            rec(
                5_000_000,
                0,
                Some(2),
                Event::TcpSegment {
                    dir: Dir::Tx,
                    local_port: 9000,
                    remote_port: 80,
                    remote_ip: [10, 0, 0, 2],
                    seq: 1000,
                    ack: 0,
                    wnd: 8192,
                    flags: crate::SegFlags::default(),
                    payload: 500,
                    wire: 540,
                },
            ),
            rec(5_000_100, 0, Some(2), Event::NicTx { len: 554 }),
            rec(
                5_000_100,
                0,
                Some(2),
                Event::LinkTx {
                    queue: 0,
                    wire: 400,
                },
            ),
            rec(
                5_000_500,
                1,
                Some(2),
                Event::NicRx {
                    len: 554,
                    accepted: true,
                },
            ),
            rec(
                5_000_600,
                1,
                Some(2),
                Event::DemuxClassify {
                    path: PathKind::FlowTable,
                    filter_instrs: 8,
                    matched: true,
                },
            ),
            rec(
                5_000_700,
                1,
                Some(2),
                Event::RingEnqueue {
                    channel: 3,
                    depth: 1,
                    signal: true,
                },
            ),
            rec(
                5_001_000,
                1,
                None,
                Event::WakeupBatch {
                    channel: 3,
                    frames: 1,
                },
            ),
            rec(
                5_001_200,
                1,
                Some(2),
                Event::TcpSegment {
                    dir: Dir::Rx,
                    local_port: 80,
                    remote_port: 9000,
                    remote_ip: [10, 0, 0, 1],
                    seq: 1000,
                    ack: 0,
                    wnd: 8192,
                    flags: crate::SegFlags::default(),
                    payload: 500,
                    wire: 540,
                },
            ),
            rec(
                5_001_300,
                1,
                Some(2),
                Event::AppDeliver {
                    conn: 7,
                    bytes: 500,
                },
            ),
        ]
    }

    #[test]
    fn drop_is_attributed_to_the_injected_fault() {
        let g = CausalGraph::build(&dropped_then_resent());
        assert_eq!(g.rexmits.len(), 1);
        let a = &g.rexmits[0];
        assert_eq!(a.reason, RexmitReason::Rto);
        assert_eq!(
            a.cause,
            Cause::DataLoss {
                frame: 1,
                loss: Loss::WireDrop { from: 0, to: 1 }
            }
        );
        assert_eq!(g.coverage(), 1.0);
        assert_eq!(g.claims().get(&1), Some(&1));
        // The lost journey's fate is the loss itself.
        assert_eq!(
            g.journey(1).unwrap().fate,
            JourneyFate::Lost(Loss::WireDrop { from: 0, to: 1 })
        );
    }

    #[test]
    fn journey_split_telescopes_exactly() {
        let g = CausalGraph::build(&dropped_then_resent());
        g.check_consistency().unwrap();
        let j = g.journey(2).unwrap();
        assert_eq!(j.fate, JourneyFate::Arrived);
        let split = j.lat_split().unwrap();
        let sum: Nanos = split.iter().map(|c| c.ns).sum();
        // 5_001_300 (deliver) - 5_000_000 (segment build).
        assert_eq!(sum, 1300);
        assert_eq!(j.end_to_end(), Some(1300));
        // tx_build 100, queue 0, wire 400, reorder 0, then rx stages.
        let get = |label: &str| split.iter().find(|c| c.label == label).unwrap().ns;
        assert_eq!(get("tx_build"), 100);
        assert_eq!(get("link_wire"), 400);
        assert_eq!(get("reorder_wait"), 0);
        assert_eq!(get("ring_enqueue") + get("wakeup_batch"), 100 + 300);
        // Queue/service labels: ring residency is a queue, demux is not.
        assert!(split
            .iter()
            .find(|c| c.label == "wakeup_batch")
            .is_some_and(|c| !c.queue));
        assert!(split
            .iter()
            .find(|c| c.label == "link_queue")
            .is_some_and(|c| c.queue));
    }

    #[test]
    fn explain_surfaces_the_cause_chain() {
        let g = CausalGraph::build(&dropped_then_resent());
        let text = g.explain_frame(1);
        assert!(text.contains("injected drop on link 0\u{2192}1"), "{text}");
        assert!(text.contains("triggered rexmit"), "{text}");
        let conn = g.explain_conn(80);
        assert!(conn.contains("reason=rto"), "{conn}");
        assert!(conn.contains("1 retransmits"), "{conn}");
    }

    #[test]
    fn chrome_trace_is_valid_json_with_flow_arrows() {
        let g = CausalGraph::build(&dropped_then_resent());
        let text = g.render_chrome_trace();
        let v = crate::json::parse(&text).expect("chrome trace parses");
        let events = v.get("traceEvents").and_then(|e| e.items()).unwrap();
        let phases: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("ph").and_then(|p| p.as_str()))
            .collect();
        assert!(phases.contains(&"X"));
        assert!(phases.contains(&"s"), "flow start for the wire hop");
        assert!(phases.contains(&"f"), "flow end for the wire hop");
        assert!(phases.contains(&"i"), "fault + rexmit instants");
        assert!(phases.contains(&"M"), "process metadata");
    }

    #[test]
    fn seq_matching_wraps() {
        assert!(seq_contains(u32::MAX - 10, 20, 3));
        assert!(!seq_contains(u32::MAX - 10, 5, 3));
        assert!(!seq_contains(100, 0, 100), "zero-length never contains");
    }
}
