//! The critical-path latency profiler: joins a journal by frame id into
//! per-frame [`PathTrace`]s over the receive-path stage taxonomy
//! (`nic_rx → demux_classify → ring_enqueue → wakeup_batch → tcp_segment
//! → app_deliver`), decomposes each delivered frame's end-to-end latency
//! into per-stage components, and aggregates per-stage and per-channel
//! histograms plus a folded flamegraph-style text output.
//!
//! This is the layer that turns the raw journal into the paper's Table
//! 2/3-style accounting: *where* does a received packet's time go —
//! demultiplexing, buffering in the ring, waiting for the wakeup, or
//! protocol processing?
//!
//! # Join discipline
//!
//! The join consumes the record slice in **emission order** (not
//! [`render`](crate::render)'s sorted display order). Two structures
//! drive it: a per-frame queue of open traces (so a fault-duplicated
//! frame id yields two traces that claim their own events in arrival
//! order), and a per-`(host, channel)` FIFO of ring-resident traces —
//! `wakeup_batch` events carry no frame id, so batch consumption is
//! attributed in ring order, exactly as the library drains the ring.
//!
//! Frames that leave the path early close their trace with a non-
//! [`Delivered`](PathOutcome::Delivered) outcome instead of panicking or
//! mis-joining: NIC staging overflow, an unmatched (kernel-default)
//! classify, a ring drop, or a checksum-caught corruption. A frame whose
//! events simply stop (still in a ring at `journal_stop`, or wire-dropped
//! mid-path) is [`Truncated`](PathOutcome::Truncated). Known limits: a
//! wire-dropped frame that never reached the receiver's NIC produces no
//! trace at all (the taxonomy starts at `nic_rx`), and frames the
//! monolithic-organization demux routes to the kernel default close at
//! [`KernelDefault`](PathOutcome::KernelDefault) — their later in-kernel
//! protocol events are not attributed.

use std::collections::{BTreeMap, HashMap, VecDeque};

use crate::metrics::Histogram;
use crate::{Dir, Event, Nanos, PathKind, Record};

/// The receive-path stage taxonomy, in path order. Each stage's component
/// is the time from the previous *present* stage's timestamp to its own,
/// so the components of one trace telescope exactly to its end-to-end
/// latency. `NicRx` anchors the path and never carries a component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum Stage {
    /// Frame accepted into NIC receive staging (the path anchor).
    NicRx,
    /// Software demultiplex classified the frame to a channel.
    Demux,
    /// Frame placed into the channel's receive ring.
    Ring,
    /// A library wakeup consumed the frame from the ring (attributed in
    /// ring FIFO order — the event itself carries no frame id).
    Wakeup,
    /// The protocol library processed the frame's TCP segment.
    Tcp,
    /// Received bytes crossed the final boundary into the application.
    Deliver,
}

/// Number of stages in [`Stage`].
pub const N_STAGES: usize = 6;

impl Stage {
    /// Every stage, in path order.
    pub const ALL: [Stage; N_STAGES] = [
        Stage::NicRx,
        Stage::Demux,
        Stage::Ring,
        Stage::Wakeup,
        Stage::Tcp,
        Stage::Deliver,
    ];

    /// The stage's journal keyword.
    pub fn label(self) -> &'static str {
        match self {
            Stage::NicRx => "nic_rx",
            Stage::Demux => "demux_classify",
            Stage::Ring => "ring_enqueue",
            Stage::Wakeup => "wakeup_batch",
            Stage::Tcp => "tcp_segment",
            Stage::Deliver => "app_deliver",
        }
    }
}

/// How a frame's path through the receive stages ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum PathOutcome {
    /// The full path: bytes reached the application.
    Delivered,
    /// Protocol-processed to completion but nothing crossed into the
    /// application (pure ACK, window update, retransmitted duplicate).
    Processed,
    /// The demux matched no channel binding; the frame took the
    /// kernel-default path and left the profiled taxonomy.
    KernelDefault,
    /// Dropped at NIC staging overflow.
    NicDropped,
    /// Dropped at ring placement (ring full or slot too small).
    RingDropped,
    /// A checksum caught in-flight corruption; the frame was discarded.
    CorruptDiscarded,
    /// The frame's events stop mid-path (still in a ring at journal
    /// stop, or lost where no discard event marks it).
    Truncated,
}

/// Number of variants in [`PathOutcome`].
pub const N_OUTCOMES: usize = 7;

impl PathOutcome {
    /// Every outcome, in declaration order.
    pub const ALL: [PathOutcome; N_OUTCOMES] = [
        PathOutcome::Delivered,
        PathOutcome::Processed,
        PathOutcome::KernelDefault,
        PathOutcome::NicDropped,
        PathOutcome::RingDropped,
        PathOutcome::CorruptDiscarded,
        PathOutcome::Truncated,
    ];

    /// The outcome's report name.
    pub fn label(self) -> &'static str {
        match self {
            PathOutcome::Delivered => "delivered",
            PathOutcome::Processed => "processed",
            PathOutcome::KernelDefault => "kernel_default",
            PathOutcome::NicDropped => "nic_dropped",
            PathOutcome::RingDropped => "ring_dropped",
            PathOutcome::CorruptDiscarded => "corrupt_discarded",
            PathOutcome::Truncated => "truncated",
        }
    }
}

/// One frame's reconstructed journey through the receive-path stages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathTrace {
    /// The frame id joined on.
    pub frame: u64,
    /// Receiving host (from the `nic_rx` record).
    pub host: Option<u16>,
    /// Channel the frame was enqueued to, once known.
    pub channel: Option<u32>,
    /// Demux tier that classified it, once known.
    pub path: Option<PathKind>,
    /// Whether ring placement posted a semaphore (`false` = batched
    /// behind a pending notification), once known.
    pub signaled: Option<bool>,
    /// Scan-equivalent filter instruction count charged at classify.
    pub filter_instrs: u32,
    /// How the path ended.
    pub outcome: PathOutcome,
    /// Per-stage timestamps, indexed by `Stage as usize`; `None` where
    /// the frame never reached (or an event wasn't attributable to) that
    /// stage.
    pub t: [Option<Nanos>; N_STAGES],
}

impl PathTrace {
    fn new(frame: u64, host: Option<u16>) -> PathTrace {
        PathTrace {
            frame,
            host,
            channel: None,
            path: None,
            signaled: None,
            filter_instrs: 0,
            outcome: PathOutcome::Truncated,
            t: [None; N_STAGES],
        }
    }

    /// Timestamp of `stage`, if the frame reached it.
    pub fn stage_time(&self, stage: Stage) -> Option<Nanos> {
        self.t[stage as usize]
    }

    /// The present stages with their timestamps, in path order.
    fn present(&self) -> impl Iterator<Item = (Stage, Nanos)> + '_ {
        Stage::ALL
            .iter()
            .filter_map(|&s| self.t[s as usize].map(|t| (s, t)))
    }

    /// End-to-end latency: last present stage minus first present stage.
    /// `None` when fewer than one stage is present.
    pub fn end_to_end(&self) -> Option<Nanos> {
        let first = self.present().next()?;
        let last = self.present().last()?;
        Some(last.1 - first.1)
    }

    /// Per-stage latency components: for each consecutive pair of present
    /// stages, the delta attributed to the later stage. The components
    /// telescope: their sum equals [`end_to_end`](Self::end_to_end)
    /// exactly (deterministic sim time, no rounding).
    pub fn components(&self) -> Vec<(Stage, Nanos)> {
        let mut out = Vec::new();
        let mut prev: Option<Nanos> = None;
        for (s, t) in self.present() {
            if let Some(p) = prev {
                out.push((s, t.saturating_sub(p)));
            }
            prev = Some(t);
        }
        out
    }

    /// Whether the frame completed the full path into the application.
    pub fn is_complete(&self) -> bool {
        self.outcome == PathOutcome::Delivered
    }
}

/// Per-channel profile roll-up, keyed by `(host, channel id)`.
#[derive(Debug, Clone, Default)]
pub struct ChannelProfile {
    /// Delivered frames attributed to the channel.
    pub frames: u64,
    /// End-to-end latency distribution of those frames.
    pub end_to_end: Histogram,
    /// Summed per-stage component nanoseconds, indexed by `Stage as usize`.
    pub stage_ns: [u128; N_STAGES],
}

/// The aggregated profile: every reconstructed [`PathTrace`] plus stage,
/// channel, and outcome roll-ups over the delivered frames.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Every reconstructed trace, in `nic_rx` arrival order.
    pub traces: Vec<PathTrace>,
    /// Per-stage component distributions over delivered frames. The
    /// `NicRx` slot stays empty (the anchor carries no component).
    pub stages: [Histogram; N_STAGES],
    /// End-to-end latency distribution over delivered frames.
    pub end_to_end: Histogram,
    /// Per-`(host, channel)` roll-ups over delivered frames.
    pub channels: BTreeMap<(u16, u32), ChannelProfile>,
    outcomes: [u64; N_OUTCOMES],
}

/// Index of the first trace in `open[frame]` that hasn't reached `stage`.
fn find_open(
    open: &HashMap<u64, VecDeque<usize>>,
    traces: &[PathTrace],
    frame: u64,
    stage: Stage,
) -> Option<usize> {
    open.get(&frame)?
        .iter()
        .copied()
        .find(|&i| traces[i].t[stage as usize].is_none())
}

fn close(open: &mut HashMap<u64, VecDeque<usize>>, frame: u64, idx: usize) {
    if let Some(q) = open.get_mut(&frame) {
        q.retain(|&i| i != idx);
        if q.is_empty() {
            open.remove(&frame);
        }
    }
}

impl Profile {
    /// Joins a journal (in emission order) into per-frame traces and
    /// aggregates them. Never panics on incomplete lifecycles: faulted,
    /// dropped, and duplicated frames close with their own outcomes.
    pub fn build(records: &[Record]) -> Profile {
        let mut traces: Vec<PathTrace> = Vec::new();
        // Open traces per frame id, in arrival order — duplicates queue.
        let mut open: HashMap<u64, VecDeque<usize>> = HashMap::new();
        // Ring-resident traces per (host, channel): wakeup_batch carries
        // no frame id, so consumption is attributed FIFO, like the ring.
        let mut ring: HashMap<(u16, u32), VecDeque<usize>> = HashMap::new();

        for rec in records {
            match &rec.event {
                Event::NicRx { accepted, .. } => {
                    let Some(f) = rec.frame else { continue };
                    let mut tr = PathTrace::new(f, rec.host);
                    tr.t[Stage::NicRx as usize] = Some(rec.time);
                    let idx = traces.len();
                    if *accepted {
                        traces.push(tr);
                        open.entry(f).or_default().push_back(idx);
                    } else {
                        tr.outcome = PathOutcome::NicDropped;
                        traces.push(tr);
                    }
                }
                Event::DemuxClassify {
                    path,
                    filter_instrs,
                    matched,
                } => {
                    let Some(f) = rec.frame else { continue };
                    let Some(idx) = find_open(&open, &traces, f, Stage::Demux) else {
                        continue;
                    };
                    let tr = &mut traces[idx];
                    tr.t[Stage::Demux as usize] = Some(rec.time);
                    tr.path = Some(*path);
                    tr.filter_instrs = *filter_instrs;
                    if !*matched {
                        tr.outcome = PathOutcome::KernelDefault;
                        close(&mut open, f, idx);
                    }
                }
                Event::RingEnqueue {
                    channel, signal, ..
                } => {
                    let Some(f) = rec.frame else { continue };
                    let Some(idx) = find_open(&open, &traces, f, Stage::Ring) else {
                        continue;
                    };
                    let tr = &mut traces[idx];
                    tr.t[Stage::Ring as usize] = Some(rec.time);
                    tr.channel = Some(*channel);
                    tr.signaled = Some(*signal);
                    if let Some(h) = rec.host.or(tr.host) {
                        ring.entry((h, *channel)).or_default().push_back(idx);
                    }
                }
                // A tenant-quota drop dies at the same stage as a ring
                // overflow; the causal layer tells them apart by the
                // quota record's tenant id, so the profiler's stage
                // taxonomy stays at seven outcomes.
                Event::RingDrop { .. } | Event::QuotaDrop { .. } => {
                    let Some(f) = rec.frame else { continue };
                    let Some(idx) = find_open(&open, &traces, f, Stage::Ring) else {
                        continue;
                    };
                    traces[idx].outcome = PathOutcome::RingDropped;
                    close(&mut open, f, idx);
                }
                Event::WakeupBatch { channel, frames } => {
                    let Some(h) = rec.host else { continue };
                    let Some(q) = ring.get_mut(&(h, *channel)) else {
                        continue;
                    };
                    for _ in 0..*frames {
                        let Some(idx) = q.pop_front() else { break };
                        let slot = &mut traces[idx].t[Stage::Wakeup as usize];
                        if slot.is_none() {
                            *slot = Some(rec.time);
                        }
                    }
                }
                Event::TcpSegment { dir: Dir::Rx, .. } => {
                    let Some(f) = rec.frame else { continue };
                    let Some(idx) = find_open(&open, &traces, f, Stage::Tcp) else {
                        continue;
                    };
                    traces[idx].t[Stage::Tcp as usize] = Some(rec.time);
                }
                Event::FrameCorruptDiscard { .. } => {
                    let Some(f) = rec.frame else { continue };
                    let Some(&idx) = open.get(&f).and_then(VecDeque::front) else {
                        continue;
                    };
                    traces[idx].outcome = PathOutcome::CorruptDiscarded;
                    close(&mut open, f, idx);
                }
                Event::AppDeliver { .. } => {
                    let Some(f) = rec.frame else { continue };
                    let Some(idx) = find_open(&open, &traces, f, Stage::Deliver) else {
                        continue;
                    };
                    let tr = &mut traces[idx];
                    tr.t[Stage::Deliver as usize] = Some(rec.time);
                    tr.outcome = PathOutcome::Delivered;
                    close(&mut open, f, idx);
                }
                _ => {}
            }
        }

        // Whatever is still open ran off the end of the journal: fully
        // protocol-processed frames (pure ACKs and the like) are
        // Processed, the rest are Truncated.
        for q in open.into_values() {
            for idx in q {
                let tr = &mut traces[idx];
                tr.outcome = if tr.t[Stage::Tcp as usize].is_some() {
                    PathOutcome::Processed
                } else {
                    PathOutcome::Truncated
                };
            }
        }

        // Aggregate the delivered traces.
        let mut stages: [Histogram; N_STAGES] = Default::default();
        let mut end_to_end = Histogram::new();
        let mut channels: BTreeMap<(u16, u32), ChannelProfile> = BTreeMap::new();
        let mut outcomes = [0u64; N_OUTCOMES];
        for tr in &traces {
            outcomes[tr.outcome as usize] += 1;
            if !tr.is_complete() {
                continue;
            }
            let e2e = tr.end_to_end().unwrap_or(0);
            end_to_end.record(e2e);
            let ch = tr
                .host
                .zip(tr.channel)
                .map(|key| channels.entry(key).or_default());
            if let Some(ch) = ch {
                ch.frames += 1;
                ch.end_to_end.record(e2e);
            }
            for (s, dt) in tr.components() {
                stages[s as usize].record(dt);
                if let Some(key) = tr.host.zip(tr.channel) {
                    channels.get_mut(&key).unwrap().stage_ns[s as usize] += dt as u128;
                }
            }
        }

        Profile {
            traces,
            stages,
            end_to_end,
            channels,
            outcomes,
        }
    }

    /// How many traces ended with `outcome`.
    pub fn outcome_count(&self, outcome: PathOutcome) -> u64 {
        self.outcomes[outcome as usize]
    }

    /// Delivered-trace count (the population behind the stage roll-ups).
    pub fn delivered(&self) -> u64 {
        self.outcome_count(PathOutcome::Delivered)
    }

    /// Verifies the profile's internal invariants and returns an error
    /// describing the first violation: per-trace stage timestamps must be
    /// nondecreasing in path order, and each trace's components must sum
    /// exactly to its end-to-end latency (deterministic sim time — no
    /// tolerance).
    pub fn check_consistency(&self) -> Result<(), String> {
        for tr in &self.traces {
            let mut prev: Option<(Stage, Nanos)> = None;
            for (s, t) in tr.present() {
                if let Some((ps, pt)) = prev {
                    if t < pt {
                        return Err(format!(
                            "frame {}: stage {} at {} precedes {} at {}",
                            tr.frame,
                            s.label(),
                            t,
                            ps.label(),
                            pt
                        ));
                    }
                }
                prev = Some((s, t));
            }
            if let Some(e2e) = tr.end_to_end() {
                let sum: Nanos = tr.components().iter().map(|&(_, dt)| dt).sum();
                if sum != e2e {
                    return Err(format!(
                        "frame {}: components sum {} != end-to-end {}",
                        tr.frame, sum, e2e
                    ));
                }
            }
            if tr.is_complete()
                && (tr.t[Stage::NicRx as usize].is_none()
                    || tr.t[Stage::Deliver as usize].is_none())
            {
                return Err(format!(
                    "frame {}: delivered without nic_rx/app_deliver stamps",
                    tr.frame
                ));
            }
        }
        Ok(())
    }

    /// Folded flamegraph-style text: one `rx;<stage>[;<qualifier>] <ns>`
    /// line per distinct stack over the delivered frames, weights in
    /// summed component nanoseconds, sorted by stack. The demux stage is
    /// split by tier (`flow`/`scan`/`hw`) and the wakeup stage by
    /// `signaled`/`batched` — collapse with any flamegraph tool.
    pub fn folded(&self) -> String {
        let mut stacks: BTreeMap<String, u128> = BTreeMap::new();
        for tr in &self.traces {
            if !tr.is_complete() {
                continue;
            }
            for (s, dt) in tr.components() {
                let stack = match s {
                    Stage::Demux => format!(
                        "rx;{};{}",
                        s.label(),
                        tr.path.map_or("unknown", PathKind::label)
                    ),
                    Stage::Wakeup => format!(
                        "rx;{};{}",
                        s.label(),
                        match tr.signaled {
                            Some(true) => "signaled",
                            Some(false) => "batched",
                            None => "unknown",
                        }
                    ),
                    _ => format!("rx;{}", s.label()),
                };
                *stacks.entry(stack).or_default() += dt as u128;
            }
        }
        let mut out = String::new();
        for (stack, ns) in stacks {
            out.push_str(&format!("{stack} {ns}\n"));
        }
        out
    }

    /// Serializes the profile as JSON (hand-rolled; workspace is
    /// dependency-free): outcome counts, per-stage component summaries
    /// over delivered frames, the end-to-end distribution, and per-channel
    /// roll-ups.
    pub fn to_json(&self) -> String {
        fn hist_json(h: &Histogram) -> String {
            format!(
                "{{\"count\": {}, \"mean\": {:.1}, \"p50\": {}, \"p99\": {}, \"min\": {}, \"max\": {}}}",
                h.count(),
                h.mean().unwrap_or(0.0),
                h.quantile(0.5).unwrap_or(0),
                h.quantile(0.99).unwrap_or(0),
                h.min().unwrap_or(0),
                h.max().unwrap_or(0),
            )
        }
        let mut out = String::from("{\n  \"outcomes\": {");
        for (i, &o) in PathOutcome::ALL.iter().enumerate() {
            out.push_str(&format!(
                "{}\n    \"{}\": {}",
                if i > 0 { "," } else { "" },
                o.label(),
                self.outcome_count(o)
            ));
        }
        out.push_str("\n  },\n  \"stages\": {");
        let mut first = true;
        for &s in Stage::ALL.iter().skip(1) {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    \"{}\": {}",
                s.label(),
                hist_json(&self.stages[s as usize])
            ));
        }
        out.push_str(&format!(
            "\n  }},\n  \"end_to_end\": {},\n  \"channels\": [",
            hist_json(&self.end_to_end)
        ));
        for (i, ((host, id), ch)) in self.channels.iter().enumerate() {
            out.push_str(&format!(
                "{}\n    {{\"host\": {host}, \"channel\": {id}, \"frames\": {}, \"end_to_end\": {}}}",
                if i > 0 { "," } else { "" },
                ch.frames,
                hist_json(&ch.end_to_end),
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(time: Nanos, host: u16, frame: Option<u64>, event: Event) -> Record {
        Record {
            time,
            host: Some(host),
            frame,
            event,
        }
    }

    fn nic_rx(t: Nanos, f: u64) -> Record {
        rec(
            t,
            1,
            Some(f),
            Event::NicRx {
                len: 64,
                accepted: true,
            },
        )
    }

    fn classify(t: Nanos, f: u64) -> Record {
        rec(
            t,
            1,
            Some(f),
            Event::DemuxClassify {
                path: PathKind::FlowTable,
                filter_instrs: 8,
                matched: true,
            },
        )
    }

    fn enqueue(t: Nanos, f: u64, signal: bool) -> Record {
        rec(
            t,
            1,
            Some(f),
            Event::RingEnqueue {
                channel: 3,
                depth: 1,
                signal,
            },
        )
    }

    fn wakeup(t: Nanos, frames: u32) -> Record {
        rec(t, 1, None, Event::WakeupBatch { channel: 3, frames })
    }

    fn tcp_rx(t: Nanos, f: u64) -> Record {
        rec(
            t,
            1,
            Some(f),
            Event::TcpSegment {
                dir: Dir::Rx,
                local_port: 80,
                remote_port: 2000,
                remote_ip: [10, 0, 0, 9],
                seq: 0,
                ack: 0,
                wnd: 8192,
                flags: crate::SegFlags::default(),
                payload: 10,
                wire: 50,
            },
        )
    }

    fn deliver(t: Nanos, f: u64) -> Record {
        rec(t, 1, Some(f), Event::AppDeliver { conn: 9, bytes: 10 })
    }

    #[test]
    fn full_path_decomposes_exactly() {
        let recs = vec![
            nic_rx(100, 0),
            classify(130, 0),
            enqueue(150, 0, true),
            wakeup(190, 1),
            tcp_rx(240, 0),
            deliver(300, 0),
        ];
        let p = Profile::build(&recs);
        assert_eq!(p.traces.len(), 1);
        let tr = &p.traces[0];
        assert!(tr.is_complete());
        assert_eq!(tr.end_to_end(), Some(200));
        assert_eq!(
            tr.components(),
            vec![
                (Stage::Demux, 30),
                (Stage::Ring, 20),
                (Stage::Wakeup, 40),
                (Stage::Tcp, 50),
                (Stage::Deliver, 60),
            ]
        );
        assert_eq!(tr.channel, Some(3));
        assert_eq!(tr.signaled, Some(true));
        assert_eq!(p.delivered(), 1);
        p.check_consistency().unwrap();
        assert_eq!(p.end_to_end.mean(), Some(200.0));
        assert_eq!(p.channels[&(1, 3)].frames, 1);
        assert_eq!(p.channels[&(1, 3)].stage_ns[Stage::Tcp as usize], 50);
        let folded = p.folded();
        assert!(folded.contains("rx;demux_classify;flow 30"));
        assert!(folded.contains("rx;wakeup_batch;signaled 40"));
        assert!(folded.contains("rx;app_deliver 60"));
    }

    #[test]
    fn duplicated_frame_ids_join_fifo_without_cross_talk() {
        // The fault plan delivered frame 5 twice: two traces, and the
        // batch of two wakeups pairs with them in ring order.
        let recs = vec![
            nic_rx(100, 5),
            classify(110, 5),
            enqueue(120, 5, true),
            nic_rx(130, 5),
            classify(140, 5),
            enqueue(150, 5, false),
            wakeup(200, 2),
            tcp_rx(210, 5),
            tcp_rx(220, 5),
            deliver(230, 5),
            deliver(240, 5),
        ];
        let p = Profile::build(&recs);
        assert_eq!(p.traces.len(), 2);
        assert!(p.traces.iter().all(|t| t.is_complete()));
        // First arrival claims the first classify/enqueue/tcp/deliver.
        assert_eq!(p.traces[0].stage_time(Stage::Ring), Some(120));
        assert_eq!(p.traces[1].stage_time(Stage::Ring), Some(150));
        assert_eq!(p.traces[0].stage_time(Stage::Deliver), Some(230));
        assert_eq!(p.traces[1].stage_time(Stage::Deliver), Some(240));
        assert_eq!(p.traces[0].signaled, Some(true));
        assert_eq!(p.traces[1].signaled, Some(false));
        p.check_consistency().unwrap();
    }

    #[test]
    fn early_exits_close_with_their_outcomes() {
        let recs = vec![
            // NIC staging overflow.
            rec(
                10,
                1,
                Some(0),
                Event::NicRx {
                    len: 64,
                    accepted: false,
                },
            ),
            // Kernel-default classify.
            nic_rx(20, 1),
            rec(
                25,
                1,
                Some(1),
                Event::DemuxClassify {
                    path: PathKind::FilterScan,
                    filter_instrs: 90,
                    matched: false,
                },
            ),
            // Ring drop.
            nic_rx(30, 2),
            classify(35, 2),
            rec(
                40,
                1,
                Some(2),
                Event::RingDrop {
                    channel: 3,
                    pressure: false,
                },
            ),
            // Corrupt discard after wakeup.
            nic_rx(50, 3),
            classify(55, 3),
            enqueue(60, 3, true),
            wakeup(70, 1),
            rec(80, 1, Some(3), Event::FrameCorruptDiscard { len: 64 }),
            // Truncated: journal stops while in the ring.
            nic_rx(90, 4),
            classify(95, 4),
            enqueue(99, 4, true),
        ];
        let p = Profile::build(&recs);
        assert_eq!(p.traces.len(), 5);
        assert_eq!(p.outcome_count(PathOutcome::NicDropped), 1);
        assert_eq!(p.outcome_count(PathOutcome::KernelDefault), 1);
        assert_eq!(p.outcome_count(PathOutcome::RingDropped), 1);
        assert_eq!(p.outcome_count(PathOutcome::CorruptDiscarded), 1);
        assert_eq!(p.outcome_count(PathOutcome::Truncated), 1);
        assert_eq!(p.delivered(), 0);
        // The corrupt-discarded trace still carries its partial path.
        let corrupt = p
            .traces
            .iter()
            .find(|t| t.outcome == PathOutcome::CorruptDiscarded)
            .unwrap();
        assert_eq!(corrupt.stage_time(Stage::Wakeup), Some(70));
        assert_eq!(corrupt.stage_time(Stage::Tcp), None);
        p.check_consistency().unwrap();
    }

    #[test]
    fn processed_frames_without_delivery_are_not_truncated() {
        // A pure ACK: full protocol processing, nothing for the app.
        let recs = vec![
            nic_rx(10, 0),
            classify(20, 0),
            enqueue(30, 0, true),
            wakeup(40, 1),
            tcp_rx(50, 0),
        ];
        let p = Profile::build(&recs);
        assert_eq!(p.outcome_count(PathOutcome::Processed), 1);
        assert_eq!(p.delivered(), 0);
        assert_eq!(p.traces[0].end_to_end(), Some(40));
        p.check_consistency().unwrap();
    }

    #[test]
    fn profile_json_is_shaped() {
        let recs = vec![
            nic_rx(100, 0),
            classify(130, 0),
            enqueue(150, 0, true),
            wakeup(190, 1),
            tcp_rx(240, 0),
            deliver(300, 0),
        ];
        let p = Profile::build(&recs);
        let j = p.to_json();
        assert!(j.contains("\"delivered\": 1"));
        assert!(j.contains("\"demux_classify\""));
        assert!(j.contains("\"end_to_end\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }
}
