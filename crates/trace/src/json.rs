//! A minimal JSON reader (the workspace is dependency-free by design).
//!
//! Every exporter in the workspace hand-rolls its JSON output; this is
//! the matching input side, so tests can *parse* what the exporters
//! wrote and compare structure instead of grepping substrings — schema
//! drift then fails CI as a field mismatch, not a fuzzy string miss.
//! `repro-tables` also uses it to fold the committed `BENCH_*.json`
//! artifacts into the consolidated summary.
//!
//! Numbers are kept as `f64` (every artifact value fits losslessly:
//! counters stay far below 2^53) and object keys keep their file order.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, keys in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object (None on non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number payload as u64 (rounded), if this is a number.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().map(|n| n.round() as u64)
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The bool payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn items(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn entries(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Parses one JSON document. Trailing whitespace is allowed; trailing
/// garbage is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let b = text.as_bytes();
    let mut pos = 0;
    let v = value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => Ok(Value::Str(string(b, pos)?)),
        Some(b't') => lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => lit(b, pos, "null", Value::Null),
        Some(_) => number(b, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn lit(b: &[u8], pos: &mut usize, word: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        // Surrogate pairs don't appear in our artifacts;
                        // map unpaired surrogates to the replacement char.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            c => {
                // Multi-byte UTF-8 passes through untouched.
                let ch_len = match c {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let s = std::str::from_utf8(&b[*pos..*pos + ch_len])
                    .map_err(|_| format!("bad utf8 at byte {}", *pos))?;
                out.push_str(s);
                *pos += ch_len;
            }
        }
    }
    Err("unterminated string".into())
}

fn array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(out));
    }
    loop {
        out.push(value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(out));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(out));
    }
    loop {
        skip_ws(b, pos);
        let k = string(b, pos)?;
        expect(b, pos, b':')?;
        let v = value(b, pos)?;
        out.push((k, v));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(out));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let v = parse(r#"{"a": 1, "b": [true, null, -2.5e1], "c": "x\ny"}"#).unwrap();
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
        let b = v.get("b").and_then(Value::items).unwrap();
        assert_eq!(b[0].as_bool(), Some(true));
        assert_eq!(b[1], Value::Null);
        assert_eq!(b[2].as_f64(), Some(-25.0));
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x\ny"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} x").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn keys_keep_source_order() {
        let v = parse(r#"{"z": 0, "a": 1}"#).unwrap();
        let keys: Vec<_> = v
            .entries()
            .unwrap()
            .iter()
            .map(|(k, _)| k.clone())
            .collect();
        assert_eq!(keys, ["z", "a"]);
    }

    #[test]
    fn round_trips_the_journal_exporter() {
        let recs = vec![crate::Record {
            time: 10,
            host: Some(1),
            frame: Some(4),
            event: crate::Event::DemuxClassify {
                path: crate::PathKind::FlowTable,
                filter_instrs: 8,
                matched: true,
            },
        }];
        let v = parse(&crate::render_json(&recs)).unwrap();
        let items = v.items().unwrap();
        assert_eq!(items.len(), 1);
        assert_eq!(
            items[0].get("event").and_then(Value::as_str),
            Some("demux_classify")
        );
        assert_eq!(items[0].get("instrs").and_then(Value::as_u64), Some(8));
        assert_eq!(items[0].get("matched").and_then(Value::as_bool), Some(true));
    }
}
