//! The typed metrics registry: counters, gauges, and bounded log-linear
//! histograms keyed by enums, plus per-connection and per-channel scopes
//! and point-in-time [`Snapshot`]s for windowed rate telemetry.
//!
//! Replaces the stringly `Trace` that `core::world` carried: a counter
//! bump is now an array index instead of a `BTreeMap<&str, _>` probe, a
//! typo is a compile error instead of a silently fresh counter, and the
//! scattered per-subsystem stats structs (`TcpStats`, the kernel's
//! per-channel counters) are absorbed into [`ConnScope`]s at connection
//! teardown so post-run reports see one registry.

use std::collections::BTreeMap;
use std::fmt;

use crate::Nanos;

macro_rules! metric_enum {
    ($(#[$meta:meta])* $name:ident { $($(#[$vmeta:meta])* $variant:ident => $label:literal,)* }) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
        #[repr(usize)]
        pub enum $name {
            $($(#[$vmeta])* $variant,)*
        }

        impl $name {
            /// Every variant, in declaration order (the storage order).
            pub const ALL: &'static [$name] = &[$($name::$variant,)*];

            /// The metric's stable report name.
            pub fn name(self) -> &'static str {
                match self {
                    $($name::$variant => $label,)*
                }
            }
        }
    };
}

metric_enum! {
    /// Whole-world event counters (the former string keys, verbatim).
    Ctr {
        /// Application processes killed by the fault plan (or by tests).
        AppCrashes => "app_crashes",
        /// Deliveries batched behind a pending channel notification.
        ChBatched => "ch_batched",
        /// Frames delivered into connection channels.
        ChDeliveries => "ch_deliveries",
        /// Channel deliveries decided by the exact-match flow table.
        ChFlowHits => "ch_flow_hits",
        /// Channel deliveries decided by the wildcard 3-tuple listen table.
        ChListenHits => "ch_listen_hits",
        /// Frames dropped because the owning tenant's aggregate ring-slot
        /// quota was exhausted (the channel itself still had room).
        ChQuotaDrops => "ch_quota_drops",
        /// Frames dropped because a channel ring was full or slots too small.
        ChRingDrops => "ch_ring_drops",
        /// Channel deliveries decided by the linear filter scan.
        ChScanFallbacks => "ch_scan_fallbacks",
        /// Connections that closed normally.
        ConnectionsClosed => "connections_closed",
        /// Connections that completed establishment.
        ConnectionsEstablished => "connections_established",
        /// Connections handed to the registry by an exiting application.
        ConnectionsInherited => "connections_inherited",
        /// Connections torn down by RST.
        ConnectionsReset => "connections_reset",
        /// Frames whose bytes the fault plan flipped in flight.
        FaultCorrupts => "fault_corrupts",
        /// Frames the fault plan silently dropped.
        FaultDrops => "fault_drops",
        /// Frames the fault plan delivered twice.
        FaultDups => "fault_dups",
        /// Frames dropped inside a scheduled link outage window.
        FaultOutageDrops => "fault_outage_drops",
        /// Frames the fault plan delayed past later traffic.
        FaultReorders => "fault_reorders",
        /// Corrupted frames caught by a checksum and discarded.
        FrameCorruptDiscards => "frame_corrupt_discards",
        /// Frames parked while a channel finalization was in flight.
        FramesParked => "frames_parked",
        /// Frames received from the wire (pre-NIC-staging).
        FramesReceived => "frames_received",
        /// Frames put on the wire.
        FramesSent => "frames_sent",
        /// Handshakes that failed (timeout or RST).
        HandshakeFailures => "handshake_failures",
        /// ICMP parse failures.
        IcmpBad => "icmp_bad",
        /// ICMP destination-unreachable errors received.
        IcmpDestUnreachableReceived => "icmp_dest_unreachable_received",
        /// Echo replies we generated.
        IcmpEchoReplies => "icmp_echo_replies",
        /// Echo replies to our own pings.
        IcmpEchoReplyReceived => "icmp_echo_reply_received",
        /// Other ICMP traffic.
        IcmpOther => "icmp_other",
        /// IP datagrams that failed validation.
        IpBad => "ip_bad",
        /// Fragments held for reassembly.
        IpFragmentsHeld => "ip_fragments_held",
        /// IP datagrams addressed elsewhere.
        IpNotForUs => "ip_not_for_us",
        /// Complete datagrams for protocols we don't run.
        IpUnknownProto => "ip_unknown_proto",
        /// Non-TCP frames that reached the library input path.
        LibNonTcp => "lib_non_tcp",
        /// Handshake completions whose listener had already vanished;
        /// the channel is reclaimed and the peer reset.
        ListenerVanished => "listener_vanished",
        /// Violations flagged by the attached conformance monitor
        /// (mirrored from [`crate::stream_stats`] by the world's sync).
        MonitorViolations => "monitor_violations",
        /// Frames dropped at NIC staging overflow.
        NicDrops => "nic_drops",
        /// Resources (channels, ports, BQIs, handshakes) reclaimed by a
        /// trusted layer on behalf of a dead application.
        ResourceReclaims => "resource_reclaims",
        /// TCP segments discarded for bad checksums.
        TcpBadChecksum => "tcp_bad_checksum",
        /// TCP segments too short to parse.
        TcpMalformed => "tcp_malformed",
        /// Data bytes TCP retransmitted (RTO fires and fast retransmits),
        /// harvested live from the connection blocks for rate windows.
        TcpRexmitBytes => "tcp_rexmit_bytes",
        /// Retransmitted segments (RTO fires and fast retransmits).
        TcpRexmitSegs => "tcp_rexmit_segs",
        /// RTT estimator samples taken across all connections.
        TcpRttSamples => "tcp_rtt_samples",
        /// Transmissions rejected because the tenant's per-window transmit
        /// credit was exhausted.
        TxQuotaRejections => "tx_quota_rejections",
        /// Transmissions rejected by the template check.
        TxTemplateRejections => "tx_template_rejections",
        /// UDP datagrams that failed validation.
        UdpBad => "udp_bad",
        /// UDP datagrams delivered to a bound port.
        UdpDelivered => "udp_delivered",
        /// UDP datagrams to unbound ports (ICMP unreachable generated).
        UdpUnreachable => "udp_unreachable",
        /// Frames with an ethertype nobody handles.
        UnknownEthertype => "unknown_ethertype",
    }
}

metric_enum! {
    /// Instantaneous levels.
    Gauge {
        /// Established connections currently alive.
        ActiveConnections => "active_connections",
        /// Live exact-match flow-table entries across all hosts.
        DemuxFlowEntries => "demux_flow_entries",
        /// Live wildcard listen-table entries across all hosts.
        DemuxListenEntries => "demux_listen_entries",
        /// Kernel channels currently created (handshake + established).
        OpenChannels => "open_channels",
        /// Records currently held across the attached flight recorder's
        /// per-host rings (mirrored from [`crate::stream_stats`]).
        RecorderOccupancy => "recorder_occupancy",
    }
}

metric_enum! {
    /// Sample distributions (values in the unit each variant documents).
    Hist {
        /// Bytes handed to an application per delivery upcall.
        AppDeliverBytes => "app_deliver_bytes",
        /// A connection's final smoothed RTT at teardown, nanoseconds.
        ConnSrtt => "conn_srtt_ns",
        /// Channel ring occupancy observed at each enqueue (after the
        /// push) — the live backlog a windowed sampler watches.
        RingDepth => "ring_depth",
        /// Frames consumed per library wakeup (the notification-batching
        /// win: >1 means one semaphore covered several packets).
        WakeupBatchFrames => "wakeup_batch_frames",
    }
}

// ---------------------------------------------------------------------
// Bounded log-linear histogram
// ---------------------------------------------------------------------

/// Values below this are binned exactly (one bucket per value).
const EXACT: u64 = 256;
/// Sub-buckets per power of two above the exact range (2^5 = 32).
const SUB_BITS: u32 = 5;
const SUBS: usize = 1 << SUB_BITS;
/// Total bucket count: 256 exact + 32 per octave for octaves 8..=63.
const NBUCKETS: usize = EXACT as usize + (64 - 8) * SUBS;

/// A bounded log-linear histogram: fixed worst-case footprint (2048
/// `u64` buckets, allocated lazily on the first sample) no matter how
/// many samples are recorded, with rank queries answered by a cumulative
/// scan — no per-query sort, no retained sample vector.
///
/// # Error bounds
///
/// Values below 256 are binned exactly. Above that, each power of two is
/// split into 32 sub-buckets, so a quantile's reported value is the lower
/// bound of its bucket: at most 1/32 (~3.1%) below the true sample.
/// `min`, `max`, the 0.0- and 1.0-quantiles, and the mean are always
/// exact (`sum`/`count` are kept at full precision).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
    /// Empty until the first sample, then exactly `NBUCKETS` long.
    buckets: Vec<u64>,
}

fn bucket_index(v: u64) -> usize {
    if v < EXACT {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros(); // 8..=63 here
        let sub = ((v >> (exp - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
        EXACT as usize + (exp as usize - 8) * SUBS + sub
    }
}

fn bucket_floor(idx: usize) -> u64 {
    if idx < EXACT as usize {
        idx as u64
    } else {
        let rel = idx - EXACT as usize;
        let exp = 8 + (rel / SUBS) as u32;
        let sub = (rel % SUBS) as u64;
        (1u64 << exp) + (sub << (exp - SUB_BITS))
    }
}

impl Histogram {
    /// Creates an empty histogram (no bucket storage until a sample).
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        if self.count == 0 || v < self.min {
            self.min = v;
        }
        self.max = self.max.max(v);
        self.sum += v as u128;
        self.count += 1;
        if self.buckets.is_empty() {
            self.buckets = vec![0; NBUCKETS];
        }
        self.buckets[bucket_index(v)] += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest sample (exact), or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (exact), or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The `p`-quantile (0.0..=1.0) by nearest rank, or `None` if empty.
    /// The extremes are exact (`min`/`max`, returned for `p <= 0.0` and
    /// `p >= 1.0` without touching float rank math; NaN reads as 0.0);
    /// interior quantiles report their bucket's lower bound (≤ 3.1% below
    /// the true sample — see the type docs).
    pub fn quantile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        if p.is_nan() || p <= 0.0 {
            return Some(self.min);
        }
        if p >= 1.0 {
            return Some(self.max);
        }
        // Nearest rank, with the product nudged down a hair before the
        // ceiling: `p * count` can round a whisker above an exact integer
        // boundary (0.001 * 7000 = 7.0000000000000001 in f64) and a bare
        // `ceil` would then overshoot by a whole rank.
        let product = p * self.count as f64;
        let rank = ((product * (1.0 - 1e-12)).ceil() as u64).clamp(1, self.count);
        if rank == 1 {
            return Some(self.min);
        }
        if rank == self.count {
            return Some(self.max);
        }
        let mut cum = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                return Some(bucket_floor(idx).clamp(self.min, self.max));
            }
        }
        Some(self.max) // unreachable: cum reaches count
    }
}

/// Identity of a connection endpoint for scope keys and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ConnKey {
    /// Host index.
    pub host: u16,
    /// Local TCP port.
    pub local_port: u16,
    /// Remote IPv4 address octets.
    pub remote_ip: [u8; 4],
    /// Remote TCP port.
    pub remote_port: u16,
}

impl fmt::Display for ConnKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.remote_ip;
        write!(
            f,
            "h{}:{} <-> {}.{}.{}.{}:{}",
            self.host, self.local_port, a, b, c, d, self.remote_port
        )
    }
}

/// Per-connection roll-up: the TCP machine's counters plus the kernel
/// channel's delivery/demux counters, recorded into the registry when the
/// connection (or its owning application) goes away.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnScope {
    /// Segments sent (including retransmissions).
    pub segs_out: u64,
    /// Acceptable segments processed.
    pub segs_in: u64,
    /// Bytes retransmitted.
    pub bytes_rexmit: u64,
    /// Retransmission-timeout fires.
    pub rto_fires: u64,
    /// Fast retransmits triggered by duplicate ACKs.
    pub fast_rexmit: u64,
    /// Duplicate ACKs received.
    pub dup_acks_in: u64,
    /// Zero-window probes sent.
    pub probes: u64,
    /// Final smoothed RTT, when the estimator had samples.
    pub srtt: Option<Nanos>,
    /// Frames the kernel delivered into this connection's ring.
    pub rx_delivered: u64,
    /// Deliveries that batched behind a pending notification.
    pub rx_batched: u64,
    /// Software deliveries that hit the exact-match flow table.
    pub flow_hits: u64,
    /// Software deliveries that hit the wildcard listen table.
    pub listen_hits: u64,
    /// Software deliveries that fell back to the filter scan.
    pub scan_fallbacks: u64,
    /// Bytes delivered to the application.
    pub bytes_to_app: u64,
}

/// Per-link fault roll-up, keyed by `(from host, to host)`: what the
/// fault plan did to frames crossing that directed link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkScope {
    /// Frames silently dropped.
    pub drops: u64,
    /// Frames delivered twice.
    pub dups: u64,
    /// Frames delayed past later traffic.
    pub reorders: u64,
    /// Frames with a byte flipped in flight.
    pub corrupts: u64,
    /// Frames dropped inside a scheduled outage window.
    pub outage_drops: u64,
}

/// Per-channel demux/delivery roll-up, keyed by `(host, raw channel id)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelScope {
    /// Frames placed into the ring.
    pub delivered: u64,
    /// Deliveries that batched behind a pending notification.
    pub batched: u64,
    /// Flow-table hits.
    pub flow_hits: u64,
    /// Listen-table hits.
    pub listen_hits: u64,
    /// Filter-scan fallbacks.
    pub scan_fallbacks: u64,
}

/// Per-tenant resource roll-up, keyed by `(host, raw tenant id)`: the
/// kernel's per-tenant budget accounting mirrored into the registry so
/// dashboards and the isolation oracle see one report. Cumulative
/// counters plus the instantaneous budget levels at the last sync.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantScope {
    /// Frames delivered into this tenant's rings.
    pub rx_delivered: u64,
    /// Frames this tenant transmitted (accepted by the kernel).
    pub tx_frames: u64,
    /// Receive drops charged to this tenant's exhausted ring quota.
    pub quota_drops: u64,
    /// Transmits rejected for exhausted per-window credit.
    pub tx_rejections: u64,
    /// Ring slots the tenant currently occupies across all its channels.
    pub ring_slots: u64,
    /// The tenant's aggregate ring-slot quota (0 = unlimited).
    pub ring_quota: u64,
    /// Channels the tenant currently holds open.
    pub open_channels: u64,
}

impl TenantScope {
    /// The tenant's share of its own ring quota, 0.0..=1.0, or `None`
    /// when the tenant is unbudgeted.
    pub fn ring_share(&self) -> Option<f64> {
        (self.ring_quota > 0).then(|| self.ring_slots as f64 / self.ring_quota as f64)
    }
}

/// The registry: typed counters/gauges/histograms plus scopes. Owned by
/// the world (one per simulation), not global — parallel test worlds
/// can't bleed into each other.
#[derive(Debug, Clone)]
pub struct Metrics {
    counters: Vec<u64>,
    gauges: Vec<u64>,
    hists: Vec<Histogram>,
    conns: BTreeMap<ConnKey, ConnScope>,
    channels: BTreeMap<(u16, u32), ChannelScope>,
    links: BTreeMap<(u16, u16), LinkScope>,
    tenants: BTreeMap<(u16, u64), TenantScope>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Metrics {
        Metrics {
            counters: vec![0; Ctr::ALL.len()],
            gauges: vec![0; Gauge::ALL.len()],
            hists: vec![Histogram::new(); Hist::ALL.len()],
            conns: BTreeMap::new(),
            channels: BTreeMap::new(),
            links: BTreeMap::new(),
            tenants: BTreeMap::new(),
        }
    }

    // ---- counters ----

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&mut self, c: Ctr, n: u64) {
        self.counters[c as usize] += n;
    }

    /// Increments a counter by one.
    #[inline]
    pub fn bump(&mut self, c: Ctr) {
        self.add(c, 1);
    }

    /// Reads a counter.
    #[inline]
    pub fn get(&self, c: Ctr) -> u64 {
        self.counters[c as usize]
    }

    /// Iterates the counters that have been touched, in name order (the
    /// declaration order is alphabetical by label).
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        Ctr::ALL
            .iter()
            .map(|&c| (c.name(), self.get(c)))
            .filter(|&(_, v)| v != 0)
    }

    // ---- gauges ----

    /// Raises a gauge.
    #[inline]
    pub fn gauge_inc(&mut self, g: Gauge) {
        self.gauges[g as usize] += 1;
    }

    /// Lowers a gauge (saturating at zero).
    #[inline]
    pub fn gauge_dec(&mut self, g: Gauge) {
        let v = &mut self.gauges[g as usize];
        *v = v.saturating_sub(1);
    }

    /// Sets a gauge to an absolute level — for gauges that mirror an
    /// externally-maintained size (table populations) rather than count
    /// inc/dec events.
    #[inline]
    pub fn gauge_set(&mut self, g: Gauge, v: u64) {
        self.gauges[g as usize] = v;
    }

    /// Reads a gauge.
    #[inline]
    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges[g as usize]
    }

    // ---- histograms ----

    /// Records a sample.
    #[inline]
    pub fn sample(&mut self, h: Hist, v: u64) {
        self.hists[h as usize].record(v);
    }

    /// The full histogram recorded under `h`.
    pub fn hist(&self, h: Hist) -> &Histogram {
        &self.hists[h as usize]
    }

    /// Exact mean of the samples under `h`, or `None` if there are none.
    pub fn mean(&self, h: Hist) -> Option<f64> {
        self.hists[h as usize].mean()
    }

    /// The `p`-quantile (0.0..=1.0) of samples under `h` by nearest rank,
    /// or `None` if there are none. See [`Histogram::quantile`] for the
    /// documented error bound.
    pub fn quantile(&self, h: Hist, p: f64) -> Option<u64> {
        self.hists[h as usize].quantile(p)
    }

    // ---- snapshots ----

    /// A point-in-time copy of the counters, gauges, and histogram totals,
    /// stamped with the sim clock. Two snapshots delimit a [`Window`].
    pub fn snapshot(&self, now: Nanos) -> Snapshot {
        Snapshot {
            time: now,
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            hist_counts: self.hists.iter().map(Histogram::count).collect(),
            hist_sums: self.hists.iter().map(Histogram::sum).collect(),
        }
    }

    // ---- scopes ----

    /// The scope for connection `key`, created empty on first touch.
    pub fn conn(&mut self, key: ConnKey) -> &mut ConnScope {
        self.conns.entry(key).or_default()
    }

    /// Iterates recorded connection scopes in key order.
    pub fn conns(&self) -> impl Iterator<Item = (&ConnKey, &ConnScope)> + '_ {
        self.conns.iter()
    }

    /// The scope for channel `id` on `host`, created empty on first touch.
    pub fn channel(&mut self, host: u16, id: u32) -> &mut ChannelScope {
        self.channels.entry((host, id)).or_default()
    }

    /// Iterates recorded channel scopes in `(host, id)` order.
    pub fn channels(&self) -> impl Iterator<Item = (&(u16, u32), &ChannelScope)> + '_ {
        self.channels.iter()
    }

    /// The fault scope for the directed link `from -> to`, created empty
    /// on first touch.
    pub fn link(&mut self, from: u16, to: u16) -> &mut LinkScope {
        self.links.entry((from, to)).or_default()
    }

    /// Iterates recorded per-link fault scopes in `(from, to)` order.
    pub fn links(&self) -> impl Iterator<Item = (&(u16, u16), &LinkScope)> + '_ {
        self.links.iter()
    }

    /// The scope for tenant `tenant` on `host`, created empty on first
    /// touch.
    pub fn tenant(&mut self, host: u16, tenant: u64) -> &mut TenantScope {
        self.tenants.entry((host, tenant)).or_default()
    }

    /// Iterates recorded tenant scopes in `(host, tenant)` order.
    pub fn tenants(&self) -> impl Iterator<Item = (&(u16, u64), &TenantScope)> + '_ {
        self.tenants.iter()
    }

    // ---- export ----

    /// Serializes the registry as JSON (hand-rolled: the workspace is
    /// dependency-free by design): non-zero counters, gauges, histogram
    /// summaries, and the per-connection/channel/link scopes.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        let mut first = true;
        for (name, v) in self.counters() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n    \"{name}\": {v}"));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, &g) in Gauge::ALL.iter().enumerate() {
            out.push_str(&format!(
                "{}\n    \"{}\": {}",
                if i > 0 { "," } else { "" },
                g.name(),
                self.gauge(g)
            ));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, &h) in Hist::ALL.iter().enumerate() {
            let hist = self.hist(h);
            out.push_str(&format!(
                "{}\n    \"{}\": {{\"count\": {}, \"mean\": {:.1}, \"p50\": {}, \"p99\": {}, \"min\": {}, \"max\": {}}}",
                if i > 0 { "," } else { "" },
                h.name(),
                hist.count(),
                hist.mean().unwrap_or(0.0),
                hist.quantile(0.5).unwrap_or(0),
                hist.quantile(0.99).unwrap_or(0),
                hist.min().unwrap_or(0),
                hist.max().unwrap_or(0),
            ));
        }
        out.push_str("\n  },\n  \"connections\": [");
        for (i, (k, c)) in self.conns().enumerate() {
            out.push_str(&format!(
                "{}\n    {{\"conn\": \"{k}\", \"segs_out\": {}, \"segs_in\": {}, \"bytes_to_app\": {}, \"bytes_rexmit\": {}, \"flow_hits\": {}, \"listen_hits\": {}, \"scan_fallbacks\": {}, \"srtt_ns\": {}}}",
                if i > 0 { "," } else { "" },
                c.segs_out,
                c.segs_in,
                c.bytes_to_app,
                c.bytes_rexmit,
                c.flow_hits,
                c.listen_hits,
                c.scan_fallbacks,
                c.srtt.map_or("null".into(), |v| v.to_string()),
            ));
        }
        out.push_str("\n  ],\n  \"channels\": [");
        for (i, ((host, id), ch)) in self.channels().enumerate() {
            out.push_str(&format!(
                "{}\n    {{\"host\": {host}, \"channel\": {id}, \"delivered\": {}, \"batched\": {}, \"flow_hits\": {}, \"listen_hits\": {}, \"scan_fallbacks\": {}}}",
                if i > 0 { "," } else { "" },
                ch.delivered,
                ch.batched,
                ch.flow_hits,
                ch.listen_hits,
                ch.scan_fallbacks,
            ));
        }
        out.push_str("\n  ],\n  \"links\": [");
        for (i, ((from, to), l)) in self.links().enumerate() {
            out.push_str(&format!(
                "{}\n    {{\"from\": {from}, \"to\": {to}, \"drops\": {}, \"dups\": {}, \"reorders\": {}, \"corrupts\": {}, \"outage_drops\": {}}}",
                if i > 0 { "," } else { "" },
                l.drops,
                l.dups,
                l.reorders,
                l.corrupts,
                l.outage_drops,
            ));
        }
        out.push_str("\n  ],\n  \"tenants\": [");
        for (i, ((host, tenant), t)) in self.tenants().enumerate() {
            out.push_str(&format!(
                "{}\n    {{\"host\": {host}, \"tenant\": {tenant}, \"rx_delivered\": {}, \"tx_frames\": {}, \"quota_drops\": {}, \"tx_rejections\": {}, \"ring_slots\": {}, \"ring_quota\": {}, \"open_channels\": {}}}",
                if i > 0 { "," } else { "" },
                t.rx_delivered,
                t.tx_frames,
                t.quota_drops,
                t.tx_rejections,
                t.ring_slots,
                t.ring_quota,
                t.open_channels,
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

// ---------------------------------------------------------------------
// Windowed telemetry
// ---------------------------------------------------------------------

/// A point-in-time copy of the registry's counters, gauges, and histogram
/// totals (counts and sums — the full bucket arrays are not copied).
/// Taken with [`Metrics::snapshot`]; two snapshots bound a [`Window`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Sim time the snapshot was taken (caller-supplied engine clock).
    pub time: Nanos,
    counters: Vec<u64>,
    gauges: Vec<u64>,
    hist_counts: Vec<u64>,
    hist_sums: Vec<u128>,
}

impl Snapshot {
    /// Reads a counter as of this snapshot.
    pub fn get(&self, c: Ctr) -> u64 {
        self.counters[c as usize]
    }

    /// Reads a gauge as of this snapshot.
    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges[g as usize]
    }

    /// The delta window from `earlier` to `self`. Counters are monotonic,
    /// so deltas saturate at zero if the snapshots are passed reversed.
    pub fn window_since(&self, earlier: &Snapshot) -> Window {
        Window {
            start: earlier.time,
            end: self.time,
            counters: self
                .counters
                .iter()
                .zip(&earlier.counters)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            gauges: self.gauges.clone(),
            hist_counts: self
                .hist_counts
                .iter()
                .zip(&earlier.hist_counts)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            hist_sums: self
                .hist_sums
                .iter()
                .zip(&earlier.hist_sums)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
        }
    }

    /// Serializes the snapshot as JSON: the stamp time plus every
    /// non-zero counter, every gauge, and per-histogram running totals.
    /// Parses back with [`crate::json`] — the export tests round-trip it.
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\n  \"time\": {},", self.time);
        out.push_str(&json_levels(&self.counters, &self.gauges));
        out.push_str(",\n  \"histograms\": {");
        for (i, &h) in Hist::ALL.iter().enumerate() {
            out.push_str(&format!(
                "{}\n    \"{}\": {{\"count\": {}, \"sum\": {}}}",
                if i > 0 { "," } else { "" },
                h.name(),
                self.hist_counts[h as usize],
                self.hist_sums[h as usize],
            ));
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

/// Shared counter/gauge JSON body for [`Snapshot`] and [`Window`]
/// exports: non-zero counters (zeroes are noise in a report and the
/// reader treats a missing key as zero) and every gauge.
fn json_levels(counters: &[u64], gauges: &[u64]) -> String {
    let mut out = String::from("\n  \"counters\": {");
    let mut first = true;
    for &c in Ctr::ALL {
        let v = counters[c as usize];
        if v == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\n    \"{}\": {v}", c.name()));
    }
    out.push_str("\n  },\n  \"gauges\": {");
    for (i, &g) in Gauge::ALL.iter().enumerate() {
        out.push_str(&format!(
            "{}\n    \"{}\": {}",
            if i > 0 { "," } else { "" },
            g.name(),
            gauges[g as usize]
        ));
    }
    out.push_str("\n  }");
    out
}

/// One sim-time telemetry window: counter/histogram deltas between two
/// [`Snapshot`]s plus the gauge levels at the window's end, with derived
/// rates (pps, retransmit rate, flow-hit rate, ring occupancy).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Window {
    /// Window start (earlier snapshot's sim time).
    pub start: Nanos,
    /// Window end (later snapshot's sim time).
    pub end: Nanos,
    counters: Vec<u64>,
    gauges: Vec<u64>,
    hist_counts: Vec<u64>,
    hist_sums: Vec<u128>,
}

impl Window {
    /// Window length in simulated nanoseconds.
    pub fn duration(&self) -> Nanos {
        self.end.saturating_sub(self.start)
    }

    /// Counter delta over the window.
    pub fn delta(&self, c: Ctr) -> u64 {
        self.counters[c as usize]
    }

    /// Counter rate over the window, per second of sim time (0.0 for an
    /// empty window).
    pub fn per_sec(&self, c: Ctr) -> f64 {
        let d = self.duration();
        if d == 0 {
            0.0
        } else {
            self.delta(c) as f64 * 1e9 / d as f64
        }
    }

    /// Gauge level at the window's end.
    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges[g as usize]
    }

    /// Samples recorded under `h` during the window, and their sum.
    pub fn hist_delta(&self, h: Hist) -> (u64, u128) {
        (self.hist_counts[h as usize], self.hist_sums[h as usize])
    }

    /// Mean of the samples recorded under `h` during the window, or
    /// `None` if the window recorded none.
    pub fn hist_mean(&self, h: Hist) -> Option<f64> {
        let (n, sum) = self.hist_delta(h);
        (n > 0).then(|| sum as f64 / n as f64)
    }

    /// Frames received per second of sim time.
    pub fn rx_pps(&self) -> f64 {
        self.per_sec(Ctr::FramesReceived)
    }

    /// Frames sent per second of sim time.
    pub fn tx_pps(&self) -> f64 {
        self.per_sec(Ctr::FramesSent)
    }

    /// Retransmitted segments per second of sim time.
    pub fn rexmit_per_sec(&self) -> f64 {
        self.per_sec(Ctr::TcpRexmitSegs)
    }

    /// Tenant-quota receive drops per second of sim time, across all
    /// tenants (per-tenant attribution lives in the [`TenantScope`]s).
    pub fn quota_drops_per_sec(&self) -> f64 {
        self.per_sec(Ctr::ChQuotaDrops)
    }

    /// Retransmitted segments as a share of frames sent in the window
    /// (approximate: a frame usually carries one segment), or `None` if
    /// nothing was sent.
    pub fn rexmit_share(&self) -> Option<f64> {
        let sent = self.delta(Ctr::FramesSent);
        (sent > 0).then(|| self.delta(Ctr::TcpRexmitSegs) as f64 / sent as f64)
    }

    /// Software deliveries classified this window, across all tiers.
    fn demux_decisions(&self) -> u64 {
        self.delta(Ctr::ChFlowHits)
            + self.delta(Ctr::ChListenHits)
            + self.delta(Ctr::ChScanFallbacks)
    }

    /// Share of channel deliveries the flow table decided this window, or
    /// `None` if no software delivery was classified.
    pub fn flow_hit_rate(&self) -> Option<f64> {
        let all = self.demux_decisions();
        (all > 0).then(|| self.delta(Ctr::ChFlowHits) as f64 / all as f64)
    }

    /// Share of channel deliveries the wildcard listen table decided this
    /// window, or `None` if no software delivery was classified.
    pub fn listen_hit_rate(&self) -> Option<f64> {
        let all = self.demux_decisions();
        (all > 0).then(|| self.delta(Ctr::ChListenHits) as f64 / all as f64)
    }

    /// Share of channel deliveries decided by either keyed table this
    /// window — the frames that skipped filter interpretation — or `None`
    /// if no software delivery was classified.
    pub fn keyed_hit_rate(&self) -> Option<f64> {
        let all = self.demux_decisions();
        let keyed = self.delta(Ctr::ChFlowHits) + self.delta(Ctr::ChListenHits);
        (all > 0).then(|| keyed as f64 / all as f64)
    }

    /// Live keyed-table populations (flow entries, listen entries) at the
    /// window's end, summed across hosts — the dashboard's table-size
    /// columns.
    pub fn demux_table_sizes(&self) -> (u64, u64) {
        (
            self.gauge(Gauge::DemuxFlowEntries),
            self.gauge(Gauge::DemuxListenEntries),
        )
    }

    /// Mean ring occupancy observed at enqueue during the window, or
    /// `None` if nothing was enqueued.
    pub fn mean_ring_depth(&self) -> Option<f64> {
        self.hist_mean(Hist::RingDepth)
    }

    /// Serializes the window as JSON: the bounds, every non-zero counter
    /// delta, the gauge levels at the window's end, per-histogram slice
    /// totals, and the derived rates the dashboards print (null where a
    /// rate has no denominator). Parses back with [`crate::json`].
    pub fn to_json(&self) -> String {
        fn opt(v: Option<f64>) -> String {
            v.map_or("null".into(), |x| format!("{x:.6}"))
        }
        let mut out = format!(
            "{{\n  \"start\": {},\n  \"end\": {},\n  \"duration_ns\": {},",
            self.start,
            self.end,
            self.duration()
        );
        out.push_str(&json_levels(&self.counters, &self.gauges));
        out.push_str(",\n  \"histograms\": {");
        for (i, &h) in Hist::ALL.iter().enumerate() {
            let (n, sum) = self.hist_delta(h);
            out.push_str(&format!(
                "{}\n    \"{}\": {{\"count\": {n}, \"sum\": {sum}}}",
                if i > 0 { "," } else { "" },
                h.name(),
            ));
        }
        let (flow, listen) = self.demux_table_sizes();
        out.push_str(&format!(
            "\n  }},\n  \"rates\": {{\n    \"rx_pps\": {:.3},\n    \"tx_pps\": {:.3},\n    \"rexmit_per_sec\": {:.3},\n    \"rexmit_share\": {},\n    \"flow_hit_rate\": {},\n    \"listen_hit_rate\": {},\n    \"keyed_hit_rate\": {},\n    \"mean_ring_depth\": {},\n    \"flow_entries\": {flow},\n    \"listen_entries\": {listen}\n  }}\n}}\n",
            self.rx_pps(),
            self.tx_pps(),
            self.rexmit_per_sec(),
            opt(self.rexmit_share()),
            opt(self.flow_hit_rate()),
            opt(self.listen_hit_rate()),
            opt(self.keyed_hit_rate()),
            opt(self.mean_ring_depth()),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_typed_and_cheap() {
        let mut m = Metrics::new();
        m.bump(Ctr::FramesSent);
        m.add(Ctr::FramesSent, 4);
        assert_eq!(m.get(Ctr::FramesSent), 5);
        assert_eq!(m.get(Ctr::FramesReceived), 0);
        let touched: Vec<_> = m.counters().collect();
        assert_eq!(touched, vec![("frames_sent", 5)]);
    }

    #[test]
    fn counter_labels_are_sorted_and_unique() {
        // `counters()` reports in declaration order; keep that order
        // alphabetical so reports read like the old BTreeMap output.
        let names: Vec<_> = Ctr::ALL.iter().map(|c| c.name()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(names, sorted, "declare Ctr variants in label order");
    }

    #[test]
    fn hist_labels_are_sorted_and_unique() {
        let names: Vec<_> = Hist::ALL.iter().map(|h| h.name()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(names, sorted, "declare Hist variants in label order");
    }

    #[test]
    fn gauges_saturate() {
        let mut m = Metrics::new();
        m.gauge_dec(Gauge::ActiveConnections);
        assert_eq!(m.gauge(Gauge::ActiveConnections), 0);
        m.gauge_inc(Gauge::ActiveConnections);
        m.gauge_inc(Gauge::ActiveConnections);
        m.gauge_dec(Gauge::ActiveConnections);
        assert_eq!(m.gauge(Gauge::ActiveConnections), 1);
    }

    #[test]
    fn nearest_rank_quantiles() {
        // Values below 256 are binned exactly, so the pre-rework answers
        // still hold to the digit.
        let mut m = Metrics::new();
        for v in [10, 20, 30, 40] {
            m.sample(Hist::ConnSrtt, v);
        }
        assert_eq!(m.mean(Hist::ConnSrtt), Some(25.0));
        assert_eq!(m.quantile(Hist::ConnSrtt, 0.5), Some(20));
        assert_eq!(m.quantile(Hist::ConnSrtt, 1.0), Some(40));
        assert_eq!(m.quantile(Hist::ConnSrtt, 0.0), Some(10));
        assert_eq!(m.mean(Hist::WakeupBatchFrames), None);
        assert_eq!(m.quantile(Hist::WakeupBatchFrames, 0.5), None);
    }

    #[test]
    fn quantile_edge_cases() {
        // Empty.
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);

        // Single sample: every quantile is that sample, exactly, even in
        // the log-bucketed range.
        let mut h = Histogram::new();
        h.record(1_000_003);
        for p in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(p), Some(1_000_003));
        }
        assert_eq!(h.mean(), Some(1_000_003.0));

        // p = 0.0 and 1.0 are exact min/max regardless of bucketing.
        let mut h = Histogram::new();
        for v in [977, 35_001, 12_345_679] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(977));
        assert_eq!(h.quantile(1.0), Some(12_345_679));

        // Heavy duplicates: the repeated value dominates every interior
        // rank; 300 falls in a log bucket whose floor is within the
        // documented 1/32 bound.
        let mut h = Histogram::new();
        for _ in 0..1000 {
            h.record(300);
        }
        h.record(1);
        h.record(100_000);
        let q = h.quantile(0.5).unwrap();
        assert!(
            q <= 300 && 300 - q <= 300 / 32 + 1,
            "p50 {q} outside the 1/32 error band around 300"
        );
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(1.0), Some(100_000));
    }

    #[test]
    fn quantile_ranks_survive_float_boundary_products() {
        // 0.001 * 7000 rounds to 7.0000000000000001 in f64, so a bare
        // ceil lands on rank 8. With values 1..=7000 (rank k holds value
        // k, all in the exact bucket range below the log-linear split for
        // the first 255) the 0.001-quantile must be rank 7's value.
        let mut h = Histogram::new();
        for v in 1..=7000u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.001), Some(7));
        // Exact-boundary and out-of-range p clamp to the observed
        // extremes without touching the rank math.
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(-0.5), Some(1));
        assert_eq!(h.quantile(1.0), Some(7000));
        assert_eq!(h.quantile(1.5), Some(7000));
        assert_eq!(h.quantile(f64::NAN), Some(1), "NaN reads as p=0");
        // An exactly-representable product must not slip a rank down:
        // 3500 is log-bucketed, so the answer is its bucket floor, within
        // the documented 1/32 band and never above the true rank value.
        let q = h.quantile(0.5).unwrap();
        assert!(
            q <= 3500 && 3500 - q <= 3500 / 32 + 1,
            "p50 {q} outside the 1/32 band around 3500"
        );
    }

    #[test]
    fn histogram_memory_is_bounded_and_error_banded() {
        // A million spread-out samples must not grow storage past the
        // fixed bucket array, and every quantile must respect the 1/32
        // relative error bound against a sorted reference.
        let mut h = Histogram::new();
        let mut reference = Vec::new();
        let mut x = 1u64;
        for _ in 0..1_000_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = x % 50_000_000;
            h.record(v);
            reference.push(v);
        }
        assert_eq!(h.count(), 1_000_000);
        assert!(h.buckets.len() == NBUCKETS, "storage must stay fixed");
        reference.sort_unstable();
        for p in [0.1, 0.5, 0.9, 0.99] {
            let approx = h.quantile(p).unwrap() as f64;
            let idx = ((p * reference.len() as f64).ceil() as usize).clamp(1, reference.len()) - 1;
            let exact = reference[idx] as f64;
            // The reported value is the exact quantile's bucket floor: at
            // most 1/32 below it, never above.
            assert!(
                approx <= exact && (exact - approx) / exact.max(1.0) <= 1.0 / 32.0,
                "quantile p={p}: {approx} vs exact {exact}"
            );
        }
    }

    #[test]
    fn bucket_round_trip_preserves_order_and_bound() {
        for v in [0, 1, 255, 256, 257, 1000, 65_535, 1 << 20, u64::MAX / 3] {
            let idx = bucket_index(v);
            let floor = bucket_floor(idx);
            assert!(floor <= v, "floor {floor} above value {v}");
            if v >= EXACT {
                assert!(
                    (v - floor) as f64 / v as f64 <= 1.0 / 32.0,
                    "bucket floor {floor} more than 1/32 below {v}"
                );
            } else {
                assert_eq!(floor, v);
            }
        }
    }

    #[test]
    fn snapshot_windows_do_delta_arithmetic() {
        let mut m = Metrics::new();
        let s0 = m.snapshot(0);
        m.add(Ctr::FramesReceived, 100);
        m.add(Ctr::FramesSent, 50);
        m.add(Ctr::TcpRexmitSegs, 5);
        m.add(Ctr::ChFlowHits, 90);
        m.add(Ctr::ChScanFallbacks, 10);
        m.gauge_inc(Gauge::ActiveConnections);
        m.sample(Hist::RingDepth, 2);
        m.sample(Hist::RingDepth, 4);
        let s1 = m.snapshot(1_000_000_000); // 1 s of sim time
        let w = s1.window_since(&s0);
        assert_eq!(w.duration(), 1_000_000_000);
        assert_eq!(w.delta(Ctr::FramesReceived), 100);
        assert_eq!(w.rx_pps(), 100.0);
        assert_eq!(w.tx_pps(), 50.0);
        assert_eq!(w.rexmit_per_sec(), 5.0);
        assert_eq!(w.rexmit_share(), Some(0.1));
        assert_eq!(w.flow_hit_rate(), Some(0.9));
        assert_eq!(w.mean_ring_depth(), Some(3.0));
        assert_eq!(w.gauge(Gauge::ActiveConnections), 1);

        // The second window sees only the second slice's activity.
        m.add(Ctr::FramesReceived, 20);
        let s2 = m.snapshot(3_000_000_000);
        let w2 = s2.window_since(&s1);
        assert_eq!(w2.duration(), 2_000_000_000);
        assert_eq!(w2.delta(Ctr::FramesReceived), 20);
        assert_eq!(w2.rx_pps(), 10.0);
        assert_eq!(w2.rexmit_share(), None, "nothing sent this window");
        assert_eq!(w2.flow_hit_rate(), None);
        assert_eq!(w2.mean_ring_depth(), None);
        // Windows compose: (s0 -> s2) equals the sum of the two slices.
        let total = s2.window_since(&s0);
        assert_eq!(
            total.delta(Ctr::FramesReceived),
            w.delta(Ctr::FramesReceived) + w2.delta(Ctr::FramesReceived)
        );

        // Reversed snapshots saturate rather than wrap.
        let rev = s0.window_since(&s2);
        assert_eq!(rev.delta(Ctr::FramesReceived), 0);
    }

    #[test]
    fn zero_length_window_has_zero_rates() {
        let m = Metrics::new();
        let s = m.snapshot(500);
        let w = s.window_since(&s);
        assert_eq!(w.duration(), 0);
        assert_eq!(w.rx_pps(), 0.0);
        assert_eq!(w.per_sec(Ctr::FramesSent), 0.0);
    }

    #[test]
    fn scopes_accumulate_by_key() {
        let mut m = Metrics::new();
        let key = ConnKey {
            host: 0,
            local_port: 2000,
            remote_ip: [10, 0, 0, 2],
            remote_port: 80,
        };
        m.conn(key).segs_out += 3;
        m.conn(key).segs_out += 2;
        assert_eq!(m.conns().count(), 1);
        assert_eq!(m.conn(key).segs_out, 5);
        assert_eq!(key.to_string(), "h0:2000 <-> 10.0.0.2:80");

        m.channel(1, 7).delivered += 9;
        assert_eq!(m.channels().next().unwrap().1.delivered, 9);
    }

    #[test]
    fn snapshot_and_window_json_round_trip() {
        use crate::json::{parse, Value};

        let mut m = Metrics::new();
        m.add(Ctr::FramesReceived, 120);
        m.add(Ctr::FramesSent, 60);
        m.add(Ctr::TcpRexmitSegs, 6);
        m.add(Ctr::ChFlowHits, 80);
        m.add(Ctr::ChListenHits, 10);
        m.add(Ctr::ChScanFallbacks, 10);
        m.gauge_set(Gauge::DemuxFlowEntries, 42);
        m.sample(Hist::RingDepth, 3);
        m.sample(Hist::RingDepth, 5);
        let s0 = Metrics::new().snapshot(0);
        let s1 = m.snapshot(2_000_000_000);

        // Snapshot: every exported value parses back to its accessor.
        let sj = parse(&s1.to_json()).expect("snapshot JSON parses");
        assert_eq!(sj.get("time").and_then(Value::as_u64), Some(2_000_000_000));
        let ctrs = sj.get("counters").unwrap();
        assert_eq!(
            ctrs.get("frames_received").and_then(Value::as_u64),
            Some(s1.get(Ctr::FramesReceived))
        );
        assert_eq!(ctrs.get("app_crashes"), None, "zero counters are omitted");
        assert_eq!(
            sj.get("gauges")
                .unwrap()
                .get("demux_flow_entries")
                .and_then(Value::as_u64),
            Some(s1.gauge(Gauge::DemuxFlowEntries))
        );
        let rd = sj.get("histograms").unwrap().get("ring_depth").unwrap();
        assert_eq!(rd.get("count").and_then(Value::as_u64), Some(2));
        assert_eq!(rd.get("sum").and_then(Value::as_u64), Some(8));

        // Window: deltas, slice totals, and every derived rate agree with
        // the accessors they were rendered from.
        let w = s1.window_since(&s0);
        let wj = parse(&w.to_json()).expect("window JSON parses");
        assert_eq!(
            wj.get("duration_ns").and_then(Value::as_u64),
            Some(w.duration())
        );
        assert_eq!(
            wj.get("counters")
                .unwrap()
                .get("tcp_rexmit_segs")
                .and_then(Value::as_u64),
            Some(w.delta(Ctr::TcpRexmitSegs))
        );
        let rates = wj.get("rates").unwrap();
        assert_eq!(rates.get("rx_pps").and_then(Value::as_f64), Some(60.0));
        assert_eq!(rates.get("tx_pps").and_then(Value::as_f64), Some(30.0));
        let keyed = rates.get("keyed_hit_rate").and_then(Value::as_f64).unwrap();
        assert!((keyed - w.keyed_hit_rate().unwrap()).abs() < 1e-6);
        assert_eq!(
            rates.get("flow_entries").and_then(Value::as_u64),
            Some(w.demux_table_sizes().0)
        );
        assert_eq!(
            rates.get("mean_ring_depth").and_then(Value::as_f64),
            Some(4.0)
        );

        // A window with no traffic renders its denominator-less rates as
        // null, and still parses.
        let empty = s0.window_since(&s0);
        let ej = parse(&empty.to_json()).expect("empty window JSON parses");
        assert_eq!(
            ej.get("rates").unwrap().get("rexmit_share"),
            Some(&Value::Null)
        );
        assert_eq!(
            ej.get("counters").and_then(Value::entries).map(<[_]>::len),
            Some(0)
        );
    }

    #[test]
    fn metrics_json_is_shaped() {
        let mut m = Metrics::new();
        m.bump(Ctr::FramesSent);
        m.sample(Hist::AppDeliverBytes, 4096);
        m.conn(ConnKey {
            host: 0,
            local_port: 2000,
            remote_ip: [10, 0, 0, 2],
            remote_port: 80,
        })
        .segs_out = 7;
        m.link(0, 1).drops = 2;
        let j = m.to_json();
        assert!(j.contains("\"frames_sent\": 1"));
        assert!(j.contains("\"app_deliver_bytes\""));
        assert!(j.contains("\"segs_out\": 7"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }
}
