//! The typed metrics registry: counters, gauges, and nearest-rank
//! histograms keyed by enums, plus per-connection and per-channel scopes.
//!
//! Replaces the stringly `Trace` that `core::world` carried: a counter
//! bump is now an array index instead of a `BTreeMap<&str, _>` probe, a
//! typo is a compile error instead of a silently fresh counter, and the
//! scattered per-subsystem stats structs (`TcpStats`, the kernel's
//! per-channel counters) are absorbed into [`ConnScope`]s at connection
//! teardown so post-run reports see one registry.

use std::collections::BTreeMap;
use std::fmt;

use crate::Nanos;

macro_rules! metric_enum {
    ($(#[$meta:meta])* $name:ident { $($(#[$vmeta:meta])* $variant:ident => $label:literal,)* }) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
        #[repr(usize)]
        pub enum $name {
            $($(#[$vmeta])* $variant,)*
        }

        impl $name {
            /// Every variant, in declaration order (the storage order).
            pub const ALL: &'static [$name] = &[$($name::$variant,)*];

            /// The metric's stable report name.
            pub fn name(self) -> &'static str {
                match self {
                    $($name::$variant => $label,)*
                }
            }
        }
    };
}

metric_enum! {
    /// Whole-world event counters (the former string keys, verbatim).
    Ctr {
        /// Application processes killed by the fault plan (or by tests).
        AppCrashes => "app_crashes",
        /// Deliveries batched behind a pending channel notification.
        ChBatched => "ch_batched",
        /// Frames delivered into connection channels.
        ChDeliveries => "ch_deliveries",
        /// Frames dropped because a channel ring was full or slots too small.
        ChRingDrops => "ch_ring_drops",
        /// Connections that closed normally.
        ConnectionsClosed => "connections_closed",
        /// Connections that completed establishment.
        ConnectionsEstablished => "connections_established",
        /// Connections handed to the registry by an exiting application.
        ConnectionsInherited => "connections_inherited",
        /// Connections torn down by RST.
        ConnectionsReset => "connections_reset",
        /// Frames whose bytes the fault plan flipped in flight.
        FaultCorrupts => "fault_corrupts",
        /// Frames the fault plan silently dropped.
        FaultDrops => "fault_drops",
        /// Frames the fault plan delivered twice.
        FaultDups => "fault_dups",
        /// Frames dropped inside a scheduled link outage window.
        FaultOutageDrops => "fault_outage_drops",
        /// Frames the fault plan delayed past later traffic.
        FaultReorders => "fault_reorders",
        /// Corrupted frames caught by a checksum and discarded.
        FrameCorruptDiscards => "frame_corrupt_discards",
        /// Frames parked while a channel finalization was in flight.
        FramesParked => "frames_parked",
        /// Frames received from the wire (pre-NIC-staging).
        FramesReceived => "frames_received",
        /// Frames put on the wire.
        FramesSent => "frames_sent",
        /// Handshakes that failed (timeout or RST).
        HandshakeFailures => "handshake_failures",
        /// ICMP parse failures.
        IcmpBad => "icmp_bad",
        /// ICMP destination-unreachable errors received.
        IcmpDestUnreachableReceived => "icmp_dest_unreachable_received",
        /// Echo replies we generated.
        IcmpEchoReplies => "icmp_echo_replies",
        /// Echo replies to our own pings.
        IcmpEchoReplyReceived => "icmp_echo_reply_received",
        /// Other ICMP traffic.
        IcmpOther => "icmp_other",
        /// IP datagrams that failed validation.
        IpBad => "ip_bad",
        /// Fragments held for reassembly.
        IpFragmentsHeld => "ip_fragments_held",
        /// IP datagrams addressed elsewhere.
        IpNotForUs => "ip_not_for_us",
        /// Complete datagrams for protocols we don't run.
        IpUnknownProto => "ip_unknown_proto",
        /// Non-TCP frames that reached the library input path.
        LibNonTcp => "lib_non_tcp",
        /// Handshake completions whose listener had already vanished;
        /// the channel is reclaimed and the peer reset.
        ListenerVanished => "listener_vanished",
        /// Frames dropped at NIC staging overflow.
        NicDrops => "nic_drops",
        /// Resources (channels, ports, BQIs, handshakes) reclaimed by a
        /// trusted layer on behalf of a dead application.
        ResourceReclaims => "resource_reclaims",
        /// TCP segments discarded for bad checksums.
        TcpBadChecksum => "tcp_bad_checksum",
        /// TCP segments too short to parse.
        TcpMalformed => "tcp_malformed",
        /// Transmissions rejected by the template check.
        TxTemplateRejections => "tx_template_rejections",
        /// UDP datagrams that failed validation.
        UdpBad => "udp_bad",
        /// UDP datagrams delivered to a bound port.
        UdpDelivered => "udp_delivered",
        /// UDP datagrams to unbound ports (ICMP unreachable generated).
        UdpUnreachable => "udp_unreachable",
        /// Frames with an ethertype nobody handles.
        UnknownEthertype => "unknown_ethertype",
    }
}

metric_enum! {
    /// Instantaneous levels.
    Gauge {
        /// Established connections currently alive.
        ActiveConnections => "active_connections",
        /// Kernel channels currently created (handshake + established).
        OpenChannels => "open_channels",
    }
}

metric_enum! {
    /// Sample distributions (values in the unit each variant documents).
    Hist {
        /// Bytes handed to an application per delivery upcall.
        AppDeliverBytes => "app_deliver_bytes",
        /// A connection's final smoothed RTT at teardown, nanoseconds.
        ConnSrtt => "conn_srtt_ns",
        /// Frames consumed per library wakeup (the notification-batching
        /// win: >1 means one semaphore covered several packets).
        WakeupBatchFrames => "wakeup_batch_frames",
    }
}

/// Identity of a connection endpoint for scope keys and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ConnKey {
    /// Host index.
    pub host: u16,
    /// Local TCP port.
    pub local_port: u16,
    /// Remote IPv4 address octets.
    pub remote_ip: [u8; 4],
    /// Remote TCP port.
    pub remote_port: u16,
}

impl fmt::Display for ConnKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.remote_ip;
        write!(
            f,
            "h{}:{} <-> {}.{}.{}.{}:{}",
            self.host, self.local_port, a, b, c, d, self.remote_port
        )
    }
}

/// Per-connection roll-up: the TCP machine's counters plus the kernel
/// channel's delivery/demux counters, recorded into the registry when the
/// connection (or its owning application) goes away.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnScope {
    /// Segments sent (including retransmissions).
    pub segs_out: u64,
    /// Acceptable segments processed.
    pub segs_in: u64,
    /// Bytes retransmitted.
    pub bytes_rexmit: u64,
    /// Retransmission-timeout fires.
    pub rto_fires: u64,
    /// Fast retransmits triggered by duplicate ACKs.
    pub fast_rexmit: u64,
    /// Duplicate ACKs received.
    pub dup_acks_in: u64,
    /// Zero-window probes sent.
    pub probes: u64,
    /// Final smoothed RTT, when the estimator had samples.
    pub srtt: Option<Nanos>,
    /// Frames the kernel delivered into this connection's ring.
    pub rx_delivered: u64,
    /// Deliveries that batched behind a pending notification.
    pub rx_batched: u64,
    /// Software deliveries that hit the exact-match flow table.
    pub flow_hits: u64,
    /// Software deliveries that fell back to the filter scan.
    pub scan_fallbacks: u64,
    /// Bytes delivered to the application.
    pub bytes_to_app: u64,
}

/// Per-link fault roll-up, keyed by `(from host, to host)`: what the
/// fault plan did to frames crossing that directed link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkScope {
    /// Frames silently dropped.
    pub drops: u64,
    /// Frames delivered twice.
    pub dups: u64,
    /// Frames delayed past later traffic.
    pub reorders: u64,
    /// Frames with a byte flipped in flight.
    pub corrupts: u64,
    /// Frames dropped inside a scheduled outage window.
    pub outage_drops: u64,
}

/// Per-channel demux/delivery roll-up, keyed by `(host, raw channel id)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelScope {
    /// Frames placed into the ring.
    pub delivered: u64,
    /// Deliveries that batched behind a pending notification.
    pub batched: u64,
    /// Flow-table hits.
    pub flow_hits: u64,
    /// Filter-scan fallbacks.
    pub scan_fallbacks: u64,
}

/// The registry: typed counters/gauges/histograms plus scopes. Owned by
/// the world (one per simulation), not global — parallel test worlds
/// can't bleed into each other.
#[derive(Debug, Clone)]
pub struct Metrics {
    counters: Vec<u64>,
    gauges: Vec<u64>,
    hists: Vec<Vec<u64>>,
    conns: BTreeMap<ConnKey, ConnScope>,
    channels: BTreeMap<(u16, u32), ChannelScope>,
    links: BTreeMap<(u16, u16), LinkScope>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Metrics {
        Metrics {
            counters: vec![0; Ctr::ALL.len()],
            gauges: vec![0; Gauge::ALL.len()],
            hists: vec![Vec::new(); Hist::ALL.len()],
            conns: BTreeMap::new(),
            channels: BTreeMap::new(),
            links: BTreeMap::new(),
        }
    }

    // ---- counters ----

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&mut self, c: Ctr, n: u64) {
        self.counters[c as usize] += n;
    }

    /// Increments a counter by one.
    #[inline]
    pub fn bump(&mut self, c: Ctr) {
        self.add(c, 1);
    }

    /// Reads a counter.
    #[inline]
    pub fn get(&self, c: Ctr) -> u64 {
        self.counters[c as usize]
    }

    /// Iterates the counters that have been touched, in name order (the
    /// declaration order is alphabetical by label).
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        Ctr::ALL
            .iter()
            .map(|&c| (c.name(), self.get(c)))
            .filter(|&(_, v)| v != 0)
    }

    // ---- gauges ----

    /// Raises a gauge.
    #[inline]
    pub fn gauge_inc(&mut self, g: Gauge) {
        self.gauges[g as usize] += 1;
    }

    /// Lowers a gauge (saturating at zero).
    #[inline]
    pub fn gauge_dec(&mut self, g: Gauge) {
        let v = &mut self.gauges[g as usize];
        *v = v.saturating_sub(1);
    }

    /// Reads a gauge.
    #[inline]
    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges[g as usize]
    }

    // ---- histograms ----

    /// Records a sample.
    #[inline]
    pub fn sample(&mut self, h: Hist, v: u64) {
        self.hists[h as usize].push(v);
    }

    /// All samples recorded under `h`, in recording order.
    pub fn samples(&self, h: Hist) -> &[u64] {
        &self.hists[h as usize]
    }

    /// Mean of the samples under `h`, or `None` if there are none.
    pub fn mean(&self, h: Hist) -> Option<f64> {
        let s = self.samples(h);
        if s.is_empty() {
            None
        } else {
            Some(s.iter().map(|&v| v as f64).sum::<f64>() / s.len() as f64)
        }
    }

    /// The `p`-quantile (0.0..=1.0) of samples under `h` by nearest rank,
    /// or `None` if there are none.
    pub fn quantile(&self, h: Hist, p: f64) -> Option<u64> {
        let mut s = self.samples(h).to_vec();
        if s.is_empty() {
            return None;
        }
        s.sort_unstable();
        let idx = ((p * s.len() as f64).ceil() as usize).clamp(1, s.len()) - 1;
        Some(s[idx])
    }

    // ---- scopes ----

    /// The scope for connection `key`, created empty on first touch.
    pub fn conn(&mut self, key: ConnKey) -> &mut ConnScope {
        self.conns.entry(key).or_default()
    }

    /// Iterates recorded connection scopes in key order.
    pub fn conns(&self) -> impl Iterator<Item = (&ConnKey, &ConnScope)> + '_ {
        self.conns.iter()
    }

    /// The scope for channel `id` on `host`, created empty on first touch.
    pub fn channel(&mut self, host: u16, id: u32) -> &mut ChannelScope {
        self.channels.entry((host, id)).or_default()
    }

    /// Iterates recorded channel scopes in `(host, id)` order.
    pub fn channels(&self) -> impl Iterator<Item = (&(u16, u32), &ChannelScope)> + '_ {
        self.channels.iter()
    }

    /// The fault scope for the directed link `from -> to`, created empty
    /// on first touch.
    pub fn link(&mut self, from: u16, to: u16) -> &mut LinkScope {
        self.links.entry((from, to)).or_default()
    }

    /// Iterates recorded per-link fault scopes in `(from, to)` order.
    pub fn links(&self) -> impl Iterator<Item = (&(u16, u16), &LinkScope)> + '_ {
        self.links.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_typed_and_cheap() {
        let mut m = Metrics::new();
        m.bump(Ctr::FramesSent);
        m.add(Ctr::FramesSent, 4);
        assert_eq!(m.get(Ctr::FramesSent), 5);
        assert_eq!(m.get(Ctr::FramesReceived), 0);
        let touched: Vec<_> = m.counters().collect();
        assert_eq!(touched, vec![("frames_sent", 5)]);
    }

    #[test]
    fn counter_labels_are_sorted_and_unique() {
        // `counters()` reports in declaration order; keep that order
        // alphabetical so reports read like the old BTreeMap output.
        let names: Vec<_> = Ctr::ALL.iter().map(|c| c.name()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(names, sorted, "declare Ctr variants in label order");
    }

    #[test]
    fn gauges_saturate() {
        let mut m = Metrics::new();
        m.gauge_dec(Gauge::ActiveConnections);
        assert_eq!(m.gauge(Gauge::ActiveConnections), 0);
        m.gauge_inc(Gauge::ActiveConnections);
        m.gauge_inc(Gauge::ActiveConnections);
        m.gauge_dec(Gauge::ActiveConnections);
        assert_eq!(m.gauge(Gauge::ActiveConnections), 1);
    }

    #[test]
    fn nearest_rank_quantiles() {
        let mut m = Metrics::new();
        for v in [10, 20, 30, 40] {
            m.sample(Hist::ConnSrtt, v);
        }
        assert_eq!(m.mean(Hist::ConnSrtt), Some(25.0));
        assert_eq!(m.quantile(Hist::ConnSrtt, 0.5), Some(20));
        assert_eq!(m.quantile(Hist::ConnSrtt, 1.0), Some(40));
        assert_eq!(m.quantile(Hist::ConnSrtt, 0.0), Some(10));
        assert_eq!(m.mean(Hist::WakeupBatchFrames), None);
        assert_eq!(m.quantile(Hist::WakeupBatchFrames, 0.5), None);
    }

    #[test]
    fn scopes_accumulate_by_key() {
        let mut m = Metrics::new();
        let key = ConnKey {
            host: 0,
            local_port: 2000,
            remote_ip: [10, 0, 0, 2],
            remote_port: 80,
        };
        m.conn(key).segs_out += 3;
        m.conn(key).segs_out += 2;
        assert_eq!(m.conns().count(), 1);
        assert_eq!(m.conn(key).segs_out, 5);
        assert_eq!(key.to_string(), "h0:2000 <-> 10.0.0.2:80");

        m.channel(1, 7).delivered += 9;
        assert_eq!(m.channels().next().unwrap().1.delivered, 9);
    }
}
