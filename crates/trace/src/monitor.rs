//! Online protocol-conformance monitor: streaming checkers over the
//! record pipeline, in O(per-connection + per-ring state) memory.
//!
//! The [`Monitor`] is an [`Observer`]: attach it and every emitted record
//! flows through seven checkers as it happens, instead of post-hoc over a
//! drained journal. Each checker verifies one invariant the stack is
//! supposed to uphold:
//!
//! * **TCP ack monotonicity** — the cumulative ACK a host puts on the
//!   wire never regresses (mod 2³²) within a connection incarnation.
//! * **TCP state machine** — every [`Event::TcpState`] edge is in the
//!   legal transition relation, and edges are continuous (each starts
//!   where the previous one ended).
//! * **RFC 5681 rexmit preconditions** — a fast retransmit is preceded by
//!   at least three duplicate ACKs; an RTO retransmit fires only with
//!   unacknowledged data outstanding.
//! * **Ring conservation** — per channel ring, enqueues = delivers +
//!   drops + resident: each `ring_enqueue` depth is exactly the tracked
//!   residency plus one, and no `wakeup_batch` drains more than resides.
//! * **Frame-pool accounting** — consecutive `frame_alloc`/`frame_free`
//!   events chain their `live` counts (±1), catching leaked or
//!   double-freed backings online; optionally, the pool must drain back
//!   to its baseline by detach time.
//! * **Demux tier attribution** — a keyed-tier (`flow`/`listen`) classify
//!   must report a match, and every matched classify is immediately
//!   followed by exactly one ring placement event for the same frame.
//! * **Tenant quota conservation** — a `quota_drop` is earned: the
//!   tenant's recorded occupancy is at or over a positive budget.
//!
//! Every checker is deliberately **one-sided**: its predicate is no
//! stricter than the stack's own (e.g. the dup-ACK count is a superset of
//! the TCB's RFC 5681 count, which also requires the advertised window
//! unchanged and in-window sequence numbers), so a conformant run can
//! never violate, while the seeded mutation harness ([`mutations`])
//! proves each checker still catches its bug class.
//!
//! Violations are typed ([`ViolationKind`]), carry bounded context, and
//! freeze the attached [`FlightRecorder`]'s window into a postmortem on
//! first occurrence (host crashes freeze it too).

use crate::stream::{self, FlightRecorder, Observer};
use crate::{Dir, Event, FaultKind, Nanos, PathKind, ReclaimKind, Record, RexmitReason, TcpFsm};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-rotate hasher for the monitor's small fixed-size keys: the
/// checkers probe these maps on every emitted record, where SipHash's
/// DoS hardening costs more than the rest of the check. Keys are
/// simulation-internal (ports, channel ids), not attacker-chosen.
#[derive(Default)]
struct FxHasher(u64);

impl FxHasher {
    fn add(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

impl Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(u64::from(b));
        }
    }
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }
    fn write_u16(&mut self, n: u16) {
        self.add(u64::from(n));
    }
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

type FxMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `a >= b` in sequence space (RFC 1982-style wraparound compare).
fn seq_ge(a: u32, b: u32) -> bool {
    a.wrapping_sub(b) as i32 >= 0
}

/// `a > b` in sequence space.
fn seq_gt(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) > 0
}

/// Which invariant a [`Violation`] breached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// A transmitted cumulative ACK moved backwards.
    TcpAckRegression,
    /// A TCP state edge outside the legal relation, or discontinuous
    /// with the connection's tracked state.
    TcpFsmIllegal,
    /// A retransmit without its RFC 5681 / RTO precondition.
    RexmitUnjustified,
    /// A ring enqueue/wakeup inconsistent with tracked residency.
    RingConservation,
    /// A frame-pool live count off its event chain (leak / double free).
    PoolAccounting,
    /// A demux classify whose tier, match flag, and ring placement
    /// disagree.
    DemuxAttribution,
    /// A tenant quota drop that was not earned by recorded occupancy.
    QuotaConservation,
}

impl ViolationKind {
    /// All kinds, in severity-agnostic declaration order.
    pub const ALL: [ViolationKind; 7] = [
        ViolationKind::TcpAckRegression,
        ViolationKind::TcpFsmIllegal,
        ViolationKind::RexmitUnjustified,
        ViolationKind::RingConservation,
        ViolationKind::PoolAccounting,
        ViolationKind::DemuxAttribution,
        ViolationKind::QuotaConservation,
    ];

    /// Stable keyword for reports (`tcp_ack_regression`, …).
    pub fn label(self) -> &'static str {
        match self {
            ViolationKind::TcpAckRegression => "tcp_ack_regression",
            ViolationKind::TcpFsmIllegal => "tcp_fsm_illegal",
            ViolationKind::RexmitUnjustified => "rexmit_unjustified",
            ViolationKind::RingConservation => "ring_conservation",
            ViolationKind::PoolAccounting => "pool_accounting",
            ViolationKind::DemuxAttribution => "demux_attribution",
            ViolationKind::QuotaConservation => "quota_conservation",
        }
    }

    fn index(self) -> usize {
        ViolationKind::ALL.iter().position(|k| *k == self).unwrap()
    }
}

/// One conformance breach, with bounded captured context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Sim time of the offending record.
    pub time: Nanos,
    /// Host the offending record was attributed to.
    pub host: Option<u16>,
    /// Which invariant broke.
    pub kind: ViolationKind,
    /// Human-readable specifics (offending values, tracked expectation).
    pub detail: String,
}

impl Violation {
    /// One-line report form.
    pub fn line(&self) -> String {
        let host = match self.host {
            Some(h) => format!("h{h}"),
            None => "h-".to_string(),
        };
        format!(
            "{} {} {}: {}",
            self.time,
            host,
            self.kind.label(),
            self.detail
        )
    }
}

/// How many violations the monitor retains verbatim; past this only the
/// counts grow (bounded memory under a violation storm).
const RETAIN: usize = 64;

/// Per-checker counts of *validated* events — the non-vacuity oracle:
/// a zero-violation run only means something if each checker actually
/// exercised.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CheckStats {
    /// Transmitted cumulative ACKs checked for monotonicity.
    pub tcp_acks: u64,
    /// TCP state edges checked against the legal relation.
    pub transitions: u64,
    /// Retransmits checked against their preconditions.
    pub rexmits: u64,
    /// Ring enqueue/drop/wakeup events folded into residency tracking.
    pub ring_events: u64,
    /// Frame-pool alloc/free events chained.
    pub pool_events: u64,
    /// Demux classifies checked for tier/match/placement consistency.
    pub demux_classifies: u64,
    /// Tenant quota drops checked for earned occupancy.
    pub quota_drops: u64,
}

/// Streaming per-connection state (both checkers' halves share the key).
#[derive(Debug, Clone, Copy, Default)]
struct ConnState {
    /// Highest cumulative ACK this host transmitted.
    tx_ack: Option<u32>,
    /// Tracked FSM state (adopted from the first edge seen).
    fsm: Option<TcpFsm>,
    /// Highest cumulative ACK received from the peer.
    rx_acked: Option<u32>,
    /// Duplicate-ACK streak at the current `rx_acked` (a permissive
    /// superset of the TCB's RFC 5681 count).
    dup_acks: u32,
    /// Highest sequence bound of transmitted payload (`seq + len`).
    snd_max: Option<u32>,
}

#[derive(Debug, Clone, Copy, Default)]
struct RingState {
    resident: u64,
    seeded: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct PoolState {
    /// Live count after the last pool event.
    count: u64,
    /// Inferred live count just before the first pool event seen.
    base: u64,
    seen: bool,
}

/// (host, local port, remote port, remote ip): one TCP connection
/// endpoint. The remote IP disambiguates clients on different hosts that
/// picked the same ephemeral port — with ports alone their FSM edges and
/// ACK streams would interleave under one key and false-flag.
type ConnKey = (Option<u16>, u16, u16, [u8; 4]);

/// The online conformance monitor. Attach with [`crate::attach`]; detach
/// with [`crate::detach_as::<Monitor>`] to harvest violations, checker
/// stats, and the frozen postmortem.
pub struct Monitor {
    conns: FxMap<ConnKey, ConnState>,
    rings: FxMap<(Option<u16>, u32), RingState>,
    pool: PoolState,
    /// Matched classifies awaiting their adjacent ring placement, one
    /// live entry per host at most — a vec so the per-record fast path
    /// is one emptiness check, not a hash probe.
    pending_demux: Vec<(Option<u16>, Option<u64>)>,
    checked: CheckStats,
    kind_counts: [u64; 7],
    violations: Vec<Violation>,
    total: u64,
    recorder: Option<FlightRecorder>,
    postmortem: Option<Vec<Record>>,
    expect_pool_drained: bool,
    last_time: Nanos,
}

impl Default for Monitor {
    fn default() -> Self {
        Monitor::new()
    }
}

impl Monitor {
    /// A monitor with no flight recorder (checkers only).
    pub fn new() -> Monitor {
        Monitor {
            conns: FxMap::default(),
            rings: FxMap::default(),
            pool: PoolState::default(),
            pending_demux: Vec::new(),
            checked: CheckStats::default(),
            kind_counts: [0; 7],
            violations: Vec::new(),
            total: 0,
            recorder: None,
            postmortem: None,
            expect_pool_drained: false,
            last_time: 0,
        }
    }

    /// A monitor feeding a [`FlightRecorder`] keeping the last `cap`
    /// records per host; the window freezes into [`Monitor::postmortem`]
    /// on the first violation or host crash.
    pub fn with_recorder(cap: usize) -> Monitor {
        let mut m = Monitor::new();
        m.recorder = Some(FlightRecorder::new(cap));
        m
    }

    /// Also violate if, at detach time, the frame pool has not drained
    /// back to its inferred baseline (use when the world is dropped
    /// before the monitor detaches).
    pub fn expect_pool_drained(mut self, yes: bool) -> Monitor {
        self.expect_pool_drained = yes;
        self
    }

    /// Feeds a pre-recorded journal through this monitor and returns it
    /// finished — the replay surface the mutation harness and the bench
    /// gate use.
    pub fn run_over(mut self, records: &[Record]) -> Monitor {
        for r in records {
            self.on_record(r);
        }
        self.on_finish();
        self
    }

    /// Total violations flagged (including ones past the retention cap).
    pub fn total_violations(&self) -> u64 {
        self.total
    }

    /// Violations flagged for one kind.
    pub fn count(&self, kind: ViolationKind) -> u64 {
        self.kind_counts[kind.index()]
    }

    /// The retained violations (first [`RETAIN`]; the counts keep going).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Per-checker validated-event counts.
    pub fn checked(&self) -> CheckStats {
        self.checked
    }

    /// The postmortem window frozen at the first violation or crash.
    pub fn postmortem(&self) -> Option<&[Record]> {
        self.postmortem.as_deref()
    }

    /// The flight recorder's *current* window, on demand.
    pub fn dump(&self) -> Vec<Record> {
        self.recorder
            .as_ref()
            .map(|r| r.dump_all())
            .unwrap_or_default()
    }

    /// The recorder's current occupancy (0 without a recorder).
    pub fn recorder_occupancy(&self) -> usize {
        self.recorder.as_ref().map(|r| r.occupancy()).unwrap_or(0)
    }

    /// Approximate bytes of streaming state held — the O(ring +
    /// per-connection) bound the scale sweep reports.
    pub fn memory_bytes(&self) -> u64 {
        use std::mem::size_of;
        let conns = self.conns.len() * (size_of::<ConnKey>() + size_of::<ConnState>());
        let rings = self.rings.len() * (size_of::<(Option<u16>, u32)>() + size_of::<RingState>());
        let demux =
            self.pending_demux.len() * (size_of::<Option<u16>>() + size_of::<Option<u64>>());
        let viols: usize = self
            .violations
            .iter()
            .map(|v| size_of::<Violation>() + v.detail.len())
            .sum();
        let recorder = self
            .recorder
            .as_ref()
            .map(|r| r.occupancy() * size_of::<(u64, Record)>())
            .unwrap_or(0);
        let post = self
            .postmortem
            .as_ref()
            .map(|p| p.len() * size_of::<Record>())
            .unwrap_or(0);
        (conns + rings + demux + viols + recorder + post) as u64
    }

    fn violate(&mut self, time: Nanos, host: Option<u16>, kind: ViolationKind, detail: String) {
        self.total += 1;
        self.kind_counts[kind.index()] += 1;
        if self.violations.len() < RETAIN {
            self.violations.push(Violation {
                time,
                host,
                kind,
                detail,
            });
        }
        stream::note_violation();
        self.freeze();
    }

    fn freeze(&mut self) {
        if self.postmortem.is_none() {
            if let Some(r) = &self.recorder {
                self.postmortem = Some(r.dump_all());
            }
        }
    }

    /// A matched classify must be immediately followed by its ring
    /// placement: resolve any pending classify on this host against the
    /// current record *before* the checkers fold it in.
    fn resolve_pending_demux(&mut self, rec: &Record) {
        let Some(i) = self.pending_demux.iter().position(|(h, _)| *h == rec.host) else {
            return;
        };
        let (_, pending) = self.pending_demux.swap_remove(i);
        let Some(pending) = pending else { return };
        let placed = matches!(
            rec.event,
            Event::RingEnqueue { .. } | Event::RingDrop { .. } | Event::QuotaDrop { .. }
        ) && rec.frame == Some(pending);
        if !placed {
            self.violate(
                rec.time,
                rec.host,
                ViolationKind::DemuxAttribution,
                format!(
                    "matched classify of f{pending} not followed by ring placement (next: {})",
                    rec.event.name()
                ),
            );
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_tcp_segment(
        &mut self,
        rec: &Record,
        dir: Dir,
        key: ConnKey,
        seq: u32,
        ack: u32,
        flags: crate::SegFlags,
        payload: u32,
    ) {
        match dir {
            Dir::Tx => {
                let mut regressed_below = None;
                let st = self.conns.entry(key).or_default();
                if flags.syn {
                    // New incarnation: adopt the handshake's ack (if any)
                    // and forget the old send horizon.
                    st.tx_ack = if flags.ack { Some(ack) } else { None };
                    st.snd_max = None;
                } else if flags.rst {
                    // RSTs for stray segments echo offender state; exempt.
                } else {
                    if flags.ack {
                        if let Some(p) = st.tx_ack {
                            if !seq_ge(ack, p) {
                                regressed_below = Some(p);
                            }
                        }
                        st.tx_ack = Some(match st.tx_ack {
                            Some(p) if seq_ge(p, ack) => p,
                            _ => ack,
                        });
                    }
                    if payload > 0 {
                        let end = seq.wrapping_add(payload);
                        st.snd_max = Some(match st.snd_max {
                            Some(m) if seq_ge(m, end) => m,
                            _ => end,
                        });
                    }
                }
                if flags.ack && !flags.syn && !flags.rst {
                    self.checked.tcp_acks += 1;
                }
                if let Some(p) = regressed_below {
                    self.violate(
                        rec.time,
                        rec.host,
                        ViolationKind::TcpAckRegression,
                        format!(
                            "tx ack {ack} regressed below {p} (lp={} rp={})",
                            key.1, key.2
                        ),
                    );
                }
            }
            Dir::Rx => {
                let st = self.conns.entry(key).or_default();
                if flags.syn || flags.rst {
                    // Handshake or reset: restart the receive-side view.
                    st.rx_acked = if flags.syn && flags.ack {
                        Some(ack)
                    } else {
                        None
                    };
                    st.dup_acks = 0;
                } else if flags.ack {
                    match st.rx_acked {
                        None => st.rx_acked = Some(ack),
                        Some(a) if seq_gt(ack, a) => {
                            st.rx_acked = Some(ack);
                            st.dup_acks = 0;
                        }
                        Some(a) if ack == a && payload == 0 && !flags.fin => {
                            // Permissive dup count: no window-unchanged or
                            // in-window requirement, so it upper-bounds the
                            // TCB's RFC 5681 count.
                            st.dup_acks += 1;
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    fn on_tcp_state(&mut self, rec: &Record, key: ConnKey, from: TcpFsm, to: TcpFsm) {
        self.checked.transitions += 1;
        let tracked = self.conns.get(&key).and_then(|s| s.fsm);
        if let Some(cur) = tracked {
            if cur != from {
                self.violate(
                    rec.time,
                    rec.host,
                    ViolationKind::TcpFsmIllegal,
                    format!(
                        "state discontinuity: tracked {} but edge claims {} -> {}",
                        cur.label(),
                        from.label(),
                        to.label()
                    ),
                );
            }
        }
        if !legal_transition(from, to) {
            self.violate(
                rec.time,
                rec.host,
                ViolationKind::TcpFsmIllegal,
                format!("illegal transition {} -> {}", from.label(), to.label()),
            );
        }
        if to == TcpFsm::Closed {
            // Incarnation over: drop all per-connection state so a port
            // reuse starts clean.
            self.conns.remove(&key);
        } else {
            self.conns.entry(key).or_default().fsm = Some(to);
        }
    }

    fn on_rexmit(&mut self, rec: &Record, key: ConnKey, reason: RexmitReason) {
        self.checked.rexmits += 1;
        let st = self.conns.get(&key).copied().unwrap_or_default();
        match reason {
            RexmitReason::DupAck => {
                if st.dup_acks < 3 {
                    self.violate(
                        rec.time,
                        rec.host,
                        ViolationKind::RexmitUnjustified,
                        format!(
                            "fast retransmit after {} duplicate acks (lp={} rp={})",
                            st.dup_acks, key.1, key.2
                        ),
                    );
                }
            }
            RexmitReason::Rto => {
                let outstanding = match (st.snd_max, st.rx_acked) {
                    (Some(m), Some(a)) => seq_gt(m, a),
                    (Some(_), None) => true,
                    (None, _) => false,
                };
                if !outstanding {
                    self.violate(
                        rec.time,
                        rec.host,
                        ViolationKind::RexmitUnjustified,
                        format!(
                            "rto retransmit with no unacked data (lp={} rp={})",
                            key.1, key.2
                        ),
                    );
                }
            }
        }
    }

    fn on_ring_enqueue(&mut self, rec: &Record, channel: u32, depth: u32) {
        self.checked.ring_events += 1;
        let key = (rec.host, channel);
        let st = self.rings.entry(key).or_default();
        let seeded = st.seeded;
        let want = st.resident + 1;
        st.seeded = true;
        st.resident = u64::from(depth);
        if seeded && u64::from(depth) != want {
            self.violate(
                rec.time,
                rec.host,
                ViolationKind::RingConservation,
                format!("ch={channel} enqueue depth {depth}, expected {want} (resident+1)"),
            );
        }
    }

    fn on_wakeup(&mut self, rec: &Record, channel: u32, frames: u32) {
        self.checked.ring_events += 1;
        let key = (rec.host, channel);
        let st = self.rings.entry(key).or_default();
        let over = st.seeded && u64::from(frames) > st.resident;
        let resident = st.resident;
        st.seeded = true;
        st.resident = st.resident.saturating_sub(u64::from(frames));
        if over {
            self.violate(
                rec.time,
                rec.host,
                ViolationKind::RingConservation,
                format!(
                    "ch={channel} wakeup drained {frames} frames with only {resident} resident"
                ),
            );
        }
    }

    fn on_pool_event(&mut self, rec: &Record, live: u64, alloc: bool) {
        self.checked.pool_events += 1;
        if !self.pool.seen {
            self.pool.seen = true;
            self.pool.base = if alloc {
                live.saturating_sub(1)
            } else {
                live + 1
            };
            self.pool.count = live;
            return;
        }
        let want = if alloc {
            self.pool.count + 1
        } else {
            self.pool.count.saturating_sub(1)
        };
        self.pool.count = live;
        if live != want {
            self.violate(
                rec.time,
                rec.host,
                ViolationKind::PoolAccounting,
                format!(
                    "{} reported {live} live backings, chain expected {want}",
                    if alloc { "frame_alloc" } else { "frame_free" }
                ),
            );
        }
    }

    fn on_classify(&mut self, rec: &Record, path: PathKind, matched: bool) {
        self.checked.demux_classifies += 1;
        if matches!(path, PathKind::FlowTable | PathKind::ListenTable) && !matched {
            self.violate(
                rec.time,
                rec.host,
                ViolationKind::DemuxAttribution,
                format!("keyed-tier ({}) classify reported no match", path.label()),
            );
        }
        if matched {
            self.pending_demux.push((rec.host, rec.frame));
        }
    }

    fn on_quota_drop(&mut self, rec: &Record, tenant: u64, in_use: u64, quota: u64) {
        self.checked.quota_drops += 1;
        if quota == 0 || in_use < quota {
            self.violate(
                rec.time,
                rec.host,
                ViolationKind::QuotaConservation,
                format!("tenant {tenant} quota drop with in_use={in_use} quota={quota}"),
            );
        }
    }
}

impl Observer for Monitor {
    fn on_record(&mut self, rec: &Record) {
        if let Some(r) = self.recorder.as_mut() {
            r.on_record(rec);
        }
        self.last_time = rec.time;
        if !self.pending_demux.is_empty() {
            self.resolve_pending_demux(rec);
        }
        match &rec.event {
            Event::TcpSegment {
                dir,
                local_port,
                remote_port,
                remote_ip,
                seq,
                ack,
                flags,
                payload,
                ..
            } => {
                let key = (rec.host, *local_port, *remote_port, *remote_ip);
                self.on_tcp_segment(rec, *dir, key, *seq, *ack, *flags, *payload);
            }
            Event::TcpState {
                local_port,
                remote_port,
                remote_ip,
                from,
                to,
            } => {
                let key = (rec.host, *local_port, *remote_port, *remote_ip);
                self.on_tcp_state(rec, key, *from, *to);
            }
            Event::TcpRexmit {
                local_port,
                remote_port,
                remote_ip,
                reason,
                ..
            } => {
                let key = (rec.host, *local_port, *remote_port, *remote_ip);
                self.on_rexmit(rec, key, *reason);
            }
            Event::RingEnqueue { channel, depth, .. } => {
                self.on_ring_enqueue(rec, *channel, *depth);
            }
            Event::RingDrop { .. } => {
                // The drop *is* the non-enqueue: residency unchanged.
                self.checked.ring_events += 1;
            }
            Event::WakeupBatch { channel, frames } => {
                self.on_wakeup(rec, *channel, *frames);
            }
            Event::FrameAlloc { live } => self.on_pool_event(rec, *live, true),
            Event::FrameFree { live } => self.on_pool_event(rec, *live, false),
            Event::DemuxClassify { path, matched, .. } => {
                self.on_classify(rec, *path, *matched);
            }
            Event::QuotaDrop {
                tenant,
                in_use,
                quota,
                ..
            } => {
                self.on_quota_drop(rec, *tenant, *in_use, *quota);
            }
            Event::ResourceReclaim {
                kind: ReclaimKind::Channel,
                id,
                ..
            } => {
                // Channel ids are never reused; drop its ring state.
                self.rings.remove(&(rec.host, *id));
            }
            Event::FaultInject {
                kind: FaultKind::Crash,
                ..
            } => {
                self.freeze();
            }
            _ => {}
        }
    }

    fn on_finish(&mut self) {
        if self.expect_pool_drained && self.pool.seen && self.pool.count != self.pool.base {
            let (count, base) = (self.pool.count, self.pool.base);
            self.violate(
                self.last_time,
                None,
                ViolationKind::PoolAccounting,
                format!("pool finished with {count} live backings, baseline was {base}"),
            );
        }
    }
}

/// The legal TCP state-transition relation, as implemented by
/// `unp_tcp::Tcb` (RFC 793's diagram plus abort/reset edges: `Closed` is
/// reachable from every live state).
pub fn legal_transition(from: TcpFsm, to: TcpFsm) -> bool {
    use TcpFsm::*;
    if to == Closed {
        return from != Closed;
    }
    matches!(
        (from, to),
        (Closed, SynSent)
            | (Closed, SynReceived)
            | (SynSent, Established)
            | (SynSent, SynReceived)
            | (SynReceived, Established)
            | (SynReceived, FinWait1)
            | (Established, FinWait1)
            | (Established, CloseWait)
            | (FinWait1, FinWait2)
            | (FinWait1, Closing)
            | (FinWait1, TimeWait)
            | (FinWait2, TimeWait)
            | (CloseWait, LastAck)
            | (Closing, TimeWait)
    )
}

/// Seeded single-defect journal mutations: each injects exactly one bug
/// of a known class into a recorded journal, and the matching checker
/// must catch it. This is the soundness harness's "both ways" half —
/// clean journals replay violation-free, mutated ones do not.
pub mod mutations {
    use super::*;
    use crate::SegFlags;

    /// One injectable bug class.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum BugClass {
        /// Rewind a transmitted cumulative ACK (a skipped ACK update).
        AckRegression,
        /// Turn a state edge into a self-loop outside the relation.
        IllegalTransition,
        /// Fast retransmit with zero duplicate ACKs observed.
        UnjustifiedDupAck,
        /// RTO retransmit after everything was acknowledged.
        UnjustifiedRto,
        /// A wakeup claiming one more frame than the ring held.
        RingLeak,
        /// Drop a frame-free record (a leaked backing).
        PoolLeak,
        /// A keyed-tier classify stripped of its match.
        DemuxMisattribution,
        /// A quota drop fabricated below the tenant's budget.
        QuotaFabrication,
    }

    impl BugClass {
        /// Every class the harness injects.
        pub const ALL: [BugClass; 8] = [
            BugClass::AckRegression,
            BugClass::IllegalTransition,
            BugClass::UnjustifiedDupAck,
            BugClass::UnjustifiedRto,
            BugClass::RingLeak,
            BugClass::PoolLeak,
            BugClass::DemuxMisattribution,
            BugClass::QuotaFabrication,
        ];

        /// Stable keyword for reports.
        pub fn label(self) -> &'static str {
            match self {
                BugClass::AckRegression => "ack_regression",
                BugClass::IllegalTransition => "illegal_transition",
                BugClass::UnjustifiedDupAck => "unjustified_dup_ack",
                BugClass::UnjustifiedRto => "unjustified_rto",
                BugClass::RingLeak => "ring_leak",
                BugClass::PoolLeak => "pool_leak",
                BugClass::DemuxMisattribution => "demux_misattribution",
                BugClass::QuotaFabrication => "quota_fabrication",
            }
        }

        /// The violation kind the injected bug must surface as.
        pub fn expected_kind(self) -> ViolationKind {
            match self {
                BugClass::AckRegression => ViolationKind::TcpAckRegression,
                BugClass::IllegalTransition => ViolationKind::TcpFsmIllegal,
                BugClass::UnjustifiedDupAck | BugClass::UnjustifiedRto => {
                    ViolationKind::RexmitUnjustified
                }
                BugClass::RingLeak => ViolationKind::RingConservation,
                BugClass::PoolLeak => ViolationKind::PoolAccounting,
                BugClass::DemuxMisattribution => ViolationKind::DemuxAttribution,
                BugClass::QuotaFabrication => ViolationKind::QuotaConservation,
            }
        }
    }

    /// Deterministic site picker: xorshift over the candidate count.
    fn pick(seed: u64, n: usize) -> usize {
        let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        (x % n as u64) as usize
    }

    /// Applies one seeded mutation of `class` to a copy of `records`.
    /// Returns `None` when the journal has no applicable site (the
    /// harness treats that as a workload-coverage failure).
    pub fn mutate(records: &[Record], class: BugClass, seed: u64) -> Option<Vec<Record>> {
        let mut out: Vec<Record> = records.to_vec();
        match class {
            BugClass::AckRegression => {
                // A non-first, non-SYN transmitted ACK, rewound by 1000.
                let mut seen: std::collections::HashSet<(Option<u16>, u16, u16)> =
                    std::collections::HashSet::new();
                let mut candidates = Vec::new();
                for (i, r) in records.iter().enumerate() {
                    if let Event::TcpSegment {
                        dir: Dir::Tx,
                        local_port,
                        remote_port,
                        flags,
                        ..
                    } = &r.event
                    {
                        let key = (r.host, *local_port, *remote_port);
                        if flags.ack && !flags.syn && !flags.rst {
                            if seen.contains(&key) {
                                candidates.push(i);
                            }
                            seen.insert(key);
                        }
                    }
                }
                let i = *candidates.get(pick(seed, candidates.len().max(1)))?;
                if let Event::TcpSegment { ack, .. } = &mut out[i].event {
                    *ack = ack.wrapping_sub(1000);
                }
                Some(out)
            }
            BugClass::IllegalTransition => {
                let candidates: Vec<usize> = records
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| matches!(r.event, Event::TcpState { .. }))
                    .map(|(i, _)| i)
                    .collect();
                let i = *candidates.get(pick(seed, candidates.len().max(1)))?;
                if let Event::TcpState { from, to, .. } = &mut out[i].event {
                    *to = *from;
                }
                Some(out)
            }
            BugClass::UnjustifiedDupAck => {
                // Insert a fast retransmit right after the first data
                // segment a host transmits — no dup ACKs exist yet.
                let (i, r) = records.iter().enumerate().find(|(_, r)| {
                    matches!(
                        r.event,
                        Event::TcpSegment {
                            dir: Dir::Tx,
                            payload,
                            flags: SegFlags { syn: false, rst: false, .. },
                            ..
                        } if payload > 0
                    )
                })?;
                let Event::TcpSegment {
                    local_port,
                    remote_port,
                    remote_ip,
                    seq,
                    ..
                } = r.event
                else {
                    unreachable!()
                };
                out.insert(
                    i + 1,
                    Record {
                        time: r.time,
                        host: r.host,
                        frame: None,
                        event: Event::TcpRexmit {
                            local_port,
                            remote_port,
                            remote_ip,
                            seq,
                            bytes: 100,
                            reason: RexmitReason::DupAck,
                        },
                    },
                );
                Some(out)
            }
            BugClass::UnjustifiedRto => {
                // Append an RTO retransmit after the run finished and
                // every transmitted byte was acknowledged.
                let r = records.iter().rev().find_map(|r| {
                    if let Event::TcpSegment {
                        dir: Dir::Tx,
                        local_port,
                        remote_port,
                        remote_ip,
                        seq,
                        payload,
                        ..
                    } = r.event
                    {
                        (payload > 0).then_some((r.host, local_port, remote_port, remote_ip, seq))
                    } else {
                        None
                    }
                })?;
                let (host, local_port, remote_port, remote_ip, seq) = r;
                let time = records.last().map(|r| r.time).unwrap_or(0);
                out.push(Record {
                    time,
                    host,
                    frame: None,
                    event: Event::TcpRexmit {
                        local_port,
                        remote_port,
                        remote_ip,
                        seq,
                        bytes: 100,
                        reason: RexmitReason::Rto,
                    },
                });
                Some(out)
            }
            BugClass::RingLeak => {
                // A wakeup that claims one more frame than it drained —
                // the slot the kernel "lost".
                let candidates: Vec<usize> = records
                    .iter()
                    .enumerate()
                    .filter(
                        |(_, r)| matches!(r.event, Event::WakeupBatch { frames, .. } if frames > 0),
                    )
                    .map(|(i, _)| i)
                    .collect();
                let i = *candidates.get(pick(seed, candidates.len().max(1)))?;
                if let Event::WakeupBatch { frames, .. } = &mut out[i].event {
                    *frames += 1;
                }
                Some(out)
            }
            BugClass::PoolLeak => {
                // Delete a frame-free that has a later pool event to
                // notice the broken chain.
                let last_pool = records.iter().rposition(|r| {
                    matches!(r.event, Event::FrameAlloc { .. } | Event::FrameFree { .. })
                })?;
                let candidates: Vec<usize> = records
                    .iter()
                    .enumerate()
                    .filter(|(i, r)| *i < last_pool && matches!(r.event, Event::FrameFree { .. }))
                    .map(|(i, _)| i)
                    .collect();
                let i = *candidates.get(pick(seed, candidates.len().max(1)))?;
                out.remove(i);
                Some(out)
            }
            BugClass::DemuxMisattribution => {
                let candidates: Vec<usize> = records
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| {
                        matches!(
                            r.event,
                            Event::DemuxClassify {
                                path: PathKind::FlowTable | PathKind::ListenTable,
                                matched: true,
                                ..
                            }
                        )
                    })
                    .map(|(i, _)| i)
                    .collect();
                let i = *candidates.get(pick(seed, candidates.len().max(1)))?;
                if let Event::DemuxClassify { matched, .. } = &mut out[i].event {
                    *matched = false;
                }
                Some(out)
            }
            BugClass::QuotaFabrication => {
                let time = records.last().map(|r| r.time).unwrap_or(0);
                out.push(Record {
                    time,
                    host: Some(0),
                    frame: None,
                    event: Event::QuotaDrop {
                        channel: 1,
                        tenant: 66,
                        in_use: 0,
                        quota: 8,
                    },
                });
                Some(out)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SegFlags;

    fn seg(
        time: Nanos,
        host: u16,
        dir: Dir,
        lp: u16,
        rp: u16,
        seq: u32,
        ack: u32,
        flags: SegFlags,
        payload: u32,
    ) -> Record {
        Record {
            time,
            host: Some(host),
            frame: None,
            event: Event::TcpSegment {
                dir,
                local_port: lp,
                remote_port: rp,
                remote_ip: [10, 0, 0, 9],
                seq,
                ack,
                wnd: 8192,
                flags,
                payload,
                wire: 40 + payload,
            },
        }
    }

    const A: SegFlags = SegFlags {
        syn: false,
        fin: false,
        rst: false,
        ack: true,
    };

    #[test]
    fn ack_regression_is_caught_and_wrap_is_not() {
        // Monotone acks, including across the 2^32 wrap: clean.
        let recs = vec![
            seg(1, 0, Dir::Tx, 80, 9000, 0, u32::MAX - 10, A, 0),
            seg(2, 0, Dir::Tx, 80, 9000, 0, 5, A, 0), // wrapped forward
            seg(3, 0, Dir::Tx, 80, 9000, 0, 5, A, 0), // repeat is fine
        ];
        let m = Monitor::new().run_over(&recs);
        assert_eq!(m.total_violations(), 0);
        assert_eq!(m.checked().tcp_acks, 3);

        // A genuine rewind violates.
        let recs = vec![
            seg(1, 0, Dir::Tx, 80, 9000, 0, 5000, A, 0),
            seg(2, 0, Dir::Tx, 80, 9000, 0, 4000, A, 0),
        ];
        let m = Monitor::new().run_over(&recs);
        assert_eq!(m.count(ViolationKind::TcpAckRegression), 1);
    }

    #[test]
    fn dup_ack_rexmit_requires_three_dups() {
        let data = |t| seg(t, 0, Dir::Tx, 80, 9000, 100, 1, A, 500);
        let dup = |t| seg(t, 0, Dir::Rx, 80, 9000, 1, 100, A, 0);
        let rex = |t| Record {
            time: t,
            host: Some(0),
            frame: None,
            event: Event::TcpRexmit {
                local_port: 80,
                remote_port: 9000,
                remote_ip: [10, 0, 0, 9],
                seq: 100,
                bytes: 500,
                reason: RexmitReason::DupAck,
            },
        };
        // Rx ack 100 seeds, then three repeats = three dups: justified.
        let recs = vec![data(1), dup(2), dup(3), dup(4), dup(5), rex(6)];
        let m = Monitor::new().run_over(&recs);
        assert_eq!(m.total_violations(), 0, "{:?}", m.violations());
        // Only one repeat: unjustified.
        let recs = vec![data(1), dup(2), dup(3), rex(4)];
        let m = Monitor::new().run_over(&recs);
        assert_eq!(m.count(ViolationKind::RexmitUnjustified), 1);
    }

    #[test]
    fn fsm_legality_and_continuity() {
        let edge = |t, from, to| Record {
            time: t,
            host: Some(0),
            frame: None,
            event: Event::TcpState {
                local_port: 80,
                remote_port: 9000,
                remote_ip: [10, 0, 0, 9],
                from,
                to,
            },
        };
        use TcpFsm::*;
        let recs = vec![
            edge(1, Closed, SynSent),
            edge(2, SynSent, Established),
            edge(3, Established, FinWait1),
            edge(4, FinWait1, FinWait2),
            edge(5, FinWait2, TimeWait),
            edge(6, TimeWait, Closed),
        ];
        let m = Monitor::new().run_over(&recs);
        assert_eq!(m.total_violations(), 0);
        assert_eq!(m.checked().transitions, 6);

        // Illegal edge and a discontinuity.
        let recs = vec![
            edge(1, Closed, SynSent),
            edge(2, SynSent, TimeWait),      // illegal
            edge(3, Established, CloseWait), // discontinuous with tracked
        ];
        let m = Monitor::new().run_over(&recs);
        assert!(m.count(ViolationKind::TcpFsmIllegal) >= 2);
    }

    #[test]
    fn ring_conservation_tracks_residency() {
        let enq = |t, depth| Record {
            time: t,
            host: Some(1),
            frame: Some(7),
            event: Event::RingEnqueue {
                channel: 3,
                depth,
                signal: true,
            },
        };
        let wake = |t, frames| Record {
            time: t,
            host: Some(1),
            frame: None,
            event: Event::WakeupBatch { channel: 3, frames },
        };
        let m = Monitor::new().run_over(&[enq(1, 1), enq(2, 2), wake(3, 2), enq(4, 1)]);
        assert_eq!(m.total_violations(), 0);
        // Draining more than resides violates.
        let m = Monitor::new().run_over(&[enq(1, 1), wake(2, 3)]);
        assert_eq!(m.count(ViolationKind::RingConservation), 1);
        // A skipped enqueue (depth jump) violates.
        let m = Monitor::new().run_over(&[enq(1, 1), enq(2, 3)]);
        assert_eq!(m.count(ViolationKind::RingConservation), 1);
    }

    #[test]
    fn pool_chain_and_drain_baseline() {
        let ev = |t, e| Record {
            time: t,
            host: None,
            frame: None,
            event: e,
        };
        let recs = vec![
            ev(1, Event::FrameAlloc { live: 4 }),
            ev(2, Event::FrameAlloc { live: 5 }),
            ev(3, Event::FrameFree { live: 4 }),
            ev(4, Event::FrameFree { live: 3 }),
        ];
        let m = Monitor::new().expect_pool_drained(true).run_over(&recs);
        assert_eq!(m.total_violations(), 0, "{:?}", m.violations());
        // Dropping a free breaks the chain at the next event.
        let recs = vec![
            ev(1, Event::FrameAlloc { live: 4 }),
            ev(2, Event::FrameAlloc { live: 5 }),
            ev(4, Event::FrameFree { live: 3 }),
        ];
        let m = Monitor::new().run_over(&recs);
        assert_eq!(m.count(ViolationKind::PoolAccounting), 1);
        // Undrained at finish (leak) violates only when asked to check.
        let recs = vec![ev(1, Event::FrameAlloc { live: 4 })];
        let m = Monitor::new().run_over(&recs);
        assert_eq!(m.total_violations(), 0);
        let m = Monitor::new().expect_pool_drained(true).run_over(&recs);
        assert_eq!(m.count(ViolationKind::PoolAccounting), 1);
    }

    #[test]
    fn demux_adjacency_and_tier_consistency() {
        let classify = |t, frame, path, matched| Record {
            time: t,
            host: Some(0),
            frame: Some(frame),
            event: Event::DemuxClassify {
                path,
                filter_instrs: 8,
                matched,
            },
        };
        let enq = |t, frame| Record {
            time: t,
            host: Some(0),
            frame: Some(frame),
            event: Event::RingEnqueue {
                channel: 1,
                depth: 1,
                signal: true,
            },
        };
        let m = Monitor::new().run_over(&[classify(1, 7, PathKind::FlowTable, true), enq(1, 7)]);
        assert_eq!(m.total_violations(), 0);
        // Keyed tier without a match.
        let m = Monitor::new().run_over(&[classify(1, 7, PathKind::ListenTable, false)]);
        assert_eq!(m.count(ViolationKind::DemuxAttribution), 1);
        // Matched classify with no adjacent placement.
        let m = Monitor::new().run_over(&[
            classify(1, 7, PathKind::FlowTable, true),
            classify(2, 8, PathKind::FlowTable, true),
            enq(2, 8),
        ]);
        assert_eq!(m.count(ViolationKind::DemuxAttribution), 1);
        // Scan misses are allowed.
        let m = Monitor::new().run_over(&[classify(1, 7, PathKind::FilterScan, false)]);
        assert_eq!(m.total_violations(), 0);
    }

    #[test]
    fn quota_drops_must_be_earned() {
        let drop = |in_use, quota| Record {
            time: 1,
            host: Some(4),
            frame: Some(1),
            event: Event::QuotaDrop {
                channel: 2,
                tenant: 66,
                in_use,
                quota,
            },
        };
        let m = Monitor::new().run_over(&[drop(8, 8)]);
        assert_eq!(m.total_violations(), 0);
        let m = Monitor::new().run_over(&[drop(3, 8)]);
        assert_eq!(m.count(ViolationKind::QuotaConservation), 1);
        let m = Monitor::new().run_over(&[drop(0, 0)]);
        assert_eq!(m.count(ViolationKind::QuotaConservation), 1);
    }

    #[test]
    fn recorder_freezes_postmortem_on_first_violation() {
        let mut recs: Vec<Record> = (0..10)
            .map(|t| Record {
                time: t,
                host: Some(0),
                frame: None,
                event: Event::NicTx { len: 60 },
            })
            .collect();
        recs.push(Record {
            time: 10,
            host: Some(4),
            frame: Some(1),
            event: Event::QuotaDrop {
                channel: 2,
                tenant: 66,
                in_use: 0,
                quota: 8,
            },
        });
        recs.push(Record {
            time: 11,
            host: Some(0),
            frame: None,
            event: Event::NicTx { len: 61 },
        });
        let m = Monitor::with_recorder(4).run_over(&recs);
        assert_eq!(m.total_violations(), 1);
        let post = m.postmortem().expect("postmortem frozen");
        // The window ends at the violating record, not the stream's end.
        assert_eq!(post.last().unwrap().time, 10);
        assert!(post.len() <= 4 * 2, "bounded by cap * hosts");
        // The live dump keeps rolling past the freeze.
        assert_eq!(m.dump().last().unwrap().time, 11);
    }

    #[test]
    fn mutation_harness_catches_every_class_and_only_on_mutants() {
        // A miniature but checker-complete journal: handshake edges,
        // data + acks + a justified rexmit, ring traffic, pool chain,
        // demux classifies, and a legitimate quota drop.
        use mutations::BugClass;
        let mut recs = Vec::new();
        let t = |recs: &mut Vec<Record>, r| recs.push(r);
        let mkseg = |time, host, dir, seq, ack, flags, payload| Record {
            time,
            host: Some(host),
            frame: None,
            event: Event::TcpSegment {
                dir,
                local_port: 80,
                remote_port: 9000,
                remote_ip: [10, 0, 0, 9],
                seq,
                ack,
                wnd: 8192,
                flags,
                payload,
                wire: 40 + payload,
            },
        };
        let s = SegFlags {
            syn: true,
            ..Default::default()
        };
        let sa = SegFlags {
            syn: true,
            ack: true,
            ..Default::default()
        };
        t(
            &mut recs,
            Record {
                time: 0,
                host: None,
                frame: None,
                event: Event::FrameAlloc { live: 1 },
            },
        );
        t(
            &mut recs,
            Record {
                time: 0,
                host: None,
                frame: None,
                event: Event::FrameAlloc { live: 2 },
            },
        );
        t(
            &mut recs,
            Record {
                time: 1,
                host: Some(0),
                frame: None,
                event: Event::TcpState {
                    local_port: 80,
                    remote_port: 9000,
                    remote_ip: [10, 0, 0, 9],
                    from: TcpFsm::Closed,
                    to: TcpFsm::SynSent,
                },
            },
        );
        t(&mut recs, mkseg(1, 0, Dir::Tx, 0, 0, s, 0));
        t(&mut recs, mkseg(2, 0, Dir::Rx, 0, 1, sa, 0));
        t(
            &mut recs,
            Record {
                time: 2,
                host: Some(0),
                frame: None,
                event: Event::TcpState {
                    local_port: 80,
                    remote_port: 9000,
                    remote_ip: [10, 0, 0, 9],
                    from: TcpFsm::SynSent,
                    to: TcpFsm::Established,
                },
            },
        );
        // Data, three dups, a justified fast rexmit.
        t(&mut recs, mkseg(3, 0, Dir::Tx, 1, 1, A, 500));
        t(&mut recs, mkseg(4, 0, Dir::Tx, 501, 1, A, 500));
        t(&mut recs, mkseg(5, 0, Dir::Rx, 1, 1, A, 0));
        t(&mut recs, mkseg(6, 0, Dir::Rx, 1, 1, A, 0));
        t(&mut recs, mkseg(7, 0, Dir::Rx, 1, 1, A, 0));
        t(&mut recs, mkseg(8, 0, Dir::Rx, 1, 1, A, 0));
        t(
            &mut recs,
            Record {
                time: 9,
                host: Some(0),
                frame: None,
                event: Event::TcpRexmit {
                    local_port: 80,
                    remote_port: 9000,
                    remote_ip: [10, 0, 0, 9],
                    seq: 1,
                    bytes: 500,
                    reason: RexmitReason::DupAck,
                },
            },
        );
        t(&mut recs, mkseg(10, 0, Dir::Rx, 1, 1001, A, 0));
        // Ring + demux traffic on the receive host.
        t(
            &mut recs,
            Record {
                time: 11,
                host: Some(1),
                frame: Some(3),
                event: Event::DemuxClassify {
                    path: PathKind::FlowTable,
                    filter_instrs: 8,
                    matched: true,
                },
            },
        );
        t(
            &mut recs,
            Record {
                time: 11,
                host: Some(1),
                frame: Some(3),
                event: Event::RingEnqueue {
                    channel: 5,
                    depth: 1,
                    signal: true,
                },
            },
        );
        t(
            &mut recs,
            Record {
                time: 12,
                host: Some(1),
                frame: None,
                event: Event::WakeupBatch {
                    channel: 5,
                    frames: 1,
                },
            },
        );
        // An earned quota drop.
        t(
            &mut recs,
            Record {
                time: 13,
                host: Some(1),
                frame: Some(4),
                event: Event::DemuxClassify {
                    path: PathKind::FlowTable,
                    filter_instrs: 8,
                    matched: true,
                },
            },
        );
        t(
            &mut recs,
            Record {
                time: 13,
                host: Some(1),
                frame: Some(4),
                event: Event::QuotaDrop {
                    channel: 5,
                    tenant: 66,
                    in_use: 8,
                    quota: 8,
                },
            },
        );
        // Pool drains.
        t(
            &mut recs,
            Record {
                time: 14,
                host: None,
                frame: None,
                event: Event::FrameFree { live: 1 },
            },
        );
        t(
            &mut recs,
            Record {
                time: 14,
                host: None,
                frame: None,
                event: Event::FrameFree { live: 0 },
            },
        );

        let clean = Monitor::new().run_over(&recs);
        assert_eq!(clean.total_violations(), 0, "{:?}", clean.violations());

        for class in BugClass::ALL {
            let mutated = mutations::mutate(&recs, class, 42)
                .unwrap_or_else(|| panic!("no mutation site for {}", class.label()));
            let m = Monitor::new().run_over(&mutated);
            assert!(
                m.count(class.expected_kind()) >= 1,
                "{} not caught: {:?}",
                class.label(),
                m.violations()
            );
        }
    }
}
