//! `unp-trace` — observability substrate for the user-level protocol stack.
//!
//! Two halves, both deterministic:
//!
//! * **The event journal**: span-style packet-lifecycle records
//!   (`ring_enqueue`, `demux_classify`, `wakeup_batch`, `tcp_segment`,
//!   `app_deliver`, `tx_template_check`, …) carrying the simulated-time
//!   timestamp, the emitting host, and the frame id, so one frame's journey
//!   from NIC staging to application delivery can be reconstructed by
//!   joining on its id. Emission points live in every layer (`netdev`,
//!   `kernel`, `tcp`, `core`); none of them charges simulated cost or
//!   schedules events, so journaling can never perturb reproduced results.
//! * **The typed metrics registry** ([`Metrics`]): counters, gauges, and
//!   nearest-rank histograms behind enum keys instead of strings, plus
//!   per-connection and per-channel scopes that absorb the stack's
//!   scattered stats structs at teardown.
//!
//! # The streaming-observer pipeline
//!
//! Emission fans out through [`stream`]: every record is dispatched, at
//! emit time, to whatever [`Observer`]s are attached to the thread. The
//! full journal is just one observer ([`Journal`], attached by
//! [`journal_start`] / [`journal_start_bounded`]); the online conformance
//! monitor ([`monitor::Monitor`]) and the bounded [`FlightRecorder`] are
//! others, so analyses can run online in bounded memory instead of
//! post-hoc over an unbounded `Vec<Record>`.
//!
//! # Zero-overhead disabled mode
//!
//! The pipeline is double-gated. The `journal` cargo feature compiles the
//! machinery in; without it `emit` is an empty inline function and the
//! event-construction closure is never even type-checked against a live
//! sink. With the feature on, the runtime gate is a thread-local
//! observer count: a quiescent emission point costs one flag read, and
//! the closure building the event runs only while at least one observer
//! is attached. `repro-tables` golden output is byte-identical in all
//! three states (feature off / feature on / observers attached) because
//! emission is observation-only.
//!
//! # Determinism
//!
//! The simulation is single-threaded and deterministic, so the journal is
//! too: [`journal_start`] zeroes the frame-id mint and the sim clock, and
//! two identical runs produce byte-identical journals (asserted by the
//! workspace's `tests/journal.rs`).

pub mod causal;
pub mod json;
pub mod metrics;
pub mod monitor;
pub mod profile;
pub mod stream;

pub use causal::{Attribution, CausalGraph, Cause, Journey, JourneyFate, Loss};
pub use metrics::{
    ChannelScope, ConnKey, ConnScope, Ctr, Gauge, Hist, Histogram, LinkScope, Metrics, Snapshot,
    Window,
};
pub use monitor::{CheckStats, Monitor, Violation, ViolationKind};
pub use profile::{PathOutcome, PathTrace, Profile, Stage};
pub use stream::stats as stream_stats;
pub use stream::{
    attach, detach, detach_as, journal_dropped, reset_stats as reset_stream_stats, FlightRecorder,
    Journal, Observer, ObserverHandle, StreamStats,
};

/// Simulated time in nanoseconds (mirrors `unp_sim::Nanos`; this crate
/// sits below the engine and cannot import it).
pub type Nanos = u64;

/// Which demultiplexing tier handled a frame, as recorded in the journal.
/// Mirrors `unp_sim::DemuxPath` (same arms; this crate is a dependency of
/// `unp-sim`, so the kernel maps between them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathKind {
    /// Exact-match flow-table hit.
    FlowTable,
    /// Wildcard 3-tuple listen-table hit.
    ListenTable,
    /// Linear scan over the compiled filters.
    FilterScan,
    /// AN1 hardware BQI classification.
    Hardware,
}

impl PathKind {
    fn label(self) -> &'static str {
        match self {
            PathKind::FlowTable => "flow",
            PathKind::ListenTable => "listen",
            PathKind::FilterScan => "scan",
            PathKind::Hardware => "hw",
        }
    }
}

/// Direction of a TCP segment relative to the emitting host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Segment received from the wire.
    Rx,
    /// Segment built for transmission.
    Tx,
}

impl Dir {
    fn label(self) -> &'static str {
        match self {
            Dir::Rx => "rx",
            Dir::Tx => "tx",
        }
    }
}

/// Why TCP retransmitted: which detection mechanism fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RexmitReason {
    /// The retransmission timer expired.
    Rto,
    /// Three duplicate ACKs triggered a fast retransmit.
    DupAck,
}

impl RexmitReason {
    /// Journal keyword for the reason (`rto` / `dup_ack`).
    pub fn label(self) -> &'static str {
        match self {
            RexmitReason::Rto => "rto",
            RexmitReason::DupAck => "dup_ack",
        }
    }
}

/// TCP control flags of a journaled segment, compacted to the four the
/// conformance checkers reason about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SegFlags {
    /// SYN set.
    pub syn: bool,
    /// FIN set.
    pub fin: bool,
    /// RST set.
    pub rst: bool,
    /// ACK set.
    pub ack: bool,
}

impl SegFlags {
    /// Journal keyword: one letter per set flag in `s f r a` order, or
    /// `.` for none (e.g. `sa` = SYN|ACK).
    pub fn label(self) -> String {
        let mut s = String::new();
        if self.syn {
            s.push('s');
        }
        if self.fin {
            s.push('f');
        }
        if self.rst {
            s.push('r');
        }
        if self.ack {
            s.push('a');
        }
        if s.is_empty() {
            s.push('.');
        }
        s
    }
}

/// A TCP protocol state, as journaled on [`Event::TcpState`] edges.
/// Mirrors `unp_tcp::State` (this crate sits below the protocol library).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TcpFsm {
    /// No connection.
    Closed,
    /// Active open sent a SYN.
    SynSent,
    /// SYN received, SYN-ACK sent.
    SynReceived,
    /// Three-way handshake complete.
    Established,
    /// Local close sent a FIN, awaiting its ACK.
    FinWait1,
    /// Our FIN acked, awaiting the peer's FIN.
    FinWait2,
    /// Simultaneous close: FINs crossed.
    Closing,
    /// Peer's FIN received, local close pending.
    CloseWait,
    /// Passive close sent its FIN.
    LastAck,
    /// 2MSL drain after an orderly close.
    TimeWait,
}

impl TcpFsm {
    /// Journal keyword for the state (`syn_sent`, `fin_wait_1`, …).
    pub fn label(self) -> &'static str {
        match self {
            TcpFsm::Closed => "closed",
            TcpFsm::SynSent => "syn_sent",
            TcpFsm::SynReceived => "syn_received",
            TcpFsm::Established => "established",
            TcpFsm::FinWait1 => "fin_wait_1",
            TcpFsm::FinWait2 => "fin_wait_2",
            TcpFsm::Closing => "closing",
            TcpFsm::CloseWait => "close_wait",
            TcpFsm::LastAck => "last_ack",
            TcpFsm::TimeWait => "time_wait",
        }
    }
}

/// What a fault-injection layer did to a frame (or host) in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The frame was silently dropped.
    Drop,
    /// The frame was delivered twice.
    Duplicate,
    /// The frame's arrival was delayed past later traffic.
    Reorder,
    /// A frame byte was flipped in flight.
    Corrupt,
    /// The frame fell inside a scheduled link outage window.
    Outage,
    /// A host's channel rings were capped to model a slow consumer.
    RingPressure,
    /// An application process was killed at a scheduled sim time.
    Crash,
}

impl FaultKind {
    fn label(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Duplicate => "dup",
            FaultKind::Reorder => "reorder",
            FaultKind::Corrupt => "corrupt",
            FaultKind::Outage => "outage",
            FaultKind::RingPressure => "pressure",
            FaultKind::Crash => "crash",
        }
    }
}

/// A trusted-layer resource released on behalf of a dead (or vanished)
/// application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReclaimKind {
    /// A kernel channel (ring + template + flow-table entry) destroyed.
    Channel,
    /// An AN1 BQI slot freed.
    Bqi,
    /// A TCP port reservation released by the registry.
    Port,
    /// A listening socket removed by the registry.
    Listener,
    /// An in-flight handshake aborted by the registry.
    Handshake,
    /// An established connection aborted and inherited by the registry.
    Connection,
}

impl ReclaimKind {
    fn label(self) -> &'static str {
        match self {
            ReclaimKind::Channel => "channel",
            ReclaimKind::Bqi => "bqi",
            ReclaimKind::Port => "port",
            ReclaimKind::Listener => "listener",
            ReclaimKind::Handshake => "handshake",
            ReclaimKind::Connection => "connection",
        }
    }
}

/// One packet-lifecycle event. Every variant is observation-only: emitting
/// it charges no simulated cost and schedules nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A frame entered NIC receive staging (Lance) or was classified by
    /// the controller (AN1). `accepted == false` means staging overflowed
    /// and the frame was dropped on the floor.
    NicRx { len: u32, accepted: bool },
    /// A frame was put on the wire.
    NicTx { len: u32 },
    /// The wire hop of a transmitted frame, split into its two latency
    /// components: `queue` is the wait for link access (CSMA backoff /
    /// FDDI token rotation), `wire` is serialization plus propagation.
    /// Emitted at the sender; a fault-injected reorder delay is *not*
    /// included (it shows up as the gap to the receiver's `nic_rx`).
    LinkTx { queue: Nanos, wire: Nanos },
    /// The network I/O module classified a frame. `matched == false`
    /// means no channel binding claimed it (kernel-default path).
    /// `filter_instrs` is the scan-equivalent instruction count the cost
    /// model charges.
    DemuxClassify {
        path: PathKind,
        filter_instrs: u32,
        matched: bool,
    },
    /// A frame was placed into a channel's receive ring. `depth` is the
    /// ring occupancy after the push; `signal` is true when a semaphore
    /// was posted (false = batched behind a pending notification).
    RingEnqueue {
        channel: u32,
        depth: u32,
        signal: bool,
    },
    /// A frame was dropped at ring placement (oversize or ring full).
    /// `pressure == true` means the drop only happened because a fault
    /// plan's slow-consumer window clamped the ring below its real
    /// capacity — the proximate cause is injected pressure, not load.
    RingDrop { channel: u32, pressure: bool },
    /// A frame was dropped at ring placement because the owning tenant's
    /// aggregate ring-slot quota was exhausted (the channel itself still
    /// had room). Distinct from [`Event::RingDrop`] so quota enforcement
    /// is attributable to the tenant that overran its budget, and so
    /// clean runs — where no tenant ever exceeds its share — emit a
    /// byte-identical journal to the pre-quota stack. `in_use`/`quota`
    /// are the tenant's aggregate ring occupancy and budget at the drop,
    /// so the quota-conservation checker can verify the drop was earned.
    QuotaDrop {
        channel: u32,
        tenant: u64,
        in_use: u64,
        quota: u64,
    },
    /// A library wakeup consumed a batch of frames from a channel ring.
    WakeupBatch { channel: u32, frames: u32 },
    /// The protocol library processed (rx) or built (tx) one TCP segment.
    TcpSegment {
        dir: Dir,
        local_port: u16,
        remote_port: u16,
        /// Remote IPv4 address: ports alone are ambiguous once clients on
        /// different hosts pick the same ephemeral port, and the monitor
        /// must key each connection's streaming state unambiguously.
        remote_ip: [u8; 4],
        seq: u32,
        /// Acknowledgment number carried (meaningful when `flags` has
        /// `a`; the ack-monotonicity and dup-ACK checkers key on it).
        ack: u32,
        /// Advertised receive window.
        wnd: u32,
        /// Control flags ([`SegFlags::label`] in the journal line).
        flags: SegFlags,
        payload: u32,
        /// Bytes the segment occupies past the link header (IP + TCP +
        /// payload) — what the modeled per-segment cost is keyed on.
        wire: u32,
    },
    /// A TCP connection block moved between protocol states — the edges
    /// the conformance monitor checks against the legal transition
    /// relation. Constructor initialization is not an edge; `Closed` as a
    /// target covers aborts and resets from any state.
    TcpState {
        local_port: u16,
        remote_port: u16,
        /// See [`Event::TcpSegment::remote_ip`].
        remote_ip: [u8; 4],
        from: TcpFsm,
        to: TcpFsm,
    },
    /// The TCP RTT estimator took a sample.
    RttSample {
        local_port: u16,
        remote_port: u16,
        rtt: Nanos,
    },
    /// TCP retransmitted bytes (RTO fire or fast retransmit). `seq` is
    /// the first sequence number being resent (`snd_una` at the firing
    /// site); `reason` says which loss-detection mechanism fired.
    TcpRexmit {
        local_port: u16,
        remote_port: u16,
        /// See [`Event::TcpSegment::remote_ip`].
        remote_ip: [u8; 4],
        seq: u32,
        bytes: u32,
        reason: RexmitReason,
    },
    /// An out-of-order segment was held in the reassembly buffer.
    TcpOooHold {
        local_port: u16,
        remote_port: u16,
        seq: u32,
        len: u32,
    },
    /// Received bytes crossed the final boundary into the application.
    AppDeliver { conn: u64, bytes: u32 },
    /// The kernel ran the capability/template check on a transmit.
    TxTemplateCheck { channel: u32, ok: bool },
    /// The fault plan perturbed a frame (or host). `from`/`to` identify
    /// the link direction for frame faults; for `Crash`/`RingPressure`
    /// both carry the afflicted host.
    FaultInject { kind: FaultKind, from: u16, to: u16 },
    /// A corrupted frame was caught by a checksum and discarded instead
    /// of panicking or misdelivering.
    FrameCorruptDiscard { len: u32 },
    /// A frame backing buffer came alive in the thread's pool; `live` is
    /// the live-buffer count *after* the allocation. Emitted without a
    /// frame id (ids are minted after the backing exists), so the
    /// frame-join analyses ignore it; the pool-accounting checker chains
    /// consecutive `live` values to catch leaked or double-freed buffers.
    FrameAlloc { live: u64 },
    /// A frame backing buffer was released; `live` is the count after.
    FrameFree { live: u64 },
    /// A trusted layer (kernel or registry) reclaimed a resource on
    /// behalf of a dead application. `id` is the channel id, port number,
    /// BQI index, or handshake id, per `kind`.
    ResourceReclaim {
        kind: ReclaimKind,
        owner: u32,
        id: u32,
    },
}

impl Event {
    /// The event's journal keyword (first token of [`Record::line`]).
    pub fn name(&self) -> &'static str {
        match self {
            Event::NicRx { .. } => "nic_rx",
            Event::NicTx { .. } => "nic_tx",
            Event::LinkTx { .. } => "link_tx",
            Event::DemuxClassify { .. } => "demux_classify",
            Event::RingEnqueue { .. } => "ring_enqueue",
            Event::RingDrop { .. } => "ring_drop",
            Event::QuotaDrop { .. } => "quota_drop",
            Event::WakeupBatch { .. } => "wakeup_batch",
            Event::TcpSegment { .. } => "tcp_segment",
            Event::TcpState { .. } => "tcp_state",
            Event::RttSample { .. } => "rtt_sample",
            Event::TcpRexmit { .. } => "tcp_rexmit",
            Event::TcpOooHold { .. } => "tcp_ooo_hold",
            Event::AppDeliver { .. } => "app_deliver",
            Event::TxTemplateCheck { .. } => "tx_template_check",
            Event::FaultInject { .. } => "fault_inject",
            Event::FrameCorruptDiscard { .. } => "frame_corrupt_discard",
            Event::FrameAlloc { .. } => "frame_alloc",
            Event::FrameFree { .. } => "frame_free",
            Event::ResourceReclaim { .. } => "resource_reclaim",
        }
    }

    fn fields(&self) -> String {
        fn fmt_ip(ip: &[u8; 4]) -> String {
            format!("{}.{}.{}.{}", ip[0], ip[1], ip[2], ip[3])
        }
        match self {
            Event::NicRx { len, accepted } => format!("len={len} accepted={accepted}"),
            Event::NicTx { len } => format!("len={len}"),
            Event::LinkTx { queue, wire } => format!("queue={queue} wire={wire}"),
            Event::DemuxClassify {
                path,
                filter_instrs,
                matched,
            } => format!(
                "path={} instrs={filter_instrs} matched={matched}",
                path.label()
            ),
            Event::RingEnqueue {
                channel,
                depth,
                signal,
            } => format!("ch={channel} depth={depth} signal={signal}"),
            Event::RingDrop { channel, pressure } => format!("ch={channel} pressure={pressure}"),
            Event::QuotaDrop {
                channel,
                tenant,
                in_use,
                quota,
            } => format!("ch={channel} tenant={tenant} in_use={in_use} quota={quota}"),
            Event::WakeupBatch { channel, frames } => format!("ch={channel} frames={frames}"),
            Event::TcpSegment {
                dir,
                local_port,
                remote_port,
                remote_ip,
                seq,
                ack,
                wnd,
                flags,
                payload,
                wire,
            } => format!(
                "dir={} lp={local_port} rp={remote_port} rip={} seq={seq} ack={ack} wnd={wnd} \
                 flags={} payload={payload} wire={wire}",
                dir.label(),
                fmt_ip(remote_ip),
                flags.label()
            ),
            Event::TcpState {
                local_port,
                remote_port,
                remote_ip,
                from,
                to,
            } => format!(
                "lp={local_port} rp={remote_port} rip={} from={} to={}",
                fmt_ip(remote_ip),
                from.label(),
                to.label()
            ),
            Event::RttSample {
                local_port,
                remote_port,
                rtt,
            } => format!("lp={local_port} rp={remote_port} rtt={rtt}"),
            Event::TcpRexmit {
                local_port,
                remote_port,
                remote_ip,
                seq,
                bytes,
                reason,
            } => format!(
                "lp={local_port} rp={remote_port} rip={} seq={seq} bytes={bytes} reason={}",
                fmt_ip(remote_ip),
                reason.label()
            ),
            Event::TcpOooHold {
                local_port,
                remote_port,
                seq,
                len,
            } => format!("lp={local_port} rp={remote_port} seq={seq} len={len}"),
            Event::AppDeliver { conn, bytes } => format!("conn={conn} bytes={bytes}"),
            Event::TxTemplateCheck { channel, ok } => format!("ch={channel} ok={ok}"),
            Event::FaultInject { kind, from, to } => {
                format!("kind={} from={from} to={to}", kind.label())
            }
            Event::FrameCorruptDiscard { len } => format!("len={len}"),
            Event::FrameAlloc { live } => format!("live={live}"),
            Event::FrameFree { live } => format!("live={live}"),
            Event::ResourceReclaim { kind, owner, id } => {
                format!("kind={} owner={owner} id={id}", kind.label())
            }
        }
    }
}

/// One journal entry: an [`Event`] plus when, where, and (when known)
/// which frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Simulated time of emission (the engine clock, not wall time).
    pub time: Nanos,
    /// Emitting host index, when the emission site knows it.
    pub host: Option<u16>,
    /// Frame id ([`next_frame_id`] mint), when a single frame is in hand.
    pub frame: Option<u64>,
    /// What happened.
    pub event: Event,
}

impl Record {
    /// Canonical single-line text form. This is the byte-identity surface
    /// for determinism tests: `{time} h{host} f{frame} {name} {fields}`
    /// with `-` for absent host/frame.
    pub fn line(&self) -> String {
        let mut s = String::with_capacity(64);
        s.push_str(&self.time.to_string());
        s.push_str(" h");
        match self.host {
            Some(h) => s.push_str(&h.to_string()),
            None => s.push('-'),
        }
        s.push_str(" f");
        match self.frame {
            Some(f) => s.push_str(&f.to_string()),
            None => s.push('-'),
        }
        s.push(' ');
        s.push_str(self.event.name());
        s.push(' ');
        s.push_str(&self.event.fields());
        s
    }
}

/// Renders a whole journal as newline-terminated canonical lines, sorted
/// by `(time, host, frame, name, fields)` so records sharing a timestamp
/// land in a stable order — journal goldens can't flake on same-tick
/// events. Full ties keep emission order (the sort is stable). Analysis
/// passes that join by frame id ([`profile`], the bench trace join) read
/// the records slice directly in emission order; `render` is the display
/// and golden-comparison surface.
pub fn render(records: &[Record]) -> String {
    let mut order: Vec<&Record> = records.iter().collect();
    order.sort_by(|a, b| {
        a.time
            .cmp(&b.time)
            .then_with(|| a.host.cmp(&b.host))
            .then_with(|| a.frame.cmp(&b.frame))
            .then_with(|| a.event.name().cmp(b.event.name()))
            .then_with(|| a.event.fields().cmp(&b.event.fields()))
    });
    let mut out = String::new();
    for r in order {
        out.push_str(&r.line());
        out.push('\n');
    }
    out
}

/// Serializes a journal as a JSON array (hand-rolled: the workspace is
/// dependency-free by design), one object per record in emission order.
/// Field values that parse as integers or booleans are emitted bare;
/// everything else is quoted.
pub fn render_json(records: &[Record]) -> String {
    let mut out = String::from("[");
    for (i, r) in records.iter().enumerate() {
        out.push_str(if i > 0 { ",\n  " } else { "\n  " });
        out.push_str(&format!("{{\"time\": {}", r.time));
        if let Some(h) = r.host {
            out.push_str(&format!(", \"host\": {h}"));
        }
        if let Some(f) = r.frame {
            out.push_str(&format!(", \"frame\": {f}"));
        }
        out.push_str(&format!(", \"event\": \"{}\"", r.event.name()));
        for kv in r.event.fields().split(' ') {
            if let Some((k, v)) = kv.split_once('=') {
                if v.parse::<u64>().is_ok() || v == "true" || v == "false" {
                    out.push_str(&format!(", \"{k}\": {v}"));
                } else {
                    out.push_str(&format!(", \"{k}\": \"{v}\""));
                }
            }
        }
        out.push('}');
    }
    out.push_str("\n]\n");
    out
}

#[cfg(feature = "journal")]
mod active {
    use super::{stream, Event, Nanos, Record};
    use std::cell::Cell;

    thread_local! {
        static CLOCK: Cell<Nanos> = const { Cell::new(0) };
        static HOST: Cell<Option<u16>> = const { Cell::new(None) };
        static NEXT_FRAME: Cell<u64> = const { Cell::new(0) };
        static JOURNAL_HANDLE: Cell<Option<u64>> = const { Cell::new(None) };
    }

    /// Zeroes the frame-id mint, the clock, and the host scope without
    /// touching attached observers: arms a deterministic run for
    /// observer-only (journal-off) monitoring. [`journal_start`] calls
    /// this; monitor-only runs — the million-channel sweeps where a full
    /// journal is impossible — call it directly before building the
    /// world.
    pub fn reset_run() {
        NEXT_FRAME.with(|c| c.set(0));
        CLOCK.with(|c| c.set(0));
        HOST.with(|c| c.set(None));
    }

    fn start_with(j: stream::Journal) {
        if let Some(id) = JOURNAL_HANDLE.with(|c| c.take()) {
            let _ = stream::detach(stream::ObserverHandle::from_id(id));
        }
        reset_run();
        stream::reset_journal_dropped();
        let h = stream::attach(Box::new(j));
        JOURNAL_HANDLE.with(|c| c.set(Some(h.id())));
    }

    /// Starts recording: attaches a fresh unbounded journal observer
    /// (replacing any previous one) and zeroes the frame-id mint and the
    /// clock. Build the world *after* calling this so two identical runs
    /// mint identical frame ids. Other observers stay attached.
    pub fn journal_start() {
        start_with(stream::Journal::unbounded());
    }

    /// [`journal_start`], but the journal keeps only the most recent
    /// `cap` records (drop-oldest; evictions counted by
    /// [`super::journal_dropped`]) — long soaks no longer carry
    /// peak-journal memory.
    pub fn journal_start_bounded(cap: usize) {
        start_with(stream::Journal::bounded(cap));
    }

    /// Stops recording and drains the journal, shrunk to its length.
    pub fn journal_stop() -> Vec<Record> {
        let Some(id) = JOURNAL_HANDLE.with(|c| c.take()) else {
            return Vec::new();
        };
        match stream::detach_as::<stream::Journal>(stream::ObserverHandle::from_id(id)) {
            Some(j) => j.into_records(),
            None => Vec::new(),
        }
    }

    /// Whether a journal observer is currently recording on this thread.
    #[inline]
    pub fn journal_enabled() -> bool {
        JOURNAL_HANDLE.with(|c| c.get().is_some())
    }

    /// The shared record-push path behind [`emit`] and [`emit_at`]: gate
    /// first, so neither the host resolver nor the event constructor runs
    /// while quiescent (no observers attached).
    #[inline]
    fn push(host: impl FnOnce() -> Option<u16>, frame: Option<u64>, make: impl FnOnce() -> Event) {
        if !stream::any_attached() {
            return;
        }
        let rec = Record {
            time: CLOCK.with(|c| c.get()),
            host: host(),
            frame,
            event: make(),
        };
        stream::dispatch(&rec);
    }

    /// Emits an event attributed to the thread's current host scope. The
    /// closure runs only while a journal is recording.
    #[inline]
    pub fn emit(frame: Option<u64>, make: impl FnOnce() -> Event) {
        push(|| HOST.with(|c| c.get()), frame, make);
    }

    /// Emits an event with an explicit host (world-level emission sites
    /// know their host index directly).
    #[inline]
    pub fn emit_at(host: u16, frame: Option<u64>, make: impl FnOnce() -> Event) {
        push(move || Some(host), frame, make);
    }

    /// Sets the journal clock; called by the simulation engine as it
    /// advances virtual time.
    #[inline]
    pub fn set_time(t: Nanos) {
        CLOCK.with(|c| c.set(t));
    }

    /// The journal clock's current reading.
    #[inline]
    pub fn time() -> Nanos {
        CLOCK.with(|c| c.get())
    }

    /// Mints a fresh frame id. Stamped on every `Frame` at creation;
    /// clones and slices share their parent's id.
    #[inline]
    pub fn next_frame_id() -> u64 {
        NEXT_FRAME.with(|c| {
            let id = c.get();
            c.set(id + 1);
            id
        })
    }

    /// Scope guard attributing emissions from layers that don't know
    /// their host (kernel, tcp) to host `h`. Restores the previous scope
    /// on drop.
    pub struct HostScope {
        prev: Option<u16>,
    }

    /// Enters a host attribution scope.
    pub fn host_scope(h: u16) -> HostScope {
        let prev = HOST.with(|c| c.replace(Some(h)));
        HostScope { prev }
    }

    impl Drop for HostScope {
        fn drop(&mut self) {
            let prev = self.prev;
            HOST.with(|c| c.set(prev));
        }
    }
}

#[cfg(feature = "journal")]
pub use active::{
    emit, emit_at, host_scope, journal_enabled, journal_start, journal_start_bounded, journal_stop,
    next_frame_id, reset_run, set_time, time, HostScope,
};

#[cfg(not(feature = "journal"))]
mod inert {
    use super::{Event, Nanos, Record};

    /// No-op (journal feature off).
    #[inline(always)]
    pub fn journal_start() {}

    /// No-op (journal feature off).
    #[inline(always)]
    pub fn journal_start_bounded(_cap: usize) {}

    /// No-op (journal feature off).
    #[inline(always)]
    pub fn reset_run() {}

    /// No-op (journal feature off): always empty.
    #[inline(always)]
    pub fn journal_stop() -> Vec<Record> {
        Vec::new()
    }

    /// Always false (journal feature off).
    #[inline(always)]
    pub fn journal_enabled() -> bool {
        false
    }

    /// No-op (journal feature off): the closure is never called.
    #[inline(always)]
    pub fn emit(_frame: Option<u64>, _make: impl FnOnce() -> Event) {}

    /// No-op (journal feature off): the closure is never called.
    #[inline(always)]
    pub fn emit_at(_host: u16, _frame: Option<u64>, _make: impl FnOnce() -> Event) {}

    /// No-op (journal feature off).
    #[inline(always)]
    pub fn set_time(_t: Nanos) {}

    /// Always zero (journal feature off).
    #[inline(always)]
    pub fn time() -> Nanos {
        0
    }

    /// Always zero (journal feature off): frames share one inert id.
    #[inline(always)]
    pub fn next_frame_id() -> u64 {
        0
    }

    /// Inert scope guard (journal feature off).
    pub struct HostScope;

    /// No-op (journal feature off).
    #[inline(always)]
    pub fn host_scope(_h: u16) -> HostScope {
        HostScope
    }
}

#[cfg(not(feature = "journal"))]
pub use inert::{
    emit, emit_at, host_scope, journal_enabled, journal_start, journal_start_bounded, journal_stop,
    next_frame_id, reset_run, set_time, time, HostScope,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_line_is_canonical() {
        let r = Record {
            time: 12345,
            host: Some(1),
            frame: Some(7),
            event: Event::RingEnqueue {
                channel: 3,
                depth: 2,
                signal: true,
            },
        };
        assert_eq!(
            r.line(),
            "12345 h1 f7 ring_enqueue ch=3 depth=2 signal=true"
        );
        let r = Record {
            time: 0,
            host: None,
            frame: None,
            event: Event::WakeupBatch {
                channel: 3,
                frames: 4,
            },
        };
        assert_eq!(r.line(), "0 h- f- wakeup_batch ch=3 frames=4");
    }

    #[cfg(feature = "journal")]
    #[test]
    fn journal_records_between_start_and_stop() {
        // Quiescent: emissions vanish and the closure never runs.
        let mut built = 0u32;
        emit(None, || {
            built += 1;
            Event::NicTx { len: 60 }
        });
        assert_eq!(built, 0);
        assert!(!journal_enabled());

        journal_start();
        assert!(journal_enabled());
        set_time(500);
        let f = next_frame_id();
        assert_eq!(f, 0);
        {
            let _g = host_scope(2);
            emit(Some(f), || Event::NicRx {
                len: 64,
                accepted: true,
            });
        }
        emit_at(0, None, || Event::NicTx { len: 64 });
        // Host scope restored after the guard dropped.
        emit(None, || Event::NicTx { len: 1 });
        let j = journal_stop();
        assert!(!journal_enabled());
        assert_eq!(j.len(), 3);
        assert_eq!(j[0].line(), "500 h2 f0 nic_rx len=64 accepted=true");
        assert_eq!(j[1].line(), "500 h0 f- nic_tx len=64");
        assert_eq!(j[2].line(), "500 h- f- nic_tx len=1");
        // Restarting zeroes the mint.
        journal_start();
        assert_eq!(next_frame_id(), 0);
        assert_eq!(next_frame_id(), 1);
        let _ = journal_stop();
    }

    #[cfg(feature = "journal")]
    #[test]
    fn host_scopes_nest() {
        journal_start();
        {
            let _a = host_scope(1);
            {
                let _b = host_scope(2);
                emit(None, || Event::NicTx { len: 1 });
            }
            emit(None, || Event::NicTx { len: 2 });
        }
        let j = journal_stop();
        assert_eq!(j[0].host, Some(2));
        assert_eq!(j[1].host, Some(1));
    }

    #[cfg(not(feature = "journal"))]
    #[test]
    fn inert_mode_is_inert() {
        journal_start();
        assert!(!journal_enabled());
        let mut built = 0u32;
        emit(Some(1), || {
            built += 1;
            Event::NicTx { len: 60 }
        });
        assert_eq!(built, 0, "closure must not run with the feature off");
        assert_eq!(next_frame_id(), 0);
        assert_eq!(next_frame_id(), 0);
        assert!(journal_stop().is_empty());
    }

    #[test]
    fn render_joins_lines() {
        let recs = vec![
            Record {
                time: 1,
                host: None,
                frame: None,
                event: Event::NicTx { len: 5 },
            },
            Record {
                time: 2,
                host: None,
                frame: None,
                event: Event::RingDrop {
                    channel: 9,
                    pressure: false,
                },
            },
        ];
        assert_eq!(
            render(&recs),
            "1 h- f- nic_tx len=5\n2 h- f- ring_drop ch=9 pressure=false\n"
        );
    }

    #[test]
    fn render_is_stable_on_timestamp_ties() {
        let a = Record {
            time: 5,
            host: Some(1),
            frame: Some(3),
            event: Event::NicTx { len: 9 },
        };
        let b = Record {
            time: 5,
            host: Some(0),
            frame: Some(7),
            event: Event::RingDrop {
                channel: 2,
                pressure: false,
            },
        };
        // Same tick, opposite emission orders: render must agree.
        let fwd = render(&[a.clone(), b.clone()]);
        let rev = render(&[b.clone(), a.clone()]);
        assert_eq!(fwd, rev);
        assert_eq!(fwd, format!("{}\n{}\n", b.line(), a.line()));
        // The input slices themselves are untouched (joins need emission
        // order).
        let recs = [a.clone(), b.clone()];
        let _ = render(&recs);
        assert_eq!(recs[0], a);
        assert_eq!(recs[1], b);
    }

    #[test]
    fn render_json_is_shaped() {
        let recs = vec![
            Record {
                time: 10,
                host: Some(1),
                frame: Some(4),
                event: Event::DemuxClassify {
                    path: PathKind::FlowTable,
                    filter_instrs: 8,
                    matched: true,
                },
            },
            Record {
                time: 11,
                host: None,
                frame: None,
                event: Event::NicTx { len: 60 },
            },
        ];
        let j = render_json(&recs);
        assert!(j.contains("\"event\": \"demux_classify\""));
        assert!(j.contains("\"path\": \"flow\""), "labels stay quoted");
        assert!(j.contains("\"instrs\": 8"), "numbers go bare");
        assert!(j.contains("\"matched\": true"), "bools go bare");
        assert_eq!(j.matches('{').count(), 2);
        assert_eq!(j.matches('}').count(), 2);
        assert!(j.trim_end().ends_with(']'));
    }
}
