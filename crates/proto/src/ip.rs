//! The IP library: end-host routing, fragmentation, and reassembly.
//!
//! Like the paper's IP library, this implements end-host functions only —
//! "our IP library does not implement the functions required for handling
//! gateway traffic" — so there is no forwarding path; datagrams are either
//! for us or emitted by us.

use std::collections::HashMap;

use unp_wire::{IpProtocol, Ipv4Addr, Ipv4Packet, Ipv4Repr, WireError, IPV4_HEADER_LEN};

use crate::Nanos;

/// Reassembly timeout: 30 s (BSD-era default range 15–60 s).
pub const REASSEMBLY_TIMEOUT: Nanos = 30_000_000_000;
/// Maximum buffered reassemblies before the oldest is evicted.
pub const MAX_REASSEMBLIES: usize = 16;

/// Where a datagram to `dst` should be sent at the link layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NextHop {
    /// Deliver on the local network directly to the destination.
    OnLink(Ipv4Addr),
    /// Send via the default gateway.
    Gateway(Ipv4Addr),
    /// Link-level broadcast.
    Broadcast,
    /// No route (no gateway configured and off-link).
    Unreachable,
}

/// Result of processing one received IP packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IpRecv {
    /// A complete datagram for us.
    Complete {
        /// Transport protocol.
        protocol: IpProtocol,
        /// Sender address.
        src: Ipv4Addr,
        /// Destination address (ours or broadcast).
        dst: Ipv4Addr,
        /// Reassembled payload.
        payload: Vec<u8>,
    },
    /// A fragment was absorbed; more are needed.
    FragmentHeld,
    /// The packet was not addressed to us.
    NotForUs,
    /// The packet failed parsing.
    Bad(WireError),
}

#[derive(Debug)]
struct Reassembly {
    /// (offset, bytes) segments received so far.
    pieces: Vec<(usize, Vec<u8>)>,
    /// Total length once the last fragment arrives, if known.
    total_len: Option<usize>,
    protocol: IpProtocol,
    src: Ipv4Addr,
    dst: Ipv4Addr,
    deadline: Nanos,
}

impl Reassembly {
    /// Returns the payload if every byte of `[0, total_len)` is covered.
    fn try_complete(&self) -> Option<Vec<u8>> {
        let total = self.total_len?;
        let mut buf = vec![0u8; total];
        let mut covered = vec![false; total];
        for (off, bytes) in &self.pieces {
            let end = off + bytes.len();
            if end > total {
                return None; // inconsistent lengths; wait for timeout
            }
            buf[*off..end].copy_from_slice(bytes);
            covered[*off..end].iter_mut().for_each(|c| *c = true);
        }
        covered.iter().all(|&c| c).then_some(buf)
    }
}

/// Per-interface IP endpoint state.
#[derive(Debug)]
pub struct IpEndpoint {
    addr: Ipv4Addr,
    prefix_len: u8,
    gateway: Option<Ipv4Addr>,
    next_ident: u16,
    reassembling: HashMap<(Ipv4Addr, Ipv4Addr, u8, u16), Reassembly>,
}

impl IpEndpoint {
    /// Creates an endpoint with address `addr/prefix_len` and an optional
    /// default gateway.
    pub fn new(addr: Ipv4Addr, prefix_len: u8, gateway: Option<Ipv4Addr>) -> IpEndpoint {
        IpEndpoint {
            addr,
            prefix_len,
            gateway,
            next_ident: 1,
            reassembling: HashMap::new(),
        }
    }

    /// Our address.
    pub fn addr(&self) -> Ipv4Addr {
        self.addr
    }

    /// Chooses the next hop for `dst`.
    pub fn route(&self, dst: Ipv4Addr) -> NextHop {
        if dst.is_broadcast() {
            NextHop::Broadcast
        } else if dst.same_network(&self.addr, self.prefix_len) {
            NextHop::OnLink(dst)
        } else if let Some(gw) = self.gateway {
            NextHop::Gateway(gw)
        } else {
            NextHop::Unreachable
        }
    }

    /// Allocates the next datagram identification value — the same
    /// sequence [`IpEndpoint::send`] consumes, for callers that emit the
    /// header directly into a frame's headroom (zero-copy encapsulation).
    pub fn alloc_ident(&mut self) -> u16 {
        let ident = self.next_ident;
        self.next_ident = self.next_ident.wrapping_add(1).max(1);
        ident
    }

    /// Builds the IP datagram(s) carrying `payload`, fragmenting to `mtu`.
    /// Returns full packets (header + data) ready for link encapsulation.
    pub fn send(
        &mut self,
        protocol: IpProtocol,
        dst: Ipv4Addr,
        payload: &[u8],
        mtu: usize,
    ) -> Vec<Vec<u8>> {
        let ident = self.alloc_ident();
        let max_frag_payload = (mtu - IPV4_HEADER_LEN) & !7; // 8-byte aligned
        if payload.len() + IPV4_HEADER_LEN <= mtu {
            let repr = Ipv4Repr {
                ident,
                ..Ipv4Repr::simple(self.addr, dst, protocol, payload.len())
            };
            return vec![repr.build_packet(payload)];
        }
        let mut out = Vec::new();
        let mut off = 0;
        while off < payload.len() {
            let take = max_frag_payload.min(payload.len() - off);
            let more = off + take < payload.len();
            let repr = Ipv4Repr {
                ident,
                more_frags: more,
                frag_offset: off,
                ..Ipv4Repr::simple(self.addr, dst, protocol, take)
            };
            out.push(repr.build_packet(&payload[off..off + take]));
            off += take;
        }
        out
    }

    /// Zero-copy classification of one received IP packet: when `bytes`
    /// holds a complete, unfragmented datagram addressed to us, returns
    /// `(src, protocol, payload range within bytes)` without copying —
    /// exactly the `Complete` arm [`IpEndpoint::receive`] would produce
    /// for the same input. Fragments, strays, and malformed packets
    /// return `None`; callers fall back to [`IpEndpoint::receive`].
    /// Expires stale reassemblies, as `receive` would.
    pub fn receive_in_place(
        &mut self,
        bytes: &[u8],
        now: Nanos,
    ) -> Option<(Ipv4Addr, IpProtocol, std::ops::Range<usize>)> {
        self.expire(now);
        let pkt = Ipv4Packet::new_checked(bytes).ok()?;
        let dst = pkt.dst();
        if dst != self.addr && !dst.is_broadcast() {
            return None;
        }
        if pkt.more_frags() || pkt.frag_offset() != 0 {
            return None;
        }
        Some((pkt.src(), pkt.protocol(), IPV4_HEADER_LEN..pkt.total_len()))
    }

    /// Processes one received IP packet (raw bytes including the header).
    pub fn receive(&mut self, bytes: &[u8], now: Nanos) -> IpRecv {
        self.expire(now);
        let pkt = match Ipv4Packet::new_checked(bytes) {
            Ok(p) => p,
            Err(e) => return IpRecv::Bad(e),
        };
        let dst = pkt.dst();
        if dst != self.addr && !dst.is_broadcast() {
            return IpRecv::NotForUs;
        }
        let repr = Ipv4Repr::parse(&pkt);
        if !repr.more_frags && repr.frag_offset == 0 {
            return IpRecv::Complete {
                protocol: repr.protocol,
                src: repr.src,
                dst,
                payload: pkt.payload().to_vec(),
            };
        }
        // Fragment path.
        let key = (repr.src, dst, repr.protocol.to_u8(), repr.ident);
        if !self.reassembling.contains_key(&key) && self.reassembling.len() >= MAX_REASSEMBLIES {
            // Evict the oldest to bound memory.
            if let Some(oldest) = self
                .reassembling
                .iter()
                .min_by_key(|(_, r)| r.deadline)
                .map(|(k, _)| *k)
            {
                self.reassembling.remove(&oldest);
            }
        }
        let entry = self.reassembling.entry(key).or_insert_with(|| Reassembly {
            pieces: Vec::new(),
            total_len: None,
            protocol: repr.protocol,
            src: repr.src,
            dst,
            deadline: now + REASSEMBLY_TIMEOUT,
        });
        entry
            .pieces
            .push((repr.frag_offset, pkt.payload().to_vec()));
        if !repr.more_frags {
            entry.total_len = Some(repr.frag_offset + pkt.payload().len());
        }
        if let Some(payload) = entry.try_complete() {
            let r = self.reassembling.remove(&key).expect("present");
            IpRecv::Complete {
                protocol: r.protocol,
                src: r.src,
                dst: r.dst,
                payload,
            }
        } else {
            IpRecv::FragmentHeld
        }
    }

    /// Drops reassemblies past their deadline.
    fn expire(&mut self, now: Nanos) {
        self.reassembling.retain(|_, r| r.deadline > now);
    }

    /// Number of in-progress reassemblies (for tests and stats).
    pub fn reassembly_count(&self) -> usize {
        self.reassembling.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep() -> IpEndpoint {
        IpEndpoint::new(
            Ipv4Addr::new(10, 0, 0, 1),
            24,
            Some(Ipv4Addr::new(10, 0, 0, 254)),
        )
    }

    #[test]
    fn routing_decisions() {
        let e = ep();
        assert_eq!(
            e.route(Ipv4Addr::new(10, 0, 0, 9)),
            NextHop::OnLink(Ipv4Addr::new(10, 0, 0, 9))
        );
        assert_eq!(
            e.route(Ipv4Addr::new(192, 168, 1, 1)),
            NextHop::Gateway(Ipv4Addr::new(10, 0, 0, 254))
        );
        assert_eq!(e.route(Ipv4Addr::BROADCAST), NextHop::Broadcast);
        let no_gw = IpEndpoint::new(Ipv4Addr::new(10, 0, 0, 1), 24, None);
        assert_eq!(no_gw.route(Ipv4Addr::new(9, 9, 9, 9)), NextHop::Unreachable);
    }

    #[test]
    fn small_datagram_single_packet() {
        let mut e = ep();
        let pkts = e.send(IpProtocol::Udp, Ipv4Addr::new(10, 0, 0, 2), b"hi", 1500);
        assert_eq!(pkts.len(), 1);
        let mut rx = IpEndpoint::new(Ipv4Addr::new(10, 0, 0, 2), 24, None);
        match rx.receive(&pkts[0], 0) {
            IpRecv::Complete {
                protocol, payload, ..
            } => {
                assert_eq!(protocol, IpProtocol::Udp);
                assert_eq!(payload, b"hi");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fragmentation_and_reassembly_roundtrip() {
        let mut tx = ep();
        let payload: Vec<u8> = (0..4000u32).map(|i| (i % 251) as u8).collect();
        let pkts = tx.send(IpProtocol::Udp, Ipv4Addr::new(10, 0, 0, 2), &payload, 1500);
        assert!(pkts.len() >= 3);
        let mut rx = IpEndpoint::new(Ipv4Addr::new(10, 0, 0, 2), 24, None);
        let mut result = None;
        for p in &pkts {
            match rx.receive(p, 0) {
                IpRecv::Complete { payload, .. } => result = Some(payload),
                IpRecv::FragmentHeld => {}
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(result.expect("reassembled"), payload);
        assert_eq!(rx.reassembly_count(), 0);
    }

    #[test]
    fn out_of_order_fragments_reassemble() {
        let mut tx = ep();
        let payload: Vec<u8> = (0..3000u32).map(|i| (i % 7) as u8).collect();
        let mut pkts = tx.send(IpProtocol::Udp, Ipv4Addr::new(10, 0, 0, 2), &payload, 1500);
        pkts.reverse();
        let mut rx = IpEndpoint::new(Ipv4Addr::new(10, 0, 0, 2), 24, None);
        let mut result = None;
        for p in &pkts {
            if let IpRecv::Complete { payload, .. } = rx.receive(p, 0) {
                result = Some(payload);
            }
        }
        assert_eq!(result.expect("reassembled"), payload);
    }

    #[test]
    fn duplicate_fragments_harmless() {
        let mut tx = ep();
        let payload = vec![9u8; 2500];
        let pkts = tx.send(IpProtocol::Udp, Ipv4Addr::new(10, 0, 0, 2), &payload, 1500);
        let mut rx = IpEndpoint::new(Ipv4Addr::new(10, 0, 0, 2), 24, None);
        assert_eq!(rx.receive(&pkts[0], 0), IpRecv::FragmentHeld);
        assert_eq!(rx.receive(&pkts[0], 0), IpRecv::FragmentHeld);
        if let IpRecv::Complete { payload: p, .. } = rx.receive(&pkts[1], 0) {
            assert_eq!(p, payload);
        } else {
            panic!("should complete");
        }
    }

    #[test]
    fn reassembly_times_out() {
        let mut tx = ep();
        let payload = vec![1u8; 2500];
        let pkts = tx.send(IpProtocol::Udp, Ipv4Addr::new(10, 0, 0, 2), &payload, 1500);
        let mut rx = IpEndpoint::new(Ipv4Addr::new(10, 0, 0, 2), 24, None);
        assert_eq!(rx.receive(&pkts[0], 0), IpRecv::FragmentHeld);
        assert_eq!(rx.reassembly_count(), 1);
        // The final fragment arrives after the timeout: the held state is
        // gone, so it alone cannot complete.
        assert_eq!(
            rx.receive(&pkts[1], REASSEMBLY_TIMEOUT + 1),
            IpRecv::FragmentHeld
        );
    }

    #[test]
    fn not_for_us() {
        let mut tx = ep();
        let pkts = tx.send(IpProtocol::Udp, Ipv4Addr::new(10, 0, 0, 99), b"x", 1500);
        let mut rx = IpEndpoint::new(Ipv4Addr::new(10, 0, 0, 2), 24, None);
        assert_eq!(rx.receive(&pkts[0], 0), IpRecv::NotForUs);
    }

    #[test]
    fn broadcast_accepted() {
        let mut tx = ep();
        let pkts = tx.send(IpProtocol::Udp, Ipv4Addr::BROADCAST, b"b", 1500);
        let mut rx = IpEndpoint::new(Ipv4Addr::new(10, 0, 0, 2), 24, None);
        assert!(matches!(rx.receive(&pkts[0], 0), IpRecv::Complete { .. }));
    }

    #[test]
    fn garbage_rejected() {
        let mut rx = ep();
        assert!(matches!(rx.receive(&[0u8; 10], 0), IpRecv::Bad(_)));
    }

    #[test]
    fn fragment_offsets_are_8_byte_aligned() {
        let mut tx = ep();
        let payload = vec![0u8; 5000];
        let pkts = tx.send(IpProtocol::Tcp, Ipv4Addr::new(10, 0, 0, 2), &payload, 576);
        for p in &pkts {
            let pkt = Ipv4Packet::new_checked(&p[..]).unwrap();
            assert_eq!(pkt.frag_offset() % 8, 0);
            assert!(p.len() <= 576);
        }
    }

    #[test]
    fn in_place_classification_matches_receive() {
        let mut tx = ep();
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        let pkts = tx.send(IpProtocol::Tcp, dst, b"abcdef", 1500);
        let mut rx = IpEndpoint::new(dst, 24, None);
        let (src, proto, range) = rx.receive_in_place(&pkts[0], 0).expect("complete");
        assert_eq!((src, proto), (Ipv4Addr::new(10, 0, 0, 1), IpProtocol::Tcp));
        let IpRecv::Complete { payload, .. } = rx.receive(&pkts[0], 0) else {
            panic!("receive disagrees with in-place classification");
        };
        assert_eq!(&pkts[0][range], &payload[..]);
        // Fragments and strays decline the fast path.
        let frags = tx.send(IpProtocol::Tcp, dst, &vec![0u8; 3000], 1500);
        assert!(rx.receive_in_place(&frags[0], 0).is_none());
        let other = tx.send(IpProtocol::Tcp, Ipv4Addr::new(10, 0, 0, 9), b"x", 1500);
        assert!(rx.receive_in_place(&other[0], 0).is_none());
    }

    #[test]
    fn reassembly_table_bounded() {
        let mut rx = ep();
        let mut tx = IpEndpoint::new(Ipv4Addr::new(10, 0, 0, 2), 24, None);
        for _ in 0..(MAX_REASSEMBLIES + 5) {
            let pkts = tx.send(
                IpProtocol::Udp,
                Ipv4Addr::new(10, 0, 0, 1),
                &vec![0u8; 2000],
                1500,
            );
            // Only deliver the first fragment of each, leaving it incomplete.
            rx.receive(&pkts[0], 0);
        }
        assert!(rx.reassembly_count() <= MAX_REASSEMBLIES);
    }
}
