//! The ARP library: cache, resolution, and reply generation.
//!
//! Behaviour matches the long-standing defaults (also smoltcp's): cached
//! entries expire after one minute, requests for one protocol address are
//! sent at most once per second, and gratuitous/unsolicited replies from
//! the wire refresh the cache.

use std::collections::HashMap;

use unp_wire::{ArpOp, ArpRepr, Ipv4Addr, MacAddr};

use crate::Nanos;

/// Entry lifetime: one minute.
pub const ARP_ENTRY_TTL: Nanos = 60_000_000_000;
/// Minimum interval between requests for the same address: one second.
pub const ARP_REQUEST_INTERVAL: Nanos = 1_000_000_000;

#[derive(Debug, Clone, Copy)]
struct Entry {
    mac: MacAddr,
    expires: Nanos,
}

/// Result of a resolution attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArpResult {
    /// The address resolved from cache.
    Hit(MacAddr),
    /// Unresolved; if `request` is set, the caller should broadcast it
    /// (rate limiting already applied).
    Miss {
        /// A who-has request to broadcast, or `None` if one was sent within
        /// the last [`ARP_REQUEST_INTERVAL`].
        request: Option<ArpRepr>,
    },
}

/// The ARP protocol state for one interface.
#[derive(Debug)]
pub struct ArpCache {
    our_mac: MacAddr,
    our_ip: Ipv4Addr,
    entries: HashMap<Ipv4Addr, Entry>,
    last_request: HashMap<Ipv4Addr, Nanos>,
}

impl ArpCache {
    /// Creates the ARP state for an interface owning `(mac, ip)`.
    pub fn new(our_mac: MacAddr, our_ip: Ipv4Addr) -> ArpCache {
        ArpCache {
            our_mac,
            our_ip,
            entries: HashMap::new(),
            last_request: HashMap::new(),
        }
    }

    /// Looks up `ip`, possibly producing a rate-limited request to send.
    pub fn resolve(&mut self, ip: Ipv4Addr, now: Nanos) -> ArpResult {
        if let Some(e) = self.entries.get(&ip) {
            if e.expires > now {
                return ArpResult::Hit(e.mac);
            }
            self.entries.remove(&ip);
        }
        let may_request = match self.last_request.get(&ip) {
            Some(&t) => now >= t + ARP_REQUEST_INTERVAL,
            None => true,
        };
        let request = may_request.then(|| {
            self.last_request.insert(ip, now);
            ArpRepr {
                op: ArpOp::Request,
                sender_mac: self.our_mac,
                sender_ip: self.our_ip,
                target_mac: MacAddr::ZERO,
                target_ip: ip,
            }
        });
        ArpResult::Miss { request }
    }

    /// Processes a received ARP packet: refreshes the cache from the sender
    /// fields and returns a reply if the packet is a request for us.
    pub fn input(&mut self, pkt: &ArpRepr, now: Nanos) -> Option<ArpRepr> {
        // Learn the sender mapping (including gratuitous ARP).
        if pkt.sender_mac.is_unicast() && !pkt.sender_ip.is_unspecified() {
            self.entries.insert(
                pkt.sender_ip,
                Entry {
                    mac: pkt.sender_mac,
                    expires: now + ARP_ENTRY_TTL,
                },
            );
            self.last_request.remove(&pkt.sender_ip);
        }
        match pkt.op {
            ArpOp::Request if pkt.target_ip == self.our_ip => Some(ArpRepr {
                op: ArpOp::Reply,
                sender_mac: self.our_mac,
                sender_ip: self.our_ip,
                target_mac: pkt.sender_mac,
                target_ip: pkt.sender_ip,
            }),
            _ => None,
        }
    }

    /// Number of live cache entries (expired ones may linger until touched).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts a static entry (used by tests and by the registry to seed
    /// well-known peers).
    pub fn insert_static(&mut self, ip: Ipv4Addr, mac: MacAddr) {
        self.entries.insert(
            ip,
            Entry {
                mac,
                expires: Nanos::MAX,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: Nanos = 1_000_000_000;

    fn cache() -> ArpCache {
        ArpCache::new(MacAddr::from_host_index(1), Ipv4Addr::new(10, 0, 0, 1))
    }

    #[test]
    fn miss_generates_request_then_rate_limits() {
        let mut c = cache();
        let peer = Ipv4Addr::new(10, 0, 0, 2);
        let ArpResult::Miss { request: Some(req) } = c.resolve(peer, 0) else {
            panic!("expected miss with request");
        };
        assert_eq!(req.op, ArpOp::Request);
        assert_eq!(req.target_ip, peer);
        // Second resolve within 1 s: no request.
        assert_eq!(c.resolve(peer, SEC / 2), ArpResult::Miss { request: None });
        // After the interval: request again.
        let ArpResult::Miss { request: Some(_) } = c.resolve(peer, SEC) else {
            panic!("expected rate limit to expire");
        };
    }

    #[test]
    fn reply_populates_cache() {
        let mut c = cache();
        let peer_ip = Ipv4Addr::new(10, 0, 0, 2);
        let peer_mac = MacAddr::from_host_index(2);
        let reply = ArpRepr {
            op: ArpOp::Reply,
            sender_mac: peer_mac,
            sender_ip: peer_ip,
            target_mac: c.our_mac,
            target_ip: c.our_ip,
        };
        assert_eq!(c.input(&reply, 0), None);
        assert_eq!(c.resolve(peer_ip, 1), ArpResult::Hit(peer_mac));
    }

    #[test]
    fn entries_expire_after_one_minute() {
        let mut c = cache();
        let peer_ip = Ipv4Addr::new(10, 0, 0, 2);
        let peer_mac = MacAddr::from_host_index(2);
        c.input(
            &ArpRepr {
                op: ArpOp::Reply,
                sender_mac: peer_mac,
                sender_ip: peer_ip,
                target_mac: c.our_mac,
                target_ip: c.our_ip,
            },
            0,
        );
        assert_eq!(c.resolve(peer_ip, 59 * SEC), ArpResult::Hit(peer_mac));
        assert!(matches!(
            c.resolve(peer_ip, 61 * SEC),
            ArpResult::Miss { request: Some(_) }
        ));
    }

    #[test]
    fn request_for_us_answered_and_learned() {
        let mut c = cache();
        let asker_mac = MacAddr::from_host_index(3);
        let asker_ip = Ipv4Addr::new(10, 0, 0, 3);
        let req = ArpRepr {
            op: ArpOp::Request,
            sender_mac: asker_mac,
            sender_ip: asker_ip,
            target_mac: MacAddr::ZERO,
            target_ip: c.our_ip,
        };
        let reply = c.input(&req, 0).expect("should answer");
        assert_eq!(reply.op, ArpOp::Reply);
        assert_eq!(reply.target_mac, asker_mac);
        assert_eq!(reply.sender_ip, c.our_ip);
        // We also learned the asker's mapping.
        assert_eq!(c.resolve(asker_ip, 1), ArpResult::Hit(asker_mac));
    }

    #[test]
    fn request_for_someone_else_ignored_but_learned() {
        let mut c = cache();
        let req = ArpRepr {
            op: ArpOp::Request,
            sender_mac: MacAddr::from_host_index(3),
            sender_ip: Ipv4Addr::new(10, 0, 0, 3),
            target_mac: MacAddr::ZERO,
            target_ip: Ipv4Addr::new(10, 0, 0, 99),
        };
        assert_eq!(c.input(&req, 0), None);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn static_entries_never_expire() {
        let mut c = cache();
        let ip = Ipv4Addr::new(10, 0, 0, 50);
        let mac = MacAddr::from_host_index(50);
        c.insert_static(ip, mac);
        assert_eq!(c.resolve(ip, u64::MAX - 1), ArpResult::Hit(mac));
    }
}
