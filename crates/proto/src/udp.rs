//! The UDP library: port table, datagram build/dispatch.
//!
//! UDP is deliberately simple — the paper notes that "UDP is an unreliable
//! datagram service, and is easier to implement than a protocol like TCP",
//! which is why it alone was insufficient to prove the user-level thesis.
//! It is still a first-class protocol library here (protocol coexistence
//! is one of the paper's motivations).

use std::collections::{HashMap, VecDeque};

use unp_wire::{Ipv4Addr, UdpPacket, UdpRepr, WireError};

/// A datagram delivered to a bound port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpDatagram {
    /// Sender address.
    pub src: Ipv4Addr,
    /// Sender port.
    pub src_port: u16,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// Outcome of a received UDP packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UdpRecv {
    /// Queued on a bound port.
    Delivered {
        /// The receiving local port.
        port: u16,
    },
    /// No listener: the caller should emit ICMP port unreachable.
    PortUnreachable,
    /// Parse or checksum failure; dropped.
    Bad(WireError),
}

/// Per-endpoint UDP state: bound ports and their receive queues.
#[derive(Debug, Default)]
pub struct UdpLayer {
    bound: HashMap<u16, VecDeque<UdpDatagram>>,
}

impl UdpLayer {
    /// Creates an empty layer.
    pub fn new() -> UdpLayer {
        UdpLayer::default()
    }

    /// Binds a port. Returns false if already bound.
    pub fn bind(&mut self, port: u16) -> bool {
        if self.bound.contains_key(&port) {
            return false;
        }
        self.bound.insert(port, VecDeque::new());
        true
    }

    /// Releases a port and its queued datagrams.
    pub fn unbind(&mut self, port: u16) -> bool {
        self.bound.remove(&port).is_some()
    }

    /// True if `port` is bound.
    pub fn is_bound(&self, port: u16) -> bool {
        self.bound.contains_key(&port)
    }

    /// Builds an outgoing datagram (UDP header + payload) with checksum.
    pub fn send(
        &self,
        src: Ipv4Addr,
        src_port: u16,
        dst: Ipv4Addr,
        dst_port: u16,
        payload: &[u8],
    ) -> Vec<u8> {
        UdpRepr { src_port, dst_port }.build_datagram(src, dst, payload)
    }

    /// Processes a received UDP packet (the IP payload).
    pub fn receive(&mut self, src: Ipv4Addr, dst: Ipv4Addr, bytes: &[u8]) -> UdpRecv {
        let pkt = match UdpPacket::new_checked(bytes) {
            Ok(p) => p,
            Err(e) => return UdpRecv::Bad(e),
        };
        if !pkt.verify_checksum(src, dst) {
            return UdpRecv::Bad(WireError::BadChecksum);
        }
        let port = pkt.dst_port();
        match self.bound.get_mut(&port) {
            Some(q) => {
                q.push_back(UdpDatagram {
                    src,
                    src_port: pkt.src_port(),
                    payload: pkt.payload().to_vec(),
                });
                UdpRecv::Delivered { port }
            }
            None => UdpRecv::PortUnreachable,
        }
    }

    /// Dequeues the next datagram for `port`.
    pub fn recv_from(&mut self, port: u16) -> Option<UdpDatagram> {
        self.bound.get_mut(&port)?.pop_front()
    }

    /// Number of datagrams queued on `port`.
    pub fn queued(&self, port: u16) -> usize {
        self.bound.get(&port).map_or(0, VecDeque::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    #[test]
    fn bind_send_receive() {
        let tx = UdpLayer::new();
        let mut rx = UdpLayer::new();
        assert!(rx.bind(53));
        let dgram = tx.send(A, 4000, B, 53, b"query");
        assert_eq!(rx.receive(A, B, &dgram), UdpRecv::Delivered { port: 53 });
        let d = rx.recv_from(53).expect("queued");
        assert_eq!(d.src, A);
        assert_eq!(d.src_port, 4000);
        assert_eq!(d.payload, b"query");
        assert!(rx.recv_from(53).is_none());
    }

    #[test]
    fn double_bind_refused() {
        let mut l = UdpLayer::new();
        assert!(l.bind(9));
        assert!(!l.bind(9));
        assert!(l.unbind(9));
        assert!(!l.unbind(9));
        assert!(l.bind(9));
    }

    #[test]
    fn unbound_port_unreachable() {
        let tx = UdpLayer::new();
        let mut rx = UdpLayer::new();
        let dgram = tx.send(A, 1, B, 7, b"x");
        assert_eq!(rx.receive(A, B, &dgram), UdpRecv::PortUnreachable);
    }

    #[test]
    fn corrupt_datagram_dropped() {
        let tx = UdpLayer::new();
        let mut rx = UdpLayer::new();
        rx.bind(7);
        let mut dgram = tx.send(A, 1, B, 7, b"x");
        let n = dgram.len();
        dgram[n - 1] ^= 0xff;
        assert_eq!(
            rx.receive(A, B, &dgram),
            UdpRecv::Bad(WireError::BadChecksum)
        );
        assert_eq!(rx.queued(7), 0);
    }

    #[test]
    fn fifo_queueing_per_port() {
        let tx = UdpLayer::new();
        let mut rx = UdpLayer::new();
        rx.bind(7);
        for i in 0..3u8 {
            let d = tx.send(A, 1, B, 7, &[i]);
            rx.receive(A, B, &d);
        }
        assert_eq!(rx.queued(7), 3);
        for i in 0..3u8 {
            assert_eq!(rx.recv_from(7).unwrap().payload, vec![i]);
        }
    }
}
