//! The ICMP library: echo responder and error generation.

use unp_wire::{IcmpPacket, IcmpRepr, WireError};

/// Processes an incoming ICMP message body. Echo requests produce a reply
/// to send back; other messages produce `Ok(None)` (delivered upward or
/// dropped per policy — we follow smoltcp in not propagating protocol
/// unreachables).
pub fn icmp_input(payload: &[u8]) -> Result<Option<IcmpRepr>, WireError> {
    let pkt = IcmpPacket::new_checked(payload)?;
    match IcmpRepr::parse(&pkt)? {
        IcmpRepr::Echo {
            request: true,
            ident,
            seq,
            data,
        } => Ok(Some(IcmpRepr::Echo {
            request: false,
            ident,
            seq,
            data,
        })),
        _ => Ok(None),
    }
}

/// Builds the "port unreachable" error for a rejected UDP datagram: the
/// original IP header plus the first 8 payload bytes, per RFC 792.
pub fn port_unreachable(original_ip_packet: &[u8]) -> IcmpRepr {
    let keep = original_ip_packet.len().min(20 + 8);
    IcmpRepr::DestUnreachable {
        code: IcmpRepr::PORT_UNREACHABLE,
        original: original_ip_packet[..keep].to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_request_answered() {
        let req = IcmpRepr::Echo {
            request: true,
            ident: 42,
            seq: 3,
            data: b"abcdefgh".to_vec(),
        };
        let reply = icmp_input(&req.build()).unwrap().expect("reply");
        match reply {
            IcmpRepr::Echo {
                request,
                ident,
                seq,
                data,
            } => {
                assert!(!request);
                assert_eq!((ident, seq), (42, 3));
                assert_eq!(data, b"abcdefgh");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn echo_reply_not_reanswered() {
        let rep = IcmpRepr::Echo {
            request: false,
            ident: 1,
            seq: 1,
            data: vec![],
        };
        assert_eq!(icmp_input(&rep.build()).unwrap(), None);
    }

    #[test]
    fn corrupt_icmp_rejected() {
        let mut bytes = IcmpRepr::Echo {
            request: true,
            ident: 1,
            seq: 1,
            data: vec![7; 4],
        }
        .build();
        bytes[9] ^= 1;
        assert!(icmp_input(&bytes).is_err());
    }

    #[test]
    fn port_unreachable_truncates_to_28_bytes() {
        let original = vec![0xabu8; 100];
        let IcmpRepr::DestUnreachable { code, original: o } = port_unreachable(&original) else {
            panic!()
        };
        assert_eq!(code, IcmpRepr::PORT_UNREACHABLE);
        assert_eq!(o.len(), 28);
    }
}
