//! `unp-proto` — the non-TCP protocol libraries: ARP, IPv4, ICMPv4, UDP.
//!
//! The paper's application links "to the TCP, IP, and ARP libraries"; UDP
//! is the protocol of the earlier Topaz user-level implementation it cites.
//! Each module here is a pure state machine: inputs are parsed packets and
//! the current time, outputs are actions (packets to emit, data to deliver)
//! that the hosting organization routes and charges for. Nothing in this
//! crate performs I/O or knows about the simulator.

pub mod arp;
pub mod icmp;
pub mod ip;
pub mod udp;

pub use arp::{ArpCache, ArpResult};
pub use icmp::icmp_input;
pub use ip::{IpEndpoint, IpRecv, NextHop};
pub use udp::UdpLayer;

/// Time in nanoseconds (shared convention with `unp-sim`).
pub type Nanos = u64;
