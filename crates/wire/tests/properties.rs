//! Property-based tests for the wire formats: build/parse identity,
//! checksum soundness, and no-panic robustness on arbitrary bytes.

use proptest::prelude::*;

use unp_wire::{
    checksum, ArpOp, ArpPacket, ArpRepr, EtherType, EthernetFrame, EthernetRepr, IcmpPacket,
    IpProtocol, Ipv4Addr, Ipv4Packet, Ipv4Repr, MacAddr, SeqNum, TcpFlags, TcpPacket, TcpRepr,
    UdpPacket, UdpRepr,
};

fn arb_ip() -> impl Strategy<Value = Ipv4Addr> {
    any::<[u8; 4]>().prop_map(Ipv4Addr)
}

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr)
}

proptest! {
    /// Internet checksum: inserting the computed checksum makes the data
    /// verify (fold to 0xffff), for any content and length.
    #[test]
    fn checksum_verifies_after_insertion(mut data in proptest::collection::vec(any::<u8>(), 2..512)) {
        let even = data.len() & !1;
        data[even - 2] = 0;
        data[even - 1] = 0;
        let ck = checksum(&data[..even]);
        data[even - 2..even].copy_from_slice(&ck.to_be_bytes());
        let sum = unp_wire::checksum::fold(unp_wire::checksum::sum_be_words(&data[..even]));
        prop_assert_eq!(sum, 0xffff);
    }

    /// Ethernet header build→parse is the identity.
    #[test]
    fn ethernet_roundtrip(dst in arb_mac(), src in arb_mac(), et in any::<u16>(),
                          payload in proptest::collection::vec(any::<u8>(), 0..256)) {
        let repr = EthernetRepr { dst, src, ethertype: EtherType::from_u16(et) };
        let frame = repr.build_frame(&payload);
        let view = EthernetFrame::new_checked(&frame[..]).unwrap();
        prop_assert_eq!(EthernetRepr::parse(&view), repr);
        prop_assert_eq!(view.payload(), &payload[..]);
    }

    /// IPv4 build→parse is the identity (checksum verified on parse).
    #[test]
    fn ipv4_roundtrip(src in arb_ip(), dst in arb_ip(), proto in any::<u8>(), ttl in 1u8..,
                      ident in any::<u16>(), payload in proptest::collection::vec(any::<u8>(), 0..512)) {
        let repr = Ipv4Repr {
            src, dst,
            protocol: IpProtocol::from_u8(proto),
            payload_len: payload.len(),
            ttl, ident,
            dont_frag: false, more_frags: false, frag_offset: 0,
        };
        let pkt = repr.build_packet(&payload);
        let view = Ipv4Packet::new_checked(&pkt[..]).unwrap();
        prop_assert_eq!(Ipv4Repr::parse(&view), repr);
        prop_assert_eq!(view.payload(), &payload[..]);
    }

    /// Any single-bit corruption of an IPv4 header is caught (checksum or
    /// structural validation).
    #[test]
    fn ipv4_header_bitflip_detected(src in arb_ip(), dst in arb_ip(),
                                    byte in 0usize..20, bit in 0u8..8) {
        let repr = Ipv4Repr::simple(src, dst, IpProtocol::Tcp, 8);
        let mut pkt = repr.build_packet(&[0u8; 8]);
        pkt[byte] ^= 1 << bit;
        match Ipv4Packet::new_checked(&pkt[..]) {
            Err(_) => {} // caught
            Ok(v) => {
                // A flip in the checksum-covered region must not verify;
                // the only acceptable parse is if nothing material changed
                // (impossible for a single flip) — so require detection.
                prop_assert!(false, "undetected corruption at byte {byte} bit {bit}: {:?}", Ipv4Repr::parse(&v));
            }
        }
    }

    /// TCP segment build→parse identity, checksum included.
    #[test]
    fn tcp_roundtrip(src in arb_ip(), dst in arb_ip(), sport in any::<u16>(), dport in any::<u16>(),
                     seq in any::<u32>(), ack in any::<u32>(), flags in 0u8..64, window in any::<u16>(),
                     mss in proptest::option::of(1u16..), payload in proptest::collection::vec(any::<u8>(), 0..600)) {
        let repr = TcpRepr {
            src_port: sport, dst_port: dport,
            seq: SeqNum(seq), ack_num: SeqNum(ack),
            flags: TcpFlags::from_u8(flags),
            window, mss,
        };
        let seg = repr.build_segment(src, dst, &payload);
        let view = TcpPacket::new_checked(&seg[..]).unwrap();
        prop_assert!(view.verify_checksum(src, dst));
        prop_assert_eq!(TcpRepr::parse(&view), repr);
        prop_assert_eq!(view.payload(), &payload[..]);
    }

    /// Any payload corruption of a TCP segment fails checksum verification
    /// (single byte change; the Internet checksum catches all 1-byte errors).
    #[test]
    fn tcp_payload_corruption_detected(src in arb_ip(), dst in arb_ip(),
                                       payload in proptest::collection::vec(any::<u8>(), 1..256),
                                       which in any::<proptest::sample::Index>(), delta in 1u8..) {
        let repr = TcpRepr {
            src_port: 1, dst_port: 2, seq: SeqNum(3), ack_num: SeqNum(4),
            flags: TcpFlags::ack(), window: 100, mss: None,
        };
        let mut seg = repr.build_segment(src, dst, &payload);
        let idx = 20 + which.index(payload.len());
        seg[idx] = seg[idx].wrapping_add(delta);
        let view = TcpPacket::new_checked(&seg[..]).unwrap();
        prop_assert!(!view.verify_checksum(src, dst));
    }

    /// UDP build→parse identity.
    #[test]
    fn udp_roundtrip(src in arb_ip(), dst in arb_ip(), sport in any::<u16>(), dport in any::<u16>(),
                     payload in proptest::collection::vec(any::<u8>(), 0..600)) {
        let repr = UdpRepr { src_port: sport, dst_port: dport };
        let d = repr.build_datagram(src, dst, &payload);
        let view = UdpPacket::new_checked(&d[..]).unwrap();
        prop_assert!(view.verify_checksum(src, dst));
        prop_assert_eq!(UdpRepr::parse(&view), repr);
        prop_assert_eq!(view.payload(), &payload[..]);
    }

    /// ARP build→parse identity.
    #[test]
    fn arp_roundtrip(smac in arb_mac(), sip in arb_ip(), tmac in arb_mac(), tip in arb_ip(),
                     is_req in any::<bool>()) {
        let repr = ArpRepr {
            op: if is_req { ArpOp::Request } else { ArpOp::Reply },
            sender_mac: smac, sender_ip: sip,
            target_mac: tmac, target_ip: tip,
        };
        let bytes = repr.build();
        let view = ArpPacket::new_checked(&bytes[..]).unwrap();
        prop_assert_eq!(ArpRepr::parse(&view).unwrap(), repr);
    }

    /// No parser panics on arbitrary input bytes.
    #[test]
    fn parsers_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = EthernetFrame::new_checked(&bytes[..]).map(|f| (f.dst(), f.src(), f.ethertype()));
        let _ = Ipv4Packet::new_checked(&bytes[..]).map(|p| (p.src(), p.dst(), p.payload().len()));
        let _ = TcpPacket::new_checked(&bytes[..]).map(|p| (p.seq(), p.mss_option(), p.payload().len()));
        let _ = UdpPacket::new_checked(&bytes[..]).map(|p| p.payload().len());
        let _ = ArpPacket::new_checked(&bytes[..]).map(|p| p.op());
        let _ = IcmpPacket::new_checked(&bytes[..]).map(|p| p.icmp_type());
        let _ = unp_wire::An1Frame::new_checked(&bytes[..]).map(|f| (f.bqi(), f.announce()));
    }

    /// Sequence-number comparison is a strict total order within any
    /// half-space window, and dist is antisymmetric.
    #[test]
    fn seqnum_ordering_laws(base in any::<u32>(), a_off in 0u32..0x7fff_ffff, b_off in 0u32..0x7fff_ffff) {
        let base = SeqNum(base);
        let a = base + a_off;
        let b = base + b_off;
        prop_assert_eq!(a.lt(b), a_off < b_off);
        prop_assert_eq!(a.le(b), a_off <= b_off);
        prop_assert_eq!(a.dist(b), -(b.dist(a)));
        prop_assert_eq!(a.max(b).0, if a_off >= b_off { a.0 } else { b.0 });
    }
}
