//! `unp-wire` — wire formats for the user-level network protocol stack.
//!
//! This crate implements the packet formats used throughout the reproduction
//! of *"Implementing Network Protocols at User Level"* (Thekkath et al.,
//! SIGCOMM '93): Ethernet II framing, the DEC SRC AN1 link format (including
//! the **buffer queue index** field that the paper's hardware demultiplexing
//! scheme relies on), ARP, IPv4, ICMPv4, UDP, and TCP.
//!
//! All parsers are zero-allocation views over `&[u8]`; all emitters write
//! into caller-provided buffers (mbuf-style headroom friendly). Headers can
//! also be converted to/from owned `*Repr` structs for convenience in the
//! protocol state machines.

pub mod an1;
pub mod arp;
pub mod checksum;
pub mod ether;
pub mod flow;
pub mod icmp;
pub mod ipv4;
pub mod seq;
pub mod tcp;
pub mod udp;

pub use an1::{An1Frame, An1Repr, AN1_HEADER_LEN};
pub use arp::{ArpOp, ArpPacket, ArpRepr, ARP_PACKET_LEN};
pub use checksum::{checksum, checksum_add, checksum_incremental_u16, pseudo_header_sum};
pub use ether::{
    EtherType, EthernetFrame, EthernetRepr, ETHERNET_HEADER_LEN, ETHERNET_MAX_PAYLOAD,
    ETHERNET_MIN_FRAME,
};
pub use flow::{FlowKey, ListenKey};
pub use icmp::{IcmpPacket, IcmpRepr, IcmpType};
pub use ipv4::{IpProtocol, Ipv4Packet, Ipv4Repr, IPV4_HEADER_LEN};
pub use seq::SeqNum;
pub use tcp::{TcpFlags, TcpPacket, TcpRepr, TCP_HEADER_LEN};
pub use udp::{UdpPacket, UdpRepr, UDP_HEADER_LEN};

use core::fmt;

/// Errors arising from parsing or emitting wire formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer is too short to contain the claimed structure.
    Truncated,
    /// A checksum did not verify.
    BadChecksum,
    /// A length, version, or type field holds an unsupported value.
    Malformed,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "buffer truncated"),
            WireError::BadChecksum => write!(f, "bad checksum"),
            WireError::Malformed => write!(f, "malformed field"),
        }
    }
}

impl std::error::Error for WireError {}

/// Result alias for wire operations.
pub type Result<T> = core::result::Result<T, WireError>;

/// A 48-bit IEEE 802 MAC address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);
    /// The all-zero address, used as "unspecified".
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Constructs a locally-administered unicast address from a host index.
    pub fn from_host_index(idx: u32) -> MacAddr {
        let b = idx.to_be_bytes();
        MacAddr([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }

    /// True if this is the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// True if the multicast (group) bit is set (includes broadcast).
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// True if this is a specified, non-multicast address.
    pub fn is_unicast(&self) -> bool {
        !self.is_multicast() && *self != Self::ZERO
    }
}

impl fmt::Debug for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// An IPv4 address. A thin wrapper so we control formatting and byte order.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Ipv4Addr(pub [u8; 4]);

impl Ipv4Addr {
    /// `255.255.255.255`
    pub const BROADCAST: Ipv4Addr = Ipv4Addr([255, 255, 255, 255]);
    /// `0.0.0.0`
    pub const UNSPECIFIED: Ipv4Addr = Ipv4Addr([0, 0, 0, 0]);

    /// Constructs an address from four octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
        Ipv4Addr([a, b, c, d])
    }

    /// The address as a big-endian `u32`.
    pub fn to_u32(self) -> u32 {
        u32::from_be_bytes(self.0)
    }

    /// Builds an address from a big-endian `u32`.
    pub fn from_u32(v: u32) -> Ipv4Addr {
        Ipv4Addr(v.to_be_bytes())
    }

    /// True if this is the limited broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// True if this address is `0.0.0.0`.
    pub fn is_unspecified(&self) -> bool {
        *self == Self::UNSPECIFIED
    }

    /// True if `self` and `other` share the `prefix_len`-bit network prefix.
    pub fn same_network(&self, other: &Ipv4Addr, prefix_len: u8) -> bool {
        debug_assert!(prefix_len <= 32);
        if prefix_len == 0 {
            return true;
        }
        let mask = !0u32 << (32 - prefix_len as u32);
        (self.to_u32() & mask) == (other.to_u32() & mask)
    }
}

impl fmt::Debug for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}.{}", self.0[0], self.0[1], self.0[2], self.0[3])
    }
}

impl fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Reads a big-endian `u16` at `off`. Panics if out of range (callers bound-check).
#[inline]
pub(crate) fn get_u16(buf: &[u8], off: usize) -> u16 {
    u16::from_be_bytes([buf[off], buf[off + 1]])
}

/// Reads a big-endian `u32` at `off`.
#[inline]
pub(crate) fn get_u32(buf: &[u8], off: usize) -> u32 {
    u32::from_be_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]])
}

/// Writes a big-endian `u16` at `off`.
#[inline]
pub(crate) fn put_u16(buf: &mut [u8], off: usize, v: u16) {
    buf[off..off + 2].copy_from_slice(&v.to_be_bytes());
}

/// Writes a big-endian `u32` at `off`.
#[inline]
pub(crate) fn put_u32(buf: &mut [u8], off: usize, v: u32) {
    buf[off..off + 4].copy_from_slice(&v.to_be_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_addr_classification() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(!MacAddr::BROADCAST.is_unicast());
        let m = MacAddr::from_host_index(7);
        assert!(m.is_unicast());
        assert!(!m.is_multicast());
        assert_ne!(MacAddr::from_host_index(1), MacAddr::from_host_index(2));
    }

    #[test]
    fn mac_addr_display() {
        let m = MacAddr([0x02, 0x00, 0xde, 0xad, 0xbe, 0xef]);
        assert_eq!(format!("{m}"), "02:00:de:ad:be:ef");
    }

    #[test]
    fn ipv4_addr_roundtrip_u32() {
        let a = Ipv4Addr::new(192, 168, 1, 42);
        assert_eq!(Ipv4Addr::from_u32(a.to_u32()), a);
        assert_eq!(format!("{a}"), "192.168.1.42");
    }

    #[test]
    fn ipv4_same_network() {
        let a = Ipv4Addr::new(10, 0, 0, 1);
        let b = Ipv4Addr::new(10, 0, 0, 200);
        let c = Ipv4Addr::new(10, 0, 1, 1);
        assert!(a.same_network(&b, 24));
        assert!(!a.same_network(&c, 24));
        assert!(a.same_network(&c, 16));
        assert!(a.same_network(&c, 0));
    }

    #[test]
    fn zero_mac_is_not_unicast() {
        assert!(!MacAddr::ZERO.is_unicast());
        assert!(!MacAddr::ZERO.is_multicast());
    }

    #[test]
    fn endian_helpers() {
        let mut buf = [0u8; 8];
        put_u16(&mut buf, 1, 0xbeef);
        put_u32(&mut buf, 3, 0xdeadc0de);
        assert_eq!(get_u16(&buf, 1), 0xbeef);
        assert_eq!(get_u32(&buf, 3), 0xdeadc0de);
    }
}
