//! UDP (RFC 768).

use crate::checksum::{fold, pseudo_header_sum, sum_be_words};
use crate::{get_u16, put_u16, IpProtocol, Ipv4Addr, Result, WireError};

/// UDP header length.
pub const UDP_HEADER_LEN: usize = 8;

/// A zero-copy view of a UDP datagram.
pub struct UdpPacket<T: AsRef<[u8]>> {
    buf: T,
}

impl<T: AsRef<[u8]>> UdpPacket<T> {
    /// Wraps a buffer, verifying the length field.
    pub fn new_checked(buf: T) -> Result<UdpPacket<T>> {
        let b = buf.as_ref();
        if b.len() < UDP_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let len = usize::from(get_u16(b, 4));
        if len < UDP_HEADER_LEN || len > b.len() {
            return Err(WireError::Truncated);
        }
        Ok(UdpPacket { buf })
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        get_u16(self.buf.as_ref(), 0)
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        get_u16(self.buf.as_ref(), 2)
    }

    /// Datagram length (header + payload).
    pub fn len(&self) -> usize {
        usize::from(get_u16(self.buf.as_ref(), 4))
    }

    /// True if the length field covers only the header.
    pub fn is_empty(&self) -> bool {
        self.len() == UDP_HEADER_LEN
    }

    /// The payload, bounded by the length field.
    pub fn payload(&self) -> &[u8] {
        &self.buf.as_ref()[UDP_HEADER_LEN..self.len()]
    }

    /// Verifies the checksum against the pseudo-header. Per RFC 768 an
    /// all-zero transmitted checksum means "not computed" and passes.
    pub fn verify_checksum(&self, src: Ipv4Addr, dst: Ipv4Addr) -> bool {
        let b = &self.buf.as_ref()[..self.len()];
        if get_u16(b, 6) == 0 {
            return true;
        }
        let acc = pseudo_header_sum(src, dst, IpProtocol::Udp, b.len() as u16) + sum_be_words(b);
        fold(acc) == 0xffff
    }
}

/// Owned representation of a UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpRepr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
}

impl UdpRepr {
    /// Parses an owned representation from a checked view.
    pub fn parse<T: AsRef<[u8]>>(p: &UdpPacket<T>) -> UdpRepr {
        UdpRepr {
            src_port: p.src_port(),
            dst_port: p.dst_port(),
        }
    }

    /// Emits header + payload into `buf`, computing the checksum
    /// (always generated and validated, matching smoltcp's behaviour).
    pub fn emit(&self, buf: &mut [u8], src: Ipv4Addr, dst: Ipv4Addr, payload: &[u8]) -> Result<()> {
        let total = UDP_HEADER_LEN + payload.len();
        if buf.len() != total || total > usize::from(u16::MAX) {
            return Err(WireError::Truncated);
        }
        put_u16(buf, 0, self.src_port);
        put_u16(buf, 2, self.dst_port);
        put_u16(buf, 4, total as u16);
        put_u16(buf, 6, 0);
        buf[UDP_HEADER_LEN..].copy_from_slice(payload);
        let acc = pseudo_header_sum(src, dst, IpProtocol::Udp, total as u16) + sum_be_words(buf);
        let mut ck = !fold(acc);
        if ck == 0 {
            ck = 0xffff; // 0 is reserved for "no checksum"
        }
        put_u16(buf, 6, ck);
        Ok(())
    }

    /// Builds an owned datagram.
    pub fn build_datagram(&self, src: Ipv4Addr, dst: Ipv4Addr, payload: &[u8]) -> Vec<u8> {
        let mut v = vec![0u8; UDP_HEADER_LEN + payload.len()];
        self.emit(&mut v, src, dst, payload).expect("sized above");
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(172, 16, 0, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(172, 16, 0, 2);

    #[test]
    fn roundtrip() {
        let repr = UdpRepr {
            src_port: 5000,
            dst_port: 53,
        };
        let bytes = repr.build_datagram(SRC, DST, b"query");
        let pkt = UdpPacket::new_checked(&bytes[..]).unwrap();
        assert_eq!(UdpRepr::parse(&pkt), repr);
        assert_eq!(pkt.payload(), b"query");
        assert!(pkt.verify_checksum(SRC, DST));
    }

    #[test]
    fn corruption_detected() {
        let repr = UdpRepr {
            src_port: 1,
            dst_port: 2,
        };
        let mut bytes = repr.build_datagram(SRC, DST, b"abc");
        bytes[9] ^= 0x40;
        let pkt = UdpPacket::new_checked(&bytes[..]).unwrap();
        assert!(!pkt.verify_checksum(SRC, DST));
    }

    #[test]
    fn zero_checksum_accepted() {
        let repr = UdpRepr {
            src_port: 1,
            dst_port: 2,
        };
        let mut bytes = repr.build_datagram(SRC, DST, b"abc");
        bytes[6] = 0;
        bytes[7] = 0;
        let pkt = UdpPacket::new_checked(&bytes[..]).unwrap();
        assert!(pkt.verify_checksum(SRC, DST));
    }

    #[test]
    fn length_field_bounds_payload() {
        let repr = UdpRepr {
            src_port: 1,
            dst_port: 2,
        };
        let mut bytes = repr.build_datagram(SRC, DST, b"abc");
        bytes.extend_from_slice(&[0u8; 16]); // link padding
        let pkt = UdpPacket::new_checked(&bytes[..]).unwrap();
        assert_eq!(pkt.payload(), b"abc");
        assert!(pkt.verify_checksum(SRC, DST));
    }

    #[test]
    fn bad_length_rejected() {
        let repr = UdpRepr {
            src_port: 1,
            dst_port: 2,
        };
        let mut bytes = repr.build_datagram(SRC, DST, b"abc");
        put_u16(&mut bytes, 4, 100);
        assert_eq!(
            UdpPacket::new_checked(&bytes[..]).err(),
            Some(WireError::Truncated)
        );
    }

    #[test]
    fn empty_payload() {
        let repr = UdpRepr {
            src_port: 9,
            dst_port: 9,
        };
        let bytes = repr.build_datagram(SRC, DST, &[]);
        let pkt = UdpPacket::new_checked(&bytes[..]).unwrap();
        assert!(pkt.is_empty());
        assert!(pkt.verify_checksum(SRC, DST));
    }
}
