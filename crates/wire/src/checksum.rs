//! The Internet checksum (RFC 1071) and incremental update (RFC 1624).
//!
//! Used by IPv4 headers, ICMP, UDP, and TCP. The checksum is the 16-bit
//! one's-complement of the one's-complement sum of all 16-bit words of the
//! covered data (with an implicit zero pad byte for odd lengths).

use crate::{IpProtocol, Ipv4Addr};

/// Sums `data` as 16-bit big-endian words in end-around-carry arithmetic,
/// folding into a partial sum that can be combined with [`checksum_add`].
///
/// Returns the *unfinalized* sum (not yet complemented).
///
/// Thirty-two bytes are accumulated per iteration into four independent
/// `u64` lanes — RFC 1071 §2(C) permits summing in wider units because
/// one's-complement addition is associative, and a 32-bit word contributes
/// `(hi_word << 16) + lo_word`, which folds back to the 16-bit lane sum at
/// the end. Four accumulators break the add dependency chain so the loop
/// sustains multiple adds per cycle; a single-`u64` version loses to the
/// autovectorized 2-byte loop. The 2-byte loop handles the tail (and
/// remains available as [`sum_be_words_reference`] for differential
/// testing). No overflow: each lane gains `< 2^33` per iteration, so a
/// `u64` is safe for any slice shorter than 64 GiB.
pub fn sum_be_words(data: &[u8]) -> u32 {
    #[inline(always)]
    fn pair(c: &[u8]) -> u64 {
        // One 8-byte load; the two 32-bit halves of a big-endian u64 are
        // (w0<<16)+w1 and (w2<<16)+w3, exactly the 32-bit lane values the
        // fold below expects.
        let v = u64::from_be_bytes(c.try_into().expect("8-byte chunk"));
        (v >> 32) + (v & 0xffff_ffff)
    }
    let (mut a0, mut a1, mut a2, mut a3) = (0u64, 0u64, 0u64, 0u64);
    let mut blocks = data.chunks_exact(32);
    for c in &mut blocks {
        a0 += pair(&c[0..8]);
        a1 += pair(&c[8..16]);
        a2 += pair(&c[16..24]);
        a3 += pair(&c[24..32]);
    }
    let mut chunks = blocks.remainder().chunks_exact(8);
    for c in &mut chunks {
        a0 += pair(c);
    }
    let wide = a0 + a1 + a2 + a3;
    let acc = (wide >> 32) + (wide & 0xffff_ffff);
    let mut acc = ((acc >> 16) + (acc & 0xffff)) as u32;
    let mut tail = chunks.remainder().chunks_exact(2);
    for w in &mut tail {
        acc += u32::from(u16::from_be_bytes([w[0], w[1]]));
    }
    if let [last] = tail.remainder() {
        acc += u32::from(u16::from_be_bytes([*last, 0]));
    }
    acc
}

/// The naive 2-byte-at-a-time word sum: the reference implementation
/// [`sum_be_words`] is tested and benchmarked against.
pub fn sum_be_words_reference(data: &[u8]) -> u32 {
    let mut acc: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for w in &mut chunks {
        acc += u32::from(u16::from_be_bytes([w[0], w[1]]));
    }
    if let [last] = chunks.remainder() {
        acc += u32::from(u16::from_be_bytes([*last, 0]));
    }
    acc
}

/// Folds a 32-bit accumulator into 16 bits with end-around carry.
#[inline]
pub fn fold(mut acc: u32) -> u16 {
    while acc > 0xffff {
        acc = (acc & 0xffff) + (acc >> 16);
    }
    acc as u16
}

/// Computes the Internet checksum of `data`: the complement of the folded sum.
///
/// A verifier recomputes the checksum over data *including* the transmitted
/// checksum field and expects zero.
pub fn checksum(data: &[u8]) -> u16 {
    !fold(sum_be_words(data))
}

/// Combines two partial (unfinalized) sums.
#[inline]
pub fn checksum_add(a: u32, b: u32) -> u32 {
    a + b
}

/// The pseudo-header sum for TCP/UDP over IPv4: src, dst, zero/protocol,
/// and the transport-layer length.
pub fn pseudo_header_sum(src: Ipv4Addr, dst: Ipv4Addr, proto: IpProtocol, len: u16) -> u32 {
    let mut acc = 0u32;
    acc += u32::from(u16::from_be_bytes([src.0[0], src.0[1]]));
    acc += u32::from(u16::from_be_bytes([src.0[2], src.0[3]]));
    acc += u32::from(u16::from_be_bytes([dst.0[0], dst.0[1]]));
    acc += u32::from(u16::from_be_bytes([dst.0[2], dst.0[3]]));
    acc += u32::from(proto.to_u8());
    acc += u32::from(len);
    acc
}

/// Computes a transport checksum over a pseudo-header plus payload bytes
/// (header and data contiguous in `segment`).
pub fn transport_checksum(src: Ipv4Addr, dst: Ipv4Addr, proto: IpProtocol, segment: &[u8]) -> u16 {
    let acc = pseudo_header_sum(src, dst, proto, segment.len() as u16) + sum_be_words(segment);
    !fold(acc)
}

/// RFC 1624 incremental checksum update: given the old checksum of a
/// structure, and the change of one aligned 16-bit field from `old` to
/// `new`, returns the new checksum without re-summing the structure.
pub fn checksum_incremental_u16(old_checksum: u16, old: u16, new: u16) -> u16 {
    // HC' = ~(~HC + ~m + m')   (RFC 1624 eqn. 3)
    let acc = u32::from(!old_checksum) + u32::from(!old) + u32::from(new);
    !fold(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // The classic example from RFC 1071 §3: 00 01 f2 03 f4 f5 f6 f7.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        let sum = fold(sum_be_words(&data));
        assert_eq!(sum, 0xddf2);
        assert_eq!(checksum(&data), !0xddf2);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(checksum(&[0xab]), checksum(&[0xab, 0x00]));
    }

    #[test]
    fn verify_of_checksummed_data_is_zero() {
        let mut data = vec![1u8, 2, 3, 4, 5, 6, 7, 8, 9, 10, 0, 0];
        let ck = checksum(&data[..]);
        data[10..12].copy_from_slice(&ck.to_be_bytes());
        assert_eq!(fold(sum_be_words(&data)), 0xffff);
    }

    #[test]
    fn known_ipv4_header_checksum() {
        // Example IPv4 header widely used in checksum documentation
        // (wikipedia): checksum field = 0xb861.
        let hdr = [
            0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8,
            0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7,
        ];
        assert_eq!(checksum(&hdr), 0xb861);
    }

    #[test]
    fn incremental_update_matches_recompute() {
        let mut data = vec![0u8; 32];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i * 7 + 3) as u8;
        }
        let old_ck = checksum(&data);
        // Change the 16-bit field at offset 6.
        let old_field = u16::from_be_bytes([data[6], data[7]]);
        let new_field = 0x1234u16;
        data[6..8].copy_from_slice(&new_field.to_be_bytes());
        let recomputed = checksum(&data);
        let incremental = checksum_incremental_u16(old_ck, old_field, new_field);
        assert_eq!(incremental, recomputed);
    }

    #[test]
    fn wide_sum_matches_reference_on_random_buffers() {
        // Deterministic xorshift stream; covers every length 0..=130
        // (all tail shapes: 0–7 leftover bytes, odd and even) plus the
        // Ethernet-MTU sizes the hot path actually sees.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let lens: Vec<usize> = (0..=130).chain([1459, 1460, 1499, 1500]).collect();
        for len in lens {
            let data: Vec<u8> = (0..len).map(|_| next() as u8).collect();
            assert_eq!(
                fold(sum_be_words(&data)),
                fold(sum_be_words_reference(&data)),
                "folded sums diverged at len {len}"
            );
            assert_eq!(
                checksum(&data),
                !fold(sum_be_words_reference(&data)),
                "checksum diverged at len {len}"
            );
        }
    }

    #[test]
    fn wide_sum_all_ones_saturation() {
        // All-0xff data maximizes carries out of every 16-bit lane.
        for len in [7usize, 8, 9, 15, 16, 17, 64, 1500] {
            let data = vec![0xffu8; len];
            assert_eq!(
                fold(sum_be_words(&data)),
                fold(sum_be_words_reference(&data)),
                "saturated sums diverged at len {len}"
            );
        }
    }

    #[test]
    fn pseudo_header_sum_symmetry() {
        let a = Ipv4Addr::new(10, 1, 2, 3);
        let b = Ipv4Addr::new(10, 3, 2, 1);
        // Swapping src/dst must not change the sum (addition commutes).
        assert_eq!(
            pseudo_header_sum(a, b, IpProtocol::Tcp, 99),
            pseudo_header_sum(b, a, IpProtocol::Tcp, 99)
        );
    }

    #[test]
    fn transport_checksum_detects_corruption() {
        let src = Ipv4Addr::new(192, 168, 0, 1);
        let dst = Ipv4Addr::new(192, 168, 0, 2);
        let mut seg = vec![0u8; 40];
        for (i, b) in seg.iter_mut().enumerate() {
            *b = i as u8;
        }
        let ck = transport_checksum(src, dst, IpProtocol::Udp, &seg);
        seg[20] ^= 0x01;
        let ck2 = transport_checksum(src, dst, IpProtocol::Udp, &seg);
        assert_ne!(ck, ck2);
    }
}
