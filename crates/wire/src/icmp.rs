//! ICMPv4 (RFC 792): echo request/reply and destination unreachable.
//!
//! The paper's stack (like smoltcp's) generates echo replies and uses
//! destination-unreachable for closed UDP ports.

use crate::checksum::{checksum, fold, sum_be_words};
use crate::{get_u16, put_u16, Result, WireError};

/// Minimum ICMP message length (type, code, checksum, 4-byte rest).
pub const ICMP_HEADER_LEN: usize = 8;

/// ICMP message types we understand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IcmpType {
    /// Echo reply (0).
    EchoReply,
    /// Destination unreachable (3), with code.
    DestUnreachable(u8),
    /// Echo request (8).
    EchoRequest,
    /// Anything else (type, code).
    Other(u8, u8),
}

/// A zero-copy view of an ICMP message.
pub struct IcmpPacket<T: AsRef<[u8]>> {
    buf: T,
}

impl<T: AsRef<[u8]>> IcmpPacket<T> {
    /// Wraps a buffer, verifying length and checksum.
    pub fn new_checked(buf: T) -> Result<IcmpPacket<T>> {
        let b = buf.as_ref();
        if b.len() < ICMP_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        if fold(sum_be_words(b)) != 0xffff {
            return Err(WireError::BadChecksum);
        }
        Ok(IcmpPacket { buf })
    }

    /// The message type/code.
    pub fn icmp_type(&self) -> IcmpType {
        let b = self.buf.as_ref();
        match (b[0], b[1]) {
            (0, _) => IcmpType::EchoReply,
            (3, code) => IcmpType::DestUnreachable(code),
            (8, _) => IcmpType::EchoRequest,
            (t, c) => IcmpType::Other(t, c),
        }
    }

    /// Echo identifier (meaningful for echo request/reply).
    pub fn echo_ident(&self) -> u16 {
        get_u16(self.buf.as_ref(), 4)
    }

    /// Echo sequence number.
    pub fn echo_seq(&self) -> u16 {
        get_u16(self.buf.as_ref(), 6)
    }

    /// Message body after the 8-byte header.
    pub fn payload(&self) -> &[u8] {
        &self.buf.as_ref()[ICMP_HEADER_LEN..]
    }
}

/// Owned representation of an ICMP message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IcmpRepr {
    /// Echo request or reply.
    Echo {
        /// True for requests, false for replies.
        request: bool,
        /// Identifier used to demultiplex ping sessions.
        ident: u16,
        /// Sequence number within a session.
        seq: u16,
        /// Echo payload bytes.
        data: Vec<u8>,
    },
    /// Destination unreachable carrying the offending header bytes.
    DestUnreachable {
        /// Code (3 = port unreachable).
        code: u8,
        /// Original IP header + first 8 payload bytes.
        original: Vec<u8>,
    },
}

impl IcmpRepr {
    /// Code for "port unreachable".
    pub const PORT_UNREACHABLE: u8 = 3;
    /// Code for "protocol unreachable".
    pub const PROTOCOL_UNREACHABLE: u8 = 2;

    /// Parses an owned representation from a checked view.
    pub fn parse<T: AsRef<[u8]>>(p: &IcmpPacket<T>) -> Result<IcmpRepr> {
        match p.icmp_type() {
            IcmpType::EchoRequest | IcmpType::EchoReply => Ok(IcmpRepr::Echo {
                request: p.icmp_type() == IcmpType::EchoRequest,
                ident: p.echo_ident(),
                seq: p.echo_seq(),
                data: p.payload().to_vec(),
            }),
            IcmpType::DestUnreachable(code) => Ok(IcmpRepr::DestUnreachable {
                code,
                original: p.payload().to_vec(),
            }),
            IcmpType::Other(..) => Err(WireError::Malformed),
        }
    }

    /// Builds an owned message with a valid checksum.
    pub fn build(&self) -> Vec<u8> {
        let (ty, code, rest, body): (u8, u8, [u8; 4], &[u8]) = match self {
            IcmpRepr::Echo {
                request,
                ident,
                seq,
                data,
            } => {
                let mut rest = [0u8; 4];
                rest[0..2].copy_from_slice(&ident.to_be_bytes());
                rest[2..4].copy_from_slice(&seq.to_be_bytes());
                (if *request { 8 } else { 0 }, 0, rest, data)
            }
            IcmpRepr::DestUnreachable { code, original } => (3, *code, [0u8; 4], original),
        };
        let mut v = vec![0u8; ICMP_HEADER_LEN + body.len()];
        v[0] = ty;
        v[1] = code;
        v[4..8].copy_from_slice(&rest);
        v[ICMP_HEADER_LEN..].copy_from_slice(body);
        let ck = checksum(&v);
        put_u16(&mut v, 2, ck);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_roundtrip() {
        let repr = IcmpRepr::Echo {
            request: true,
            ident: 0x1111,
            seq: 7,
            data: b"ping-data".to_vec(),
        };
        let bytes = repr.build();
        let pkt = IcmpPacket::new_checked(&bytes[..]).unwrap();
        assert_eq!(pkt.icmp_type(), IcmpType::EchoRequest);
        assert_eq!(IcmpRepr::parse(&pkt).unwrap(), repr);
    }

    #[test]
    fn echo_reply_roundtrip() {
        let repr = IcmpRepr::Echo {
            request: false,
            ident: 3,
            seq: 9,
            data: vec![],
        };
        let bytes = repr.build();
        let pkt = IcmpPacket::new_checked(&bytes[..]).unwrap();
        assert_eq!(pkt.icmp_type(), IcmpType::EchoReply);
    }

    #[test]
    fn dest_unreachable_roundtrip() {
        let repr = IcmpRepr::DestUnreachable {
            code: IcmpRepr::PORT_UNREACHABLE,
            original: vec![1, 2, 3, 4, 5, 6, 7, 8],
        };
        let bytes = repr.build();
        let pkt = IcmpPacket::new_checked(&bytes[..]).unwrap();
        assert_eq!(
            pkt.icmp_type(),
            IcmpType::DestUnreachable(IcmpRepr::PORT_UNREACHABLE)
        );
        assert_eq!(IcmpRepr::parse(&pkt).unwrap(), repr);
    }

    #[test]
    fn corruption_detected() {
        let repr = IcmpRepr::Echo {
            request: true,
            ident: 1,
            seq: 1,
            data: b"x".to_vec(),
        };
        let mut bytes = repr.build();
        bytes[8] ^= 0xff;
        assert_eq!(
            IcmpPacket::new_checked(&bytes[..]).err(),
            Some(WireError::BadChecksum)
        );
    }

    #[test]
    fn unknown_type_rejected_by_parse() {
        let mut v = vec![0u8; 8];
        v[0] = 13; // timestamp
        let ck = checksum(&v);
        put_u16(&mut v, 2, ck);
        let pkt = IcmpPacket::new_checked(&v[..]).unwrap();
        assert!(IcmpRepr::parse(&pkt).is_err());
    }
}
