//! TCP segment format (RFC 793) with the MSS option.
//!
//! The 4.3BSD-era stack that the paper reuses negotiates only the maximum
//! segment size at connection setup; window scaling, SACK, and timestamps
//! post-date it, so we support MSS and ignore (but skip correctly over)
//! unknown options.

use crate::checksum::{fold, pseudo_header_sum, sum_be_words};
use crate::{get_u16, get_u32, put_u16, put_u32, IpProtocol, Ipv4Addr, Result, SeqNum, WireError};

/// Length of a TCP header without options.
pub const TCP_HEADER_LEN: usize = 20;

/// TCP control flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags {
    /// FIN: sender is done sending.
    pub fin: bool,
    /// SYN: synchronize sequence numbers.
    pub syn: bool,
    /// RST: reset the connection.
    pub rst: bool,
    /// PSH: push data to the receiver promptly.
    pub psh: bool,
    /// ACK: the acknowledgment field is significant.
    pub ack: bool,
    /// URG: the urgent pointer is significant (parsed, otherwise ignored,
    /// as in smoltcp).
    pub urg: bool,
}

impl TcpFlags {
    /// A SYN-only flag set.
    pub const SYN: TcpFlags = TcpFlags {
        syn: true,
        fin: false,
        rst: false,
        psh: false,
        ack: false,
        urg: false,
    };

    /// Decodes from the wire byte.
    pub fn from_u8(v: u8) -> TcpFlags {
        TcpFlags {
            fin: v & 0x01 != 0,
            syn: v & 0x02 != 0,
            rst: v & 0x04 != 0,
            psh: v & 0x08 != 0,
            ack: v & 0x10 != 0,
            urg: v & 0x20 != 0,
        }
    }

    /// Encodes to the wire byte.
    pub fn to_u8(self) -> u8 {
        u8::from(self.fin)
            | u8::from(self.syn) << 1
            | u8::from(self.rst) << 2
            | u8::from(self.psh) << 3
            | u8::from(self.ack) << 4
            | u8::from(self.urg) << 5
    }

    /// Convenience constructor for ACK-bearing segments.
    pub fn ack() -> TcpFlags {
        TcpFlags {
            ack: true,
            ..TcpFlags::default()
        }
    }

    /// Convenience constructor for SYN+ACK.
    pub fn syn_ack() -> TcpFlags {
        TcpFlags {
            syn: true,
            ack: true,
            ..TcpFlags::default()
        }
    }
}

/// A zero-copy view of a TCP segment (header + payload).
pub struct TcpPacket<T: AsRef<[u8]>> {
    buf: T,
}

impl<T: AsRef<[u8]>> TcpPacket<T> {
    /// Wraps a buffer, verifying lengths. Checksum verification is separate
    /// ([`TcpPacket::verify_checksum`]) because it needs the pseudo-header.
    pub fn new_checked(buf: T) -> Result<TcpPacket<T>> {
        let b = buf.as_ref();
        if b.len() < TCP_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let data_off = usize::from(b[12] >> 4) * 4;
        if data_off < TCP_HEADER_LEN || data_off > b.len() {
            return Err(WireError::Malformed);
        }
        Ok(TcpPacket { buf })
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        get_u16(self.buf.as_ref(), 0)
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        get_u16(self.buf.as_ref(), 2)
    }

    /// Sequence number.
    pub fn seq(&self) -> SeqNum {
        SeqNum(get_u32(self.buf.as_ref(), 4))
    }

    /// Acknowledgment number.
    pub fn ack_num(&self) -> SeqNum {
        SeqNum(get_u32(self.buf.as_ref(), 8))
    }

    /// Header length in bytes (including options).
    pub fn header_len(&self) -> usize {
        usize::from(self.buf.as_ref()[12] >> 4) * 4
    }

    /// Control flags.
    pub fn flags(&self) -> TcpFlags {
        TcpFlags::from_u8(self.buf.as_ref()[13])
    }

    /// Advertised receive window.
    pub fn window(&self) -> u16 {
        get_u16(self.buf.as_ref(), 14)
    }

    /// The MSS option value, if present.
    pub fn mss_option(&self) -> Option<u16> {
        let b = self.buf.as_ref();
        let mut opts = &b[TCP_HEADER_LEN..self.header_len()];
        while let Some(&kind) = opts.first() {
            match kind {
                0 => break,             // end of options
                1 => opts = &opts[1..], // NOP
                2 => {
                    if opts.len() >= 4 && opts[1] == 4 {
                        return Some(get_u16(opts, 2));
                    }
                    return None;
                }
                _ => {
                    // Unknown option: length byte follows kind.
                    if opts.len() < 2 {
                        return None;
                    }
                    let l = usize::from(opts[1]);
                    if l < 2 || l > opts.len() {
                        return None;
                    }
                    opts = &opts[l..];
                }
            }
        }
        None
    }

    /// The segment payload.
    pub fn payload(&self) -> &[u8] {
        &self.buf.as_ref()[self.header_len()..]
    }

    /// Verifies the transport checksum against the IPv4 pseudo-header.
    pub fn verify_checksum(&self, src: Ipv4Addr, dst: Ipv4Addr) -> bool {
        let b = self.buf.as_ref();
        let acc = pseudo_header_sum(src, dst, IpProtocol::Tcp, b.len() as u16) + sum_be_words(b);
        fold(acc) == 0xffff
    }
}

/// Owned representation of a TCP segment header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpRepr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number of the first payload byte (or of the SYN/FIN).
    pub seq: SeqNum,
    /// Acknowledgment number (significant when `flags.ack`).
    pub ack_num: SeqNum,
    /// Control flags.
    pub flags: TcpFlags,
    /// Advertised receive window.
    pub window: u16,
    /// MSS option to include (normally only on SYN segments).
    pub mss: Option<u16>,
}

impl TcpRepr {
    /// Header length this representation will emit (options padded to 4 bytes).
    pub fn header_len(&self) -> usize {
        TCP_HEADER_LEN + if self.mss.is_some() { 4 } else { 0 }
    }

    /// Parses an owned representation from a checked view.
    pub fn parse<T: AsRef<[u8]>>(p: &TcpPacket<T>) -> TcpRepr {
        TcpRepr {
            src_port: p.src_port(),
            dst_port: p.dst_port(),
            seq: p.seq(),
            ack_num: p.ack_num(),
            flags: p.flags(),
            window: p.window(),
            mss: p.mss_option(),
        }
    }

    /// Emits header + payload into `buf` and fills in the checksum computed
    /// over the IPv4 pseudo-header. `buf` must be exactly
    /// `self.header_len() + payload.len()` bytes.
    pub fn emit(&self, buf: &mut [u8], src: Ipv4Addr, dst: Ipv4Addr, payload: &[u8]) -> Result<()> {
        let hlen = self.header_len();
        if buf.len() != hlen + payload.len() {
            return Err(WireError::Truncated);
        }
        put_u16(buf, 0, self.src_port);
        put_u16(buf, 2, self.dst_port);
        put_u32(buf, 4, self.seq.0);
        put_u32(buf, 8, self.ack_num.0);
        buf[12] = ((hlen / 4) as u8) << 4;
        buf[13] = self.flags.to_u8();
        put_u16(buf, 14, self.window);
        put_u16(buf, 16, 0); // checksum placeholder
        put_u16(buf, 18, 0); // urgent pointer
        if let Some(mss) = self.mss {
            buf[20] = 2;
            buf[21] = 4;
            put_u16(buf, 22, mss);
        }
        buf[hlen..].copy_from_slice(payload);
        let acc =
            pseudo_header_sum(src, dst, IpProtocol::Tcp, buf.len() as u16) + sum_be_words(buf);
        let ck = !fold(acc);
        put_u16(buf, 16, ck);
        Ok(())
    }

    /// Builds an owned segment (header + payload) with a valid checksum.
    pub fn build_segment(&self, src: Ipv4Addr, dst: Ipv4Addr, payload: &[u8]) -> Vec<u8> {
        let mut v = vec![0u8; self.header_len() + payload.len()];
        self.emit(&mut v, src, dst, payload).expect("sized above");
        v
    }

    /// Emits the header into `seg[..header_len]` for a payload that is
    /// **already in place** at `seg[header_len..]`, then fills in the
    /// checksum over the whole segment. The zero-copy counterpart of
    /// [`TcpRepr::emit`]: the caller prepends `header_len()` bytes of
    /// headroom in front of the payload and hands over the joined window,
    /// so the payload is never copied. `seg[..header_len]` must be zeroed
    /// (freshly prepended headroom is).
    pub fn emit_into(&self, seg: &mut [u8], src: Ipv4Addr, dst: Ipv4Addr) -> Result<()> {
        let hlen = self.header_len();
        if seg.len() < hlen {
            return Err(WireError::Truncated);
        }
        put_u16(seg, 0, self.src_port);
        put_u16(seg, 2, self.dst_port);
        put_u32(seg, 4, self.seq.0);
        put_u32(seg, 8, self.ack_num.0);
        seg[12] = ((hlen / 4) as u8) << 4;
        seg[13] = self.flags.to_u8();
        put_u16(seg, 14, self.window);
        put_u16(seg, 16, 0); // checksum placeholder
        put_u16(seg, 18, 0); // urgent pointer
        if let Some(mss) = self.mss {
            seg[20] = 2;
            seg[21] = 4;
            put_u16(seg, 22, mss);
        }
        let acc =
            pseudo_header_sum(src, dst, IpProtocol::Tcp, seg.len() as u16) + sum_be_words(seg);
        let ck = !fold(acc);
        put_u16(seg, 16, ck);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    #[test]
    fn emit_into_matches_build_segment() {
        let payload = b"in-place payload bytes";
        for repr in [
            sample(),
            TcpRepr {
                mss: Some(1460),
                ..sample()
            },
        ] {
            let hlen = repr.header_len();
            // The zero-copy path: payload already sits after zeroed headroom.
            let mut seg = vec![0u8; hlen + payload.len()];
            seg[hlen..].copy_from_slice(payload);
            repr.emit_into(&mut seg, SRC, DST).unwrap();
            assert_eq!(seg, repr.build_segment(SRC, DST, payload));
        }
    }

    fn sample() -> TcpRepr {
        TcpRepr {
            src_port: 1234,
            dst_port: 80,
            seq: SeqNum(0x01020304),
            ack_num: SeqNum(0x0a0b0c0d),
            flags: TcpFlags {
                ack: true,
                psh: true,
                ..TcpFlags::default()
            },
            window: 4096,
            mss: None,
        }
    }

    #[test]
    fn roundtrip_plain() {
        let repr = sample();
        let bytes = repr.build_segment(SRC, DST, b"data!");
        let pkt = TcpPacket::new_checked(&bytes[..]).unwrap();
        assert_eq!(TcpRepr::parse(&pkt), repr);
        assert_eq!(pkt.payload(), b"data!");
        assert!(pkt.verify_checksum(SRC, DST));
    }

    #[test]
    fn roundtrip_with_mss() {
        let repr = TcpRepr {
            flags: TcpFlags::SYN,
            mss: Some(1460),
            ..sample()
        };
        let bytes = repr.build_segment(SRC, DST, &[]);
        assert_eq!(bytes.len(), 24);
        let pkt = TcpPacket::new_checked(&bytes[..]).unwrap();
        assert_eq!(pkt.mss_option(), Some(1460));
        assert!(pkt.verify_checksum(SRC, DST));
        assert_eq!(TcpRepr::parse(&pkt), repr);
    }

    #[test]
    fn checksum_detects_payload_corruption() {
        let repr = sample();
        let mut bytes = repr.build_segment(SRC, DST, b"data!");
        let n = bytes.len();
        bytes[n - 1] ^= 0xff;
        let pkt = TcpPacket::new_checked(&bytes[..]).unwrap();
        assert!(!pkt.verify_checksum(SRC, DST));
    }

    #[test]
    fn checksum_covers_pseudo_header() {
        let repr = sample();
        let bytes = repr.build_segment(SRC, DST, b"data!");
        let pkt = TcpPacket::new_checked(&bytes[..]).unwrap();
        // Verifying against the wrong addresses must fail: this is what
        // catches misdelivered segments.
        assert!(!pkt.verify_checksum(SRC, Ipv4Addr::new(10, 0, 0, 3)));
    }

    #[test]
    fn flags_roundtrip_all_combinations() {
        for v in 0..64u8 {
            assert_eq!(TcpFlags::from_u8(v).to_u8(), v);
        }
    }

    #[test]
    fn unknown_options_skipped() {
        // Hand-build a header with a NOP, an unknown option, then MSS.
        let repr = TcpRepr {
            flags: TcpFlags::SYN,
            mss: None,
            ..sample()
        };
        let mut bytes = repr.build_segment(SRC, DST, &[]);
        // Extend with 8 bytes of options: NOP, unknown(kind=9,len=3,data),
        // MSS(2,4,0x05,0xb4).
        bytes[12] = ((28 / 4) as u8) << 4;
        bytes.extend_from_slice(&[1, 9, 3, 0, 2, 4, 0x05, 0xb4]);
        let pkt = TcpPacket::new_checked(&bytes[..]).unwrap();
        assert_eq!(pkt.mss_option(), Some(1460));
        assert_eq!(pkt.payload(), &[] as &[u8]);
    }

    #[test]
    fn bad_data_offset_rejected() {
        let repr = sample();
        let mut bytes = repr.build_segment(SRC, DST, &[]);
        bytes[12] = 0x30; // data offset 12 bytes < 20
        assert_eq!(
            TcpPacket::new_checked(&bytes[..]).err(),
            Some(WireError::Malformed)
        );
        let mut bytes2 = repr.build_segment(SRC, DST, &[]);
        bytes2[12] = 0xf0; // data offset 60 > segment length
        assert_eq!(
            TcpPacket::new_checked(&bytes2[..]).err(),
            Some(WireError::Malformed)
        );
    }

    #[test]
    fn truncated_rejected() {
        assert!(TcpPacket::new_checked(&[0u8; 19][..]).is_err());
    }
}
