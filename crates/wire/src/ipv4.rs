//! IPv4 (RFC 791) without options, with fragmentation fields.
//!
//! The paper's IP library "does not implement the functions required for
//! handling gateway traffic"; like it, we support end-host routing (local
//! delivery, default gateway selection in `unp-proto`) but not forwarding.

use crate::checksum::{checksum, fold, sum_be_words};
use crate::{get_u16, put_u16, Ipv4Addr, Result, WireError};

/// Header length without options. We neither emit nor accept options
/// (the paper's stack ignores them; we reject to keep parsing strict).
pub const IPV4_HEADER_LEN: usize = 20;

/// An IP protocol number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpProtocol {
    /// ICMP (1)
    Icmp,
    /// TCP (6)
    Tcp,
    /// UDP (17)
    Udp,
    /// Anything else.
    Other(u8),
}

impl IpProtocol {
    /// Decodes from the wire value.
    pub fn from_u8(v: u8) -> IpProtocol {
        match v {
            1 => IpProtocol::Icmp,
            6 => IpProtocol::Tcp,
            17 => IpProtocol::Udp,
            other => IpProtocol::Other(other),
        }
    }

    /// Encodes to the wire value.
    pub fn to_u8(self) -> u8 {
        match self {
            IpProtocol::Icmp => 1,
            IpProtocol::Tcp => 6,
            IpProtocol::Udp => 17,
            IpProtocol::Other(v) => v,
        }
    }
}

/// A zero-copy view of an IPv4 packet.
pub struct Ipv4Packet<T: AsRef<[u8]>> {
    buf: T,
}

impl<T: AsRef<[u8]>> Ipv4Packet<T> {
    /// Wraps a buffer, verifying version, IHL, total length, and checksum.
    pub fn new_checked(buf: T) -> Result<Ipv4Packet<T>> {
        let b = buf.as_ref();
        if b.len() < IPV4_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        if b[0] >> 4 != 4 {
            return Err(WireError::Malformed);
        }
        let ihl = usize::from(b[0] & 0x0f) * 4;
        if ihl != IPV4_HEADER_LEN {
            // Options unsupported.
            return Err(WireError::Malformed);
        }
        let total = usize::from(get_u16(b, 2));
        if total < ihl || total > b.len() {
            return Err(WireError::Truncated);
        }
        if fold(sum_be_words(&b[..ihl])) != 0xffff {
            return Err(WireError::BadChecksum);
        }
        Ok(Ipv4Packet { buf })
    }

    /// Total length field (header + payload).
    pub fn total_len(&self) -> usize {
        usize::from(get_u16(self.buf.as_ref(), 2))
    }

    /// Identification field (for fragmentation).
    pub fn ident(&self) -> u16 {
        get_u16(self.buf.as_ref(), 4)
    }

    /// Don't-fragment flag.
    pub fn dont_frag(&self) -> bool {
        self.buf.as_ref()[6] & 0x40 != 0
    }

    /// More-fragments flag.
    pub fn more_frags(&self) -> bool {
        self.buf.as_ref()[6] & 0x20 != 0
    }

    /// Fragment offset in bytes (the wire field is in 8-byte units).
    pub fn frag_offset(&self) -> usize {
        usize::from(get_u16(self.buf.as_ref(), 6) & 0x1fff) * 8
    }

    /// Time to live.
    pub fn ttl(&self) -> u8 {
        self.buf.as_ref()[8]
    }

    /// Payload protocol.
    pub fn protocol(&self) -> IpProtocol {
        IpProtocol::from_u8(self.buf.as_ref()[9])
    }

    /// Source address.
    pub fn src(&self) -> Ipv4Addr {
        let b = self.buf.as_ref();
        Ipv4Addr([b[12], b[13], b[14], b[15]])
    }

    /// Destination address.
    pub fn dst(&self) -> Ipv4Addr {
        let b = self.buf.as_ref();
        Ipv4Addr([b[16], b[17], b[18], b[19]])
    }

    /// The payload, bounded by the total-length field.
    pub fn payload(&self) -> &[u8] {
        &self.buf.as_ref()[IPV4_HEADER_LEN..self.total_len()]
    }
}

/// Owned representation of an IPv4 header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Repr {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Payload protocol.
    pub protocol: IpProtocol,
    /// Payload length in bytes.
    pub payload_len: usize,
    /// Time to live (the stack default is 64, as in smoltcp and 4.3BSD-era
    /// practice).
    pub ttl: u8,
    /// Identification (fragment association).
    pub ident: u16,
    /// Don't-fragment flag.
    pub dont_frag: bool,
    /// More-fragments flag.
    pub more_frags: bool,
    /// Fragment offset in bytes; must be a multiple of 8 when emitting.
    pub frag_offset: usize,
}

impl Ipv4Repr {
    /// A non-fragmented datagram header with TTL 64.
    pub fn simple(src: Ipv4Addr, dst: Ipv4Addr, protocol: IpProtocol, payload_len: usize) -> Self {
        Ipv4Repr {
            src,
            dst,
            protocol,
            payload_len,
            ttl: 64,
            ident: 0,
            dont_frag: false,
            more_frags: false,
            frag_offset: 0,
        }
    }

    /// Parses an owned representation from a checked view.
    pub fn parse<T: AsRef<[u8]>>(p: &Ipv4Packet<T>) -> Ipv4Repr {
        Ipv4Repr {
            src: p.src(),
            dst: p.dst(),
            protocol: p.protocol(),
            payload_len: p.total_len() - IPV4_HEADER_LEN,
            ttl: p.ttl(),
            ident: p.ident(),
            dont_frag: p.dont_frag(),
            more_frags: p.more_frags(),
            frag_offset: p.frag_offset(),
        }
    }

    /// Emits the header (with correct checksum) into the first
    /// [`IPV4_HEADER_LEN`] bytes of `buf`.
    pub fn emit(&self, buf: &mut [u8]) -> Result<()> {
        if buf.len() < IPV4_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        if !self.frag_offset.is_multiple_of(8) || self.frag_offset / 8 > 0x1fff {
            return Err(WireError::Malformed);
        }
        let total = IPV4_HEADER_LEN + self.payload_len;
        if total > usize::from(u16::MAX) {
            return Err(WireError::Malformed);
        }
        buf[0] = 0x45; // version 4, IHL 5
        buf[1] = 0; // TOS
        put_u16(buf, 2, total as u16);
        put_u16(buf, 4, self.ident);
        let mut flags_frag = (self.frag_offset / 8) as u16;
        if self.dont_frag {
            flags_frag |= 0x4000;
        }
        if self.more_frags {
            flags_frag |= 0x2000;
        }
        put_u16(buf, 6, flags_frag);
        buf[8] = self.ttl;
        buf[9] = self.protocol.to_u8();
        put_u16(buf, 10, 0);
        buf[12..16].copy_from_slice(&self.src.0);
        buf[16..20].copy_from_slice(&self.dst.0);
        let ck = checksum(&buf[..IPV4_HEADER_LEN]);
        put_u16(buf, 10, ck);
        Ok(())
    }

    /// Builds a full datagram (header + payload) as an owned vector.
    pub fn build_packet(&self, payload: &[u8]) -> Vec<u8> {
        debug_assert_eq!(payload.len(), self.payload_len);
        let mut v = vec![0u8; IPV4_HEADER_LEN + payload.len()];
        self.emit(&mut v).expect("sized above");
        v[IPV4_HEADER_LEN..].copy_from_slice(payload);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Repr {
        Ipv4Repr {
            ident: 0x4242,
            ttl: 63,
            ..Ipv4Repr::simple(
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(10, 0, 0, 2),
                IpProtocol::Tcp,
                5,
            )
        }
    }

    #[test]
    fn roundtrip() {
        let repr = sample();
        let bytes = repr.build_packet(b"hello");
        let pkt = Ipv4Packet::new_checked(&bytes[..]).unwrap();
        assert_eq!(Ipv4Repr::parse(&pkt), repr);
        assert_eq!(pkt.payload(), b"hello");
    }

    #[test]
    fn checksum_verified_on_parse() {
        let mut bytes = sample().build_packet(b"hello");
        bytes[8] = bytes[8].wrapping_add(1); // corrupt TTL
        assert_eq!(
            Ipv4Packet::new_checked(&bytes[..]).err(),
            Some(WireError::BadChecksum)
        );
    }

    #[test]
    fn options_rejected() {
        let mut bytes = sample().build_packet(b"hello");
        bytes[0] = 0x46; // IHL 6
        assert_eq!(
            Ipv4Packet::new_checked(&bytes[..]).err(),
            Some(WireError::Malformed)
        );
    }

    #[test]
    fn version_rejected() {
        let mut bytes = sample().build_packet(b"hello");
        bytes[0] = 0x65;
        assert_eq!(
            Ipv4Packet::new_checked(&bytes[..]).err(),
            Some(WireError::Malformed)
        );
    }

    #[test]
    fn total_length_bounds_payload() {
        // A frame may carry link-level padding past the IP total length
        // (Ethernet minimum frame size); payload() must not include it.
        let repr = sample();
        let mut bytes = repr.build_packet(b"hello");
        bytes.extend_from_slice(&[0u8; 20]); // link padding
        let pkt = Ipv4Packet::new_checked(&bytes[..]).unwrap();
        assert_eq!(pkt.payload(), b"hello");
    }

    #[test]
    fn fragment_fields_roundtrip() {
        let mut repr = sample();
        repr.more_frags = true;
        repr.frag_offset = 184 * 8;
        repr.payload_len = 8;
        let bytes = repr.build_packet(&[0u8; 8]);
        let pkt = Ipv4Packet::new_checked(&bytes[..]).unwrap();
        assert!(pkt.more_frags());
        assert!(!pkt.dont_frag());
        assert_eq!(pkt.frag_offset(), 184 * 8);
    }

    #[test]
    fn unaligned_frag_offset_rejected() {
        let mut repr = sample();
        repr.frag_offset = 7;
        let mut buf = [0u8; 64];
        assert_eq!(repr.emit(&mut buf), Err(WireError::Malformed));
    }

    #[test]
    fn truncated_total_len_rejected() {
        let repr = sample();
        let bytes = repr.build_packet(b"hello");
        // Claim more data than is present.
        let mut shorter = bytes.clone();
        shorter.truncate(22);
        assert_eq!(
            Ipv4Packet::new_checked(&shorter[..]).err(),
            Some(WireError::Truncated)
        );
    }
}
