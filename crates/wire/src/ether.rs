//! Ethernet II framing.
//!
//! The paper's Ethernet testbed uses standard Ethernet II frames (destination,
//! source, EtherType). The link-level header identifies only the station and
//! packet type — insufficient to demultiplex to a final user, which is why
//! software demultiplexing (the `unp-filter` crate) is required on Ethernet.

use crate::{get_u16, put_u16, MacAddr, Result, WireError};

/// Length of the Ethernet II header (dst + src + ethertype).
pub const ETHERNET_HEADER_LEN: usize = 14;
/// Maximum Ethernet payload (MTU).
pub const ETHERNET_MAX_PAYLOAD: usize = 1500;
/// Minimum frame length (excluding preamble/FCS), per IEEE 802.3.
pub const ETHERNET_MIN_FRAME: usize = 60;

/// An EtherType value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4 (0x0800)
    Ipv4,
    /// ARP (0x0806)
    Arp,
    /// Anything else.
    Other(u16),
}

impl EtherType {
    /// Decodes from the wire value.
    pub fn from_u16(v: u16) -> EtherType {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            other => EtherType::Other(other),
        }
    }

    /// Encodes to the wire value.
    pub fn to_u16(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Other(v) => v,
        }
    }
}

/// A zero-copy view of an Ethernet II frame.
pub struct EthernetFrame<T: AsRef<[u8]>> {
    buf: T,
}

impl<T: AsRef<[u8]>> EthernetFrame<T> {
    /// Wraps a buffer, verifying it is at least header-sized.
    pub fn new_checked(buf: T) -> Result<EthernetFrame<T>> {
        if buf.as_ref().len() < ETHERNET_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        Ok(EthernetFrame { buf })
    }

    /// Destination MAC address.
    pub fn dst(&self) -> MacAddr {
        let b = self.buf.as_ref();
        MacAddr([b[0], b[1], b[2], b[3], b[4], b[5]])
    }

    /// Source MAC address.
    pub fn src(&self) -> MacAddr {
        let b = self.buf.as_ref();
        MacAddr([b[6], b[7], b[8], b[9], b[10], b[11]])
    }

    /// EtherType field.
    pub fn ethertype(&self) -> EtherType {
        EtherType::from_u16(get_u16(self.buf.as_ref(), 12))
    }

    /// The payload following the header.
    pub fn payload(&self) -> &[u8] {
        &self.buf.as_ref()[ETHERNET_HEADER_LEN..]
    }

    /// Consumes the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buf
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> EthernetFrame<T> {
    /// Mutable payload access.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buf.as_mut()[ETHERNET_HEADER_LEN..]
    }
}

/// An owned representation of an Ethernet header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EthernetRepr {
    /// Destination station.
    pub dst: MacAddr,
    /// Source station.
    pub src: MacAddr,
    /// Payload protocol.
    pub ethertype: EtherType,
}

impl EthernetRepr {
    /// Parses a header from a frame view.
    pub fn parse<T: AsRef<[u8]>>(frame: &EthernetFrame<T>) -> EthernetRepr {
        EthernetRepr {
            dst: frame.dst(),
            src: frame.src(),
            ethertype: frame.ethertype(),
        }
    }

    /// Writes this header into the first [`ETHERNET_HEADER_LEN`] bytes of `buf`.
    pub fn emit(&self, buf: &mut [u8]) -> Result<()> {
        if buf.len() < ETHERNET_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        buf[0..6].copy_from_slice(&self.dst.0);
        buf[6..12].copy_from_slice(&self.src.0);
        put_u16(buf, 12, self.ethertype.to_u16());
        Ok(())
    }

    /// Builds a full frame (header + payload) as an owned vector.
    pub fn build_frame(&self, payload: &[u8]) -> Vec<u8> {
        let mut v = vec![0u8; ETHERNET_HEADER_LEN + payload.len()];
        self.emit(&mut v).expect("sized above");
        v[ETHERNET_HEADER_LEN..].copy_from_slice(payload);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EthernetRepr {
        EthernetRepr {
            dst: MacAddr::from_host_index(2),
            src: MacAddr::from_host_index(1),
            ethertype: EtherType::Ipv4,
        }
    }

    #[test]
    fn roundtrip() {
        let repr = sample();
        let frame_bytes = repr.build_frame(&[0xaa, 0xbb, 0xcc]);
        let frame = EthernetFrame::new_checked(&frame_bytes[..]).unwrap();
        assert_eq!(EthernetRepr::parse(&frame), repr);
        assert_eq!(frame.payload(), &[0xaa, 0xbb, 0xcc]);
    }

    #[test]
    fn truncated_rejected() {
        let short = [0u8; 13];
        assert!(EthernetFrame::new_checked(&short[..]).is_err());
    }

    #[test]
    fn ethertype_codes() {
        assert_eq!(EtherType::from_u16(0x0800), EtherType::Ipv4);
        assert_eq!(EtherType::from_u16(0x0806), EtherType::Arp);
        assert_eq!(EtherType::from_u16(0x86dd), EtherType::Other(0x86dd));
        assert_eq!(EtherType::Other(0x1234).to_u16(), 0x1234);
    }

    #[test]
    fn emit_into_short_buffer_fails() {
        let mut buf = [0u8; 10];
        assert_eq!(sample().emit(&mut buf), Err(WireError::Truncated));
    }

    #[test]
    fn payload_mut_roundtrips() {
        let repr = sample();
        let mut frame_bytes = repr.build_frame(&[0, 0]);
        let mut frame = EthernetFrame::new_checked(&mut frame_bytes[..]).unwrap();
        frame.payload_mut()[0] = 0x7f;
        assert_eq!(frame.payload()[0], 0x7f);
    }
}
