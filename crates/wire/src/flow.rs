//! Exact-match flow identification for input packet demultiplexing.
//!
//! The software demux fast path (see `unp-kernel`) keys fully-specified
//! connection bindings by their TCP/UDP 5-tuple. [`FlowKey::extract`] pulls
//! that tuple out of a raw frame with a single bounds-checked parse.
//!
//! The extraction conditions are deliberately *identical* to the acceptance
//! conditions of `unp_filter::CompiledDemux` for a fully-specified spec:
//! IPv4 EtherType, version 4, sane IHL, first fragment only. This gives the
//! fast path its correctness invariant — a fully-specified binding matches a
//! frame **iff** the frame's extracted key equals the binding's distilled
//! key — so a flow-table hit or miss is exactly what a linear filter scan
//! over those bindings would have decided.

use crate::Ipv4Addr;

/// The exact-match identity of a first-fragment IPv4 TCP/UDP frame, from
/// the receiving host's point of view: `local` is where the frame is headed
/// (IP destination / transport destination port), `remote` is where it came
/// from (IP source / transport source port).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowKey {
    /// IP protocol number (6 TCP, 17 UDP — any value is legal).
    pub protocol: u8,
    /// IP destination address.
    pub local_ip: Ipv4Addr,
    /// Transport destination port.
    pub local_port: u16,
    /// IP source address.
    pub remote_ip: Ipv4Addr,
    /// Transport source port.
    pub remote_port: u16,
}

/// The wildcard-match identity of a first-fragment IPv4 TCP/UDP frame: the
/// local half of a [`FlowKey`] (protocol, IP destination, transport
/// destination port). Listening and unconnected-UDP bindings — specs that
/// wildcard *both* remote fields — are keyed by this 3-tuple.
///
/// A fully-wildcard spec's filter accepts a frame **iff** the frame's
/// extracted [`FlowKey`] projects ([`FlowKey::local`]) onto the spec's
/// distilled 3-tuple: the wildcard filter checks exactly the conditions
/// `FlowKey::extract` checks minus the two remote-field compares, and a
/// frame from which the local fields are readable always has readable
/// remote fields (they sit at lower offsets). So the 3-tuple table inherits
/// the 5-tuple table's iff guarantee by projection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ListenKey {
    /// IP protocol number (6 TCP, 17 UDP — any value is legal).
    pub protocol: u8,
    /// IP destination address.
    pub local_ip: Ipv4Addr,
    /// Transport destination port.
    pub local_port: u16,
}

impl ListenKey {
    /// Extracts the listen key from a raw frame, or `None` exactly when
    /// [`FlowKey::extract`] would return `None` — the two extractors fail
    /// on the same frames, which is what keeps tier lookups equivalent to
    /// the scan.
    pub fn extract(frame: &[u8], link_header_len: usize) -> Option<ListenKey> {
        FlowKey::extract(frame, link_header_len).map(|k| k.local())
    }
}

impl FlowKey {
    /// Projects the key onto its local half — the [`ListenKey`] a
    /// wildcard-binding lookup uses.
    pub fn local(&self) -> ListenKey {
        ListenKey {
            protocol: self.protocol,
            local_ip: self.local_ip,
            local_port: self.local_port,
        }
    }

    /// Extracts the flow key from a raw frame whose IP header starts at
    /// `link_header_len`, or `None` when the frame carries no exact-match
    /// identity: non-IPv4 EtherType, bad version or IHL, a non-first
    /// fragment (no transport header present), or truncation anywhere the
    /// parse reads.
    ///
    /// The EtherType is read at byte offset 12 regardless of
    /// `link_header_len` — the AN1 header keeps the dst/src/type prefix at
    /// Ethernet offsets and appends its own fields, so offset 12 is the
    /// type field on both media (the same convention `CompiledDemux` uses).
    pub fn extract(frame: &[u8], link_header_len: usize) -> Option<FlowKey> {
        let ethertype = frame.get(12..14)?;
        if ethertype != [0x08, 0x00] {
            return None;
        }
        let ip = frame.get(link_header_len..)?;
        if ip.len() < 20 || ip[0] >> 4 != 4 {
            return None;
        }
        let ihl = usize::from(ip[0] & 0x0f) * 4;
        if ihl < 20 || ip.len() < ihl + 4 {
            return None;
        }
        // Non-first fragments carry no transport header; they have no flow
        // identity and must take the demultiplexer's slow path.
        let frag = u16::from_be_bytes([ip[6], ip[7]]);
        if frag & 0x1fff != 0 {
            return None;
        }
        Some(FlowKey {
            protocol: ip[9],
            local_ip: Ipv4Addr([ip[16], ip[17], ip[18], ip[19]]),
            local_port: u16::from_be_bytes([ip[ihl + 2], ip[ihl + 3]]),
            remote_ip: Ipv4Addr([ip[12], ip[13], ip[14], ip[15]]),
            remote_port: u16::from_be_bytes([ip[ihl], ip[ihl + 1]]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        EtherType, EthernetRepr, IpProtocol, Ipv4Repr, MacAddr, SeqNum, TcpFlags, TcpRepr, UdpRepr,
    };

    fn tcp_frame(src: Ipv4Addr, dst: Ipv4Addr, sport: u16, dport: u16) -> Vec<u8> {
        let t = TcpRepr {
            src_port: sport,
            dst_port: dport,
            seq: SeqNum(1),
            ack_num: SeqNum(0),
            flags: TcpFlags::ack(),
            window: 1024,
            mss: None,
        };
        let seg = t.build_segment(src, dst, b"x");
        let ip = Ipv4Repr::simple(src, dst, IpProtocol::Tcp, seg.len());
        EthernetRepr {
            dst: MacAddr::from_host_index(2),
            src: MacAddr::from_host_index(1),
            ethertype: EtherType::Ipv4,
        }
        .build_frame(&ip.build_packet(&seg))
    }

    #[test]
    fn extracts_tcp_five_tuple() {
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        let key = FlowKey::extract(&tcp_frame(src, dst, 5000, 80), 14).unwrap();
        assert_eq!(
            key,
            FlowKey {
                protocol: IpProtocol::Tcp.to_u8(),
                local_ip: dst,
                local_port: 80,
                remote_ip: src,
                remote_port: 5000,
            }
        );
    }

    #[test]
    fn extracts_udp_five_tuple() {
        let src = Ipv4Addr::new(10, 0, 0, 7);
        let dst = Ipv4Addr::new(10, 0, 0, 9);
        let udp = UdpRepr {
            src_port: 4000,
            dst_port: 53,
        };
        let dgram = udp.build_datagram(src, dst, b"q");
        let ip = Ipv4Repr::simple(src, dst, IpProtocol::Udp, dgram.len());
        let frame = EthernetRepr {
            dst: MacAddr::from_host_index(2),
            src: MacAddr::from_host_index(1),
            ethertype: EtherType::Ipv4,
        }
        .build_frame(&ip.build_packet(&dgram));
        let key = FlowKey::extract(&frame, 14).unwrap();
        assert_eq!(key.protocol, IpProtocol::Udp.to_u8());
        assert_eq!((key.local_port, key.remote_port), (53, 4000));
    }

    #[test]
    fn non_ip_and_truncated_frames_have_no_key() {
        let arp = EthernetRepr {
            dst: MacAddr::BROADCAST,
            src: MacAddr::from_host_index(1),
            ethertype: EtherType::Arp,
        }
        .build_frame(&[0u8; 28]);
        assert_eq!(FlowKey::extract(&arp, 14), None);
        let frame = tcp_frame(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2), 1, 2);
        for len in 0..frame.len().min(14 + 24) {
            assert_eq!(FlowKey::extract(&frame[..len], 14), None, "len {len}");
        }
    }

    #[test]
    fn listen_key_is_the_local_projection() {
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        let frame = tcp_frame(src, dst, 5000, 80);
        let key = FlowKey::extract(&frame, 14).unwrap();
        assert_eq!(
            key.local(),
            ListenKey {
                protocol: IpProtocol::Tcp.to_u8(),
                local_ip: dst,
                local_port: 80,
            }
        );
        assert_eq!(ListenKey::extract(&frame, 14), Some(key.local()));
    }

    #[test]
    fn listen_extract_fails_exactly_when_flow_extract_fails() {
        let frame = tcp_frame(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2), 1, 2);
        for len in 0..frame.len() {
            assert_eq!(
                ListenKey::extract(&frame[..len], 14).is_some(),
                FlowKey::extract(&frame[..len], 14).is_some(),
                "len {len}"
            );
        }
    }

    #[test]
    fn non_first_fragment_has_no_key() {
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        let ip = Ipv4Repr {
            frag_offset: 64,
            ..Ipv4Repr::simple(src, dst, IpProtocol::Udp, 8)
        };
        let frame = EthernetRepr {
            dst: MacAddr::from_host_index(2),
            src: MacAddr::from_host_index(1),
            ethertype: EtherType::Ipv4,
        }
        .build_frame(&ip.build_packet(&[0u8; 8]));
        assert_eq!(FlowKey::extract(&frame, 14), None);
    }
}
