//! DEC SRC AN1 (Autonet) link framing with the buffer queue index field.
//!
//! The paper's AN1 host-network interface performs *hardware* packet
//! demultiplexing: a field in the link-level header — the **buffer queue
//! index (BQI)** — indexes a table kept in the controller. Each table entry
//! names a ring of pinned host buffers; the controller DMAs the packet into
//! the next buffer of that ring, delivering it directly to the destination
//! process. BQI zero is the default and refers to protected kernel memory.
//!
//! The SIGCOMM '93 paper also notes the Ultrix AN1 driver "encapsulates data
//! into an Ethernet datagram and restricts network transmissions to 1500-byte
//! packets", and that the registry server "inserts the BQI into an unused
//! field in the AN1 link header". We model exactly that: an Ethernet-style
//! header extended by a 16-bit BQI field.

use crate::{get_u16, put_u16, EtherType, MacAddr, Result, WireError};

/// AN1 link header length: Ethernet-style dst/src/type, the 16-bit BQI used
/// by the controller for receive-ring selection, and a 16-bit "announce"
/// field — the otherwise-unused header word the registry servers use to
/// convey their receive BQI to the peer during connection setup.
pub const AN1_HEADER_LEN: usize = 18;

/// The buffer queue index reserved for protected kernel buffers.
pub const BQI_KERNEL: u16 = 0;

/// A zero-copy view over an AN1 frame.
pub struct An1Frame<T: AsRef<[u8]>> {
    buf: T,
}

impl<T: AsRef<[u8]>> An1Frame<T> {
    /// Wraps a buffer, verifying it is at least header-sized.
    pub fn new_checked(buf: T) -> Result<An1Frame<T>> {
        if buf.as_ref().len() < AN1_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        Ok(An1Frame { buf })
    }

    /// Destination station address.
    pub fn dst(&self) -> MacAddr {
        let b = self.buf.as_ref();
        MacAddr([b[0], b[1], b[2], b[3], b[4], b[5]])
    }

    /// Source station address.
    pub fn src(&self) -> MacAddr {
        let b = self.buf.as_ref();
        MacAddr([b[6], b[7], b[8], b[9], b[10], b[11]])
    }

    /// Payload protocol.
    pub fn ethertype(&self) -> EtherType {
        EtherType::from_u16(get_u16(self.buf.as_ref(), 12))
    }

    /// The buffer queue index used by the controller to pick the host ring.
    pub fn bqi(&self) -> u16 {
        get_u16(self.buf.as_ref(), 14)
    }

    /// The announce field: a BQI being conveyed to the peer at setup time
    /// (zero when unused).
    pub fn announce(&self) -> u16 {
        get_u16(self.buf.as_ref(), 16)
    }

    /// Payload following the link header.
    pub fn payload(&self) -> &[u8] {
        &self.buf.as_ref()[AN1_HEADER_LEN..]
    }

    /// Consumes the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buf
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> An1Frame<T> {
    /// Rewrites the BQI field in place (used by the registry server when
    /// conveying an index to the remote peer during connection setup).
    pub fn set_bqi(&mut self, bqi: u16) {
        put_u16(self.buf.as_mut(), 14, bqi);
    }
}

/// Owned representation of an AN1 link header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct An1Repr {
    /// Destination station.
    pub dst: MacAddr,
    /// Source station.
    pub src: MacAddr,
    /// Payload protocol.
    pub ethertype: EtherType,
    /// Buffer queue index selecting the receive ring at the destination.
    pub bqi: u16,
    /// BQI announcement to the peer (setup-time only; zero otherwise).
    pub announce: u16,
}

impl An1Repr {
    /// Parses a header from a frame view.
    pub fn parse<T: AsRef<[u8]>>(frame: &An1Frame<T>) -> An1Repr {
        An1Repr {
            dst: frame.dst(),
            src: frame.src(),
            ethertype: frame.ethertype(),
            bqi: frame.bqi(),
            announce: frame.announce(),
        }
    }

    /// Writes this header into the first [`AN1_HEADER_LEN`] bytes of `buf`.
    pub fn emit(&self, buf: &mut [u8]) -> Result<()> {
        if buf.len() < AN1_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        buf[0..6].copy_from_slice(&self.dst.0);
        buf[6..12].copy_from_slice(&self.src.0);
        put_u16(buf, 12, self.ethertype.to_u16());
        put_u16(buf, 14, self.bqi);
        put_u16(buf, 16, self.announce);
        Ok(())
    }

    /// Builds a full frame (header + payload) as an owned vector.
    pub fn build_frame(&self, payload: &[u8]) -> Vec<u8> {
        let mut v = vec![0u8; AN1_HEADER_LEN + payload.len()];
        self.emit(&mut v).expect("sized above");
        v[AN1_HEADER_LEN..].copy_from_slice(payload);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> An1Repr {
        An1Repr {
            dst: MacAddr::from_host_index(9),
            src: MacAddr::from_host_index(4),
            ethertype: EtherType::Ipv4,
            bqi: 3,
            announce: 9,
        }
    }

    #[test]
    fn roundtrip() {
        let repr = sample();
        let bytes = repr.build_frame(b"payload");
        let frame = An1Frame::new_checked(&bytes[..]).unwrap();
        assert_eq!(An1Repr::parse(&frame), repr);
        assert_eq!(frame.payload(), b"payload");
    }

    #[test]
    fn default_bqi_is_kernel() {
        let mut repr = sample();
        repr.bqi = BQI_KERNEL;
        let bytes = repr.build_frame(&[]);
        let frame = An1Frame::new_checked(&bytes[..]).unwrap();
        assert_eq!(frame.bqi(), 0);
    }

    #[test]
    fn set_bqi_in_place() {
        let mut bytes = sample().build_frame(b"x");
        let mut frame = An1Frame::new_checked(&mut bytes[..]).unwrap();
        frame.set_bqi(777);
        let frame = An1Frame::new_checked(&bytes[..]).unwrap();
        assert_eq!(frame.bqi(), 777);
    }

    #[test]
    fn truncated_rejected() {
        assert!(An1Frame::new_checked(&[0u8; 17][..]).is_err());
    }
}
