//! TCP sequence-number arithmetic (RFC 793 modulo-2³² comparisons).

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A TCP sequence number with wrapping comparison semantics.
///
/// Comparisons are defined when the compared values are within 2³¹ of each
/// other, which TCP's window rules guarantee.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SeqNum(pub u32);

impl SeqNum {
    /// True if `self` strictly precedes `other` in sequence space.
    #[inline]
    pub fn lt(self, other: SeqNum) -> bool {
        (self.0.wrapping_sub(other.0) as i32) < 0
    }

    /// True if `self` precedes or equals `other`.
    #[inline]
    pub fn le(self, other: SeqNum) -> bool {
        (self.0.wrapping_sub(other.0) as i32) <= 0
    }

    /// True if `self` strictly follows `other`.
    #[inline]
    pub fn gt(self, other: SeqNum) -> bool {
        other.lt(self)
    }

    /// True if `self` follows or equals `other`.
    #[inline]
    pub fn ge(self, other: SeqNum) -> bool {
        other.le(self)
    }

    /// Signed distance `self − other` (valid when within 2³¹).
    #[inline]
    pub fn dist(self, other: SeqNum) -> i32 {
        self.0.wrapping_sub(other.0) as i32
    }

    /// The larger of two sequence numbers.
    #[inline]
    pub fn max(self, other: SeqNum) -> SeqNum {
        if self.ge(other) {
            self
        } else {
            other
        }
    }

    /// The smaller of two sequence numbers.
    #[inline]
    pub fn min(self, other: SeqNum) -> SeqNum {
        if self.le(other) {
            self
        } else {
            other
        }
    }

    /// True if `self` lies in the half-open window `[start, start+len)`.
    pub fn in_window(self, start: SeqNum, len: u32) -> bool {
        self.ge(start) && self.lt(start + len)
    }
}

impl Add<u32> for SeqNum {
    type Output = SeqNum;
    #[inline]
    fn add(self, rhs: u32) -> SeqNum {
        SeqNum(self.0.wrapping_add(rhs))
    }
}

impl AddAssign<u32> for SeqNum {
    #[inline]
    fn add_assign(&mut self, rhs: u32) {
        self.0 = self.0.wrapping_add(rhs);
    }
}

impl Sub<SeqNum> for SeqNum {
    type Output = i32;
    #[inline]
    fn sub(self, rhs: SeqNum) -> i32 {
        self.dist(rhs)
    }
}

impl fmt::Debug for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seq:{}", self.0)
    }
}

impl fmt::Display for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ordering() {
        let a = SeqNum(100);
        let b = SeqNum(200);
        assert!(a.lt(b));
        assert!(a.le(b));
        assert!(b.gt(a));
        assert!(b.ge(a));
        assert!(a.le(a));
        assert!(!a.lt(a));
    }

    #[test]
    fn wrapping_ordering() {
        let near_max = SeqNum(u32::MAX - 10);
        let wrapped = near_max + 20;
        assert_eq!(wrapped.0, 9);
        assert!(near_max.lt(wrapped));
        assert!(wrapped.gt(near_max));
        assert_eq!(wrapped.dist(near_max), 20);
        assert_eq!(near_max.dist(wrapped), -20);
    }

    #[test]
    fn window_membership_across_wrap() {
        let start = SeqNum(u32::MAX - 5);
        assert!(start.in_window(start, 10));
        assert!((start + 9).in_window(start, 10));
        assert!(!(start + 10).in_window(start, 10));
        assert!(SeqNum(2).in_window(start, 10)); // wrapped member
    }

    #[test]
    fn min_max() {
        let a = SeqNum(u32::MAX - 1);
        let b = a + 5;
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn sub_operator() {
        assert_eq!(SeqNum(10) - SeqNum(3), 7);
        assert_eq!(SeqNum(3) - SeqNum(10), -7);
    }
}
