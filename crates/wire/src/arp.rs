//! ARP for IPv4 over Ethernet-style links (RFC 826).

use crate::{get_u16, put_u16, Ipv4Addr, MacAddr, Result, WireError};

/// Fixed length of an Ethernet/IPv4 ARP packet.
pub const ARP_PACKET_LEN: usize = 28;

/// ARP operation code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArpOp {
    /// Who-has (1).
    Request,
    /// Is-at (2).
    Reply,
}

impl ArpOp {
    fn from_u16(v: u16) -> Result<ArpOp> {
        match v {
            1 => Ok(ArpOp::Request),
            2 => Ok(ArpOp::Reply),
            _ => Err(WireError::Malformed),
        }
    }

    fn to_u16(self) -> u16 {
        match self {
            ArpOp::Request => 1,
            ArpOp::Reply => 2,
        }
    }
}

/// A zero-copy view of an ARP packet.
pub struct ArpPacket<T: AsRef<[u8]>> {
    buf: T,
}

impl<T: AsRef<[u8]>> ArpPacket<T> {
    /// Wraps a buffer, verifying length and the hardware/protocol type fields.
    pub fn new_checked(buf: T) -> Result<ArpPacket<T>> {
        let b = buf.as_ref();
        if b.len() < ARP_PACKET_LEN {
            return Err(WireError::Truncated);
        }
        // htype=1 (Ethernet), ptype=0x0800 (IPv4), hlen=6, plen=4.
        if get_u16(b, 0) != 1 || get_u16(b, 2) != 0x0800 || b[4] != 6 || b[5] != 4 {
            return Err(WireError::Malformed);
        }
        Ok(ArpPacket { buf })
    }

    /// Operation code.
    pub fn op(&self) -> Result<ArpOp> {
        ArpOp::from_u16(get_u16(self.buf.as_ref(), 6))
    }

    /// Sender hardware address.
    pub fn sender_mac(&self) -> MacAddr {
        let b = self.buf.as_ref();
        MacAddr([b[8], b[9], b[10], b[11], b[12], b[13]])
    }

    /// Sender protocol address.
    pub fn sender_ip(&self) -> Ipv4Addr {
        let b = self.buf.as_ref();
        Ipv4Addr([b[14], b[15], b[16], b[17]])
    }

    /// Target hardware address.
    pub fn target_mac(&self) -> MacAddr {
        let b = self.buf.as_ref();
        MacAddr([b[18], b[19], b[20], b[21], b[22], b[23]])
    }

    /// Target protocol address.
    pub fn target_ip(&self) -> Ipv4Addr {
        let b = self.buf.as_ref();
        Ipv4Addr([b[24], b[25], b[26], b[27]])
    }
}

/// Owned representation of an ARP packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArpRepr {
    /// Operation (request or reply).
    pub op: ArpOp,
    /// Sender hardware address.
    pub sender_mac: MacAddr,
    /// Sender protocol address.
    pub sender_ip: Ipv4Addr,
    /// Target hardware address (zero in requests).
    pub target_mac: MacAddr,
    /// Target protocol address.
    pub target_ip: Ipv4Addr,
}

impl ArpRepr {
    /// Parses an owned representation from a checked view.
    pub fn parse<T: AsRef<[u8]>>(p: &ArpPacket<T>) -> Result<ArpRepr> {
        Ok(ArpRepr {
            op: p.op()?,
            sender_mac: p.sender_mac(),
            sender_ip: p.sender_ip(),
            target_mac: p.target_mac(),
            target_ip: p.target_ip(),
        })
    }

    /// Emits a full ARP packet into `buf`.
    pub fn emit(&self, buf: &mut [u8]) -> Result<()> {
        if buf.len() < ARP_PACKET_LEN {
            return Err(WireError::Truncated);
        }
        put_u16(buf, 0, 1);
        put_u16(buf, 2, 0x0800);
        buf[4] = 6;
        buf[5] = 4;
        put_u16(buf, 6, self.op.to_u16());
        buf[8..14].copy_from_slice(&self.sender_mac.0);
        buf[14..18].copy_from_slice(&self.sender_ip.0);
        buf[18..24].copy_from_slice(&self.target_mac.0);
        buf[24..28].copy_from_slice(&self.target_ip.0);
        Ok(())
    }

    /// Builds an owned packet.
    pub fn build(&self) -> Vec<u8> {
        let mut v = vec![0u8; ARP_PACKET_LEN];
        self.emit(&mut v).expect("sized above");
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(op: ArpOp) -> ArpRepr {
        ArpRepr {
            op,
            sender_mac: MacAddr::from_host_index(1),
            sender_ip: Ipv4Addr::new(10, 0, 0, 1),
            target_mac: MacAddr::ZERO,
            target_ip: Ipv4Addr::new(10, 0, 0, 2),
        }
    }

    #[test]
    fn roundtrip_request_and_reply() {
        for op in [ArpOp::Request, ArpOp::Reply] {
            let repr = sample(op);
            let bytes = repr.build();
            let pkt = ArpPacket::new_checked(&bytes[..]).unwrap();
            assert_eq!(ArpRepr::parse(&pkt).unwrap(), repr);
        }
    }

    #[test]
    fn bad_hardware_type_rejected() {
        let mut bytes = sample(ArpOp::Request).build();
        bytes[0] = 9;
        assert_eq!(
            ArpPacket::new_checked(&bytes[..]).err(),
            Some(WireError::Malformed)
        );
    }

    #[test]
    fn bad_op_rejected() {
        let mut bytes = sample(ArpOp::Request).build();
        bytes[7] = 99;
        let pkt = ArpPacket::new_checked(&bytes[..]).unwrap();
        assert_eq!(pkt.op().err(), Some(WireError::Malformed));
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(
            ArpPacket::new_checked(&[0u8; 27][..]).err(),
            Some(WireError::Truncated)
        );
    }
}
