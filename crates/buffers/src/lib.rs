//! `unp-buffers` — the buffer layer.
//!
//! "The buffer layer in a communication system manages data buffers between
//! the user space, the kernel and the host-network interface" (paper §2.2).
//! This crate provides:
//!
//! * [`PktBuf`] — a packet buffer with headroom, so protocol layers prepend
//!   headers without copying (the mbuf idiom). We use a contiguous buffer
//!   rather than mbuf *chains*: chains exist to avoid copies in scattered
//!   kernel allocators, which a simulation does not have; headroom alone
//!   preserves the property that matters (no per-layer copy).
//! * [`SharedRegion`] — a pinned pool of fixed-size packet slots modelling
//!   the memory "created by the network I/O module and the registry server
//!   for holding network packets ... kept pinned for the duration of the
//!   connection and shared with the application".
//! * [`DescRing`] — a bounded descriptor ring used both for NIC receive
//!   rings and for the kernel↔library notification path.
//! * [`BqiTable`] — the AN1 controller's buffer-queue-index table: a
//!   link-header index naming a ring of host buffers, with strict access
//!   control ("access control to the index is maintained through memory
//!   protection").

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::{Rc, Weak};

/// Counters for the zero-copy frame path, kept thread-local because the
/// simulator is single-threaded. `repro-tables --timings` reports the
/// deltas around each table run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameStats {
    /// Backing buffers obtained from the heap allocator.
    pub frames_fresh: u64,
    /// Backing buffers reused from a [`FramePool`] freelist.
    pub frames_recycled: u64,
    /// Copy-on-write events (a writer mutated a shared frame).
    pub cow_copies: u64,
    /// Bytes memcpy'd by frame operations (payload copy-in and COW).
    pub bytes_copied: u64,
}

thread_local! {
    static FRAME_STATS: Cell<FrameStats> = const { Cell::new(FrameStats {
        frames_fresh: 0,
        frames_recycled: 0,
        cow_copies: 0,
        bytes_copied: 0,
    }) };
}

/// Snapshot of the thread's frame counters.
pub fn frame_stats() -> FrameStats {
    FRAME_STATS.with(|s| s.get())
}

/// Resets the thread's frame counters to zero.
pub fn reset_frame_stats() {
    FRAME_STATS.with(|s| s.set(FrameStats::default()));
}

fn bump_stats(f: impl FnOnce(&mut FrameStats)) {
    FRAME_STATS.with(|s| {
        let mut v = s.get();
        f(&mut v);
        s.set(v);
    });
}

thread_local! {
    static LIVE_FRAMES: Cell<u64> = const { Cell::new(0) };
}

/// Number of frame backing buffers currently alive on this thread (every
/// COW divergence counts as its own backing). The robustness suite's leak
/// oracle: after a world and its engine drop, this must return to its
/// pre-run reading — a higher value means a ring, park list, or channel
/// still pins packet memory.
pub fn live_frames() -> u64 {
    LIVE_FRAMES.with(|c| c.get())
}

struct Backing {
    data: Vec<u8>,
    pool: Weak<RefCell<PoolInner>>,
}

impl Backing {
    fn new(data: Vec<u8>, pool: Weak<RefCell<PoolInner>>) -> Backing {
        let live = LIVE_FRAMES.with(|c| {
            let live = c.get() + 1;
            c.set(live);
            live
        });
        // No frame id: ids are minted after the backing exists (and a COW
        // divergence keeps its parent's id), so the pool-accounting
        // checker chains the live counts instead of joining frames.
        unp_trace::emit(None, || unp_trace::Event::FrameAlloc { live });
        Backing { data, pool }
    }
}

impl Drop for Backing {
    fn drop(&mut self) {
        let live = LIVE_FRAMES.with(|c| {
            let live = c.get().saturating_sub(1);
            c.set(live);
            live
        });
        unp_trace::emit(None, || unp_trace::Event::FrameFree { live });
        if let Some(pool) = self.pool.upgrade() {
            let mut p = pool.borrow_mut();
            if p.free.len() < p.max_free && self.data.len() == p.buf_size {
                p.free.push(std::mem::take(&mut self.data));
            }
        }
    }
}

struct PoolInner {
    buf_size: usize,
    max_free: usize,
    free: Vec<Vec<u8>>,
}

/// A freelist of fixed-size backing buffers for [`Frame`]s.
///
/// This models the pinned packet memory of the paper's network I/O module:
/// buffers are carved out once and recycled, so the steady-state data path
/// never touches the general allocator. Dropping the last handle to a
/// pooled frame returns its backing buffer to the freelist automatically.
#[derive(Clone)]
pub struct FramePool {
    inner: Rc<RefCell<PoolInner>>,
}

impl std::fmt::Debug for FramePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let p = self.inner.borrow();
        f.debug_struct("FramePool")
            .field("buf_size", &p.buf_size)
            .field("free", &p.free.len())
            .field("max_free", &p.max_free)
            .finish()
    }
}

impl FramePool {
    /// A pool of `buf_size`-byte buffers keeping at most `max_free` on the
    /// freelist (excess buffers fall back to the allocator on drop).
    pub fn new(buf_size: usize, max_free: usize) -> FramePool {
        FramePool {
            inner: Rc::new(RefCell::new(PoolInner {
                buf_size,
                max_free,
                free: Vec::new(),
            })),
        }
    }

    /// A pool that never recycles — every allocation is fresh. Used by the
    /// `--timings` baseline to measure what the freelist saves.
    pub fn disabled(buf_size: usize) -> FramePool {
        FramePool::new(buf_size, 0)
    }

    /// Buffers currently sitting on the freelist.
    pub fn free_buffers(&self) -> usize {
        self.inner.borrow().free.len()
    }

    /// The fixed backing-buffer size this pool hands out.
    pub fn buf_size(&self) -> usize {
        self.inner.borrow().buf_size
    }

    fn take_buf(&self, min_len: usize) -> Vec<u8> {
        let mut p = self.inner.borrow_mut();
        if min_len <= p.buf_size {
            if let Some(mut buf) = p.free.pop() {
                bump_stats(|s| s.frames_recycled += 1);
                // Zero only the window the caller asked for, so recycled
                // frames are indistinguishable from fresh zeroed ones.
                buf[..min_len].fill(0);
                return buf;
            }
        }
        let size = p.buf_size.max(min_len);
        drop(p);
        bump_stats(|s| s.frames_fresh += 1);
        vec![0u8; size]
    }

    /// Allocates a frame containing `payload` with `headroom` bytes
    /// reserved in front for headers. The one memcpy here (payload into
    /// the buffer) is the send path's single data copy.
    pub fn alloc(&self, headroom: usize, payload: &[u8]) -> Frame {
        let need = headroom + payload.len();
        let data = self.take_buf(need);
        let mut frame = Frame {
            backing: Rc::new(Backing::new(data, Rc::downgrade(&self.inner))),
            head: headroom,
            len: payload.len(),
            id: unp_trace::next_frame_id(),
        };
        if !payload.is_empty() {
            bump_stats(|s| s.bytes_copied += payload.len() as u64);
            Rc::get_mut(&mut frame.backing)
                .expect("fresh backing is unique")
                .data[headroom..headroom + payload.len()]
                .copy_from_slice(payload);
        }
        frame
    }
}

/// A reference-counted, pool-backed packet buffer.
///
/// A `Frame` is a cheap handle (`clone` bumps a refcount) over a backing
/// buffer, exposing a `[head, head+len)` window. Headers are prepended
/// into headroom ([`Frame::prepend`]) and stripped without copying
/// ([`Frame::pull`] narrows the window). Mutating a frame whose backing is
/// shared with other handles triggers copy-on-write, so holders never
/// observe each other's writes. When the last handle drops, a pooled
/// backing buffer returns to its [`FramePool`] freelist.
pub struct Frame {
    backing: Rc<Backing>,
    head: usize,
    len: usize,
    /// Journal identity: stamped once at creation, shared by every clone
    /// and slice, so the event journal can follow one packet's bytes from
    /// NIC to application regardless of how many handles exist.
    id: u64,
}

impl Frame {
    /// Wraps a complete packet in an unpooled frame with no headroom.
    pub fn from_vec(data: Vec<u8>) -> Frame {
        let len = data.len();
        bump_stats(|s| s.frames_fresh += 1);
        Frame {
            backing: Rc::new(Backing::new(data, Weak::new())),
            head: 0,
            len,
            id: unp_trace::next_frame_id(),
        }
    }

    /// The frame's journal identity. Clones and slices keep their
    /// parent's id — they are views of the same packet. COW divergence
    /// also keeps the id: the bytes still belong to the same logical
    /// packet's lifecycle.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Remaining headroom available for prepending.
    pub fn headroom(&self) -> usize {
        self.head
    }

    /// Current window length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the window is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The window contents.
    pub fn as_slice(&self) -> &[u8] {
        &self.backing.data[self.head..self.head + self.len]
    }

    /// Number of live handles sharing this frame's backing buffer.
    pub fn ref_count(&self) -> usize {
        Rc::strong_count(&self.backing)
    }

    /// True if both handles view the same backing buffer (no copy between
    /// them has occurred).
    pub fn ptr_eq(&self, other: &Frame) -> bool {
        Rc::ptr_eq(&self.backing, &other.backing)
    }

    /// Ensures this handle is the sole owner of its backing, copying the
    /// current window (copy-on-write) if it is shared.
    fn make_unique(&mut self) {
        if Rc::strong_count(&self.backing) == 1 {
            return;
        }
        bump_stats(|s| {
            s.cow_copies += 1;
            s.bytes_copied += self.len as u64;
        });
        let pool = self.backing.pool.clone();
        let mut data = match pool.upgrade() {
            Some(inner) => FramePool { inner }.take_buf(self.backing.data.len()),
            None => {
                bump_stats(|s| s.frames_fresh += 1);
                vec![0u8; self.backing.data.len()]
            }
        };
        if data.len() < self.backing.data.len() {
            data.resize(self.backing.data.len(), 0);
        }
        data[self.head..self.head + self.len]
            .copy_from_slice(&self.backing.data[self.head..self.head + self.len]);
        self.backing = Rc::new(Backing::new(data, pool));
    }

    /// Extends the window front by `n` bytes (a header about to be filled
    /// in) and returns the new front region. Copy-on-write if shared.
    ///
    /// # Panics
    /// Panics if headroom is insufficient — layers declare their
    /// worst-case need up front, exactly as with [`PktBuf::prepend`].
    pub fn prepend(&mut self, n: usize) -> &mut [u8] {
        assert!(
            n <= self.head,
            "insufficient headroom: need {n}, have {}",
            self.head
        );
        self.make_unique();
        self.head -= n;
        self.len += n;
        let head = self.head;
        &mut Rc::get_mut(&mut self.backing)
            .expect("unique after make_unique")
            .data[head..head + n]
    }

    /// Strips `n` bytes from the front (consuming a parsed header). Pure
    /// window narrowing: never copies, shared or not.
    pub fn pull(&mut self, n: usize) {
        assert!(n <= self.len, "pull past end");
        self.head += n;
        self.len -= n;
    }

    /// A new handle over `[start, end)` of this frame's window, sharing
    /// the same backing buffer (no copy).
    pub fn slice(&self, start: usize, end: usize) -> Frame {
        assert!(start <= end && end <= self.len, "slice out of range");
        Frame {
            backing: Rc::clone(&self.backing),
            head: self.head + start,
            len: end - start,
            id: self.id,
        }
    }

    /// Mutable window contents. Copy-on-write if shared.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        self.make_unique();
        let (head, len) = (self.head, self.len);
        &mut Rc::get_mut(&mut self.backing)
            .expect("unique after make_unique")
            .data[head..head + len]
    }

    /// Copies the window out into an owned `Vec` (counted as copied
    /// bytes — the escape hatch the zero-copy path avoids).
    pub fn to_vec(&self) -> Vec<u8> {
        bump_stats(|s| s.bytes_copied += self.len as u64);
        self.as_slice().to_vec()
    }
}

impl Clone for Frame {
    /// Refcount bump; never copies frame bytes.
    fn clone(&self) -> Frame {
        Frame {
            backing: Rc::clone(&self.backing),
            head: self.head,
            len: self.len,
            id: self.id,
        }
    }
}

impl std::ops::Deref for Frame {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Frame {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Frame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Frame")
            .field("len", &self.len)
            .field("headroom", &self.head)
            .field("refs", &self.ref_count())
            .finish()
    }
}

impl PartialEq for Frame {
    fn eq(&self, other: &Frame) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Frame {}

impl PartialEq<Vec<u8>> for Frame {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Frame> for Vec<u8> {
    fn eq(&self, other: &Frame) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<[u8]> for Frame {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Frame {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

/// A packet buffer with reserved headroom for prepending headers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PktBuf {
    data: Vec<u8>,
    head: usize,
}

impl PktBuf {
    /// Creates a buffer containing `payload`, with `headroom` bytes
    /// reserved in front for headers to be prepended later.
    pub fn with_headroom(headroom: usize, payload: &[u8]) -> PktBuf {
        let mut data = vec![0u8; headroom + payload.len()];
        data[headroom..].copy_from_slice(payload);
        PktBuf {
            data,
            head: headroom,
        }
    }

    /// Wraps a complete packet with no headroom.
    pub fn from_vec(data: Vec<u8>) -> PktBuf {
        PktBuf { data, head: 0 }
    }

    /// Remaining headroom available for prepending.
    pub fn headroom(&self) -> usize {
        self.head
    }

    /// Current packet length.
    pub fn len(&self) -> usize {
        self.data.len() - self.head
    }

    /// True if the packet is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Extends the packet front by `n` bytes (a header about to be filled
    /// in) and returns the new front region. Panics if headroom is
    /// insufficient — layers declare their worst-case need up front.
    pub fn prepend(&mut self, n: usize) -> &mut [u8] {
        assert!(
            n <= self.head,
            "insufficient headroom: need {n}, have {}",
            self.head
        );
        self.head -= n;
        &mut self.data[self.head..self.head + n]
    }

    /// Strips `n` bytes from the front (consuming a parsed header).
    pub fn pull(&mut self, n: usize) {
        assert!(n <= self.len(), "pull past end");
        self.head += n;
    }

    /// The packet contents.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.head..]
    }

    /// Mutable packet contents.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.data[self.head..]
    }

    /// Consumes the buffer, returning the packet bytes (copies only if
    /// headroom remains).
    pub fn into_vec(self) -> Vec<u8> {
        if self.head == 0 {
            self.data
        } else {
            self.data[self.head..].to_vec()
        }
    }
}

impl AsRef<[u8]> for PktBuf {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// Identifier of a slot within a [`SharedRegion`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotId(pub u32);

/// A pinned, fixed-slot packet memory region shared between the kernel's
/// network I/O module and one protocol library.
#[derive(Debug)]
pub struct SharedRegion {
    slot_size: usize,
    slots: Vec<Vec<u8>>,
    lens: Vec<usize>,
    free: Vec<u32>,
}

impl SharedRegion {
    /// Creates a region of `nslots` slots of `slot_size` bytes each.
    pub fn new(nslots: usize, slot_size: usize) -> SharedRegion {
        SharedRegion {
            slot_size,
            slots: vec![vec![0u8; slot_size]; nslots],
            lens: vec![0; nslots],
            free: (0..nslots as u32).rev().collect(),
        }
    }

    /// Slot capacity in bytes.
    pub fn slot_size(&self) -> usize {
        self.slot_size
    }

    /// Number of currently free slots.
    pub fn free_slots(&self) -> usize {
        self.free.len()
    }

    /// Total slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Allocates a slot, or `None` if the region is exhausted (backpressure:
    /// the NIC drops or the sender blocks, as real rings do).
    pub fn alloc(&mut self) -> Option<SlotId> {
        self.free.pop().map(SlotId)
    }

    /// Returns a slot to the free list.
    ///
    /// # Panics
    /// Panics if the slot is out of range or already free (double free).
    pub fn release(&mut self, slot: SlotId) {
        assert!((slot.0 as usize) < self.slots.len(), "slot out of range");
        assert!(!self.free.contains(&slot.0), "double free of {slot:?}");
        self.lens[slot.0 as usize] = 0;
        self.free.push(slot.0);
    }

    /// Writes packet bytes into a slot. Returns false (and writes nothing)
    /// if the packet exceeds the slot size.
    pub fn write(&mut self, slot: SlotId, data: &[u8]) -> bool {
        if data.len() > self.slot_size {
            return false;
        }
        let i = slot.0 as usize;
        self.slots[i][..data.len()].copy_from_slice(data);
        self.lens[i] = data.len();
        true
    }

    /// Reads the packet bytes stored in a slot.
    pub fn read(&self, slot: SlotId) -> &[u8] {
        let i = slot.0 as usize;
        &self.slots[i][..self.lens[i]]
    }
}

/// A descriptor naming a filled slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Descriptor {
    /// The slot holding the packet.
    pub slot: SlotId,
    /// Packet length within the slot.
    pub len: usize,
}

/// A bounded FIFO of descriptors: the unit of kernel↔user and NIC↔kernel
/// hand-off.
#[derive(Debug)]
pub struct DescRing {
    cap: usize,
    ring: VecDeque<Descriptor>,
    drops: u64,
}

impl DescRing {
    /// Creates a ring holding at most `cap` descriptors.
    pub fn new(cap: usize) -> DescRing {
        DescRing {
            cap,
            ring: VecDeque::with_capacity(cap),
            drops: 0,
        }
    }

    /// Enqueues a descriptor; on overflow the descriptor is dropped and
    /// counted (receive livelock behaviour of real rings).
    pub fn push(&mut self, d: Descriptor) -> bool {
        if self.ring.len() >= self.cap {
            self.drops += 1;
            return false;
        }
        self.ring.push_back(d);
        true
    }

    /// Dequeues the oldest descriptor.
    pub fn pop(&mut self) -> Option<Descriptor> {
        self.ring.pop_front()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True if no descriptors are queued.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// True if another push would drop.
    pub fn is_full(&self) -> bool {
        self.ring.len() >= self.cap
    }

    /// Number of descriptors dropped due to overflow.
    pub fn drops(&self) -> u64 {
        self.drops
    }
}

/// Identifier of a receive ring registered in a [`BqiTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RingId(pub u32);

/// A tenant identity: the unit of access control *and* resource
/// accounting. Every channel, BQI entry, and port right is owned by a
/// tenant, and the kernel's per-tenant budgets (ring-slot quota,
/// transmit credit, channel cap) are charged against this id.
/// `TenantId(0)` is the kernel itself and is exempt from budgets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u64);

/// The historical name for [`TenantId`]: an owner tag for access control
/// on BQI entries (a process/library id). Kept as an alias so existing
/// `OwnerTag(x)` constructors and type positions keep compiling.
pub use TenantId as OwnerTag;

/// The AN1 controller's buffer-queue-index table.
///
/// "A single field (called the buffer queue index, BQI) in the link-level
/// packet header provides a level of indirection into a table kept in the
/// controller... Strict access control to the index is maintained through
/// memory protection." BQI 0 is reserved and "refers to protected memory
/// within the kernel."
#[derive(Debug)]
pub struct BqiTable {
    entries: Vec<Option<(OwnerTag, RingId)>>,
}

impl BqiTable {
    /// Owner tag representing the kernel itself.
    pub const KERNEL_OWNER: OwnerTag = OwnerTag(0);

    /// Creates a table with `size` entries; entry 0 is pre-bound to the
    /// kernel's default ring (`kernel_ring`).
    pub fn new(size: usize, kernel_ring: RingId) -> BqiTable {
        assert!(size >= 1);
        let mut entries = vec![None; size];
        entries[0] = Some((Self::KERNEL_OWNER, kernel_ring));
        BqiTable { entries }
    }

    /// Allocates a fresh non-zero BQI bound to `ring` on behalf of `owner`.
    /// Returns `None` when the table is full.
    pub fn allocate(&mut self, owner: OwnerTag, ring: RingId) -> Option<u16> {
        let idx = self.entries.iter().skip(1).position(Option::is_none)? + 1;
        self.entries[idx] = Some((owner, ring));
        Some(idx as u16)
    }

    /// Resolves a BQI from an incoming packet to its ring. Unknown indexes
    /// fall back to BQI 0's kernel ring, as the hardware would deliver
    /// unmatched traffic to protected kernel memory.
    pub fn resolve(&self, bqi: u16) -> RingId {
        match self.entries.get(bqi as usize).copied().flatten() {
            Some((_, ring)) => ring,
            None => self.entries[0].expect("entry 0 always bound").1,
        }
    }

    /// Frees a BQI. Only the owner (or the kernel) may free it; returns
    /// false otherwise, enforcing the protection model.
    pub fn free(&mut self, bqi: u16, owner: OwnerTag) -> bool {
        if bqi == 0 {
            return false; // the kernel entry is permanent
        }
        match self.entries.get(bqi as usize).copied().flatten() {
            Some((o, _)) if o == owner || owner == Self::KERNEL_OWNER => {
                self.entries[bqi as usize] = None;
                true
            }
            _ => false,
        }
    }

    /// Frees every entry bound to `owner` (the kernel's sweep after a
    /// process death). Returns the freed indexes, ascending.
    pub fn reclaim_owner(&mut self, owner: OwnerTag) -> Vec<u16> {
        let mut freed = Vec::new();
        for (i, e) in self.entries.iter_mut().enumerate().skip(1) {
            if matches!(e, Some((o, _)) if *o == owner) {
                *e = None;
                freed.push(i as u16);
            }
        }
        freed
    }

    /// Number of bound entries (including the permanent kernel entry 0).
    pub fn bound_entries(&self) -> usize {
        self.entries.iter().flatten().count()
    }

    /// The owner of a BQI, if bound.
    pub fn owner(&self, bqi: u16) -> Option<OwnerTag> {
        self.entries
            .get(bqi as usize)
            .copied()
            .flatten()
            .map(|(o, _)| o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_clone_is_refcount_bump() {
        let pool = FramePool::new(256, 8);
        reset_frame_stats();
        let f = pool.alloc(54, b"payload");
        let before = frame_stats();
        let g = f.clone();
        let h = f.clone();
        assert_eq!(frame_stats(), before, "clone must not allocate or copy");
        assert_eq!(f.ref_count(), 3);
        assert!(f.ptr_eq(&g) && f.ptr_eq(&h));
        assert_eq!(g.as_slice(), b"payload");
    }

    #[test]
    fn frame_prepend_pull_identity() {
        let pool = FramePool::new(256, 8);
        let mut f = pool.alloc(34, b"data");
        f.prepend(20).copy_from_slice(&[2u8; 20]);
        f.prepend(14).copy_from_slice(&[1u8; 14]);
        assert_eq!(f.len(), 38);
        assert_eq!(&f[..14], &[1u8; 14]);
        f.pull(14);
        assert_eq!(&f[..20], &[2u8; 20]);
        f.pull(20);
        assert_eq!(f.as_slice(), b"data");
        assert_eq!(f.headroom(), 34);
    }

    #[test]
    #[should_panic(expected = "insufficient headroom")]
    fn frame_headroom_overdraft_panics() {
        let pool = FramePool::new(64, 2);
        let mut f = pool.alloc(4, b"x");
        f.prepend(5);
    }

    #[test]
    fn frame_cow_on_shared_mutation() {
        let pool = FramePool::new(256, 8);
        let mut a = pool.alloc(20, b"hello");
        let b = a.clone();
        assert!(a.ptr_eq(&b));
        reset_frame_stats();
        a.as_mut_slice()[0] = b'H';
        let st = frame_stats();
        assert_eq!(st.cow_copies, 1, "shared mutation must copy-on-write");
        assert!(!a.ptr_eq(&b), "writer must have diverged");
        assert_eq!(a.as_slice(), b"Hello");
        assert_eq!(b.as_slice(), b"hello", "reader must be unaffected");
        // Now unique: further mutation is in place.
        reset_frame_stats();
        a.as_mut_slice()[1] = b'E';
        assert_eq!(frame_stats().cow_copies, 0);
    }

    #[test]
    fn frame_prepend_on_shared_frame_cows() {
        let pool = FramePool::new(256, 8);
        let mut a = pool.alloc(14, b"ip-packet");
        let tap_copy = a.clone();
        a.prepend(14).copy_from_slice(&[0xee; 14]);
        assert_eq!(tap_copy.as_slice(), b"ip-packet");
        assert_eq!(a.len(), 23);
        assert_eq!(&a[..14], &[0xee; 14]);
    }

    #[test]
    fn frame_pull_never_copies() {
        let pool = FramePool::new(256, 8);
        let mut a = pool.alloc(0, b"hdrpayload");
        let b = a.clone();
        reset_frame_stats();
        a.pull(3);
        assert_eq!(frame_stats().bytes_copied, 0);
        assert!(a.ptr_eq(&b), "pull is window narrowing, not a copy");
        assert_eq!(a.as_slice(), b"payload");
        assert_eq!(b.as_slice(), b"hdrpayload");
    }

    #[test]
    fn frame_slice_shares_backing() {
        let pool = FramePool::new(256, 8);
        let f = pool.alloc(0, b"abcdef");
        let s = f.slice(2, 5);
        assert_eq!(s.as_slice(), b"cde");
        assert!(s.ptr_eq(&f));
    }

    #[test]
    fn pool_recycles_backing_buffers() {
        let pool = FramePool::new(128, 4);
        reset_frame_stats();
        {
            let _f = pool.alloc(10, b"one");
        }
        assert_eq!(pool.free_buffers(), 1);
        {
            let _g = pool.alloc(10, b"two");
        }
        let st = frame_stats();
        assert_eq!(st.frames_fresh, 1, "second alloc must reuse the buffer");
        assert_eq!(st.frames_recycled, 1);
    }

    #[test]
    fn pool_recycle_waits_for_last_handle() {
        let pool = FramePool::new(128, 4);
        let f = pool.alloc(0, b"shared");
        let g = f.clone();
        drop(f);
        assert_eq!(pool.free_buffers(), 0, "still one live handle");
        drop(g);
        assert_eq!(pool.free_buffers(), 1);
    }

    #[test]
    fn pool_oversize_alloc_is_fresh_and_not_recycled() {
        let pool = FramePool::new(64, 4);
        reset_frame_stats();
        {
            let f = pool.alloc(0, &[7u8; 200]);
            assert_eq!(f.len(), 200);
        }
        assert_eq!(frame_stats().frames_fresh, 1);
        assert_eq!(
            pool.free_buffers(),
            0,
            "odd-size buffers must not pollute the freelist"
        );
    }

    #[test]
    fn disabled_pool_never_recycles() {
        let pool = FramePool::disabled(128);
        {
            let _f = pool.alloc(0, b"x");
        }
        assert_eq!(pool.free_buffers(), 0);
    }

    #[test]
    fn recycled_frames_start_zeroed() {
        let pool = FramePool::new(64, 4);
        {
            let mut f = pool.alloc(8, b"dirty-bytes-here");
            f.as_mut_slice().fill(0xff);
        }
        let mut g = pool.alloc(8, b"");
        assert_eq!(g.prepend(8), &[0u8; 8], "headroom must come back clean");
    }

    #[test]
    fn live_frames_tracks_backings() {
        let pool = FramePool::new(64, 4);
        let base = live_frames();
        let a = pool.alloc(0, b"x");
        let b = a.clone();
        assert_eq!(live_frames(), base + 1, "clones share one backing");
        let mut c = a.clone();
        c.as_mut_slice()[0] = b'y';
        assert_eq!(live_frames(), base + 2, "COW divergence adds a backing");
        drop(a);
        drop(b);
        drop(c);
        assert_eq!(live_frames(), base, "all backings released");
    }

    #[test]
    fn pktbuf_prepend_and_pull() {
        let mut p = PktBuf::with_headroom(54, b"payload");
        assert_eq!(p.len(), 7);
        assert_eq!(p.headroom(), 54);
        p.prepend(20).copy_from_slice(&[2u8; 20]);
        p.prepend(14).copy_from_slice(&[1u8; 14]);
        assert_eq!(p.len(), 41);
        assert_eq!(&p.as_slice()[..14], &[1u8; 14]);
        p.pull(14);
        assert_eq!(&p.as_slice()[..20], &[2u8; 20]);
        p.pull(20);
        assert_eq!(p.as_slice(), b"payload");
    }

    #[test]
    #[should_panic(expected = "insufficient headroom")]
    fn pktbuf_overdraft_panics() {
        let mut p = PktBuf::with_headroom(4, b"x");
        p.prepend(5);
    }

    #[test]
    fn pktbuf_into_vec() {
        let mut p = PktBuf::with_headroom(2, b"abc");
        p.prepend(1)[0] = b'Z';
        assert_eq!(p.into_vec(), b"Zabc");
        assert_eq!(PktBuf::from_vec(b"raw".to_vec()).into_vec(), b"raw");
    }

    #[test]
    fn region_alloc_write_read_release() {
        let mut r = SharedRegion::new(4, 1514);
        assert_eq!(r.free_slots(), 4);
        let s = r.alloc().unwrap();
        assert!(r.write(s, b"hello"));
        assert_eq!(r.read(s), b"hello");
        r.release(s);
        assert_eq!(r.free_slots(), 4);
    }

    #[test]
    fn region_exhaustion_backpressure() {
        let mut r = SharedRegion::new(2, 64);
        let a = r.alloc().unwrap();
        let _b = r.alloc().unwrap();
        assert!(r.alloc().is_none());
        r.release(a);
        assert!(r.alloc().is_some());
    }

    #[test]
    fn region_oversize_write_refused() {
        let mut r = SharedRegion::new(1, 8);
        let s = r.alloc().unwrap();
        assert!(!r.write(s, &[0u8; 9]));
        assert!(r.write(s, &[0u8; 8]));
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn region_double_free_panics() {
        let mut r = SharedRegion::new(2, 8);
        let s = r.alloc().unwrap();
        r.release(s);
        r.release(s);
    }

    #[test]
    fn ring_fifo_order_and_overflow() {
        let mut ring = DescRing::new(2);
        let d = |i: u32| Descriptor {
            slot: SlotId(i),
            len: i as usize,
        };
        assert!(ring.push(d(1)));
        assert!(ring.push(d(2)));
        assert!(!ring.push(d(3)));
        assert_eq!(ring.drops(), 1);
        assert!(ring.is_full());
        assert_eq!(ring.pop(), Some(d(1)));
        assert_eq!(ring.pop(), Some(d(2)));
        assert_eq!(ring.pop(), None);
        assert!(ring.is_empty());
    }

    #[test]
    fn bqi_zero_is_kernel_default() {
        let t = BqiTable::new(8, RingId(0));
        assert_eq!(t.resolve(0), RingId(0));
        // Unknown index falls back to the kernel ring.
        assert_eq!(t.resolve(5), RingId(0));
        assert_eq!(t.resolve(9999), RingId(0));
    }

    #[test]
    fn bqi_allocate_resolve_free() {
        let mut t = BqiTable::new(4, RingId(0));
        let owner = OwnerTag(42);
        let bqi = t.allocate(owner, RingId(7)).unwrap();
        assert_ne!(bqi, 0);
        assert_eq!(t.resolve(bqi), RingId(7));
        assert_eq!(t.owner(bqi), Some(owner));
        // A different owner cannot free it.
        assert!(!t.free(bqi, OwnerTag(43)));
        assert!(t.free(bqi, owner));
        assert_eq!(t.resolve(bqi), RingId(0));
    }

    #[test]
    fn bqi_kernel_entry_cannot_be_freed() {
        let mut t = BqiTable::new(4, RingId(0));
        assert!(!t.free(0, BqiTable::KERNEL_OWNER));
    }

    #[test]
    fn bqi_table_exhaustion() {
        let mut t = BqiTable::new(3, RingId(0));
        assert!(t.allocate(OwnerTag(1), RingId(1)).is_some());
        assert!(t.allocate(OwnerTag(1), RingId(2)).is_some());
        assert!(t.allocate(OwnerTag(1), RingId(3)).is_none());
    }

    #[test]
    fn bqi_kernel_can_reclaim_any_entry() {
        let mut t = BqiTable::new(4, RingId(0));
        let bqi = t.allocate(OwnerTag(9), RingId(1)).unwrap();
        assert!(t.free(bqi, BqiTable::KERNEL_OWNER));
    }
}
