//! `unp-buffers` — the buffer layer.
//!
//! "The buffer layer in a communication system manages data buffers between
//! the user space, the kernel and the host-network interface" (paper §2.2).
//! This crate provides:
//!
//! * [`PktBuf`] — a packet buffer with headroom, so protocol layers prepend
//!   headers without copying (the mbuf idiom). We use a contiguous buffer
//!   rather than mbuf *chains*: chains exist to avoid copies in scattered
//!   kernel allocators, which a simulation does not have; headroom alone
//!   preserves the property that matters (no per-layer copy).
//! * [`SharedRegion`] — a pinned pool of fixed-size packet slots modelling
//!   the memory "created by the network I/O module and the registry server
//!   for holding network packets ... kept pinned for the duration of the
//!   connection and shared with the application".
//! * [`DescRing`] — a bounded descriptor ring used both for NIC receive
//!   rings and for the kernel↔library notification path.
//! * [`BqiTable`] — the AN1 controller's buffer-queue-index table: a
//!   link-header index naming a ring of host buffers, with strict access
//!   control ("access control to the index is maintained through memory
//!   protection").

use std::collections::VecDeque;

/// A packet buffer with reserved headroom for prepending headers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PktBuf {
    data: Vec<u8>,
    head: usize,
}

impl PktBuf {
    /// Creates a buffer containing `payload`, with `headroom` bytes
    /// reserved in front for headers to be prepended later.
    pub fn with_headroom(headroom: usize, payload: &[u8]) -> PktBuf {
        let mut data = vec![0u8; headroom + payload.len()];
        data[headroom..].copy_from_slice(payload);
        PktBuf {
            data,
            head: headroom,
        }
    }

    /// Wraps a complete packet with no headroom.
    pub fn from_vec(data: Vec<u8>) -> PktBuf {
        PktBuf { data, head: 0 }
    }

    /// Remaining headroom available for prepending.
    pub fn headroom(&self) -> usize {
        self.head
    }

    /// Current packet length.
    pub fn len(&self) -> usize {
        self.data.len() - self.head
    }

    /// True if the packet is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Extends the packet front by `n` bytes (a header about to be filled
    /// in) and returns the new front region. Panics if headroom is
    /// insufficient — layers declare their worst-case need up front.
    pub fn prepend(&mut self, n: usize) -> &mut [u8] {
        assert!(
            n <= self.head,
            "insufficient headroom: need {n}, have {}",
            self.head
        );
        self.head -= n;
        &mut self.data[self.head..self.head + n]
    }

    /// Strips `n` bytes from the front (consuming a parsed header).
    pub fn pull(&mut self, n: usize) {
        assert!(n <= self.len(), "pull past end");
        self.head += n;
    }

    /// The packet contents.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.head..]
    }

    /// Mutable packet contents.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.data[self.head..]
    }

    /// Consumes the buffer, returning the packet bytes (copies only if
    /// headroom remains).
    pub fn into_vec(self) -> Vec<u8> {
        if self.head == 0 {
            self.data
        } else {
            self.data[self.head..].to_vec()
        }
    }
}

impl AsRef<[u8]> for PktBuf {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// Identifier of a slot within a [`SharedRegion`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotId(pub u32);

/// A pinned, fixed-slot packet memory region shared between the kernel's
/// network I/O module and one protocol library.
#[derive(Debug)]
pub struct SharedRegion {
    slot_size: usize,
    slots: Vec<Vec<u8>>,
    lens: Vec<usize>,
    free: Vec<u32>,
}

impl SharedRegion {
    /// Creates a region of `nslots` slots of `slot_size` bytes each.
    pub fn new(nslots: usize, slot_size: usize) -> SharedRegion {
        SharedRegion {
            slot_size,
            slots: vec![vec![0u8; slot_size]; nslots],
            lens: vec![0; nslots],
            free: (0..nslots as u32).rev().collect(),
        }
    }

    /// Slot capacity in bytes.
    pub fn slot_size(&self) -> usize {
        self.slot_size
    }

    /// Number of currently free slots.
    pub fn free_slots(&self) -> usize {
        self.free.len()
    }

    /// Total slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Allocates a slot, or `None` if the region is exhausted (backpressure:
    /// the NIC drops or the sender blocks, as real rings do).
    pub fn alloc(&mut self) -> Option<SlotId> {
        self.free.pop().map(SlotId)
    }

    /// Returns a slot to the free list.
    ///
    /// # Panics
    /// Panics if the slot is out of range or already free (double free).
    pub fn release(&mut self, slot: SlotId) {
        assert!((slot.0 as usize) < self.slots.len(), "slot out of range");
        assert!(!self.free.contains(&slot.0), "double free of {slot:?}");
        self.lens[slot.0 as usize] = 0;
        self.free.push(slot.0);
    }

    /// Writes packet bytes into a slot. Returns false (and writes nothing)
    /// if the packet exceeds the slot size.
    pub fn write(&mut self, slot: SlotId, data: &[u8]) -> bool {
        if data.len() > self.slot_size {
            return false;
        }
        let i = slot.0 as usize;
        self.slots[i][..data.len()].copy_from_slice(data);
        self.lens[i] = data.len();
        true
    }

    /// Reads the packet bytes stored in a slot.
    pub fn read(&self, slot: SlotId) -> &[u8] {
        let i = slot.0 as usize;
        &self.slots[i][..self.lens[i]]
    }
}

/// A descriptor naming a filled slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Descriptor {
    /// The slot holding the packet.
    pub slot: SlotId,
    /// Packet length within the slot.
    pub len: usize,
}

/// A bounded FIFO of descriptors: the unit of kernel↔user and NIC↔kernel
/// hand-off.
#[derive(Debug)]
pub struct DescRing {
    cap: usize,
    ring: VecDeque<Descriptor>,
    drops: u64,
}

impl DescRing {
    /// Creates a ring holding at most `cap` descriptors.
    pub fn new(cap: usize) -> DescRing {
        DescRing {
            cap,
            ring: VecDeque::with_capacity(cap),
            drops: 0,
        }
    }

    /// Enqueues a descriptor; on overflow the descriptor is dropped and
    /// counted (receive livelock behaviour of real rings).
    pub fn push(&mut self, d: Descriptor) -> bool {
        if self.ring.len() >= self.cap {
            self.drops += 1;
            return false;
        }
        self.ring.push_back(d);
        true
    }

    /// Dequeues the oldest descriptor.
    pub fn pop(&mut self) -> Option<Descriptor> {
        self.ring.pop_front()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True if no descriptors are queued.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// True if another push would drop.
    pub fn is_full(&self) -> bool {
        self.ring.len() >= self.cap
    }

    /// Number of descriptors dropped due to overflow.
    pub fn drops(&self) -> u64 {
        self.drops
    }
}

/// Identifier of a receive ring registered in a [`BqiTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RingId(pub u32);

/// An owner tag for access control on BQI entries (a process/library id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OwnerTag(pub u64);

/// The AN1 controller's buffer-queue-index table.
///
/// "A single field (called the buffer queue index, BQI) in the link-level
/// packet header provides a level of indirection into a table kept in the
/// controller... Strict access control to the index is maintained through
/// memory protection." BQI 0 is reserved and "refers to protected memory
/// within the kernel."
#[derive(Debug)]
pub struct BqiTable {
    entries: Vec<Option<(OwnerTag, RingId)>>,
}

impl BqiTable {
    /// Owner tag representing the kernel itself.
    pub const KERNEL_OWNER: OwnerTag = OwnerTag(0);

    /// Creates a table with `size` entries; entry 0 is pre-bound to the
    /// kernel's default ring (`kernel_ring`).
    pub fn new(size: usize, kernel_ring: RingId) -> BqiTable {
        assert!(size >= 1);
        let mut entries = vec![None; size];
        entries[0] = Some((Self::KERNEL_OWNER, kernel_ring));
        BqiTable { entries }
    }

    /// Allocates a fresh non-zero BQI bound to `ring` on behalf of `owner`.
    /// Returns `None` when the table is full.
    pub fn allocate(&mut self, owner: OwnerTag, ring: RingId) -> Option<u16> {
        let idx = self.entries.iter().skip(1).position(Option::is_none)? + 1;
        self.entries[idx] = Some((owner, ring));
        Some(idx as u16)
    }

    /// Resolves a BQI from an incoming packet to its ring. Unknown indexes
    /// fall back to BQI 0's kernel ring, as the hardware would deliver
    /// unmatched traffic to protected kernel memory.
    pub fn resolve(&self, bqi: u16) -> RingId {
        match self.entries.get(bqi as usize).copied().flatten() {
            Some((_, ring)) => ring,
            None => self.entries[0].expect("entry 0 always bound").1,
        }
    }

    /// Frees a BQI. Only the owner (or the kernel) may free it; returns
    /// false otherwise, enforcing the protection model.
    pub fn free(&mut self, bqi: u16, owner: OwnerTag) -> bool {
        if bqi == 0 {
            return false; // the kernel entry is permanent
        }
        match self.entries.get(bqi as usize).copied().flatten() {
            Some((o, _)) if o == owner || owner == Self::KERNEL_OWNER => {
                self.entries[bqi as usize] = None;
                true
            }
            _ => false,
        }
    }

    /// The owner of a BQI, if bound.
    pub fn owner(&self, bqi: u16) -> Option<OwnerTag> {
        self.entries
            .get(bqi as usize)
            .copied()
            .flatten()
            .map(|(o, _)| o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pktbuf_prepend_and_pull() {
        let mut p = PktBuf::with_headroom(54, b"payload");
        assert_eq!(p.len(), 7);
        assert_eq!(p.headroom(), 54);
        p.prepend(20).copy_from_slice(&[2u8; 20]);
        p.prepend(14).copy_from_slice(&[1u8; 14]);
        assert_eq!(p.len(), 41);
        assert_eq!(&p.as_slice()[..14], &[1u8; 14]);
        p.pull(14);
        assert_eq!(&p.as_slice()[..20], &[2u8; 20]);
        p.pull(20);
        assert_eq!(p.as_slice(), b"payload");
    }

    #[test]
    #[should_panic(expected = "insufficient headroom")]
    fn pktbuf_overdraft_panics() {
        let mut p = PktBuf::with_headroom(4, b"x");
        p.prepend(5);
    }

    #[test]
    fn pktbuf_into_vec() {
        let mut p = PktBuf::with_headroom(2, b"abc");
        p.prepend(1)[0] = b'Z';
        assert_eq!(p.into_vec(), b"Zabc");
        assert_eq!(PktBuf::from_vec(b"raw".to_vec()).into_vec(), b"raw");
    }

    #[test]
    fn region_alloc_write_read_release() {
        let mut r = SharedRegion::new(4, 1514);
        assert_eq!(r.free_slots(), 4);
        let s = r.alloc().unwrap();
        assert!(r.write(s, b"hello"));
        assert_eq!(r.read(s), b"hello");
        r.release(s);
        assert_eq!(r.free_slots(), 4);
    }

    #[test]
    fn region_exhaustion_backpressure() {
        let mut r = SharedRegion::new(2, 64);
        let a = r.alloc().unwrap();
        let _b = r.alloc().unwrap();
        assert!(r.alloc().is_none());
        r.release(a);
        assert!(r.alloc().is_some());
    }

    #[test]
    fn region_oversize_write_refused() {
        let mut r = SharedRegion::new(1, 8);
        let s = r.alloc().unwrap();
        assert!(!r.write(s, &[0u8; 9]));
        assert!(r.write(s, &[0u8; 8]));
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn region_double_free_panics() {
        let mut r = SharedRegion::new(2, 8);
        let s = r.alloc().unwrap();
        r.release(s);
        r.release(s);
    }

    #[test]
    fn ring_fifo_order_and_overflow() {
        let mut ring = DescRing::new(2);
        let d = |i: u32| Descriptor {
            slot: SlotId(i),
            len: i as usize,
        };
        assert!(ring.push(d(1)));
        assert!(ring.push(d(2)));
        assert!(!ring.push(d(3)));
        assert_eq!(ring.drops(), 1);
        assert!(ring.is_full());
        assert_eq!(ring.pop(), Some(d(1)));
        assert_eq!(ring.pop(), Some(d(2)));
        assert_eq!(ring.pop(), None);
        assert!(ring.is_empty());
    }

    #[test]
    fn bqi_zero_is_kernel_default() {
        let t = BqiTable::new(8, RingId(0));
        assert_eq!(t.resolve(0), RingId(0));
        // Unknown index falls back to the kernel ring.
        assert_eq!(t.resolve(5), RingId(0));
        assert_eq!(t.resolve(9999), RingId(0));
    }

    #[test]
    fn bqi_allocate_resolve_free() {
        let mut t = BqiTable::new(4, RingId(0));
        let owner = OwnerTag(42);
        let bqi = t.allocate(owner, RingId(7)).unwrap();
        assert_ne!(bqi, 0);
        assert_eq!(t.resolve(bqi), RingId(7));
        assert_eq!(t.owner(bqi), Some(owner));
        // A different owner cannot free it.
        assert!(!t.free(bqi, OwnerTag(43)));
        assert!(t.free(bqi, owner));
        assert_eq!(t.resolve(bqi), RingId(0));
    }

    #[test]
    fn bqi_kernel_entry_cannot_be_freed() {
        let mut t = BqiTable::new(4, RingId(0));
        assert!(!t.free(0, BqiTable::KERNEL_OWNER));
    }

    #[test]
    fn bqi_table_exhaustion() {
        let mut t = BqiTable::new(3, RingId(0));
        assert!(t.allocate(OwnerTag(1), RingId(1)).is_some());
        assert!(t.allocate(OwnerTag(1), RingId(2)).is_some());
        assert!(t.allocate(OwnerTag(1), RingId(3)).is_none());
    }

    #[test]
    fn bqi_kernel_can_reclaim_any_entry() {
        let mut t = BqiTable::new(4, RingId(0));
        let bqi = t.allocate(OwnerTag(9), RingId(1)).unwrap();
        assert!(t.free(bqi, BqiTable::KERNEL_OWNER));
    }
}
