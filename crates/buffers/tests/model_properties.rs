//! Property tests for the buffer layer: the shared region behaves like a
//! reference allocator, rings preserve FIFO order, and pktbuf
//! prepend/pull compose to identity.

use std::collections::{HashMap, VecDeque};

use proptest::prelude::*;

use unp_buffers::{BqiTable, DescRing, Descriptor, OwnerTag, PktBuf, RingId, SharedRegion, SlotId};

#[derive(Debug, Clone)]
enum RegionOp {
    Alloc(Vec<u8>),
    ReleaseNth(usize),
    ReadNth(usize),
}

fn arb_region_op() -> impl Strategy<Value = RegionOp> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(RegionOp::Alloc),
        any::<usize>().prop_map(RegionOp::ReleaseNth),
        any::<usize>().prop_map(RegionOp::ReadNth),
    ]
}

proptest! {
    /// The shared region matches a reference map under arbitrary
    /// alloc/write/read/release interleavings: reads return exactly what
    /// was written, allocation fails iff the reference says full, and no
    /// slot is ever handed out twice.
    #[test]
    fn region_matches_reference(ops in proptest::collection::vec(arb_region_op(), 1..120)) {
        const SLOTS: usize = 8;
        let mut region = SharedRegion::new(SLOTS, 64);
        let mut model: HashMap<u32, Vec<u8>> = HashMap::new();
        let mut live: Vec<SlotId> = Vec::new();

        for op in ops {
            match op {
                RegionOp::Alloc(data) => {
                    match region.alloc() {
                        Some(slot) => {
                            prop_assert!(model.len() < SLOTS, "alloc beyond capacity");
                            prop_assert!(!model.contains_key(&slot.0), "double allocation");
                            prop_assert!(region.write(slot, &data));
                            model.insert(slot.0, data);
                            live.push(slot);
                        }
                        None => prop_assert_eq!(model.len(), SLOTS, "refused while free"),
                    }
                }
                RegionOp::ReleaseNth(n) => {
                    if live.is_empty() { continue; }
                    let slot = live.remove(n % live.len());
                    model.remove(&slot.0);
                    region.release(slot);
                }
                RegionOp::ReadNth(n) => {
                    if live.is_empty() { continue; }
                    let slot = live[n % live.len()];
                    prop_assert_eq!(region.read(slot), &model[&slot.0][..]);
                }
            }
            prop_assert_eq!(region.free_slots(), SLOTS - model.len());
        }
    }

    /// Descriptor rings are strict bounded FIFOs.
    #[test]
    fn ring_is_bounded_fifo(cap in 1usize..16, pushes in proptest::collection::vec(any::<u32>(), 0..64)) {
        let mut ring = DescRing::new(cap);
        let mut model: VecDeque<u32> = VecDeque::new();
        let mut drops = 0u64;
        for (i, v) in pushes.iter().enumerate() {
            let d = Descriptor { slot: SlotId(*v), len: i };
            if model.len() < cap {
                prop_assert!(ring.push(d));
                model.push_back(*v);
            } else {
                prop_assert!(!ring.push(d));
                drops += 1;
            }
            // Drain occasionally to exercise wraparound.
            if i % 3 == 0 {
                match (ring.pop(), model.pop_front()) {
                    (Some(got), Some(want)) => prop_assert_eq!(got.slot.0, want),
                    (None, None) => {}
                    other => prop_assert!(false, "divergence: {other:?}"),
                }
            }
        }
        prop_assert_eq!(ring.drops(), drops);
        while let Some(want) = model.pop_front() {
            prop_assert_eq!(ring.pop().map(|d| d.slot.0), Some(want));
        }
        prop_assert!(ring.pop().is_none());
    }

    /// prepend-then-pull of arbitrary header stacks is the identity on the
    /// payload.
    #[test]
    fn pktbuf_prepend_pull_identity(
        payload in proptest::collection::vec(any::<u8>(), 0..128),
        headers in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..32), 0..4),
    ) {
        let headroom: usize = headers.iter().map(Vec::len).sum();
        let mut p = PktBuf::with_headroom(headroom, &payload);
        for h in headers.iter().rev() {
            p.prepend(h.len()).copy_from_slice(h);
        }
        prop_assert_eq!(p.len(), headroom + payload.len());
        for h in &headers {
            prop_assert_eq!(&p.as_slice()[..h.len()], &h[..]);
            p.pull(h.len());
        }
        prop_assert_eq!(p.as_slice(), &payload[..]);
        prop_assert_eq!(p.headroom(), headroom);
    }

    /// The BQI table never resolves to a freed or foreign binding, and
    /// always falls back to the kernel ring.
    #[test]
    fn bqi_table_resolution_safety(
        allocs in proptest::collection::vec((1u64..5, 1u32..100), 0..20),
        probe in any::<u16>(),
    ) {
        let mut t = BqiTable::new(8, RingId(0));
        let mut bound: HashMap<u16, RingId> = HashMap::new();
        for (owner, ring) in allocs {
            if let Some(bqi) = t.allocate(OwnerTag(owner), RingId(ring)) {
                prop_assert!(bqi != 0, "never hands out the kernel entry");
                prop_assert!(!bound.contains_key(&bqi), "index reuse while bound");
                bound.insert(bqi, RingId(ring));
            }
        }
        let got = t.resolve(probe);
        match bound.get(&probe) {
            Some(&ring) => prop_assert_eq!(got, ring),
            None => prop_assert_eq!(got, RingId(0), "unbound must fall back to kernel"),
        }
    }
}
