//! A tiny, dependency-free, offline stand-in for the `criterion` crate.
//!
//! The build container has no network access, so the real `criterion`
//! cannot be fetched. This harness implements the slice of its API our
//! benches use — `Criterion`, `benchmark_group` with `throughput` /
//! `sample_size` / `bench_function` / `finish`, `Bencher::iter`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros —
//! with a simple calibrated wall-clock measurement: each benchmark is
//! warmed up, then timed over enough iterations to fill a measurement
//! window, and the mean ns/iter (plus MB/s when a byte throughput is set)
//! is printed.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, re-exported from `std::hint`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

pub struct Criterion {
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            measurement: Duration::from_millis(400),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let measurement = self.measurement;
        run_one(&name.into(), None, measurement, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the fixed measurement window makes
    /// an explicit sample count unnecessary.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.throughput, self.criterion.measurement, f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    throughput: Option<Throughput>,
    window: Duration,
    mut f: F,
) {
    // Calibrate: grow the iteration count until one batch takes ~10% of
    // the measurement window, then time batches until the window is spent.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    loop {
        f(&mut b);
        if b.elapsed >= window / 10 || b.iters >= 1 << 30 {
            break;
        }
        b.iters = (b.iters * 2).max(2);
    }
    let mut total = Duration::ZERO;
    let mut iters = 0u64;
    while total < window {
        f(&mut b);
        total += b.elapsed;
        iters += b.iters;
    }
    let ns_per_iter = total.as_nanos() as f64 / iters.max(1) as f64;
    match throughput {
        Some(Throughput::Bytes(bytes)) => {
            let mbps = bytes as f64 / ns_per_iter * 1e9 / 1e6;
            println!("{label:<44} {ns_per_iter:>12.1} ns/iter {mbps:>10.1} MB/s ({iters} iters)");
        }
        Some(Throughput::Elements(n)) => {
            let eps = n as f64 / ns_per_iter * 1e9;
            println!("{label:<44} {ns_per_iter:>12.1} ns/iter {eps:>10.0} elem/s ({iters} iters)");
        }
        None => {
            println!("{label:<44} {ns_per_iter:>12.1} ns/iter ({iters} iters)");
        }
    }
}

/// Declares a bench harness entry: `criterion_group!(name, fn_a, fn_b)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
