//! The application model and canned workload applications.
//!
//! Applications are event-driven: the hosting organization invokes the
//! [`AppLogic`] callbacks (charging the org-appropriate boundary cost for
//! each crossing) and executes the returned [`AppOp`]s. Workload apps share
//! a [`TransferStats`] cell with the experiment harness so measurements can
//! be read out after the run.

use std::cell::RefCell;
use std::rc::Rc;

/// Nanoseconds.
pub type Nanos = u64;

/// What an application asks its protocol library to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppOp {
    /// Write bytes to the connection (the library queues what the send
    /// buffer cannot take and drains it as space frees).
    Send(Vec<u8>),
    /// Close the send direction once queued data drains.
    Close,
    /// Abort with RST.
    Abort,
}

/// Read-only context handed to app callbacks.
#[derive(Debug, Clone, Copy)]
pub struct AppView {
    /// Current simulated time.
    pub now: Nanos,
    /// Free space in the connection's send buffer.
    pub send_space: usize,
    /// Bytes the library still holds queued on the app's behalf.
    pub pending_tx: usize,
    /// Local (address, port) of the connection, when known.
    pub local: Option<(unp_wire::Ipv4Addr, u16)>,
    /// Remote (address, port) of the connection, when known.
    pub remote: Option<(unp_wire::Ipv4Addr, u16)>,
}

/// An event-driven application bound to one connection.
pub trait AppLogic {
    /// The connection is established.
    fn on_connected(&mut self, view: &AppView) -> Vec<AppOp> {
        let _ = view;
        Vec::new()
    }
    /// In-order data arrived (already drained from the receive buffer).
    fn on_data(&mut self, data: &[u8], view: &AppView) -> Vec<AppOp> {
        let _ = (data, view);
        Vec::new()
    }
    /// Send-buffer space freed.
    fn on_send_space(&mut self, view: &AppView) -> Vec<AppOp> {
        let _ = view;
        Vec::new()
    }
    /// The peer closed its direction (EOF).
    fn on_peer_closed(&mut self, view: &AppView) -> Vec<AppOp> {
        let _ = view;
        Vec::new()
    }
    /// The connection was reset or setup failed.
    fn on_reset(&mut self, view: &AppView) {
        let _ = view;
    }
}

/// Shared measurement cell for transfer workloads.
#[derive(Debug, Default)]
pub struct TransferStats {
    /// Bytes received so far (sink side).
    pub bytes_received: u64,
    /// Time of the first byte's arrival.
    pub first_byte_at: Option<Nanos>,
    /// Time of the most recent byte's arrival.
    pub last_byte_at: Option<Nanos>,
    /// Time `on_connected` fired.
    pub connected_at: Option<Nanos>,
    /// Completed request/response round-trip times.
    pub rtts: Vec<Nanos>,
    /// True once the peer closed.
    pub peer_closed: bool,
    /// True if the connection was reset.
    pub reset: bool,
}

impl TransferStats {
    /// A fresh shared cell.
    pub fn new_shared() -> Rc<RefCell<TransferStats>> {
        Rc::new(RefCell::new(TransferStats::default()))
    }

    /// Payload throughput in bits/s between first and last byte.
    pub fn throughput_bps(&self) -> Option<f64> {
        let (first, last) = (self.first_byte_at?, self.last_byte_at?);
        if last <= first || self.bytes_received == 0 {
            return None;
        }
        Some(self.bytes_received as f64 * 8.0 / ((last - first) as f64 / 1e9))
    }

    /// Mean round-trip time in nanoseconds.
    pub fn mean_rtt(&self) -> Option<f64> {
        if self.rtts.is_empty() {
            return None;
        }
        Some(self.rtts.iter().map(|&r| r as f64).sum::<f64>() / self.rtts.len() as f64)
    }
}

/// Writes `total` bytes in `chunk`-sized application writes, then closes.
///
/// The chunk size is the paper's "user packet size" — the unit the
/// application hands to the transport per call, which Tables 2 and 3 vary.
pub struct BulkSender {
    total: u64,
    sent: u64,
    chunk: usize,
    close_when_done: bool,
}

impl BulkSender {
    /// Creates a sender for `total` bytes in `chunk`-byte writes.
    pub fn new(total: u64, chunk: usize) -> BulkSender {
        BulkSender {
            total,
            sent: 0,
            chunk,
            close_when_done: true,
        }
    }

    /// Keeps the connection open after the transfer.
    pub fn without_close(mut self) -> BulkSender {
        self.close_when_done = false;
        self
    }

    fn pump(&mut self, view: &AppView) -> Vec<AppOp> {
        // Keep the library supplied up to a watermark, like a blocking
        // writer that the kernel wakes whenever buffer space frees; the
        // byte pattern is position-dependent so receivers can verify
        // integrity.
        const WATERMARK: usize = 32 * 1024;
        let mut ops = Vec::new();
        let mut queued = 0usize;
        while self.sent < self.total && view.pending_tx + queued < WATERMARK && ops.len() < 256 {
            let n = self.chunk.min((self.total - self.sent) as usize);
            let data: Vec<u8> = (self.sent..self.sent + n as u64)
                .map(|i| (i % 251) as u8)
                .collect();
            self.sent += n as u64;
            queued += n;
            ops.push(AppOp::Send(data));
        }
        if self.sent >= self.total && self.close_when_done {
            ops.push(AppOp::Close);
            self.close_when_done = false;
        }
        ops
    }
}

impl AppLogic for BulkSender {
    fn on_connected(&mut self, view: &AppView) -> Vec<AppOp> {
        self.pump(view)
    }

    fn on_send_space(&mut self, view: &AppView) -> Vec<AppOp> {
        self.pump(view)
    }
}

/// Receives bytes, verifying the [`BulkSender`] pattern, recording timing.
pub struct SinkApp {
    stats: Rc<RefCell<TransferStats>>,
    verify: bool,
    offset: u64,
}

impl SinkApp {
    /// Creates a sink reporting into `stats`.
    pub fn new(stats: Rc<RefCell<TransferStats>>) -> SinkApp {
        SinkApp {
            stats,
            verify: true,
            offset: 0,
        }
    }

    /// Disables pattern verification (for non-BulkSender peers).
    pub fn without_verify(mut self) -> SinkApp {
        self.verify = false;
        self
    }
}

impl AppLogic for SinkApp {
    fn on_connected(&mut self, view: &AppView) -> Vec<AppOp> {
        self.stats.borrow_mut().connected_at = Some(view.now);
        Vec::new()
    }

    fn on_data(&mut self, data: &[u8], view: &AppView) -> Vec<AppOp> {
        if self.verify {
            for &b in data {
                assert_eq!(
                    b,
                    (self.offset % 251) as u8,
                    "stream corrupted at offset {}",
                    self.offset
                );
                self.offset += 1;
            }
        }
        let mut s = self.stats.borrow_mut();
        s.bytes_received += data.len() as u64;
        s.first_byte_at.get_or_insert(view.now);
        s.last_byte_at = Some(view.now);
        Vec::new()
    }

    fn on_peer_closed(&mut self, _view: &AppView) -> Vec<AppOp> {
        self.stats.borrow_mut().peer_closed = true;
        vec![AppOp::Close]
    }

    fn on_reset(&mut self, _view: &AppView) {
        self.stats.borrow_mut().reset = true;
    }
}

/// Echoes everything it receives (the latency test's passive side: "the
/// first application sends data to the second, which in turn, sends the
/// same amount of data back").
pub struct EchoApp;

impl AppLogic for EchoApp {
    fn on_data(&mut self, data: &[u8], _view: &AppView) -> Vec<AppOp> {
        vec![AppOp::Send(data.to_vec())]
    }

    fn on_peer_closed(&mut self, _view: &AppView) -> Vec<AppOp> {
        vec![AppOp::Close]
    }
}

/// The latency test's active side: sends `size` bytes, waits for the same
/// amount back, records the round-trip time, repeats `rounds` times.
pub struct PingPongApp {
    size: usize,
    rounds: usize,
    received_this_round: usize,
    sent_at: Option<Nanos>,
    stats: Rc<RefCell<TransferStats>>,
}

impl PingPongApp {
    /// Creates the pinger.
    pub fn new(size: usize, rounds: usize, stats: Rc<RefCell<TransferStats>>) -> PingPongApp {
        PingPongApp {
            size,
            rounds,
            received_this_round: 0,
            sent_at: None,
            stats,
        }
    }

    fn ping(&mut self, now: Nanos) -> Vec<AppOp> {
        self.sent_at = Some(now);
        self.received_this_round = 0;
        vec![AppOp::Send(vec![0x42; self.size])]
    }
}

impl AppLogic for PingPongApp {
    fn on_connected(&mut self, view: &AppView) -> Vec<AppOp> {
        self.stats.borrow_mut().connected_at = Some(view.now);
        if self.rounds == 0 {
            return vec![AppOp::Close];
        }
        self.ping(view.now)
    }

    fn on_data(&mut self, data: &[u8], view: &AppView) -> Vec<AppOp> {
        self.received_this_round += data.len();
        if self.received_this_round < self.size {
            return Vec::new();
        }
        let rtt = view.now - self.sent_at.expect("pong implies ping");
        self.stats.borrow_mut().rtts.push(rtt);
        self.rounds -= 1;
        if self.rounds == 0 {
            vec![AppOp::Close]
        } else {
            self.ping(view.now)
        }
    }

    fn on_reset(&mut self, _view: &AppView) {
        self.stats.borrow_mut().reset = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(now: Nanos) -> AppView {
        AppView {
            now,
            send_space: 16384,
            pending_tx: 0,
            local: None,
            remote: None,
        }
    }

    #[test]
    fn bulk_sender_emits_total_and_closes() {
        let mut s = BulkSender::new(10_000, 4096);
        let mut sent = 0usize;
        let mut closed = false;
        let mut ops = s.on_connected(&view(0));
        loop {
            let mut progressed = false;
            for op in ops.drain(..) {
                match op {
                    AppOp::Send(d) => {
                        sent += d.len();
                        progressed = true;
                    }
                    AppOp::Close => closed = true,
                    AppOp::Abort => panic!("no abort"),
                }
            }
            if closed || !progressed {
                break;
            }
            ops = s.on_send_space(&view(1));
        }
        assert_eq!(sent, 10_000);
        assert!(closed);
    }

    #[test]
    fn sink_verifies_pattern_and_records() {
        let stats = TransferStats::new_shared();
        let mut sink = SinkApp::new(Rc::clone(&stats));
        let data: Vec<u8> = (0..500u64).map(|i| (i % 251) as u8).collect();
        sink.on_data(&data[..250], &view(100));
        sink.on_data(&data[250..], &view(200));
        let s = stats.borrow();
        assert_eq!(s.bytes_received, 500);
        assert_eq!(s.first_byte_at, Some(100));
        assert_eq!(s.last_byte_at, Some(200));
    }

    #[test]
    #[should_panic(expected = "stream corrupted")]
    fn sink_detects_corruption() {
        let stats = TransferStats::new_shared();
        let mut sink = SinkApp::new(stats);
        sink.on_data(&[0, 1, 99], &view(0));
    }

    #[test]
    fn ping_pong_measures_rtts() {
        let stats = TransferStats::new_shared();
        let mut p = PingPongApp::new(100, 2, Rc::clone(&stats));
        let ops = p.on_connected(&view(0));
        assert!(matches!(&ops[0], AppOp::Send(d) if d.len() == 100));
        // Pong arrives split across two deliveries at t=500.
        assert!(p.on_data(&[0; 60], &view(400)).is_empty());
        let ops = p.on_data(&[0; 40], &view(500));
        assert!(matches!(&ops[0], AppOp::Send(_)));
        let ops = p.on_data(&[0; 100], &view(900));
        assert_eq!(ops, vec![AppOp::Close]);
        assert_eq!(stats.borrow().rtts, vec![500, 400]);
    }

    #[test]
    fn throughput_computation() {
        let stats = TransferStats::new_shared();
        {
            let mut s = stats.borrow_mut();
            s.bytes_received = 1_000_000;
            s.first_byte_at = Some(0);
            s.last_byte_at = Some(1_000_000_000);
        }
        let bps = stats.borrow().throughput_bps().unwrap();
        assert!((bps - 8_000_000.0).abs() < 1.0);
    }
}
