//! The simulated world: hosts, organizations, and the full data path.
//!
//! See the crate docs for the organization taxonomy. The central design
//! rule: **state machines mutate at event time, observable effects pay
//! their way** — every trap, IPC, copy, checksum, filter run, semaphore
//! signal, and context switch on the path of a packet is charged to the
//! owning host's CPU via [`host_exec`], and the packet's next hop happens
//! at the charge's completion time. The protocol code itself
//! (`unp-tcp`/`unp-proto`) is identical across organizations.

use std::collections::HashMap;

use unp_buffers::{Frame, FramePool, OwnerTag};
use unp_kernel::{Capability, ChannelId, ChannelStats, Delivery, HeaderTemplate, NetIoModule};
use unp_netdev::{An1Nic, LanceNic, Link, StationId};
use unp_proto::arp::ArpResult;
use unp_proto::{icmp_input, ArpCache, IpEndpoint, IpRecv, UdpLayer};
use unp_registry::{HsId, RegistryAction, RegistryServer};
use unp_sim::{CostModel, Cpu, DemuxPath, Engine, EventId, LinkParams, Nanos};
use unp_tcp::{ListenTcb, Tcb, TcpAction, TcpConfig, TcpTimer};
use unp_timers::{TimerId, TimerService, TimerWheel};
use unp_trace::{ConnKey, Ctr, Gauge, Hist, Metrics};
use unp_wire::{
    An1Frame, An1Repr, ArpPacket, ArpRepr, EtherType, EthernetRepr, IpProtocol, Ipv4Addr, Ipv4Repr,
    MacAddr, TcpPacket, TcpRepr, AN1_HEADER_LEN, ETHERNET_HEADER_LEN, IPV4_HEADER_LEN,
};

/// The engine type for this world.
pub type Eng = Engine<World>;

/// Which network the hosts share.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Network {
    /// 10 Mb/s shared Ethernet with Lance-style PIO interfaces.
    Ethernet,
    /// 100 Mb/s AN1 point-to-point segment with BQI DMA interfaces.
    An1,
}

/// The protocol organizations of the paper's Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrgKind {
    /// Monolithic in-kernel (Ultrix 4.2A).
    InKernel,
    /// Mach 3.0 + UX single server, device mapped into the server.
    SingleServer,
    /// Single server with in-kernel device management behind a message
    /// interface (the slower variant the paper describes).
    SingleServerMsg,
    /// One server per protocol stack plus a device server.
    DedicatedServer,
    /// The paper's user-level library + registry + network I/O module.
    UserLibrary,
}

impl OrgKind {
    /// Human-readable label used in reports (paper terminology).
    pub fn label(&self) -> &'static str {
        match self {
            OrgKind::InKernel => "Ultrix 4.2A (in-kernel)",
            OrgKind::SingleServer => "Mach 3.0/UX (mapped)",
            OrgKind::SingleServerMsg => "Mach 3.0/UX (message)",
            OrgKind::DedicatedServer => "Dedicated servers",
            OrgKind::UserLibrary => "User-level library (ours)",
        }
    }

    fn is_user_library(&self) -> bool {
        matches!(self, OrgKind::UserLibrary)
    }
}

/// Host-network interface state.
pub enum Nic {
    /// Lance-style Ethernet interface.
    Lance(LanceNic),
    /// AN1 interface with BQI table.
    An1(An1Nic),
}

/// Timer wheel token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerToken {
    /// A connection timer in the library/kernel stack.
    Conn(u32, TcpTimer),
    /// A registry-held handshake or inherited-connection timer.
    Registry(u64, TcpTimer),
}

/// A listening endpoint: configuration plus an application factory invoked
/// per accepted connection.
pub struct Listener {
    cfg: TcpConfig,
    factory: Box<dyn FnMut() -> Box<dyn crate::app::AppLogic>>,
}

/// Per-connection channel state (UserLibrary organization).
pub struct ChanInfo {
    /// Kernel channel id.
    pub id: ChannelId,
    /// Send capability (template-checked transmission).
    pub send_cap: Capability,
    /// Receive capability (ring consumption).
    pub recv_cap: Capability,
    /// The BQI the peer must stamp for hardware demux to reach us (AN1).
    pub our_bqi: u16,
    /// The BQI we stamp on outgoing data frames (announced by the peer).
    pub peer_bqi: Option<u16>,
}

/// One live connection endpoint.
pub struct Conn {
    /// The TCP state (the paper's "TCP state transferred to user level").
    pub tcb: Tcb,
    /// The owning application.
    pub app: Box<dyn crate::app::AppLogic>,
    /// Channel info when running under the UserLibrary organization.
    pub chan: Option<ChanInfo>,
    /// App bytes the library holds beyond the TCB's send buffer.
    pending_tx: std::collections::VecDeque<u8>,
    /// The app requested close once `pending_tx` drains.
    close_pending: bool,
    /// Wheel handles for armed timers.
    timer_ids: HashMap<TcpTimer, TimerId>,
    /// Typical application write size (the experiments' "user packet
    /// size"), used by per-organization copy-elimination rules.
    pub write_size: usize,
}

/// An in-flight handshake's pre-created channel (UserLibrary org).
struct HsSetup {
    chan: ChanInfo,
    key: (u16, Ipv4Addr, u16),
    /// True once the registry emitted `Complete` and finalization is in
    /// flight: frames arriving in this window are parked, not fed back to
    /// the registry (which no longer tracks the connection).
    completing: bool,
}

/// One simulated workstation.
pub struct Host {
    /// Index in the world.
    pub idx: usize,
    /// Protocol organization this host runs.
    pub org: OrgKind,
    /// The single CPU.
    pub cpu: Cpu,
    /// Station address.
    pub mac: MacAddr,
    /// IP address.
    pub ip: Ipv4Addr,
    /// The host-network interface.
    pub nic: Nic,
    /// ARP state (kernel-resident in all organizations for simplicity; the
    /// cost difference is negligible and identical across orgs).
    pub arp: ArpCache,
    /// IP endpoint state (routing, reassembly).
    pub ip_ep: IpEndpoint,
    /// UDP protocol state.
    pub udp: UdpLayer,
    /// The network I/O module (UserLibrary organization).
    pub netio: NetIoModule,
    /// The registry server (UserLibrary organization).
    pub registry: RegistryServer,
    /// The UDP protocol's registry server ("a dedicated registry server
    /// for each protocol").
    pub udp_registry: unp_registry::UdpRegistry,
    /// The timing wheel driving all protocol timers on this host.
    pub wheel: TimerWheel<TimerToken>,
    wheel_event: Option<(Nanos, EventId)>,
    /// Live connections.
    pub conns: HashMap<u32, Conn>,
    next_conn: u32,
    conn_index: HashMap<(u16, Ipv4Addr, u16), u32>,
    listeners: HashMap<u16, Listener>,
    // --- UserLibrary bookkeeping ---
    chan_to_conn: HashMap<ChannelId, u32>,
    hs_setup: HashMap<u64, HsSetup>,
    hs_by_chan: HashMap<ChannelId, u64>,
    pending_apps: HashMap<u64, Box<dyn crate::app::AppLogic>>,
    pending_write_sizes: HashMap<u64, usize>,
    /// Tenant override per listening port ([`listen_as`]); absent ports
    /// belong to the host's default single-app tenant.
    listener_tenants: HashMap<u16, OwnerTag>,
    /// Tenant override per in-flight active handshake ([`connect_as`]),
    /// keyed by raw hs id.
    pending_tenants: HashMap<u64, OwnerTag>,
    /// Revoked capabilities the byzantine capability-storm replays, one
    /// per hostile tenant (minted from a destroyed scratch channel on the
    /// storm's first tick).
    stale_caps: HashMap<u64, Capability>,
    /// Peer BQI announcements keyed by (local port, remote ip, remote port).
    announced: HashMap<(u16, Ipv4Addr, u16), u16>,
    reg_timers: HashMap<(u64, TcpTimer), TimerId>,
    /// Frames that arrived on the kernel path for a connection whose
    /// Complete is still being finalized (the activation race the paper's
    /// overlap of setup with transmission creates); delivered to the
    /// library when the channel activates.
    parked: HashMap<(u16, Ipv4Addr, u16), Vec<Frame>>,
    // --- monolithic bookkeeping ---
    next_port: u16,
    next_iss: u32,
    /// IP packets awaiting ARP resolution, keyed by next-hop IP. Each is
    /// held as a refcounted frame whose headroom (when present) receives
    /// the link header once the MAC is known.
    arp_wait: HashMap<Ipv4Addr, Vec<(IpProtocol, Frame)>>,
}

impl Host {
    fn owner(&self) -> OwnerTag {
        // One application process per host in these experiments.
        OwnerTag(self.idx as u64 + 1)
    }

    fn link_header_len(&self) -> usize {
        match self.nic {
            Nic::Lance(_) => ETHERNET_HEADER_LEN,
            Nic::An1(_) => AN1_HEADER_LEN,
        }
    }

    fn alloc_port(&mut self) -> u16 {
        let p = self.next_port;
        self.next_port = self.next_port.wrapping_add(1).max(1024);
        p
    }

    fn alloc_iss(&mut self) -> u32 {
        self.next_iss = self.next_iss.wrapping_add(64_000);
        self.next_iss
    }
}

/// The complete simulation state.
pub struct World {
    /// Calibrated operation costs.
    pub costs: CostModel,
    /// Network type.
    pub network: Network,
    /// The shared link.
    pub link: Link,
    /// Hosts on the link.
    pub hosts: Vec<Host>,
    /// Typed measurement registry: counters, gauges, histograms, and the
    /// per-connection/per-channel scopes filled at teardown.
    pub metrics: Metrics,
    /// Ablation: disable notification batching (post a semaphore and take
    /// a thread switch for every delivered packet).
    pub ablate_batching: bool,
    /// Ablation: disable the library's copy-eliminating buffer
    /// organization (charge user↔buffer copies like the monolithic
    /// stacks).
    pub ablate_zero_copy: bool,
    /// The frame pool backing the zero-copy data path: outgoing segments
    /// are built once in a pooled buffer (headers prepended into
    /// headroom) and the buffer is recycled when the last refcounted
    /// handle drops. Replace with [`FramePool::disabled`] to measure the
    /// allocation behavior of the pre-pool path.
    pub pool: FramePool,
    /// Promiscuous packet taps — the Packet Filter's original use case
    /// ("user-level network code" for monitoring): each tap's BPF program
    /// runs over every frame on the wire and counts matches.
    taps: Vec<Tap>,
    /// The active fault-injection schedule. Disabled by default
    /// ([`crate::faults::FaultPlan::none`]): no RNG draw happens and the
    /// data path is byte-identical to a build without fault injection.
    /// Install an enabled plan with [`install_faults`].
    pub faults: crate::faults::FaultPlan,
}

/// A promiscuous capture tap: a named BPF program applied to all traffic.
pub struct Tap {
    name: &'static str,
    program: unp_filter::BpfProgram,
    /// Matched (time, frame-length) samples.
    pub matches: Vec<(Nanos, usize)>,
    /// Full frames, kept only for capture taps. Each entry is a refcount
    /// on the wire frame, not a copy.
    pub frames: Vec<(Nanos, Frame)>,
    capture: bool,
}

impl World {
    /// Installs a monitoring tap. Returns its index for later inspection
    /// via [`World::tap_matches`].
    pub fn add_tap(&mut self, name: &'static str, program: unp_filter::BpfProgram) -> usize {
        self.taps.push(Tap {
            name,
            program,
            matches: Vec::new(),
            frames: Vec::new(),
            capture: false,
        });
        self.taps.len() - 1
    }

    /// Installs a *capturing* tap: matched frames are stored in full and
    /// can be exported with [`crate::pcap::write_pcap`] for analysis in
    /// standard tools.
    pub fn add_capture_tap(
        &mut self,
        name: &'static str,
        program: unp_filter::BpfProgram,
    ) -> usize {
        let idx = self.add_tap(name, program);
        self.taps[idx].capture = true;
        idx
    }

    /// The full frames captured by a capture tap.
    pub fn tap_frames(&self, idx: usize) -> &[(Nanos, Frame)] {
        &self.taps[idx].frames
    }

    /// The frames a tap matched so far, as (time, length) pairs.
    pub fn tap_matches(&self, idx: usize) -> &[(Nanos, usize)] {
        &self.taps[idx].matches
    }

    fn run_taps(&mut self, now: Nanos, frame: &Frame) {
        use unp_filter::Demux;
        for tap in &mut self.taps {
            if tap.program.matches(frame) {
                tap.matches.push((now, frame.len()));
                if tap.capture {
                    tap.frames.push((now, frame.clone()));
                }
                let _ = tap.name;
            }
        }
    }
}

/// Builds a two-host world (the paper's testbed: two DECstation 5000/200s
/// on an otherwise idle network), both hosts running `org`, with static
/// ARP seeded (the measurements exclude ARP traffic).
pub fn build_two_hosts(network: Network, org: OrgKind) -> (World, Eng) {
    build_hosts(2, network, org)
}

/// Builds an `n`-host world on one link, all hosts running `org`, with a
/// full static ARP mesh. Host `i` is `10.0.0.(i+1)`. (AN1 is modeled as a
/// switchless point-to-point segment and supports exactly two hosts.)
pub fn build_hosts(n: usize, network: Network, org: OrgKind) -> (World, Eng) {
    assert!(n >= 2);
    assert!(
        network == Network::Ethernet || n == 2,
        "the AN1 segment is point-to-point"
    );
    let params = match network {
        Network::Ethernet => LinkParams::ethernet_10mbps(),
        Network::An1 => LinkParams::an1_100mbps(),
    };
    let mut link = Link::new(params);
    let mut hosts = Vec::new();
    for idx in 0..n {
        let mac = MacAddr::from_host_index(idx as u32 + 1);
        let ip = Ipv4Addr::new(10, 0, 0, idx as u8 + 1);
        let nic = match network {
            Network::Ethernet => Nic::Lance(LanceNic::new(mac)),
            Network::An1 => Nic::An1(An1Nic::new(mac, 64, unp_buffers::RingId(0))),
        };
        link.attach(StationId(idx), mac);
        let mut arp = ArpCache::new(mac, ip);
        // Static entries for every peer.
        for peer_idx in 0..n {
            if peer_idx != idx {
                arp.insert_static(
                    Ipv4Addr::new(10, 0, 0, peer_idx as u8 + 1),
                    MacAddr::from_host_index(peer_idx as u32 + 1),
                );
            }
        }
        hosts.push(Host {
            idx,
            org,
            cpu: Cpu::new(),
            mac,
            ip,
            nic,
            arp,
            ip_ep: IpEndpoint::new(ip, 24, None),
            udp: UdpLayer::new(),
            netio: NetIoModule::new(),
            registry: RegistryServer::new(ip),
            udp_registry: unp_registry::UdpRegistry::new(),
            wheel: TimerWheel::new(0),
            wheel_event: None,
            conns: HashMap::new(),
            next_conn: 1,
            conn_index: HashMap::new(),
            listeners: HashMap::new(),
            chan_to_conn: HashMap::new(),
            hs_setup: HashMap::new(),
            hs_by_chan: HashMap::new(),
            pending_apps: HashMap::new(),
            pending_write_sizes: HashMap::new(),
            listener_tenants: HashMap::new(),
            pending_tenants: HashMap::new(),
            stale_caps: HashMap::new(),
            announced: HashMap::new(),
            reg_timers: HashMap::new(),
            parked: HashMap::new(),
            next_port: 2000 + idx as u16 * 8000,
            next_iss: 0x100 + idx as u32,
            arp_wait: HashMap::new(),
        });
    }
    // Pool buffers cover a maximum-sized frame (MTU plus the larger link
    // header) with slack for TCP options; oversize allocations degrade to
    // fresh heap buffers that are simply not recycled.
    let buf_size = link.params().mtu + AN1_HEADER_LEN + 46;
    let world = World {
        costs: CostModel::calibrated_1993(),
        network,
        link,
        hosts,
        metrics: Metrics::new(),
        ablate_batching: false,
        ablate_zero_copy: false,
        pool: FramePool::new(buf_size, 256),
        taps: Vec::new(),
        faults: crate::faults::FaultPlan::none(),
    };
    (world, Engine::new())
}

/// Installs a fault plan: stores it on the world and schedules its
/// application-crash events. Call once after [`build_hosts`], before
/// running the engine.
pub fn install_faults(w: &mut World, eng: &mut Eng, plan: crate::faults::FaultPlan) {
    for c in &plan.crashes {
        let host = c.host;
        eng.at(c.at, move |w, eng| crash_host(w, eng, host));
    }
    // Periodic byzantine-tenant behaviours become deterministic tick
    // trains; window-shaped kinds (ring flood, wedged registry) are
    // consulted in place by the data path and need no events.
    for b in &plan.byzantine {
        use crate::faults::ByzantineKind;
        let (host, tenant, end) = (b.host, b.tenant, b.end);
        match b.kind {
            ByzantineKind::TransmitFlood { period, .. }
            | ByzantineKind::CapabilityStorm { period }
            | ByzantineKind::StaleBqi { period } => {
                assert!(period > 0, "byzantine period must be positive");
                let kind = b.kind;
                eng.at(b.start, move |w, eng| {
                    byzantine_tick(w, eng, host, tenant, kind, end);
                });
            }
            ByzantineKind::RingFlood | ByzantineKind::WedgedRegistry => {}
        }
    }
    w.faults = plan;
}

/// One firing of a periodic byzantine behaviour; reschedules itself until
/// the window closes. Every action is resource-bounded by the tenant's
/// own budget — that containment is precisely what the isolation oracle
/// measures.
fn byzantine_tick(
    w: &mut World,
    eng: &mut Eng,
    host: usize,
    tenant: u64,
    kind: crate::faults::ByzantineKind,
    end: Nanos,
) {
    use crate::faults::ByzantineKind;
    let now = eng.now();
    if now >= end || !w.faults.enabled {
        return;
    }
    // The hostile tenant abuses its own established connection — the
    // lowest-numbered one, so the pick is deterministic across runs.
    let target = w.hosts[host]
        .conns
        .iter()
        .filter_map(|(&cid, c)| {
            let ci = c.chan.as_ref()?;
            (w.hosts[host].netio.channel_owner(ci.id) == Some(OwnerTag(tenant))).then(|| {
                (
                    cid,
                    ci.send_cap,
                    ci.peer_bqi.unwrap_or(0),
                    c.tcb.local(),
                    c.tcb.remote(),
                )
            })
        })
        .min_by_key(|&(cid, ..)| cid)
        .map(|(_, cap, bqi, l, r)| (cap, bqi, l, r));
    if let Some((send_cap, bqi, local, remote)) = target {
        match kind {
            ByzantineKind::TransmitFlood { burst, .. } => {
                // A burst of template-valid empty ACKs: each passes the
                // kernel's checks and burns wire + CPU + tx credit until
                // the tenant's per-window allowance runs dry.
                let repr = TcpRepr {
                    src_port: local.1,
                    dst_port: remote.1,
                    seq: unp_wire::SeqNum(0),
                    ack_num: unp_wire::SeqNum(0),
                    flags: unp_wire::TcpFlags::ack(),
                    window: 0,
                    mss: None,
                };
                for _ in 0..burst {
                    send_tcp_frame(
                        w,
                        eng,
                        host,
                        &repr,
                        &[],
                        remote.0,
                        bqi,
                        0,
                        Some(send_cap),
                        true,
                    );
                }
            }
            ByzantineKind::CapabilityStorm { .. } => {
                // A replayed revoked capability (BadCapability) plus a
                // template-violating transmit on the real one (spoofed
                // source port): both die inside the kernel, charged to
                // the tenant's credit, never reaching the wire.
                let stale = stale_cap_for(w, host, tenant);
                let frame_len = w.hosts[host].link_header_len() + IPV4_HEADER_LEN + 20;
                let junk = vec![0u8; frame_len];
                let _ = w.hosts[host].netio.transmit(stale, &junk);
                w.hosts[host].netio.advance_tx_window(now);
                let spoof = TcpRepr {
                    src_port: local.1.wrapping_add(1),
                    dst_port: remote.1,
                    seq: unp_wire::SeqNum(0),
                    ack_num: unp_wire::SeqNum(0),
                    flags: unp_wire::TcpFlags::ack(),
                    window: 0,
                    mss: None,
                };
                send_tcp_frame(
                    w,
                    eng,
                    host,
                    &spoof,
                    &[],
                    remote.0,
                    bqi,
                    0,
                    Some(send_cap),
                    true,
                );
                let c = w.costs.trap;
                w.hosts[host].cpu.charge(now, c);
            }
            ByzantineKind::StaleBqi { .. } => {
                // Replay a stale BQI announcement into the peer host's
                // pending-announce map. Announcements are only consumed
                // at connection finalization, so a post-establishment
                // replay must change nothing for anyone — the oracle's
                // baseline comparison proves it.
                if let Some(peer) = w.hosts.iter().position(|p| p.ip == remote.0) {
                    let local_ip = w.hosts[host].ip;
                    let key = (remote.1, local_ip, local.1);
                    w.hosts[peer].announced.insert(key, bqi);
                }
            }
            ByzantineKind::RingFlood | ByzantineKind::WedgedRegistry => unreachable!(),
        }
    }
    let period = match kind {
        ByzantineKind::TransmitFlood { period, .. }
        | ByzantineKind::CapabilityStorm { period }
        | ByzantineKind::StaleBqi { period } => period,
        _ => return,
    };
    let next = now + period;
    if next < end {
        eng.at(next, move |w, eng| {
            byzantine_tick(w, eng, host, tenant, kind, end);
        });
    }
}

/// The revoked capability a capability-storm tenant replays: minted once
/// from a scratch channel that is created and immediately destroyed, so
/// every later use is a genuine use-after-revoke the kernel must refuse.
fn stale_cap_for(w: &mut World, host: usize, tenant: u64) -> Capability {
    if let Some(&c) = w.hosts[host].stale_caps.get(&tenant) {
        return c;
    }
    let lhl = w.hosts[host].link_header_len();
    let local_ip = w.hosts[host].ip;
    let scratch_remote = Ipv4Addr::new(203, 0, 113, 254); // TEST-NET-3: never a sim host
    let spec = unp_registry::connection_demux_spec(lhl, (local_ip, 7), (scratch_remote, 7));
    let template = HeaderTemplate {
        link_header_len: lhl,
        src_mac: Some(w.hosts[host].mac),
        dst_mac: None,
        ethertype: EtherType::Ipv4,
        protocol: IpProtocol::Tcp,
        src_ip: local_ip,
        dst_ip: scratch_remote,
        src_port: 7,
        dst_port: Some(7),
        bqi: None,
    };
    // Prefer minting under the hostile tenant itself; if its channel cap
    // is already exhausted (part of the attack surface), fall back to a
    // kernel-owned scratch — the replay is equally dead either way.
    let created = w.hosts[host]
        .netio
        .try_create_channel(OwnerTag(tenant), &spec, template.clone(), 2, 256)
        .unwrap_or_else(|| {
            w.hosts[host]
                .netio
                .create_channel(OwnerTag(0), &spec, template, 2, 256)
        });
    let (id, send_cap, ..) = created;
    w.hosts[host].netio.destroy_channel(id, OwnerTag(0));
    w.hosts[host].stale_caps.insert(tenant, send_cap);
    send_cap
}

/// Charges `cost` to host `h`'s CPU and schedules `f` at completion.
pub fn host_exec<F>(w: &mut World, eng: &mut Eng, h: usize, cost: Nanos, f: F)
where
    F: FnOnce(&mut World, &mut Eng) + 'static,
{
    let done = w.hosts[h].cpu.charge(eng.now(), cost);
    // Attribute everything the scheduled work emits to this host: deep
    // protocol paths (TCB transitions, registry setup) have no other way
    // to know whose CPU they run on. Inner scopes still nest.
    eng.at(done, move |w, eng| {
        let _attr = unp_trace::host_scope(h as u16);
        f(w, eng);
    });
}

/// Like [`host_exec`] but at interrupt priority: device interrupt service
/// preempts process/library work instead of queueing behind it (otherwise
/// NIC staging buffers overflow whenever user-level processing is slower
/// than the wire — a receive livelock real interrupt-driven kernels do not
/// exhibit at these rates).
pub fn host_exec_intr<F>(w: &mut World, eng: &mut Eng, h: usize, cost: Nanos, f: F)
where
    F: FnOnce(&mut World, &mut Eng) + 'static,
{
    let done = w.hosts[h].cpu.charge_priority(eng.now(), cost);
    eng.at(done, move |w, eng| {
        let _attr = unp_trace::host_scope(h as u16);
        f(w, eng);
    });
}

// ---------------------------------------------------------------------
// Public API: listen / connect
// ---------------------------------------------------------------------

/// Registers a listener on `host`:`port`. `factory` builds the per-
/// connection application.
pub fn listen(
    w: &mut World,
    host: usize,
    port: u16,
    cfg: TcpConfig,
    factory: Box<dyn FnMut() -> Box<dyn crate::app::AppLogic>>,
) {
    let owner = w.hosts[host].owner();
    listen_as(w, host, owner, port, cfg, factory);
}

/// [`listen`] for an explicit tenant: the listening port, its registry
/// binding, and every channel accepted through it are owned by `tenant`
/// instead of the host's default single-app owner, so multiple tenants
/// can share one host's network I/O module under separate budgets.
pub fn listen_as(
    w: &mut World,
    host: usize,
    tenant: OwnerTag,
    port: u16,
    cfg: TcpConfig,
    factory: Box<dyn FnMut() -> Box<dyn crate::app::AppLogic>>,
) {
    if w.hosts[host].org.is_user_library() {
        w.hosts[host]
            .registry
            .listen(tenant, port, cfg.clone())
            .expect("listen port free");
    }
    if tenant != w.hosts[host].owner() {
        w.hosts[host].listener_tenants.insert(port, tenant);
    }
    w.hosts[host]
        .listeners
        .insert(port, Listener { cfg, factory });
}

/// Opens a connection from `host` to `remote`, running `app` over it.
/// `write_size` is the application's write granularity (the experiments'
/// user packet size), which copy-elimination rules consult.
pub fn connect(
    w: &mut World,
    eng: &mut Eng,
    host: usize,
    remote: (Ipv4Addr, u16),
    cfg: TcpConfig,
    app: Box<dyn crate::app::AppLogic>,
    write_size: usize,
) {
    connect_as(w, eng, host, None, remote, cfg, app, write_size);
}

/// [`connect`] for an explicit tenant (UserLibrary organization): the
/// registry binding and the connection's channel are owned by `tenant`,
/// so its ring slots and transmit credit draw on that tenant's budget.
/// `None` keeps the host's default single-app owner.
#[allow(clippy::too_many_arguments)]
pub fn connect_as(
    w: &mut World,
    eng: &mut Eng,
    host: usize,
    tenant: Option<OwnerTag>,
    remote: (Ipv4Addr, u16),
    cfg: TcpConfig,
    app: Box<dyn crate::app::AppLogic>,
    write_size: usize,
) {
    match w.hosts[host].org {
        OrgKind::UserLibrary => {
            // App → registry RPC, then non-overlapped outbound processing.
            let cost = w.costs.registry_rpc + w.costs.registry_connect_processing;
            host_exec(w, eng, host, cost, move |w, eng| {
                let owner = tenant.unwrap_or_else(|| w.hosts[host].owner());
                let now = eng.now();
                let (hs, actions) = w.hosts[host]
                    .registry
                    .connect(owner, remote, cfg, now)
                    .expect("ports available");
                w.hosts[host].pending_apps.insert(hs.0, app);
                w.hosts[host].pending_write_sizes.insert(hs.0, write_size);
                if owner != w.hosts[host].owner() {
                    w.hosts[host].pending_tenants.insert(hs.0, owner);
                }
                apply_registry_actions(w, eng, host, actions);
            });
        }
        _ => {
            // Monolithic: the connect call traps into the stack directly,
            // allocating socket + PCB state.
            let cost = app_boundary_cost(w, host) + w.costs.pcb_setup + w.costs.tcp_per_segment;
            host_exec(w, eng, host, cost, move |w, eng| {
                let local_port = w.hosts[host].alloc_port();
                let iss = w.hosts[host].alloc_iss();
                let local_ip = w.hosts[host].ip;
                let now = eng.now();
                let (tcb, actions) = Tcb::connect((local_ip, local_port), remote, cfg, iss, now);
                let c = install_conn(w, host, tcb, app, None, write_size);
                apply_tcp_actions(w, eng, host, c, None, actions);
            });
        }
    }
}

fn install_conn(
    w: &mut World,
    h: usize,
    tcb: Tcb,
    app: Box<dyn crate::app::AppLogic>,
    chan: Option<ChanInfo>,
    write_size: usize,
) -> u32 {
    w.metrics.gauge_inc(Gauge::ActiveConnections);
    let host = &mut w.hosts[h];
    let id = host.next_conn;
    host.next_conn += 1;
    let key = (tcb.local().1, tcb.remote().0, tcb.remote().1);
    host.conn_index.insert(key, id);
    if let Some(ci) = &chan {
        host.chan_to_conn.insert(ci.id, id);
    }
    host.conns.insert(
        id,
        Conn {
            tcb,
            app,
            chan,
            pending_tx: std::collections::VecDeque::new(),
            close_pending: false,
            timer_ids: HashMap::new(),
            write_size,
        },
    );
    id
}

// ---------------------------------------------------------------------
// Per-organization cost rules
// ---------------------------------------------------------------------

/// Cost of one application↔protocol boundary crossing.
fn app_boundary_cost(w: &World, h: usize) -> Nanos {
    let c = &w.costs;
    match w.hosts[h].org {
        OrgKind::InKernel => c.trap + c.socket_layer,
        OrgKind::SingleServer | OrgKind::SingleServerMsg => c.ux_syscall,
        OrgKind::DedicatedServer => c.ux_syscall + c.mach_ipc_one_way,
        OrgKind::UserLibrary => c.library_call,
    }
}

/// Cost of moving `len` app bytes into the protocol on a write.
fn tx_copy_cost(w: &World, h: usize, len: usize) -> Nanos {
    let c = &w.costs;
    match w.hosts[h].org {
        // Ultrix's copy-eliminating buffer path "is invoked only when the
        // user packet size is 1024 bytes or larger".
        OrgKind::InKernel => {
            if len >= 1024 {
                0
            } else {
                c.copy(len)
            }
        }
        // IPC to the server copies the data; the server copies into mbufs.
        OrgKind::SingleServer | OrgKind::SingleServerMsg | OrgKind::DedicatedServer => {
            2 * c.copy(len)
        }
        // "Our implementation uses a buffer organization that eliminates
        // byte copying" — writes land in the pinned shared region.
        OrgKind::UserLibrary => {
            if w.ablate_zero_copy {
                c.copy(len)
            } else {
                0
            }
        }
    }
}

/// Cost of handing `len` received bytes to the application.
fn rx_copy_cost(w: &World, h: usize, len: usize) -> Nanos {
    let c = &w.costs;
    match w.hosts[h].org {
        // The copy-eliminating buffer organization engages at ≥1024 bytes.
        OrgKind::InKernel => {
            if len >= 1024 {
                c.socket_layer
            } else {
                c.copy(len) + c.socket_layer
            }
        }
        OrgKind::SingleServer | OrgKind::SingleServerMsg | OrgKind::DedicatedServer => {
            c.copy(len) + c.ux_data_per_byte * len as Nanos + c.socket_layer
        }
        OrgKind::UserLibrary => {
            if w.ablate_zero_copy {
                c.copy(len)
            } else {
                0
            }
        }
    }
}

/// Per-frame device-access cost on transmit (after protocol processing).
fn tx_device_cost(w: &World, h: usize, frame_len: usize) -> Nanos {
    let c = &w.costs;
    let dev = match w.hosts[h].nic {
        Nic::Lance(_) => c.pio(frame_len),
        Nic::An1(_) => c.dma_setup,
    };
    match w.hosts[h].org {
        OrgKind::InKernel => dev,
        // Mapped device: the server drives it directly.
        OrgKind::SingleServer => dev,
        // Message-based device access adds an IPC per packet.
        OrgKind::SingleServerMsg => dev + c.mach_ipc_one_way,
        // Protocol server → device server hop.
        OrgKind::DedicatedServer => dev + c.mach_ipc_one_way,
        // Specialized kernel entry + template check + ring bookkeeping.
        OrgKind::UserLibrary => dev + c.fast_trap + c.template_check + c.ring_op,
    }
}

/// Per-frame cost from wire arrival to the protocol input routine,
/// *excluding* demux and notification (charged separately where they
/// differ structurally).
fn rx_device_cost(w: &World, h: usize, frame_len: usize) -> Nanos {
    let c = &w.costs;
    match w.hosts[h].nic {
        Nic::Lance(_) => c.interrupt + c.pio(frame_len),
        Nic::An1(_) => c.interrupt,
    }
}

/// Protocol-processing cost for one TCP segment (identical across
/// organizations — same code).
fn tcp_seg_cost(w: &World, payload_and_hdr: usize) -> Nanos {
    let c = &w.costs;
    c.tcp_per_segment + c.ip_per_packet + c.checksum(payload_and_hdr)
}

// ---------------------------------------------------------------------
// Frame construction & transmission
// ---------------------------------------------------------------------

/// Emits the link header for `h`'s network into `buf` (the first
/// link-header-length bytes).
fn emit_link_header(
    w: &World,
    h: usize,
    dst_mac: MacAddr,
    bqi: u16,
    announce: u16,
    buf: &mut [u8],
) {
    let host = &w.hosts[h];
    match &host.nic {
        Nic::Lance(_) => EthernetRepr {
            dst: dst_mac,
            src: host.mac,
            ethertype: EtherType::Ipv4,
        }
        .emit(buf)
        .expect("link headroom"),
        Nic::An1(_) => An1Repr {
            dst: dst_mac,
            src: host.mac,
            ethertype: EtherType::Ipv4,
            bqi,
            announce,
        }
        .emit(buf)
        .expect("link headroom"),
    }
}

/// Prepends the link header onto an IP-packet frame: in place when the
/// frame carries link headroom (the zero-copy tx path), by copy into a
/// fresh buffer otherwise.
fn encap_link(
    w: &World,
    h: usize,
    dst_mac: MacAddr,
    mut ip_packet: Frame,
    bqi: u16,
    announce: u16,
) -> Frame {
    let lhl = w.hosts[h].link_header_len();
    if ip_packet.headroom() < lhl {
        return Frame::from_vec(build_link_frame(w, h, dst_mac, &ip_packet, bqi, announce));
    }
    emit_link_header(w, h, dst_mac, bqi, announce, ip_packet.prepend(lhl));
    ip_packet
}

/// Wraps an IP packet in the link header for `h`'s network, copying into
/// a fresh buffer ([`encap_link`]'s slow path).
fn build_link_frame(
    w: &World,
    h: usize,
    dst_mac: MacAddr,
    ip_packet: &[u8],
    bqi: u16,
    announce: u16,
) -> Vec<u8> {
    let host = &w.hosts[h];
    match &host.nic {
        Nic::Lance(_) => EthernetRepr {
            dst: dst_mac,
            src: host.mac,
            ethertype: EtherType::Ipv4,
        }
        .build_frame(ip_packet),
        Nic::An1(_) => An1Repr {
            dst: dst_mac,
            src: host.mac,
            ethertype: EtherType::Ipv4,
            bqi,
            announce,
        }
        .build_frame(ip_packet),
    }
}

/// Resolves the next hop MAC, queueing behind ARP if needed. Returns
/// `None` when resolution is pending (the IP packet is parked — a
/// refcount bump, not a copy — and a request broadcast).
fn resolve_mac(
    w: &mut World,
    eng: &mut Eng,
    h: usize,
    dst_ip: Ipv4Addr,
    proto: IpProtocol,
    ip_packet: &Frame,
) -> Option<MacAddr> {
    if dst_ip.is_broadcast() {
        return Some(MacAddr::BROADCAST);
    }
    let now = eng.now();
    match w.hosts[h].arp.resolve(dst_ip, now) {
        ArpResult::Hit(mac) => Some(mac),
        ArpResult::Miss { request } => {
            w.hosts[h]
                .arp_wait
                .entry(dst_ip)
                .or_default()
                .push((proto, ip_packet.clone()));
            if let Some(req) = request {
                let frame = build_arp_frame(w, h, &req);
                let cost = w.costs.ip_per_packet + tx_device_cost(w, h, frame.len());
                host_exec(w, eng, h, cost, move |w, eng| {
                    transmit_frame(w, eng, h, frame);
                });
            }
            None
        }
    }
}

fn build_arp_frame(w: &World, h: usize, arp: &ArpRepr) -> Frame {
    let host = &w.hosts[h];
    let dst = if arp.target_mac == MacAddr::ZERO {
        MacAddr::BROADCAST
    } else {
        arp.target_mac
    };
    let payload = arp.build();
    Frame::from_vec(match &host.nic {
        Nic::Lance(_) => EthernetRepr {
            dst,
            src: host.mac,
            ethertype: EtherType::Arp,
        }
        .build_frame(&payload),
        Nic::An1(_) => An1Repr {
            dst,
            src: host.mac,
            ethertype: EtherType::Arp,
            bqi: 0,
            announce: 0,
        }
        .build_frame(&payload),
    })
}

/// Puts a frame on the wire: reserves the link and schedules arrival at
/// each recipient. Taps and recipients share the one frame by refcount —
/// no per-recipient copy.
fn transmit_frame(w: &mut World, eng: &mut Eng, h: usize, frame: Frame) {
    let now = eng.now();
    let (start, arrival) = w.link.reserve(StationId(h), now, frame.len());
    let dst = MacAddr([frame[0], frame[1], frame[2], frame[3], frame[4], frame[5]]);
    w.metrics.bump(Ctr::FramesSent);
    unp_trace::emit_at(h as u16, Some(frame.id()), || unp_trace::Event::NicTx {
        len: frame.len() as u32,
    });
    // The wire-hop span for the causal tracer: time waiting for link
    // access vs serialization + propagation. The split telescopes with
    // the receiver's `nic_rx` timestamp (any residue is injected reorder
    // delay), so journey latency decomposes exactly.
    unp_trace::emit_at(h as u16, Some(frame.id()), || unp_trace::Event::LinkTx {
        queue: start - now,
        wire: arrival - start,
    });
    w.run_taps(now, &frame);
    if !w.faults.enabled {
        for rcpt in w.link.recipients(StationId(h), dst) {
            let bytes = frame.clone();
            eng.at(arrival, move |w, eng| frame_arrives(w, eng, rcpt.0, bytes));
        }
        return;
    }
    for rcpt in w.link.recipients(StationId(h), dst) {
        inject_and_deliver(w, eng, h, rcpt.0, arrival, now, &frame);
    }
}

/// Applies the fault plan's verdict to one recipient's copy of a frame
/// and schedules the surviving arrivals.
fn inject_and_deliver(
    w: &mut World,
    eng: &mut Eng,
    from: usize,
    to: usize,
    arrival: Nanos,
    now: Nanos,
    frame: &Frame,
) {
    use unp_trace::FaultKind;
    let fate = w.faults.fate(from, to, now);
    let (f16, t16) = (from as u16, to as u16);
    let emit_fault = |kind: FaultKind| {
        unp_trace::emit_at(f16, Some(frame.id()), || unp_trace::Event::FaultInject {
            kind,
            from: f16,
            to: t16,
        });
    };
    if fate.outage {
        w.metrics.bump(Ctr::FaultOutageDrops);
        w.metrics.link(f16, t16).outage_drops += 1;
        emit_fault(FaultKind::Outage);
        return;
    }
    if fate.drop {
        w.metrics.bump(Ctr::FaultDrops);
        w.metrics.link(f16, t16).drops += 1;
        emit_fault(FaultKind::Drop);
        return;
    }
    let mut bytes = frame.clone();
    if fate.corrupt {
        // Flip one byte past the link header: the TCP checksum catches it
        // at the receiver. Link-header corruption on AN1 could flip the
        // BQI field and *misdeliver* a checksum-valid segment — a
        // different fault class than in-flight payload damage, so it is
        // deliberately out of range. The clone diverges copy-on-write, so
        // taps and other recipients keep the pristine frame.
        let lhl = w.hosts[to].link_header_len();
        if bytes.len() > lhl {
            let idx = lhl + w.faults.pick(bytes.len() - lhl);
            bytes.as_mut_slice()[idx] ^= 0x20;
            w.metrics.bump(Ctr::FaultCorrupts);
            w.metrics.link(f16, t16).corrupts += 1;
            emit_fault(FaultKind::Corrupt);
        }
    }
    if fate.delays.len() > 1 {
        w.metrics.bump(Ctr::FaultDups);
        w.metrics.link(f16, t16).dups += 1;
        emit_fault(FaultKind::Duplicate);
    }
    for &extra in &fate.delays {
        if extra > 0 {
            w.metrics.bump(Ctr::FaultReorders);
            w.metrics.link(f16, t16).reorders += 1;
            emit_fault(FaultKind::Reorder);
        }
        let copy = bytes.clone();
        eng.at(arrival + extra, move |w, eng| {
            frame_arrives(w, eng, to, copy);
        });
    }
}

/// Encapsulates and transmits IP packets built by the copying slow paths
/// (UDP, ICMP, TCP fragmentation): each is staged once into a pooled
/// frame with link headroom, then the link header is prepended in place.
fn send_ip_packets(
    w: &mut World,
    eng: &mut Eng,
    h: usize,
    dst_ip: Ipv4Addr,
    proto: IpProtocol,
    pkts: Vec<Vec<u8>>,
) {
    let lhl = w.hosts[h].link_header_len();
    for ip_packet in pkts {
        let ipf = w.pool.alloc(lhl, &ip_packet);
        let Some(mac) = resolve_mac(w, eng, h, dst_ip, proto, &ipf) else {
            continue;
        };
        let frame = encap_link(w, h, mac, ipf, 0, 0);
        let cost = tx_device_cost(w, h, frame.len());
        host_exec(w, eng, h, cost, move |w, eng| {
            transmit_frame(w, eng, h, frame);
        });
    }
}

// ---------------------------------------------------------------------
// Receive path
// ---------------------------------------------------------------------

/// Entry point for a frame reaching host `h`'s interface.
pub fn frame_arrives(w: &mut World, eng: &mut Eng, h: usize, frame: Frame) {
    w.metrics.bump(Ctr::FramesReceived);
    let _attr = unp_trace::host_scope(h as u16);
    let cost = rx_device_cost(w, h, frame.len());
    match &mut w.hosts[h].nic {
        Nic::Lance(nic) => {
            if !nic.frame_arrived(frame, eng.now()) {
                w.metrics.bump(Ctr::NicDrops);
                return;
            }
            host_exec_intr(w, eng, h, cost, move |w, eng| {
                if let Nic::Lance(nic) = &mut w.hosts[h].nic {
                    if let Some(staged) = nic.host_take_frame() {
                        kernel_input(w, eng, h, staged.bytes, None);
                    }
                }
            });
        }
        Nic::An1(nic) => {
            // Hardware classification happens in the controller before the
            // completion interrupt.
            let ring = nic.classify_frame(&frame);
            host_exec_intr(w, eng, h, cost, move |w, eng| {
                kernel_input(w, eng, h, frame, Some(ring));
            });
        }
    }
}

/// Kernel-side input processing after interrupt (+PIO) costs.
/// `hw_ring` is `Some` on AN1 (the controller's BQI classification).
fn kernel_input(
    w: &mut World,
    eng: &mut Eng,
    h: usize,
    frame: Frame,
    hw_ring: Option<unp_buffers::RingId>,
) {
    let _attr = unp_trace::host_scope(h as u16);
    let lhl = w.hosts[h].link_header_len();
    if frame.len() < lhl {
        return;
    }
    let ethertype = EtherType::from_u16(u16::from_be_bytes([frame[12], frame[13]]));
    match ethertype {
        EtherType::Arp => arp_input(w, eng, h, &frame[lhl..]),
        EtherType::Ipv4 => {
            if w.hosts[h].org.is_user_library() {
                userlib_ip_input(w, eng, h, frame, hw_ring);
            } else {
                monolithic_ip_input(w, eng, h, frame);
            }
        }
        EtherType::Other(_) => w.metrics.bump(Ctr::UnknownEthertype),
    }
}

fn arp_input(w: &mut World, eng: &mut Eng, h: usize, payload: &[u8]) {
    let Ok(pkt) = ArpPacket::new_checked(payload) else {
        return;
    };
    let Ok(repr) = ArpRepr::parse(&pkt) else {
        return;
    };
    let now = eng.now();
    let reply = w.hosts[h].arp.input(&repr, now);
    if let Some(rep) = reply {
        let frame = build_arp_frame(w, h, &rep);
        let cost = w.costs.ip_per_packet + tx_device_cost(w, h, frame.len());
        host_exec(w, eng, h, cost, move |w, eng| {
            transmit_frame(w, eng, h, frame);
        });
    }
    // Flush packets that were waiting on this resolution.
    if let Some(waiting) = w.hosts[h].arp_wait.remove(&repr.sender_ip) {
        let mac = repr.sender_mac;
        for (_proto, ip_packet) in waiting {
            let frame = encap_link(w, h, mac, ip_packet, 0, 0);
            let cost = tx_device_cost(w, h, frame.len());
            host_exec(w, eng, h, cost, move |w, eng| {
                transmit_frame(w, eng, h, frame);
            });
        }
    }
}

// ------------------------- monolithic input ---------------------------

fn monolithic_ip_input(w: &mut World, eng: &mut Eng, h: usize, frame: Frame) {
    let lhl = w.hosts[h].link_header_len();
    let now = eng.now();
    // Zero-copy fast path: a complete unfragmented TCP datagram for us is
    // sliced out of the wire frame (a window over the same backing buffer)
    // instead of copied out by `receive`.
    if let Some((src, IpProtocol::Tcp, range)) =
        w.hosts[h].ip_ep.receive_in_place(&frame[lhl..], now)
    {
        let payload = frame.slice(lhl + range.start, lhl + range.end);
        return tcp_input_direct(w, eng, h, src, payload);
    }
    let recv = w.hosts[h].ip_ep.receive(&frame[lhl..], now);
    match recv {
        IpRecv::Complete {
            protocol: IpProtocol::Tcp,
            src,
            payload,
            ..
        } => tcp_input_direct(w, eng, h, src, Frame::from_vec(payload)),
        IpRecv::Complete {
            protocol: IpProtocol::Udp,
            src,
            dst,
            payload,
        } => {
            // Keep the original datagram header around in case an ICMP
            // destination-unreachable must be generated.
            let orig = frame[lhl..].to_vec();
            udp_input(w, eng, h, src, dst, payload, orig);
        }
        IpRecv::Complete {
            protocol: IpProtocol::Icmp,
            src,
            payload,
            ..
        } => icmp_input_host(w, eng, h, src, &payload),
        IpRecv::Complete { .. } => w.metrics.bump(Ctr::IpUnknownProto),
        IpRecv::FragmentHeld => w.metrics.bump(Ctr::IpFragmentsHeld),
        IpRecv::NotForUs => w.metrics.bump(Ctr::IpNotForUs),
        IpRecv::Bad(_) => w.metrics.bump(Ctr::IpBad),
    }
}

/// Counts and journals a TCP segment discarded because its checksum
/// failed — damage in flight. The frame is dropped, not an error path:
/// the sender's retransmission recovers the data.
fn frame_corrupt_discard(w: &mut World, h: usize, frame: Option<u64>, len: usize) {
    w.metrics.bump(Ctr::TcpBadChecksum);
    w.metrics.bump(Ctr::FrameCorruptDiscards);
    unp_trace::emit_at(h as u16, frame, || unp_trace::Event::FrameCorruptDiscard {
        len: len as u32,
    });
}

/// TCP input for the monolithic organizations: in-kernel (or in-server)
/// PCB lookup and processing. `payload` is the IP payload, usually a
/// zero-copy window over the wire frame.
fn tcp_input_direct(w: &mut World, eng: &mut Eng, h: usize, src: Ipv4Addr, payload: Frame) {
    let local_ip = w.hosts[h].ip;
    let Ok(pkt) = TcpPacket::new_checked(&payload[..]) else {
        w.metrics.bump(Ctr::TcpMalformed);
        return;
    };
    if !pkt.verify_checksum(src, local_ip) {
        frame_corrupt_discard(w, h, Some(payload.id()), payload.len());
        return;
    }
    let repr = TcpRepr::parse(&pkt);
    let data = payload.slice(pkt.header_len(), payload.len());
    // Per-segment stack cost, plus the kernel→server dispatch for the
    // server-based organizations.
    let c = &w.costs;
    let mut cost = tcp_seg_cost(w, payload.len());
    cost += match w.hosts[h].org {
        OrgKind::SingleServer | OrgKind::SingleServerMsg => c.ux_pkt_dispatch,
        OrgKind::DedicatedServer => c.ux_pkt_dispatch + c.mach_ipc_one_way,
        // Sub-1024-byte segments take the small-mbuf path in the stock
        // kernel (the copy-eliminating organization needs ≥1024).
        OrgKind::InKernel if data.len() < 1024 && !data.is_empty() => c.small_pkt_overhead,
        _ => 0,
    };
    // The AN1 controller's inherent device-management cost applies to the
    // kernel's BQI-0 ring exactly as to user rings (paper Table 5).
    if matches!(w.hosts[h].nic, Nic::An1(_)) {
        cost += c.bqi_demux;
    }
    host_exec(w, eng, h, cost, move |w, eng| {
        let _attr = unp_trace::host_scope(h as u16);
        let key = (repr.dst_port, src, repr.src_port);
        let now = eng.now();
        if let Some(&cid) = w.hosts[h].conn_index.get(&key) {
            let actions = {
                let conn = w.hosts[h].conns.get_mut(&cid).expect("indexed");
                conn.tcb.on_segment(&repr, &data, now)
            };
            apply_tcp_actions(w, eng, h, cid, Some(data.id()), actions);
            return;
        }
        // New connection to a listener?
        if w.hosts[h].listeners.contains_key(&repr.dst_port) {
            // Socket + PCB creation for the accepted connection.
            w.hosts[h].cpu.charge(now, w.costs.pcb_setup);
            let local_ip = w.hosts[h].ip;
            let iss = w.hosts[h].alloc_iss();
            let listener = w.hosts[h]
                .listeners
                .get_mut(&repr.dst_port)
                .expect("checked");
            let cfg = listener.cfg.clone();
            let app = (listener.factory)();
            let ltcb = ListenTcb::new((local_ip, repr.dst_port), cfg);
            if let Some((tcb, actions)) = ltcb.on_syn((src, repr.src_port), &repr, iss, now) {
                let write_size = 4096;
                let cid = install_conn(w, h, tcb, app, None, write_size);
                apply_tcp_actions(w, eng, h, cid, None, actions);
            }
            return;
        }
        // Stray: RST.
        if !repr.flags.rst {
            let rst = Tcb::rst_for((w.hosts[h].ip, repr.dst_port), &repr, data.len());
            send_tcp_segment(w, eng, h, None, rst, Vec::new(), src);
        }
    });
}

/// Registers and binds a UDP port on `host` through the UDP registry
/// server (name allocation is privileged; the data path then uses the
/// bound `UdpLayer` directly).
pub fn bind_udp(w: &mut World, host: usize, port: u16) -> bool {
    let owner = w.hosts[host].owner();
    if w.hosts[host].udp_registry.bind(owner, port).is_err() {
        return false;
    }
    w.hosts[host].udp.bind(port)
}

/// Sends a UDP datagram from `host` (source port must be bound via
/// [`bind_udp`] for replies to be deliverable).
pub fn send_udp(
    w: &mut World,
    eng: &mut Eng,
    host: usize,
    src_port: u16,
    dst: (Ipv4Addr, u16),
    payload: Vec<u8>,
) {
    let cost =
        app_boundary_cost(w, host) + w.costs.udp_per_packet + w.costs.checksum(payload.len());
    host_exec(w, eng, host, cost, move |w, eng| {
        let src_ip = w.hosts[host].ip;
        let dgram = w.hosts[host]
            .udp
            .send(src_ip, src_port, dst.0, dst.1, &payload);
        let pkts = {
            let mtu = w.link.params().mtu;
            w.hosts[host]
                .ip_ep
                .send(IpProtocol::Udp, dst.0, &dgram, mtu)
        };
        send_ip_packets(w, eng, host, dst.0, IpProtocol::Udp, pkts);
    });
}

/// Sends an ICMP echo request from `host` to `dst`. The reply is counted
/// in the trace under `icmp_echo_reply_received`.
pub fn send_ping(w: &mut World, eng: &mut Eng, host: usize, dst: Ipv4Addr, ident: u16, seq: u16) {
    let msg = unp_wire::IcmpRepr::Echo {
        request: true,
        ident,
        seq,
        data: b"unp ping".to_vec(),
    }
    .build();
    let cost = w.costs.ip_per_packet + w.costs.checksum(msg.len());
    host_exec(w, eng, host, cost, move |w, eng| {
        let pkts = {
            let mtu = w.link.params().mtu;
            w.hosts[host].ip_ep.send(IpProtocol::Icmp, dst, &msg, mtu)
        };
        send_ip_packets(w, eng, host, dst, IpProtocol::Icmp, pkts);
    });
}

fn udp_input(
    w: &mut World,
    eng: &mut Eng,
    h: usize,
    src: Ipv4Addr,
    dst: Ipv4Addr,
    payload: Vec<u8>,
    orig_ip_packet: Vec<u8>,
) {
    let cost = w.costs.udp_per_packet + w.costs.checksum(payload.len());
    host_exec(w, eng, h, cost, move |w, eng| {
        use unp_proto::udp::UdpRecv;
        match w.hosts[h].udp.receive(src, dst, &payload) {
            UdpRecv::Delivered { .. } => w.metrics.bump(Ctr::UdpDelivered),
            UdpRecv::PortUnreachable => {
                w.metrics.bump(Ctr::UdpUnreachable);
                // "In response to a packet arriving at a port without a
                // listening socket, an ICMP destination unreachable
                // message is generated."
                let icmp = unp_proto::icmp::port_unreachable(&orig_ip_packet).build();
                let cost = w.costs.ip_per_packet + w.costs.checksum(icmp.len());
                host_exec(w, eng, h, cost, move |w, eng| {
                    let pkts = {
                        let mtu = w.link.params().mtu;
                        w.hosts[h].ip_ep.send(IpProtocol::Icmp, src, &icmp, mtu)
                    };
                    send_ip_packets(w, eng, h, src, IpProtocol::Icmp, pkts);
                });
            }
            UdpRecv::Bad(_) => w.metrics.bump(Ctr::UdpBad),
        }
    });
}

fn icmp_input_host(w: &mut World, eng: &mut Eng, h: usize, src: Ipv4Addr, payload: &[u8]) {
    let cost = w.costs.ip_per_packet + w.costs.checksum(payload.len());
    match icmp_input(payload) {
        Ok(Some(reply)) => {
            let bytes = reply.build();
            host_exec(w, eng, h, cost, move |w, eng| {
                let pkts = {
                    let mtu = w.link.params().mtu;
                    w.hosts[h].ip_ep.send(IpProtocol::Icmp, src, &bytes, mtu)
                };
                send_ip_packets(w, eng, h, src, IpProtocol::Icmp, pkts);
                w.metrics.bump(Ctr::IcmpEchoReplies);
            });
        }
        Ok(None) => {
            // Classify for the trace: echo replies (our pings coming
            // back) and destination-unreachable errors.
            match unp_wire::IcmpPacket::new_checked(payload)
                .ok()
                .map(|p| p.icmp_type())
            {
                Some(unp_wire::IcmpType::EchoReply) => w.metrics.bump(Ctr::IcmpEchoReplyReceived),
                Some(unp_wire::IcmpType::DestUnreachable(_)) => {
                    w.metrics.bump(Ctr::IcmpDestUnreachableReceived)
                }
                _ => w.metrics.bump(Ctr::IcmpOther),
            }
        }
        Err(_) => w.metrics.bump(Ctr::IcmpBad),
    }
}

// ------------------------- user-library input -------------------------

fn userlib_ip_input(
    w: &mut World,
    eng: &mut Eng,
    h: usize,
    frame: Frame,
    hw_ring: Option<unp_buffers::RingId>,
) {
    // Only TCP goes through connection channels; other IP protocols take
    // the kernel path (same handling as monolithic — they are not part of
    // the paper's measurements but keep the host fully functional).
    let lhl = w.hosts[h].link_header_len();
    let is_tcp = frame.len() > lhl + 9 && frame[lhl + 9] == IpProtocol::Tcp.to_u8();
    if !is_tcp {
        monolithic_ip_input(w, eng, h, frame);
        return;
    }
    // Slow-consumer windows from the fault plan clamp the effective ring
    // capacity for the delivery below (None clears any previous clamp; a
    // disabled plan always yields None). Overflow drops recover through
    // normal TCP retransmission.
    let cap = w.faults.ring_cap(h, eng.now());
    w.hosts[h].netio.set_pressure_cap(cap);
    let delivery = match hw_ring {
        Some(ring) => w.hosts[h].netio.deliver_hardware(ring, &frame),
        None => w.hosts[h].netio.deliver_software(&frame),
    };
    let c = &w.costs;
    // The modeled demux cost. Software deliveries charge the filter-scan
    // model whether the host mechanism was the flow table or the scan
    // (`filter_instrs` is scan-equivalent by construction): the compared
    // 1993 systems interpret a filter per packet, and the tables must not
    // move when the reproduction's own hot path gets faster. See
    // `CostModel::flow_demux` for the modeled fast-path constant ablations
    // use.
    let model_path = if hw_ring.is_some() {
        DemuxPath::Hardware
    } else {
        DemuxPath::FilterScan
    };
    match delivery {
        Delivery::Channel {
            id,
            signal,
            filter_instrs,
            path,
            depth,
        } => {
            let demux_cost = c.demux_cost(model_path, filter_instrs);
            w.metrics.bump(Ctr::ChDeliveries);
            // Live tier/occupancy telemetry: which machinery actually
            // decided the delivery (unlike `model_path`, which is what
            // the 1993 cost model charges), and the ring backlog after
            // the push — what a windowed sampler watches.
            match path {
                DemuxPath::FlowTable => w.metrics.bump(Ctr::ChFlowHits),
                DemuxPath::ListenTable => w.metrics.bump(Ctr::ChListenHits),
                DemuxPath::FilterScan => w.metrics.bump(Ctr::ChScanFallbacks),
                DemuxPath::Hardware => {}
            }
            w.metrics.sample(Hist::RingDepth, depth as u64);
            // Byzantine ring-flood: the hostile tenant's library "never
            // wakes up", so its rings fill until the per-tenant quota
            // sheds further deliveries. Only the demux bookkeeping is
            // charged — exactly the batched path's cost shape.
            if let Some(owner) = w.hosts[h].netio.channel_owner(id) {
                if w.faults.ring_flood_active(h, owner.0, eng.now()) {
                    w.hosts[h]
                        .cpu
                        .charge_priority(eng.now(), demux_cost + c.ring_op);
                    return;
                }
            }
            let signal = signal || w.ablate_batching;
            if signal {
                let cost = demux_cost
                    + c.ring_op
                    + c.semaphore_signal
                    + c.wakeup_resched
                    + c.thread_switch;
                host_exec_intr(w, eng, h, cost, move |w, eng| {
                    library_wakeup(w, eng, h, id);
                });
            } else {
                // Batched: no interrupt taken; the running library thread
                // will consume this frame from the ring. Only the demux
                // machinery's bookkeeping costs.
                w.metrics.bump(Ctr::ChBatched);
                w.hosts[h]
                    .cpu
                    .charge_priority(eng.now(), demux_cost + c.ring_op);
            }
        }
        Delivery::KernelDefault { filter_instrs, .. } => {
            let demux_cost = c.demux_cost(model_path, filter_instrs);
            host_exec(w, eng, h, demux_cost, move |w, eng| {
                registry_tcp_input(w, eng, h, frame);
            });
        }
        Delivery::Dropped => w.metrics.bump(Ctr::ChRingDrops),
        // The channel had room but its tenant's aggregate ring budget was
        // exhausted — charged to the tenant, recovered by TCP like any
        // other ring drop.
        Delivery::QuotaDropped { .. } => w.metrics.bump(Ctr::ChQuotaDrops),
    }
}

/// The library thread wakes: consume every queued frame, run the protocol
/// over each, deliver to the application.
fn library_wakeup(w: &mut World, eng: &mut Eng, h: usize, chan: ChannelId) {
    let _attr = unp_trace::host_scope(h as u16);
    // Pre-establishment hardware deliveries land here with no conn yet:
    // feed them back through the registry.
    let Some(&cid) = w.hosts[h].chan_to_conn.get(&chan) else {
        let hs = w.hosts[h].hs_by_chan.get(&chan).copied();
        if let Some(hs) = hs {
            let recv_cap = w.hosts[h].hs_setup[&hs].chan.recv_cap;
            if let Ok(frames) = w.hosts[h].netio.consume(recv_cap) {
                for f in frames {
                    registry_tcp_input(w, eng, h, f);
                }
            }
        }
        return;
    };
    let recv_cap = match &w.hosts[h].conns.get(&cid).and_then(|c| c.chan.as_ref()) {
        Some(ci) => ci.recv_cap,
        None => return,
    };
    // Consume without clearing the notification: packets arriving while
    // the library thread is processing are picked up by the same wakeup
    // (the paper's signal batching).
    let Ok(frames) = w.hosts[h].netio.consume_batch(recv_cap) else {
        return;
    };
    if frames.is_empty() {
        let _ = w.hosts[h].netio.end_wakeup(recv_cap);
        return;
    }
    w.metrics
        .sample(Hist::WakeupBatchFrames, frames.len() as u64);
    // Process the consumed batch one frame at a time, each charged
    // individually, so acknowledgments flow as segments are handled (the
    // batching amortizes only the semaphore/thread-switch, not the
    // protocol work — processing a batch "atomically" would stall the
    // sender's ACK clock).
    library_process_chain(w, eng, h, cid, frames.into());
}

fn library_process_chain(
    w: &mut World,
    eng: &mut Eng,
    h: usize,
    cid: u32,
    mut frames: std::collections::VecDeque<Frame>,
) {
    let Some(frame) = frames.pop_front() else {
        // Batch done: re-check the ring; more may have arrived while we
        // were processing (they were batched, not signalled).
        let recv_cap = w.hosts[h]
            .conns
            .get(&cid)
            .and_then(|c| c.chan.as_ref())
            .map(|ci| ci.recv_cap);
        if let Some(cap) = recv_cap {
            if let Ok(done) = w.hosts[h].netio.end_wakeup(cap) {
                if !done {
                    library_wakeup_continue(w, eng, h, cid, cap);
                }
            }
        }
        return;
    };
    let lhl = w.hosts[h].link_header_len();
    let len = frame.len().saturating_sub(lhl);
    // On the software-demux (Ethernet) path, the shared-region crossing
    // under user-level synchronization costs extra per byte (paper: +0.8 ms
    // for a maximum-sized packet vs Ultrix); the AN1 hardware path is
    // "comparable" to the in-kernel path and is not charged.
    let sw_extra = match w.hosts[h].nic {
        Nic::Lance(_) => w.costs.lib_sw_rx_per_byte * len as Nanos,
        Nic::An1(_) => 0,
    };
    let cost = tcp_seg_cost(w, len) + w.costs.library_call + w.costs.lib_upcall_sync + sw_extra;
    host_exec(w, eng, h, cost, move |w, eng| {
        let _attr = unp_trace::host_scope(h as u16);
        let local_ip = w.hosts[h].ip;
        'one: {
            if frame.len() <= lhl {
                break 'one;
            }
            // The library runs its own IP input (frag handled by the
            // shared IP library). The common case — a complete
            // unfragmented datagram — is sliced out of the ring frame
            // without copying.
            let now = eng.now();
            let (src, payload) = match w.hosts[h].ip_ep.receive_in_place(&frame[lhl..], now) {
                Some((src, IpProtocol::Tcp, range)) => {
                    (src, frame.slice(lhl + range.start, lhl + range.end))
                }
                _ => {
                    let recv = w.hosts[h].ip_ep.receive(&frame[lhl..], now);
                    let IpRecv::Complete {
                        protocol: IpProtocol::Tcp,
                        src,
                        payload,
                        ..
                    } = recv
                    else {
                        w.metrics.bump(Ctr::LibNonTcp);
                        break 'one;
                    };
                    (src, Frame::from_vec(payload))
                }
            };
            let Ok(pkt) = TcpPacket::new_checked(&payload[..]) else {
                break 'one;
            };
            if !pkt.verify_checksum(src, local_ip) {
                frame_corrupt_discard(w, h, Some(payload.id()), payload.len());
                break 'one;
            }
            let repr = TcpRepr::parse(&pkt);
            let data = payload.slice(pkt.header_len(), payload.len());
            unp_trace::emit(Some(frame.id()), || unp_trace::Event::TcpSegment {
                dir: unp_trace::Dir::Rx,
                local_port: repr.dst_port,
                remote_port: repr.src_port,
                remote_ip: src.0,
                seq: repr.seq.0,
                ack: repr.ack_num.0,
                wnd: u32::from(repr.window),
                flags: seg_flags(&repr),
                payload: data.len() as u32,
                wire: (frame.len() - lhl) as u32,
            });
            let actions = {
                let Some(conn) = w.hosts[h].conns.get_mut(&cid) else {
                    break 'one;
                };
                conn.tcb.on_segment(&repr, &data, now)
            };
            apply_tcp_actions(w, eng, h, cid, Some(frame.id()), actions);
        }
        library_process_chain(w, eng, h, cid, frames);
    });
}

/// Continues a wakeup that found more packets queued at the end of its
/// batch (no new semaphore signal was posted for them).
fn library_wakeup_continue(w: &mut World, eng: &mut Eng, h: usize, cid: u32, recv_cap: Capability) {
    let _attr = unp_trace::host_scope(h as u16);
    if let Ok(frames) = w.hosts[h].netio.consume_batch(recv_cap) {
        if frames.is_empty() {
            let _ = w.hosts[h].netio.end_wakeup(recv_cap);
        } else {
            w.metrics
                .sample(Hist::WakeupBatchFrames, frames.len() as u64);
            library_process_chain(w, eng, h, cid, frames.into());
        }
    }
}

/// Kernel-default TCP traffic: handshakes and strays, handled by the
/// registry server (one address-space crossing away).
fn registry_tcp_input(w: &mut World, eng: &mut Eng, h: usize, frame: Frame) {
    let lhl = w.hosts[h].link_header_len();
    // Record any BQI announcement riding the AN1 link header.
    if let Nic::An1(_) = w.hosts[h].nic {
        if let Ok(f) = An1Frame::new_checked(&frame[..]) {
            let ann = f.announce();
            if ann != 0 {
                // Key by our (local port, remote ip, remote port).
                if let Peek::Tcp(src, repr) = peek_tcp_quiet(w, h, &frame) {
                    w.hosts[h]
                        .announced
                        .insert((repr.dst_port, src, repr.src_port), ann);
                }
            }
        }
    }
    let Some((src, repr)) = peek_tcp(w, h, &frame) else {
        return;
    };
    let Ok(pkt) = TcpPacket::new_checked(&frame[lhl + 20..]) else {
        return;
    };
    let data = frame.slice(lhl + 20 + pkt.header_len(), frame.len());
    // Charge the protocol cost now; the routing decision happens at
    // completion time so it sees the registry/connection state as of when
    // the segment is actually examined (the arrival-time state may change
    // while the segment waits its turn on the CPU).
    let cost = tcp_seg_cost(w, frame.len() - lhl);
    host_exec(w, eng, h, cost, move |w, eng| {
        let _attr = unp_trace::host_scope(h as u16);
        let key = (repr.dst_port, src, repr.src_port);
        let now = eng.now();
        // An established connection whose binding the frame missed (e.g. a
        // handshake retransmission racing activation): to the library.
        if let Some(&cid) = w.hosts[h].conn_index.get(&key) {
            let actions = {
                let Some(conn) = w.hosts[h].conns.get_mut(&cid) else {
                    return;
                };
                conn.tcb.on_segment(&repr, &data, now)
            };
            apply_tcp_actions(w, eng, h, cid, Some(data.id()), actions);
            return;
        }
        // A connection mid-Complete: the kernel holds the frame until the
        // library's channel activates.
        if w.hosts[h]
            .hs_setup
            .values()
            .any(|s| s.key == key && s.completing)
        {
            w.hosts[h].parked.entry(key).or_default().push(frame);
            w.metrics.bump(Ctr::FramesParked);
            return;
        }
        // Registry path (handshakes, inherited connections, strays): the
        // registry's device access is by Mach IPC, not shared memory.
        w.hosts[h].cpu.charge(now, w.costs.registry_pkt_op);
        let actions = w.hosts[h].registry.on_segment(src, &repr, &data, now);
        apply_registry_actions(w, eng, h, actions);
    });
}

/// What [`peek_tcp_quiet`] saw in a frame.
enum Peek {
    /// A checksum-valid TCP segment.
    Tcp(Ipv4Addr, TcpRepr),
    /// A TCP segment whose checksum failed (damaged in flight); carries
    /// the segment length for the discard journal entry.
    BadChecksum(usize),
    /// Not an unfragmented TCP segment at all.
    NotTcp,
}

/// Parses (src ip, tcp header) out of a frame without consuming reassembly
/// state (handshake segments are never fragmented) and without touching
/// metrics — the BQI-announcement probe runs this on frames the main path
/// will classify again.
fn peek_tcp_quiet(w: &World, h: usize, frame: &[u8]) -> Peek {
    let lhl = w.hosts[h].link_header_len();
    let Ok(ip) = unp_wire::Ipv4Packet::new_checked(&frame[lhl..]) else {
        return Peek::NotTcp;
    };
    if ip.protocol() != IpProtocol::Tcp || ip.more_frags() || ip.frag_offset() != 0 {
        return Peek::NotTcp;
    }
    let src = ip.src();
    let dst = ip.dst();
    let Ok(pkt) = TcpPacket::new_checked(ip.payload()) else {
        return Peek::NotTcp;
    };
    if !pkt.verify_checksum(src, dst) {
        return Peek::BadChecksum(ip.payload().len());
    }
    Peek::Tcp(src, TcpRepr::parse(&pkt))
}

/// [`peek_tcp_quiet`] plus accounting: a checksum failure is counted and
/// journaled as a corrupt-frame discard instead of vanishing silently.
fn peek_tcp(w: &mut World, h: usize, frame: &Frame) -> Option<(Ipv4Addr, TcpRepr)> {
    match peek_tcp_quiet(w, h, &frame[..]) {
        Peek::Tcp(src, repr) => Some((src, repr)),
        Peek::BadChecksum(len) => {
            frame_corrupt_discard(w, h, Some(frame.id()), len);
            None
        }
        Peek::NotTcp => None,
    }
}

// ---------------------------------------------------------------------
// Registry action routing
// ---------------------------------------------------------------------

fn apply_registry_actions(w: &mut World, eng: &mut Eng, h: usize, actions: Vec<RegistryAction>) {
    for action in actions {
        match action {
            RegistryAction::Send {
                hs,
                repr,
                payload,
                remote,
            } => {
                ensure_hs_setup(w, h, hs, &repr, remote);
                // Announce our BQI on AN1 handshake segments.
                let announce = w.hosts[h]
                    .hs_setup
                    .get(&hs.0)
                    .map(|s| s.chan.our_bqi)
                    .unwrap_or(0);
                let c = &w.costs;
                let cost = c.registry_pkt_op + tcp_seg_cost(w, repr.header_len() + payload.len());
                host_exec(w, eng, h, cost, move |w, eng| {
                    emit_tcp_segment(w, eng, h, &repr, &payload, remote, 0, announce, None);
                });
            }
            RegistryAction::SetTimer(hs, t, deadline) => {
                if let Some(old) = w.hosts[h].reg_timers.remove(&(hs.0, t)) {
                    w.hosts[h].wheel.stop(old);
                }
                let id = w.hosts[h]
                    .wheel
                    .start(deadline, TimerToken::Registry(hs.0, t));
                w.hosts[h].reg_timers.insert((hs.0, t), id);
                resched_wheel(w, eng, h);
            }
            RegistryAction::CancelTimer(hs, t) => {
                if let Some(old) = w.hosts[h].reg_timers.remove(&(hs.0, t)) {
                    w.hosts[h].wheel.stop(old);
                    resched_wheel(w, eng, h);
                }
            }
            RegistryAction::Complete { hs, tcb, .. } => {
                if let Some(setup) = w.hosts[h].hs_setup.get_mut(&hs.0) {
                    setup.completing = true;
                }
                // Channel finalization + TCP state transfer + reply RPC.
                let c = &w.costs;
                let mut cost = c.channel_setup + c.state_transfer + c.registry_rpc;
                if matches!(w.hosts[h].nic, Nic::An1(_)) {
                    cost += c.bqi_setup; // programming the BQI machinery
                }
                host_exec(w, eng, h, cost, move |w, eng| {
                    finalize_user_conn(w, eng, h, hs, *tcb);
                });
            }
            RegistryAction::Failed { hs, .. } => {
                w.metrics.bump(Ctr::HandshakeFailures);
                if let Some(setup) = w.hosts[h].hs_setup.remove(&hs.0) {
                    w.hosts[h].hs_by_chan.remove(&setup.chan.id);
                    w.hosts[h].netio.destroy_channel(setup.chan.id, OwnerTag(0));
                    w.metrics.gauge_dec(Gauge::OpenChannels);
                    sync_demux_gauges(w);
                }
                w.hosts[h].pending_tenants.remove(&hs.0);
                if let Some(mut app) = w.hosts[h].pending_apps.remove(&hs.0) {
                    let view = crate::app::AppView {
                        now: eng.now(),
                        send_space: 0,
                        pending_tx: 0,
                        local: None,
                        remote: None,
                    };
                    app.on_reset(&view);
                }
            }
        }
    }
}

/// Re-derives the demux table-size gauges from the kernel modules.
/// Called wherever `OpenChannels` moves so the flow/listen entry counts
/// in the metrics windows track channel churn exactly; set (not inc/dec)
/// because a destroyed channel may have lived in either keyed table or
/// in neither (residual scan tier).
fn sync_demux_gauges(w: &mut World) {
    let (mut flow, mut listen) = (0u64, 0u64);
    for host in &w.hosts {
        flow += host.netio.flow_table_len() as u64;
        listen += host.netio.listen_table_len() as u64;
    }
    w.metrics.gauge_set(Gauge::DemuxFlowEntries, flow);
    w.metrics.gauge_set(Gauge::DemuxListenEntries, listen);
}

/// Mirrors every kernel tenant account into the metrics registry's
/// [`unp_trace::TenantScope`]s. Called when quota enforcement fires and
/// by reporting code before it reads the scopes; cheap (a handful of
/// tenants per host), and a no-op on worlds that never budget anyone
/// beyond each host's default owner.
pub fn sync_tenant_scopes(w: &mut World) {
    for h in 0..w.hosts.len() {
        for t in w.hosts[h].netio.tenant_ids() {
            let Some(s) = w.hosts[h].netio.tenant_stats(t) else {
                continue;
            };
            let scope = w.metrics.tenant(h as u16, t.0);
            scope.rx_delivered = s.rx_delivered;
            scope.tx_frames = s.tx_frames;
            scope.quota_drops = s.quota_drops;
            scope.tx_rejections = s.tx_rejections;
            scope.ring_slots = s.ring_slots as u64;
            scope.ring_quota = s.ring_quota as u64;
            scope.open_channels = s.open_channels as u64;
        }
    }
}

/// Mirrors the observer pipeline's stream counters into the metrics
/// registry: violations flagged by an attached conformance monitor and
/// the flight recorder's current occupancy. The stream counter is
/// monotonic per thread while `Ctr` is add-only, and this sync is the
/// counter's sole writer, so the counter itself doubles as the
/// last-synced watermark. Called by reporting code (dashboards,
/// exporters) before it reads the metrics; a no-op when no observer is
/// attached.
pub fn sync_monitor_stats(w: &mut World) {
    let s = unp_trace::stream_stats();
    let seen = w.metrics.get(Ctr::MonitorViolations);
    if s.violations > seen {
        w.metrics.add(Ctr::MonitorViolations, s.violations - seen);
    }
    w.metrics
        .gauge_set(Gauge::RecorderOccupancy, s.recorder_occupancy);
}

/// Creates the channel, template, and (on AN1) BQI for a handshake the
/// first time the registry sends a segment for it. "Before initiating
/// connection the server requests the network I/O module for a BQI that
/// the remote node can use."
fn ensure_hs_setup(w: &mut World, h: usize, hs: HsId, repr: &TcpRepr, remote: Ipv4Addr) {
    if hs.0 == 0 || w.hosts[h].hs_setup.contains_key(&hs.0) {
        return; // hs 0 is the registry's stray-RST pseudo-connection
    }
    // Channels exist only for connections headed to an application; the
    // registry's inherited closers (FIN/RST/ACK traffic, never SYN) stay
    // on the kernel path.
    if !repr.flags.syn {
        return;
    }
    let local_ip = w.hosts[h].ip;
    let local_port = repr.src_port;
    let remote_port = repr.dst_port;
    let lhl = w.hosts[h].link_header_len();
    // Fully specified by construction, so the binding distills into the
    // kernel's exact-match flow table (see `connection_demux_spec`).
    let spec =
        unp_registry::connection_demux_spec(lhl, (local_ip, local_port), (remote, remote_port));
    let template = HeaderTemplate {
        link_header_len: lhl,
        src_mac: Some(w.hosts[h].mac),
        dst_mac: None,
        ethertype: EtherType::Ipv4,
        protocol: IpProtocol::Tcp,
        src_ip: local_ip,
        dst_ip: remote,
        src_port: local_port,
        dst_port: Some(remote_port),
        bqi: None,
    };
    // Channel ownership: an active open's tenant was pinned at connect
    // time; a passive open inherits the listening port's tenant. Both
    // default to the host's single-app owner.
    let owner = w.hosts[h]
        .pending_tenants
        .get(&hs.0)
        .or_else(|| w.hosts[h].listener_tenants.get(&local_port))
        .copied()
        .unwrap_or_else(|| w.hosts[h].owner());
    let mtu = w.link.params().mtu;
    // The pinned region must cover a full advertised window of segments
    // (paper: "this memory is kept pinned for the duration of the
    // connection"). The window is byte-based (≤64 kB) but the ring is
    // slot-based, so size it for the worst case of small segments: a
    // 64 kB window of ~100-byte no-Nagle dribble segments.
    let Some((chan_id, send_cap, recv_cap, ring)) =
        w.hosts[h]
            .netio
            .try_create_channel(owner, &spec, template, 768, mtu + lhl + 8)
    else {
        // The tenant is at its channel cap: no channel, no hs record. The
        // handshake can never finalize at the library level; the peer's
        // retransmits run out and the connection fails — contained to the
        // over-cap tenant.
        return;
    };
    w.metrics.gauge_inc(Gauge::OpenChannels);
    sync_demux_gauges(w);
    let our_bqi = match &mut w.hosts[h].nic {
        Nic::An1(nic) => nic.bqi_table.allocate(owner, ring).unwrap_or(0),
        Nic::Lance(_) => 0,
    };
    let key = (local_port, remote, remote_port);
    w.hosts[h].hs_by_chan.insert(chan_id, hs.0);
    w.hosts[h].hs_setup.insert(
        hs.0,
        HsSetup {
            chan: ChanInfo {
                id: chan_id,
                send_cap,
                recv_cap,
                our_bqi,
                peer_bqi: None,
            },
            key,
            completing: false,
        },
    );
}

/// The handshake completed: activate the channel, fix the template's BQI,
/// install the connection in the application's library, and upcall it.
fn finalize_user_conn(w: &mut World, eng: &mut Eng, h: usize, hs: HsId, tcb: Tcb) {
    let Some(setup) = w.hosts[h].hs_setup.remove(&hs.0) else {
        return;
    };
    w.hosts[h].hs_by_chan.remove(&setup.chan.id);
    let mut chan = setup.chan;
    // Peer's announced BQI (AN1): required on our outgoing data frames.
    chan.peer_bqi = w.hosts[h].announced.get(&setup.key).copied();
    if let Some(bqi) = chan.peer_bqi {
        w.hosts[h].netio.set_template_bqi(chan.id, bqi);
    }
    w.hosts[h].netio.activate(chan.id);
    // The app: active opens registered it; passive opens use the listener
    // factory.
    let port = tcb.local().1;
    let app = match w.hosts[h].pending_apps.remove(&hs.0) {
        Some(app) => Some(app),
        None => w.hosts[h].listeners.get_mut(&port).map(|l| (l.factory)()),
    };
    let Some(app) = app else {
        // The listener was torn down while the handshake was completing.
        // The channel is already activated and the peer believes it is
        // connected, so this cannot just drop on the floor: release the
        // channel and reset the peer.
        listener_vanished(w, eng, h, chan, tcb);
        return;
    };
    let write_size = w.hosts[h].pending_write_sizes.remove(&hs.0).unwrap_or(4096);
    w.hosts[h].pending_tenants.remove(&hs.0);
    let cid = install_conn(w, h, tcb, app, Some(chan), write_size);
    w.metrics.bump(Ctr::ConnectionsEstablished);
    // Frames the kernel parked while the channel was being finalized.
    if let Some(frames) = w.hosts[h].parked.remove(&setup.key) {
        let lhl = w.hosts[h].link_header_len();
        for f in frames {
            let cost = tcp_seg_cost(w, f.len().saturating_sub(lhl));
            host_exec(w, eng, h, cost, move |w, eng| {
                deliver_frame_to_conn(w, eng, h, cid, f);
            });
        }
    }
    // Deliver the Connected upcall.
    let cost = app_boundary_cost(w, h);
    host_exec(w, eng, h, cost, move |w, eng| {
        app_event(w, eng, h, cid, AppEvent::Connected);
    });
}

/// A handshake completed for a listener that no longer exists (the
/// accepting process unlistened or died mid-completion). The channel was
/// already activated, so release it and its BQI, forget frames parked
/// under the key, and hand the established TCB to the registry, which
/// resets the peer on the vanished application's behalf (the §3.4
/// trusted-agent role).
fn listener_vanished(w: &mut World, eng: &mut Eng, h: usize, chan: ChanInfo, tcb: Tcb) {
    w.metrics.bump(Ctr::ListenerVanished);
    w.metrics.bump(Ctr::ResourceReclaims);
    let port = tcb.local().1;
    let owner32 = w.hosts[h].owner().0 as u32;
    unp_trace::emit_at(h as u16, None, || unp_trace::Event::ResourceReclaim {
        kind: unp_trace::ReclaimKind::Connection,
        owner: owner32,
        id: port as u32,
    });
    let key = (port, tcb.remote().0, tcb.remote().1);
    w.hosts[h].parked.remove(&key);
    w.hosts[h].announced.remove(&key);
    let stats = w.hosts[h].netio.channel_stats(chan.id);
    w.hosts[h].netio.destroy_channel(chan.id, OwnerTag(0));
    if let Nic::An1(nic) = &mut w.hosts[h].nic {
        nic.bqi_table
            .free(chan.our_bqi, unp_buffers::BqiTable::KERNEL_OWNER);
    }
    w.metrics.gauge_dec(Gauge::OpenChannels);
    sync_demux_gauges(w);
    if let Some(cs) = stats {
        w.hosts[h]
            .registry
            .record_channel_stats(port, tcb.remote(), cs);
    }
    let owner = w.hosts[h].owner();
    let now = eng.now();
    let actions = w.hosts[h].registry.app_exit(owner, vec![tcb], true, now);
    apply_registry_actions(w, eng, h, actions);
}

/// Parses a frame and feeds it to an installed connection (parked-frame
/// delivery path; costs already charged).
fn deliver_frame_to_conn(w: &mut World, eng: &mut Eng, h: usize, cid: u32, frame: Frame) {
    let _attr = unp_trace::host_scope(h as u16);
    let Some((src, repr)) = peek_tcp(w, h, &frame) else {
        return;
    };
    let lhl = w.hosts[h].link_header_len();
    let Ok(pkt) = TcpPacket::new_checked(&frame[lhl + 20..]) else {
        return;
    };
    let data = frame.slice(lhl + 20 + pkt.header_len(), frame.len());
    let _ = src;
    let now = eng.now();
    let actions = {
        let Some(conn) = w.hosts[h].conns.get_mut(&cid) else {
            return;
        };
        conn.tcb.on_segment(&repr, &data, now)
    };
    apply_tcp_actions(w, eng, h, cid, Some(frame.id()), actions);
}

// ---------------------------------------------------------------------
// TCP action routing (library / in-kernel stack, post-establishment)
// ---------------------------------------------------------------------

/// Routes one batch of TCP actions. `frame` is the id of the received
/// frame that produced them (None for timer fires and app-initiated
/// sends) — it stamps the `app_deliver` journal record so the profiler
/// can join the final stage of the frame's path.
fn apply_tcp_actions(
    w: &mut World,
    eng: &mut Eng,
    h: usize,
    cid: u32,
    frame: Option<u64>,
    actions: Vec<TcpAction>,
) {
    // Harvest the connection's counter increments into the live registry
    // so windowed samplers see retransmit/RTT activity as it happens, not
    // at teardown. The cumulative per-connection stats are untouched.
    if let Some(conn) = w.hosts[h].conns.get_mut(&cid) {
        let d = conn.tcb.take_stats_delta();
        w.metrics.add(Ctr::TcpRexmitBytes, d.bytes_rexmit);
        w.metrics.add(Ctr::TcpRexmitSegs, d.rexmits);
        w.metrics.add(Ctr::TcpRttSamples, d.rtt_samples);
    }
    for action in actions {
        if !w.hosts[h].conns.contains_key(&cid) {
            return; // connection reaped mid-sequence
        }
        match action {
            TcpAction::Send(repr, payload) => {
                let remote = w.hosts[h].conns[&cid].tcb.remote().0;
                send_tcp_segment(w, eng, h, Some(cid), repr, payload, remote);
            }
            TcpAction::SetTimer(t, deadline) => {
                let host = &mut w.hosts[h];
                let conn = host.conns.get_mut(&cid).expect("checked");
                if let Some(old) = conn.timer_ids.remove(&t) {
                    host.wheel.stop(old);
                }
                let id = host.wheel.start(deadline, TimerToken::Conn(cid, t));
                host.conns
                    .get_mut(&cid)
                    .expect("checked")
                    .timer_ids
                    .insert(t, id);
                resched_wheel(w, eng, h);
            }
            TcpAction::CancelTimer(t) => {
                let host = &mut w.hosts[h];
                if let Some(conn) = host.conns.get_mut(&cid) {
                    if let Some(old) = conn.timer_ids.remove(&t) {
                        host.wheel.stop(old);
                        resched_wheel(w, eng, h);
                    }
                }
            }
            TcpAction::Connected => {
                let cost = app_boundary_cost(w, h);
                host_exec(w, eng, h, cost, move |w, eng| {
                    app_event(w, eng, h, cid, AppEvent::Connected);
                });
            }
            TcpAction::DataAvailable => {
                // Drain the receive buffer and upcall the application.
                let now = eng.now();
                let (key, (data, more_actions)) = {
                    let conn = w.hosts[h].conns.get_mut(&cid).expect("checked");
                    (conn_key(h, &conn.tcb), conn.tcb.recv(usize::MAX, now))
                };
                apply_tcp_actions(w, eng, h, cid, frame, more_actions);
                if !data.is_empty() {
                    w.metrics.sample(Hist::AppDeliverBytes, data.len() as u64);
                    w.metrics.conn(key).bytes_to_app += data.len() as u64;
                    unp_trace::emit_at(h as u16, frame, || unp_trace::Event::AppDeliver {
                        conn: cid as u64,
                        bytes: data.len() as u32,
                    });
                    let cost = app_boundary_cost(w, h) + rx_copy_cost(w, h, data.len());
                    host_exec(w, eng, h, cost, move |w, eng| {
                        app_event(w, eng, h, cid, AppEvent::Data(data));
                    });
                }
            }
            TcpAction::SendSpace => {
                flush_conn_tx(w, eng, h, cid);
                if w.hosts[h].conns.contains_key(&cid) {
                    let cost = w.costs.library_call;
                    host_exec(w, eng, h, cost, move |w, eng| {
                        app_event(w, eng, h, cid, AppEvent::SendSpace);
                    });
                }
            }
            TcpAction::PeerClosed => {
                let cost = app_boundary_cost(w, h);
                host_exec(w, eng, h, cost, move |w, eng| {
                    app_event(w, eng, h, cid, AppEvent::PeerClosed);
                });
            }
            TcpAction::Reset => {
                w.metrics.bump(Ctr::ConnectionsReset);
                if let Some(conn) = w.hosts[h].conns.get_mut(&cid) {
                    let view = crate::app::AppView {
                        now: eng.now(),
                        send_space: 0,
                        pending_tx: 0,
                        local: Some(conn.tcb.local()),
                        remote: Some(conn.tcb.remote()),
                    };
                    conn.app.on_reset(&view);
                }
            }
            TcpAction::ConnClosed => {
                reap_conn(w, h, cid);
            }
        }
    }
}

/// The journaled control-flag summary of a segment (what the online
/// conformance checkers key their ack/dup-ACK/incarnation logic on).
fn seg_flags(repr: &TcpRepr) -> unp_trace::SegFlags {
    unp_trace::SegFlags {
        syn: repr.flags.syn,
        fin: repr.flags.fin,
        rst: repr.flags.rst,
        ack: repr.flags.ack,
    }
}

/// Builds one TCP segment's IP packet(s) and hands them to the link
/// layer. Unfragmented segments — the entire measured workload — take
/// the zero-copy path: the payload is staged once into a pooled frame
/// and the TCP, IP, and (after ARP) link headers are prepended into its
/// headroom, so no intermediate segment/packet vectors exist. Oversize
/// segments fall back to [`IpEndpoint::send`] fragmentation.
#[allow(clippy::too_many_arguments)]
fn emit_tcp_segment(
    w: &mut World,
    eng: &mut Eng,
    h: usize,
    repr: &TcpRepr,
    payload: &[u8],
    remote: Ipv4Addr,
    bqi: u16,
    announce: u16,
    send_cap: Option<Capability>,
) {
    send_tcp_frame(
        w, eng, h, repr, payload, remote, bqi, announce, send_cap, false,
    );
}

/// [`emit_tcp_segment`] with `fabricated` exposed: a byzantine tenant's
/// raw transmit parses as TCP on the wire but was built by no TCB, so it
/// must not be journaled as a `tcp_segment` (the record means "a TCP
/// endpoint produced this") — only its NIC/template-check chain is real.
/// The conformance monitor depends on this honesty: per-connection
/// invariants like ACK monotonicity hold for the library's segments, not
/// for arbitrary bytes a template happens to pass.
#[allow(clippy::too_many_arguments)]
fn send_tcp_frame(
    w: &mut World,
    eng: &mut Eng,
    h: usize,
    repr: &TcpRepr,
    payload: &[u8],
    remote: Ipv4Addr,
    bqi: u16,
    announce: u16,
    send_cap: Option<Capability>,
    fabricated: bool,
) {
    let _attr = unp_trace::host_scope(h as u16);
    let local_ip = w.hosts[h].ip;
    let mtu = w.link.params().mtu;
    let hlen = repr.header_len();
    let lhl = w.hosts[h].link_header_len();
    let mut ip_frames: Vec<Frame> = Vec::with_capacity(1);
    if IPV4_HEADER_LEN + hlen + payload.len() <= mtu {
        let mut f = w.pool.alloc(lhl + IPV4_HEADER_LEN + hlen, payload);
        f.prepend(hlen);
        repr.emit_into(f.as_mut_slice(), local_ip, remote)
            .expect("segment sized for its headroom");
        let ident = w.hosts[h].ip_ep.alloc_ident();
        let ip_repr = Ipv4Repr {
            ident,
            ..Ipv4Repr::simple(local_ip, remote, IpProtocol::Tcp, hlen + payload.len())
        };
        ip_repr
            .emit(f.prepend(IPV4_HEADER_LEN))
            .expect("headroom covers the IP header");
        ip_frames.push(f);
    } else {
        let seg = repr.build_segment(local_ip, remote, payload);
        let pkts = w.hosts[h].ip_ep.send(IpProtocol::Tcp, remote, &seg, mtu);
        ip_frames.extend(pkts.iter().map(|p| w.pool.alloc(lhl, p)));
    }
    for ipf in ip_frames {
        let Some(mac) = resolve_mac(w, eng, h, remote, IpProtocol::Tcp, &ipf) else {
            continue;
        };
        let frame = encap_link(w, h, mac, ipf, bqi, announce);
        if !fabricated {
            unp_trace::emit(Some(frame.id()), || unp_trace::Event::TcpSegment {
                dir: unp_trace::Dir::Tx,
                local_port: repr.src_port,
                remote_port: repr.dst_port,
                remote_ip: remote.0,
                seq: repr.seq.0,
                ack: repr.ack_num.0,
                wnd: u32::from(repr.window),
                flags: seg_flags(repr),
                payload: payload.len() as u32,
                wire: (frame.len() - lhl) as u32,
            });
        }
        // UserLibrary: the template check really runs. Transmit-credit
        // windows roll forward first so a budgeted tenant's refill
        // instants depend only on sim time, never on call order.
        if let Some(cap) = send_cap {
            let now = eng.now();
            w.hosts[h].netio.advance_tx_window(now);
            match w.hosts[h].netio.transmit_frame(cap, &frame) {
                Ok(_) => {}
                Err(unp_kernel::TxError::QuotaExceeded) => {
                    w.metrics.bump(Ctr::TxQuotaRejections);
                    continue;
                }
                Err(_) => {
                    w.metrics.bump(Ctr::TxTemplateRejections);
                    continue;
                }
            }
        }
        let cost = tx_device_cost(w, h, frame.len());
        host_exec(w, eng, h, cost, move |w, eng| {
            transmit_frame(w, eng, h, frame);
        });
    }
}

/// Builds and transmits one TCP segment, charging the full org-specific
/// path. `cid` is `None` for connectionless RSTs from the kernel.
fn send_tcp_segment(
    w: &mut World,
    eng: &mut Eng,
    h: usize,
    cid: Option<u32>,
    repr: TcpRepr,
    payload: Vec<u8>,
    remote: Ipv4Addr,
) {
    let cost = tcp_seg_cost(w, repr.header_len() + payload.len());
    host_exec(w, eng, h, cost, move |w, eng| {
        // Data frames stamp the peer's announced BQI (hardware demux).
        let bqi = cid
            .and_then(|c| w.hosts[h].conns.get(&c))
            .and_then(|c| c.chan.as_ref())
            .and_then(|ci| ci.peer_bqi)
            .unwrap_or(0);
        let send_cap = if w.hosts[h].org.is_user_library() {
            cid.and_then(|c| w.hosts[h].conns.get(&c))
                .and_then(|c| c.chan.as_ref())
                .map(|ci| ci.send_cap)
        } else {
            None
        };
        emit_tcp_segment(w, eng, h, &repr, &payload, remote, bqi, 0, send_cap);
    });
}

fn reap_conn(w: &mut World, h: usize, cid: u32) {
    let host = &mut w.hosts[h];
    let Some(conn) = host.conns.remove(&cid) else {
        return;
    };
    for (_, id) in conn.timer_ids {
        host.wheel.stop(id);
    }
    let key = (conn.tcb.local().1, conn.tcb.remote().0, conn.tcb.remote().1);
    host.conn_index.remove(&key);
    let chan_stats = conn
        .chan
        .as_ref()
        .and_then(|ci| Some((ci.id, host.netio.channel_stats(ci.id)?)));
    if let Some(ci) = &conn.chan {
        host.chan_to_conn.remove(&ci.id);
        host.netio.destroy_channel(ci.id, OwnerTag(0));
        if let Nic::An1(nic) = &mut host.nic {
            nic.bqi_table
                .free(ci.our_bqi, unp_buffers::BqiTable::KERNEL_OWNER);
        }
    }
    retire_conn_stats(w, h, &conn.tcb, chan_stats);
    w.metrics.bump(Ctr::ConnectionsClosed);
}

/// The metrics scope key for a live connection on host `h`.
fn conn_key(h: usize, tcb: &Tcb) -> ConnKey {
    let (remote_ip, remote_port) = tcb.remote();
    ConnKey {
        host: h as u16,
        local_port: tcb.local().1,
        remote_ip: remote_ip.0,
        remote_port,
    }
}

/// Rolls a dying connection's TCP counters and (when it had a channel) the
/// kernel channel's demux/delivery counters into the metrics scopes, and
/// hands the channel stats to the registry server, which flags bindings
/// that missed the flow-table fast path.
fn retire_conn_stats(
    w: &mut World,
    h: usize,
    tcb: &Tcb,
    chan_stats: Option<(ChannelId, ChannelStats)>,
) {
    let key = conn_key(h, tcb);
    let ts = tcb.stats();
    {
        let scope = w.metrics.conn(key);
        scope.segs_out = ts.segs_out;
        scope.segs_in = ts.segs_in;
        scope.bytes_rexmit = ts.bytes_rexmit;
        scope.rto_fires = ts.rto_fires;
        scope.fast_rexmit = ts.fast_rexmit;
        scope.dup_acks_in = ts.dup_acks_in;
        scope.probes = ts.probes;
        scope.srtt = tcb.srtt();
    }
    if let Some(srtt) = tcb.srtt() {
        w.metrics.sample(Hist::ConnSrtt, srtt);
    }
    w.metrics.gauge_dec(Gauge::ActiveConnections);
    if let Some((chid, cs)) = chan_stats {
        {
            let scope = w.metrics.conn(key);
            scope.rx_delivered = cs.delivered;
            scope.rx_batched = cs.batched;
            scope.flow_hits = cs.flow_hits;
            scope.listen_hits = cs.listen_hits;
            scope.scan_fallbacks = cs.scan_fallbacks;
        }
        let ch = w.metrics.channel(key.host, chid.0);
        ch.delivered = cs.delivered;
        ch.batched = cs.batched;
        ch.flow_hits = cs.flow_hits;
        ch.listen_hits = cs.listen_hits;
        ch.scan_fallbacks = cs.scan_fallbacks;
        w.metrics.gauge_dec(Gauge::OpenChannels);
        sync_demux_gauges(w);
        w.hosts[h]
            .registry
            .record_channel_stats(key.local_port, tcb.remote(), cs);
    }
}

// ---------------------------------------------------------------------
// Application plumbing
// ---------------------------------------------------------------------

enum AppEvent {
    Connected,
    Data(Vec<u8>),
    SendSpace,
    PeerClosed,
}

fn app_event(w: &mut World, eng: &mut Eng, h: usize, cid: u32, ev: AppEvent) {
    let ops = {
        let Some(conn) = w.hosts[h].conns.get_mut(&cid) else {
            return;
        };
        let view = crate::app::AppView {
            now: eng.now(),
            send_space: conn.tcb.send_space(),
            pending_tx: conn.pending_tx.len(),
            local: Some(conn.tcb.local()),
            remote: Some(conn.tcb.remote()),
        };
        match ev {
            AppEvent::Connected => conn.app.on_connected(&view),
            AppEvent::Data(d) => conn.app.on_data(&d, &view),
            AppEvent::SendSpace => conn.app.on_send_space(&view),
            AppEvent::PeerClosed => conn.app.on_peer_closed(&view),
        }
    };
    apply_app_ops(w, eng, h, cid, ops);
}

fn apply_app_ops(w: &mut World, eng: &mut Eng, h: usize, cid: u32, ops: Vec<crate::app::AppOp>) {
    for op in ops {
        if !w.hosts[h].conns.contains_key(&cid) {
            return;
        }
        match op {
            crate::app::AppOp::Send(data) => {
                // Charge the write boundary + any copy the org performs.
                let cost = app_boundary_cost(w, h) + tx_copy_cost(w, h, data.len());
                w.hosts[h].cpu.charge(eng.now(), cost);
                w.hosts[h]
                    .conns
                    .get_mut(&cid)
                    .expect("checked")
                    .pending_tx
                    .extend(data);
                flush_conn_tx(w, eng, h, cid);
            }
            crate::app::AppOp::Close => {
                if let Some(conn) = w.hosts[h].conns.get_mut(&cid) {
                    conn.close_pending = true;
                }
                flush_conn_tx(w, eng, h, cid);
            }
            crate::app::AppOp::Abort => {
                let actions = {
                    let Some(conn) = w.hosts[h].conns.get_mut(&cid) else {
                        return;
                    };
                    conn.tcb.abort()
                };
                apply_tcp_actions(w, eng, h, cid, None, actions);
            }
        }
    }
}

/// Moves pending app bytes into the TCB and issues a deferred close.
fn flush_conn_tx(w: &mut World, eng: &mut Eng, h: usize, cid: u32) {
    let now = eng.now();
    loop {
        let (actions, progressed) = {
            let Some(conn) = w.hosts[h].conns.get_mut(&cid) else {
                return;
            };
            if conn.pending_tx.is_empty() {
                break;
            }
            let chunk: Vec<u8> = conn
                .pending_tx
                .iter()
                .copied()
                .take(conn.tcb.send_space())
                .collect();
            if chunk.is_empty() {
                break;
            }
            match conn.tcb.send(&chunk, now) {
                Ok((n, actions)) => {
                    conn.pending_tx.drain(..n);
                    (actions, n > 0)
                }
                Err(_) => break,
            }
        };
        apply_tcp_actions(w, eng, h, cid, None, actions);
        if !progressed {
            break;
        }
    }
    // Deferred close once everything is queued.
    let close_now = {
        let Some(conn) = w.hosts[h].conns.get_mut(&cid) else {
            return;
        };
        conn.close_pending && conn.pending_tx.is_empty() && conn.tcb.state().is_synchronized()
    };
    if close_now {
        let actions = {
            let conn = w.hosts[h].conns.get_mut(&cid).expect("checked");
            conn.close_pending = false;
            conn.tcb.close(now).unwrap_or_default()
        };
        apply_tcp_actions(w, eng, h, cid, None, actions);
    }
}

/// Re-delivers a send-space upcall to a connection's application — used by
/// the socket facade to kick a connection whose application has queued new
/// data outside an upcall (e.g. `Socket::send` between engine steps).
pub fn poke_conn(w: &mut World, eng: &mut Eng, host: usize, cid: u32) {
    if !w.hosts[host].conns.contains_key(&cid) {
        return;
    }
    let cost = app_boundary_cost(w, host);
    host_exec(w, eng, host, cost, move |w, eng| {
        app_event(w, eng, host, cid, AppEvent::SendSpace);
    });
}

/// Looks up a live connection id by its (local port, remote) key — the
/// socket facade's bridge from handles to connections.
pub fn find_conn(w: &World, host: usize, local_port: u16, remote: (Ipv4Addr, u16)) -> Option<u32> {
    w.hosts[host]
        .conn_index
        .get(&(local_port, remote.0, remote.1))
        .copied()
}

/// A terminated application: ignores every event.
struct ExitedApp;

impl crate::app::AppLogic for ExitedApp {}

/// The application owning connection `cid` on `host` exits while the
/// connection is open. Under the user-library organization "the registry
/// server inherits the connections and ensures that the protocol
/// specified delay period is maintained"; on an abnormal exit "the
/// protocol server issues a reset message to the remote peer" (§3.4).
/// Monolithic organizations close or abort in the kernel.
pub fn app_exit(w: &mut World, eng: &mut Eng, host: usize, cid: u32, abnormal: bool) {
    let now = eng.now();
    if !w.hosts[host].org.is_user_library() {
        let actions = {
            let Some(conn) = w.hosts[host].conns.get_mut(&cid) else {
                return;
            };
            conn.app = Box::new(ExitedApp);
            if abnormal {
                conn.tcb.abort()
            } else {
                conn.tcb.close(now).unwrap_or_default()
            }
        };
        apply_tcp_actions(w, eng, host, cid, None, actions);
        return;
    }
    // Tear the connection out of the library: cancel its timers, revoke
    // its channel (the shared region is reclaimed), and hand the TCP
    // state back to the registry.
    let Some(conn) = w.hosts[host].conns.remove(&cid) else {
        return;
    };
    // The registry tracks the connection under the tenant that opened it
    // (the channel's owner); default single-app conns resolve to the
    // host owner as before. Captured before the channel is destroyed.
    let owner = conn
        .chan
        .as_ref()
        .and_then(|ci| w.hosts[host].netio.channel_owner(ci.id))
        .unwrap_or_else(|| w.hosts[host].owner());
    let chan_stats = {
        let hostref = &mut w.hosts[host];
        for id in conn.timer_ids.values() {
            hostref.wheel.stop(*id);
        }
        let key = (conn.tcb.local().1, conn.tcb.remote().0, conn.tcb.remote().1);
        hostref.conn_index.remove(&key);
        let chan_stats = conn
            .chan
            .as_ref()
            .and_then(|ci| Some((ci.id, hostref.netio.channel_stats(ci.id)?)));
        if let Some(ci) = &conn.chan {
            hostref.chan_to_conn.remove(&ci.id);
            hostref.netio.destroy_channel(ci.id, OwnerTag(0));
            if let Nic::An1(nic) = &mut hostref.nic {
                nic.bqi_table
                    .free(ci.our_bqi, unp_buffers::BqiTable::KERNEL_OWNER);
            }
        }
        chan_stats
    };
    retire_conn_stats(w, host, &conn.tcb, chan_stats);
    resched_wheel(w, eng, host);
    // The registry's inheritance work (reset or orderly close) costs one
    // app↔server interaction plus its usual per-packet device path.
    let cost = w.costs.registry_rpc;
    let tcb = conn.tcb;
    host_exec(w, eng, host, cost, move |w, eng| {
        let now = eng.now();
        let actions = w.hosts[host]
            .registry
            .app_exit(owner, vec![tcb], abnormal, now);
        w.metrics.bump(Ctr::ConnectionsInherited);
        apply_registry_actions(w, eng, host, actions);
    });
}

/// The application process on `host` dies abruptly at the current
/// simulation time (the fault plan's [`crate::faults::Crash`] event;
/// also callable directly from tests). Everything the process owned is
/// reclaimed, in three stages (DESIGN.md §10):
///
/// 1. **World app state** — upcall targets are purged first so no event
///    reaches the dead process, and in-flight handshake channels are
///    destroyed (they can never be handed to an application now).
/// 2. **Registry (the trusted agent)** — established connections are
///    inherited and reset (RST to each peer), pending handshakes are
///    aborted, and the process's listening-port reservations released.
/// 3. **Kernel backstop** — [`NetIoModule::reclaim_owner`] and the BQI
///    table sweep anything still tagged with the dead owner (normally
///    nothing; every sweep hit is journaled, so a nonzero backstop count
///    in a trace points at a reclamation-ordering bug).
pub fn crash_host(w: &mut World, eng: &mut Eng, host: usize) {
    use unp_trace::ReclaimKind;
    let _attr = unp_trace::host_scope(host as u16);
    let h16 = host as u16;
    w.metrics.bump(Ctr::AppCrashes);
    unp_trace::emit_at(h16, None, || unp_trace::Event::FaultInject {
        kind: unp_trace::FaultKind::Crash,
        from: h16,
        to: h16,
    });
    let owner = w.hosts[host].owner();
    let owner32 = owner.0 as u32;
    let reclaim = |w: &mut World, kind: ReclaimKind, id: u32| {
        w.metrics.bump(Ctr::ResourceReclaims);
        unp_trace::emit_at(h16, None, || unp_trace::Event::ResourceReclaim {
            kind,
            owner: owner32,
            id,
        });
    };
    // Local listener factories die with the process in every organization.
    let mut ports: Vec<u16> = w.hosts[host].listeners.keys().copied().collect();
    ports.sort_unstable();
    w.hosts[host].listeners.clear();
    for &port in &ports {
        reclaim(w, ReclaimKind::Listener, port as u32);
    }
    if !w.hosts[host].org.is_user_library() {
        // Monolithic: protocol state lives in the kernel, which aborts
        // every connection the process had open; nothing else can leak.
        let mut cids: Vec<u32> = w.hosts[host].conns.keys().copied().collect();
        cids.sort_unstable();
        for cid in cids {
            reclaim(w, ReclaimKind::Connection, cid);
            app_exit(w, eng, host, cid, true);
        }
        return;
    }
    // Stage 1: world app state. Purged before any registry action runs so
    // the Failed/reset paths find no dead-process upcall target.
    w.hosts[host].pending_apps.clear();
    w.hosts[host].pending_write_sizes.clear();
    w.hosts[host].parked.clear();
    // In-flight handshake channels are destroyed now: they can never
    // reach an application. The registry aborts below then find
    // `hs_setup` already empty, so their Failed actions skip the channel
    // teardown (no double accounting), and a Complete already in flight
    // finds no setup and is dropped.
    let mut hss: Vec<u64> = w.hosts[host].hs_setup.keys().copied().collect();
    hss.sort_unstable();
    for hs in hss {
        let setup = w.hosts[host].hs_setup.remove(&hs).expect("collected above");
        w.hosts[host].hs_by_chan.remove(&setup.chan.id);
        w.hosts[host]
            .netio
            .destroy_channel(setup.chan.id, OwnerTag(0));
        if let Nic::An1(nic) = &mut w.hosts[host].nic {
            nic.bqi_table
                .free(setup.chan.our_bqi, unp_buffers::BqiTable::KERNEL_OWNER);
        }
        w.metrics.gauge_dec(Gauge::OpenChannels);
        sync_demux_gauges(w);
        reclaim(w, ReclaimKind::Channel, setup.chan.id.0);
    }
    // Stage 2a: established connections take the normal abnormal-exit
    // inheritance path — the registry resets each peer (§3.4).
    let mut cids: Vec<u32> = w.hosts[host].conns.keys().copied().collect();
    cids.sort_unstable();
    for cid in cids {
        reclaim(w, ReclaimKind::Connection, cid);
        app_exit(w, eng, host, cid, true);
    }
    // Stage 2b: the registry aborts the dead process's pending handshakes
    // (RST where synchronized) and releases its port reservations.
    let (actions, report) = w.hosts[host].registry.owner_died(owner);
    for &port in &report.listeners {
        reclaim(w, ReclaimKind::Port, port as u32);
    }
    for &(hs, _port) in &report.handshakes {
        reclaim(w, ReclaimKind::Handshake, hs as u32);
    }
    apply_registry_actions(w, eng, host, actions);
    // Stage 3: kernel backstop sweep.
    let swept = w.hosts[host].netio.reclaim_owner(owner);
    for (id, _ring) in swept {
        w.hosts[host].chan_to_conn.remove(&id);
        w.hosts[host].hs_by_chan.remove(&id);
        w.metrics.gauge_dec(Gauge::OpenChannels);
        sync_demux_gauges(w);
        reclaim(w, ReclaimKind::Channel, id.0);
    }
    let freed = match &mut w.hosts[host].nic {
        Nic::An1(nic) => nic.bqi_table.reclaim_owner(owner),
        Nic::Lance(_) => Vec::new(),
    };
    for slot in freed {
        reclaim(w, ReclaimKind::Bqi, slot as u32);
    }
    resched_wheel(w, eng, host);
}

/// One tenant's process on `host` dies abruptly; the host's other tenants
/// keep running. The reclamation mirrors [`crash_host`]'s three stages,
/// restricted to state tagged with `tenant` — unless the fault plan marks
/// the tenant [`wedged`](crate::faults::FaultPlan::tenant_wedged), in
/// which case the library-side sweep (stage 1 and the per-connection
/// inheritance RPCs) never runs and only the registry death notice plus
/// the kernel/BQI owner-reclaim backstop clean up after it. The isolation
/// oracle asserts both routes end with zero leaked resources.
pub fn crash_tenant(w: &mut World, eng: &mut Eng, host: usize, tenant: OwnerTag) {
    use unp_trace::ReclaimKind;
    let _attr = unp_trace::host_scope(host as u16);
    let h16 = host as u16;
    let wedged = w.faults.tenant_wedged(host, tenant.0);
    w.metrics.bump(Ctr::AppCrashes);
    unp_trace::emit_at(h16, None, || unp_trace::Event::FaultInject {
        kind: unp_trace::FaultKind::Crash,
        from: h16,
        to: h16,
    });
    let owner32 = tenant.0 as u32;
    let reclaim = |w: &mut World, kind: ReclaimKind, id: u32| {
        w.metrics.bump(Ctr::ResourceReclaims);
        unp_trace::emit_at(h16, None, || unp_trace::Event::ResourceReclaim {
            kind,
            owner: owner32,
            id,
        });
    };
    // The tenant's listener factories die with it.
    let mut ports: Vec<u16> = w.hosts[host]
        .listener_tenants
        .iter()
        .filter(|(_, &t)| t == tenant)
        .map(|(&p, _)| p)
        .collect();
    ports.sort_unstable();
    for &port in &ports {
        w.hosts[host].listeners.remove(&port);
        w.hosts[host].listener_tenants.remove(&port);
        reclaim(w, ReclaimKind::Listener, port as u32);
    }
    if !wedged {
        // Stage 1: the library sweep. Pending-app state for the tenant's
        // in-flight active opens is purged, its handshake channels are
        // destroyed, and each established connection takes the normal
        // abnormal-exit inheritance path (registry resets the peer).
        let mut hss: Vec<u64> = w.hosts[host]
            .pending_tenants
            .iter()
            .filter(|(_, &t)| t == tenant)
            .map(|(&hs, _)| hs)
            .collect();
        hss.sort_unstable();
        for hs in &hss {
            w.hosts[host].pending_apps.remove(hs);
            w.hosts[host].pending_write_sizes.remove(hs);
            w.hosts[host].pending_tenants.remove(hs);
        }
        let mut doomed_hs: Vec<u64> = w.hosts[host]
            .hs_setup
            .iter()
            .filter(|(_, s)| w.hosts[host].netio.channel_owner(s.chan.id) == Some(tenant))
            .map(|(&hs, _)| hs)
            .collect();
        doomed_hs.sort_unstable();
        for hs in doomed_hs {
            let setup = w.hosts[host].hs_setup.remove(&hs).expect("collected above");
            w.hosts[host].hs_by_chan.remove(&setup.chan.id);
            w.hosts[host].parked.remove(&setup.key);
            w.hosts[host]
                .netio
                .destroy_channel(setup.chan.id, OwnerTag(0));
            if let Nic::An1(nic) = &mut w.hosts[host].nic {
                nic.bqi_table
                    .free(setup.chan.our_bqi, unp_buffers::BqiTable::KERNEL_OWNER);
            }
            w.metrics.gauge_dec(Gauge::OpenChannels);
            sync_demux_gauges(w);
            reclaim(w, ReclaimKind::Channel, setup.chan.id.0);
        }
        let mut cids: Vec<u32> = w.hosts[host]
            .conns
            .iter()
            .filter(|(_, c)| {
                c.chan
                    .as_ref()
                    .and_then(|ci| w.hosts[host].netio.channel_owner(ci.id))
                    == Some(tenant)
            })
            .map(|(&cid, _)| cid)
            .collect();
        cids.sort_unstable();
        for cid in cids {
            reclaim(w, ReclaimKind::Connection, cid);
            app_exit(w, eng, host, cid, true);
        }
    }
    // Stage 2: the registry's death notice — abort the tenant's pending
    // handshakes, release its port reservations.
    let (actions, report) = w.hosts[host].registry.owner_died(tenant);
    for &port in &report.listeners {
        reclaim(w, ReclaimKind::Port, port as u32);
    }
    for &(hs, _port) in &report.handshakes {
        reclaim(w, ReclaimKind::Handshake, hs as u32);
    }
    apply_registry_actions(w, eng, host, actions);
    // Stage 3: kernel backstop sweep. For a wedged tenant this is the
    // only thing standing between its channels and a leak; the world-side
    // records of any swept connection are dropped here too (their upcall
    // target is gone, their timers must not fire into revoked caps), and
    // their TCBs are handed to the registry, which resets each peer on
    // the dead tenant's behalf — inheritance from the kernel sweep, not
    // from the (wedged) library.
    let swept = w.hosts[host].netio.reclaim_owner(tenant);
    let mut orphan_tcbs: Vec<Tcb> = Vec::new();
    for (id, _ring) in swept {
        if let Some(cid) = w.hosts[host].chan_to_conn.remove(&id) {
            if let Some(conn) = w.hosts[host].conns.remove(&cid) {
                for tid in conn.timer_ids.values() {
                    w.hosts[host].wheel.stop(*tid);
                }
                let key = (conn.tcb.local().1, conn.tcb.remote().0, conn.tcb.remote().1);
                w.hosts[host].conn_index.remove(&key);
                w.hosts[host].parked.remove(&key);
                retire_conn_stats(w, host, &conn.tcb, None);
                w.metrics.bump(Ctr::ConnectionsClosed);
                orphan_tcbs.push(conn.tcb);
            }
        }
        if let Some(hs) = w.hosts[host].hs_by_chan.remove(&id) {
            if let Some(setup) = w.hosts[host].hs_setup.remove(&hs) {
                w.hosts[host].parked.remove(&setup.key);
            }
        }
        w.metrics.gauge_dec(Gauge::OpenChannels);
        sync_demux_gauges(w);
        reclaim(w, ReclaimKind::Channel, id.0);
    }
    if !orphan_tcbs.is_empty() {
        let now = eng.now();
        for _ in &orphan_tcbs {
            w.metrics.bump(Ctr::ConnectionsInherited);
        }
        let actions = w.hosts[host]
            .registry
            .app_exit(tenant, orphan_tcbs, true, now);
        apply_registry_actions(w, eng, host, actions);
    }
    let freed = match &mut w.hosts[host].nic {
        Nic::An1(nic) => nic.bqi_table.reclaim_owner(tenant),
        Nic::Lance(_) => Vec::new(),
    };
    for slot in freed {
        reclaim(w, ReclaimKind::Bqi, slot as u32);
    }
    resched_wheel(w, eng, host);
}

// ---------------------------------------------------------------------
// Timer wheel ↔ engine coupling
// ---------------------------------------------------------------------

fn resched_wheel(w: &mut World, eng: &mut Eng, h: usize) {
    let next = w.hosts[h].wheel.next_deadline();
    match (next, w.hosts[h].wheel_event) {
        (Some(d), Some((cur, _))) if d == cur => {}
        (Some(d), prev) => {
            if let Some((_, ev)) = prev {
                eng.cancel(ev);
            }
            let ev = eng.at(d, move |w, eng| wheel_fire(w, eng, h));
            w.hosts[h].wheel_event = Some((d, ev));
        }
        (None, Some((_, ev))) => {
            eng.cancel(ev);
            w.hosts[h].wheel_event = None;
        }
        (None, None) => {}
    }
}

fn wheel_fire(w: &mut World, eng: &mut Eng, h: usize) {
    let _attr = unp_trace::host_scope(h as u16);
    w.hosts[h].wheel_event = None;
    let now = eng.now();
    let mut fired = Vec::new();
    w.hosts[h].wheel.advance(now, &mut fired);
    for token in fired {
        match token {
            TimerToken::Conn(cid, t) => {
                let actions = {
                    let Some(conn) = w.hosts[h].conns.get_mut(&cid) else {
                        continue;
                    };
                    conn.timer_ids.remove(&t);
                    conn.tcb.on_timer(t, now)
                };
                apply_tcp_actions(w, eng, h, cid, None, actions);
            }
            TimerToken::Registry(hs, t) => {
                w.hosts[h].reg_timers.remove(&(hs, t));
                let actions = w.hosts[h].registry.on_timer(HsId(hs), t, now);
                apply_registry_actions(w, eng, h, actions);
            }
        }
    }
    resched_wheel(w, eng, h);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{BulkSender, EchoApp, PingPongApp, SinkApp, TransferStats};

    const ALL_ORGS: [OrgKind; 5] = [
        OrgKind::InKernel,
        OrgKind::SingleServer,
        OrgKind::SingleServerMsg,
        OrgKind::DedicatedServer,
        OrgKind::UserLibrary,
    ];

    fn run_transfer(
        network: Network,
        org: OrgKind,
        total: u64,
        chunk: usize,
    ) -> (World, std::rc::Rc<std::cell::RefCell<TransferStats>>) {
        let (mut w, mut eng) = build_two_hosts(network, org);
        let stats = TransferStats::new_shared();
        let st = std::rc::Rc::clone(&stats);
        listen(
            &mut w,
            1,
            80,
            TcpConfig::default(),
            Box::new(move || Box::new(SinkApp::new(std::rc::Rc::clone(&st)))),
        );
        connect(
            &mut w,
            &mut eng,
            0,
            (Ipv4Addr::new(10, 0, 0, 2), 80),
            TcpConfig::default(),
            Box::new(BulkSender::new(total, chunk)),
            chunk,
        );
        assert!(eng.run(&mut w, 5_000_000), "simulation did not drain");
        (w, stats)
    }

    #[test]
    fn transfer_completes_under_every_org_on_ethernet() {
        for org in ALL_ORGS {
            let (w, stats) = run_transfer(Network::Ethernet, org, 100_000, 4096);
            let s = stats.borrow();
            assert_eq!(s.bytes_received, 100_000, "{org:?} lost data");
            assert!(s.peer_closed, "{org:?} missed FIN");
            assert!(!s.reset, "{org:?} reset");
            assert_eq!(w.metrics.get(Ctr::TxTemplateRejections), 0);
        }
    }

    #[test]
    fn transfer_completes_under_every_org_on_an1() {
        for org in ALL_ORGS {
            let (w, stats) = run_transfer(Network::An1, org, 100_000, 4096);
            let s = stats.borrow();
            assert_eq!(s.bytes_received, 100_000, "{org:?} lost data on AN1");
            assert!(!s.reset, "{org:?} reset");
            let _ = w;
        }
    }

    #[test]
    fn user_library_actually_uses_its_mechanisms() {
        let (w, _stats) = run_transfer(Network::Ethernet, OrgKind::UserLibrary, 200_000, 4096);
        // Frames flowed through channels, and batching happened.
        assert!(w.metrics.get(Ctr::ChDeliveries) > 50);
        assert!(
            w.hosts[1].netio.default_deliveries > 0,
            "handshake via registry"
        );
        assert_eq!(w.metrics.get(Ctr::TxTemplateRejections), 0);
    }

    #[test]
    fn an1_hardware_demux_is_used_for_data() {
        let (w, _stats) = run_transfer(Network::An1, OrgKind::UserLibrary, 200_000, 4096);
        assert!(
            w.metrics.get(Ctr::ChDeliveries) > 50,
            "hardware path unused"
        );
        // On AN1 the data path must not fall back to software filters:
        // deliveries arrive via BQI rings.
        if let Nic::An1(nic) = &w.hosts[1].nic {
            assert!(nic.rx_frames > 50);
        } else {
            panic!("expected AN1 nic");
        }
    }

    #[test]
    fn ping_pong_works_under_every_org() {
        for org in ALL_ORGS {
            let (mut w, mut eng) = build_two_hosts(Network::Ethernet, org);
            let stats = TransferStats::new_shared();
            listen(
                &mut w,
                1,
                80,
                TcpConfig::low_latency(),
                Box::new(|| Box::new(EchoApp)),
            );
            connect(
                &mut w,
                &mut eng,
                0,
                (Ipv4Addr::new(10, 0, 0, 2), 80),
                TcpConfig::low_latency(),
                Box::new(PingPongApp::new(512, 5, std::rc::Rc::clone(&stats))),
                512,
            );
            assert!(eng.run(&mut w, 2_000_000), "{org:?} did not drain");
            let s = stats.borrow();
            assert_eq!(s.rtts.len(), 5, "{org:?} rounds incomplete");
            assert!(s.rtts.iter().all(|&r| r > 0));
        }
    }

    #[test]
    fn faster_orgs_have_lower_latency() {
        let mean_rtt = |org| {
            let (mut w, mut eng) = build_two_hosts(Network::Ethernet, org);
            let stats = TransferStats::new_shared();
            listen(
                &mut w,
                1,
                80,
                TcpConfig::low_latency(),
                Box::new(|| Box::new(EchoApp)),
            );
            connect(
                &mut w,
                &mut eng,
                0,
                (Ipv4Addr::new(10, 0, 0, 2), 80),
                TcpConfig::low_latency(),
                Box::new(PingPongApp::new(1, 10, std::rc::Rc::clone(&stats))),
                1,
            );
            eng.run(&mut w, 2_000_000);
            let m = stats.borrow().mean_rtt().expect("rtts measured");
            m
        };
        let ultrix = mean_rtt(OrgKind::InKernel);
        let ours = mean_rtt(OrgKind::UserLibrary);
        let mach = mean_rtt(OrgKind::SingleServer);
        let dedicated = mean_rtt(OrgKind::DedicatedServer);
        assert!(
            ultrix < ours,
            "paper: Ultrix beats the library ({ultrix} vs {ours})"
        );
        assert!(
            ours < mach,
            "paper: the library beats Mach/UX ({ours} vs {mach})"
        );
        assert!(mach < dedicated, "dedicated servers are worst");
    }

    #[test]
    fn listener_vanished_mid_handshake_resets_peer_and_reclaims() {
        let (mut w, mut eng) = build_two_hosts(Network::Ethernet, OrgKind::UserLibrary);
        let stats = TransferStats::new_shared();
        let st = std::rc::Rc::clone(&stats);
        listen(
            &mut w,
            1,
            80,
            TcpConfig::default(),
            Box::new(move || Box::new(SinkApp::new(std::rc::Rc::clone(&st)))),
        );
        connect(
            &mut w,
            &mut eng,
            0,
            (Ipv4Addr::new(10, 0, 0, 2), 80),
            TcpConfig::default(),
            Box::new(BulkSender::new(10_000, 4096)),
            4096,
        );
        // Step until the server's handshake enters completion, then tear
        // the listener down in the window before `finalize_user_conn`
        // runs — the race the silent `// listener vanished` return used
        // to swallow.
        let mut steps = 0;
        while !w.hosts[1].hs_setup.values().any(|s| s.completing)
            && eng.step(&mut w)
            && steps < 1_000_000
        {
            steps += 1;
        }
        assert!(
            w.hosts[1].hs_setup.values().any(|s| s.completing),
            "handshake never reached completion"
        );
        w.hosts[1].listeners.clear();
        assert!(eng.run(&mut w, 5_000_000), "did not drain");

        assert_eq!(w.metrics.get(Ctr::ListenerVanished), 1);
        assert!(w.metrics.get(Ctr::ResourceReclaims) >= 1);
        // The activated channel was released, the registry no longer
        // tracks the connection, and the peer was reset (its conn torn
        // down) instead of hanging half-open.
        assert_eq!(w.hosts[1].netio.channel_count(), 0);
        assert_eq!(w.hosts[1].registry.tracked(), 0);
        assert!(w.hosts[0].conns.is_empty(), "peer never saw the RST");
        assert_eq!(w.metrics.gauge(Gauge::OpenChannels), 0);
        assert_eq!(stats.borrow().bytes_received, 0, "no app ever ran");
    }
}
