//! `unp-core` — the paper's system, assembled.
//!
//! This crate wires the substrate crates into complete simulated hosts and
//! implements **all** the protocol organizations of the paper's Figure 1:
//!
//! * [`OrgKind::InKernel`] — the monolithic in-kernel stack (Ultrix 4.2A in
//!   the paper's measurements);
//! * [`OrgKind::SingleServer`] — the Mach 3.0 + UX single-server stack with
//!   the network device mapped into the server;
//! * [`OrgKind::SingleServerMsg`] — the variant with in-kernel device
//!   management behind a message interface ("the performance of this
//!   variant is lower than the one with the mapped device");
//! * [`OrgKind::DedicatedServer`] — a separate server per protocol stack
//!   (the organization the paper argues is worst: "the critical
//!   send/receive path ... could incur excessive domain-switching
//!   overheads");
//! * [`OrgKind::UserLibrary`] — **the paper's contribution**: the protocol
//!   library linked into the application, the trusted registry server, and
//!   the in-kernel network I/O module, with the registry bypassed on the
//!   data path.
//!
//! Every organization runs the *same* `unp-tcp`/`unp-proto` protocol code —
//! the property that makes the paper's comparison "apples to apples"; they
//! differ only in which structural costs (traps, IPCs, copies, signals,
//! context switches) the [`unp_sim::CostModel`] charges along the path, and
//! in which *mechanisms* (packet filters, BQI rings, header templates,
//! shared regions) the data path actually exercises.

pub mod app;
pub mod experiments;
pub mod faults;
pub mod pcap;
pub mod rrp;
pub mod sockets;
pub mod world;

pub use app::{AppLogic, AppOp, AppView, BulkSender, EchoApp, PingPongApp, SinkApp, TransferStats};
pub use faults::{
    ByzantineKind, ByzantineSchedule, Crash, FaultPlan, LinkFaults, Outage, RingPressure,
};
pub use world::{
    build_hosts, build_two_hosts, crash_host, crash_tenant, install_faults, sync_tenant_scopes,
    Eng, Host, Network, OrgKind, World,
};

/// Congestion-control selection for the ablation experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CongestionControlChoice {
    /// No congestion window (the 1993 stacks' LAN configuration).
    Off,
    /// Slow start + congestion avoidance, window collapse on loss.
    Tahoe,
    /// Tahoe plus fast recovery.
    Reno,
}
