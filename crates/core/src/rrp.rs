//! `rrp` — a VMTP-flavored request/response transport library.
//!
//! The paper's motivation section: "the need for an efficient transport for
//! distributed systems was a factor in the development of request/response
//! protocols in lieu of existing byte-stream protocols such as TCP.
//! Experience with specialized protocols shows that they achieve remarkably
//! low latencies. However these protocols do not always deliver the highest
//! throughput. In systems that need to support both throughput-intensive
//! and latency-critical applications, it is realistic to expect both types
//! of protocols to co-exist."
//!
//! `rrp` is that second, coexisting protocol library: a transaction
//! transport in the spirit of VMTP/Birrell-Nelson RPC. One message carries
//! a whole request; the *reply acknowledges the request* (no setup phase,
//! no per-message ACK on the common path); an explicit ACK closes the
//! transaction only when the client is idle. Retransmission uses a simple
//! per-transaction timer, and duplicate suppression keeps at-most-once
//! semantics per transaction id.
//!
//! It is deliberately window-less: a client has one outstanding request —
//! exactly why such protocols lose on bulk throughput, which the
//! `rrp_vs_tcp` ablation benchmark quantifies.

use std::collections::HashMap;

use unp_wire::Ipv4Addr;

/// Nanoseconds.
pub type Nanos = u64;

/// IP protocol number `rrp` rides on (unassigned space).
pub const RRP_PROTOCOL: u8 = 81;

/// Wire message types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RrpKind {
    /// A request carrying a transaction id and payload.
    Request,
    /// The reply; implicitly acknowledges the request.
    Reply,
    /// Explicit acknowledgment of a reply (lets the server free state).
    Ack,
}

impl RrpKind {
    fn to_u8(self) -> u8 {
        match self {
            RrpKind::Request => 1,
            RrpKind::Reply => 2,
            RrpKind::Ack => 3,
        }
    }

    fn from_u8(v: u8) -> Option<RrpKind> {
        match v {
            1 => Some(RrpKind::Request),
            2 => Some(RrpKind::Reply),
            3 => Some(RrpKind::Ack),
            _ => None,
        }
    }
}

/// An `rrp` message: 8-byte header (kind, pad, client port, server port,
/// transaction id) + payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RrpMessage {
    /// Message type.
    pub kind: RrpKind,
    /// Client-side port.
    pub client_port: u16,
    /// Server-side port.
    pub server_port: u16,
    /// Transaction identifier (monotonic per client).
    pub xid: u16,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// Header length.
pub const RRP_HEADER_LEN: usize = 8;

impl RrpMessage {
    /// Serializes to wire bytes.
    pub fn build(&self) -> Vec<u8> {
        let mut v = vec![0u8; RRP_HEADER_LEN + self.payload.len()];
        v[0] = self.kind.to_u8();
        v[2..4].copy_from_slice(&self.client_port.to_be_bytes());
        v[4..6].copy_from_slice(&self.server_port.to_be_bytes());
        v[6..8].copy_from_slice(&self.xid.to_be_bytes());
        v[RRP_HEADER_LEN..].copy_from_slice(&self.payload);
        v
    }

    /// Parses from wire bytes.
    pub fn parse(b: &[u8]) -> Option<RrpMessage> {
        if b.len() < RRP_HEADER_LEN {
            return None;
        }
        Some(RrpMessage {
            kind: RrpKind::from_u8(b[0])?,
            client_port: u16::from_be_bytes([b[2], b[3]]),
            server_port: u16::from_be_bytes([b[4], b[5]]),
            xid: u16::from_be_bytes([b[6], b[7]]),
            payload: b[RRP_HEADER_LEN..].to_vec(),
        })
    }
}

/// Client-side actions for the hosting glue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RrpClientAction {
    /// Transmit a message to the server address.
    Send(Ipv4Addr, RrpMessage),
    /// Arm the retransmission timer for an absolute deadline.
    SetTimer(Nanos),
    /// A reply arrived for the outstanding transaction.
    Reply(Vec<u8>),
    /// The transaction failed after all retries.
    Failed,
}

/// The client half: one outstanding transaction at a time.
pub struct RrpClient {
    port: u16,
    server: (Ipv4Addr, u16),
    next_xid: u16,
    outstanding: Option<(u16, Vec<u8>)>,
    retries: u32,
    max_retries: u32,
    rto: Nanos,
}

impl RrpClient {
    /// Creates a client talking to `server`.
    pub fn new(port: u16, server: (Ipv4Addr, u16), rto: Nanos) -> RrpClient {
        RrpClient {
            port,
            server,
            next_xid: 1,
            outstanding: None,
            retries: 0,
            max_retries: 5,
            rto,
        }
    }

    /// True if a transaction is in flight.
    pub fn busy(&self) -> bool {
        self.outstanding.is_some()
    }

    /// Issues a request. Panics if one is already outstanding (callers
    /// serialize — the protocol is single-transaction by design).
    pub fn call(&mut self, payload: Vec<u8>, now: Nanos) -> Vec<RrpClientAction> {
        assert!(self.outstanding.is_none(), "rrp client is single-call");
        let xid = self.next_xid;
        self.next_xid = self.next_xid.wrapping_add(1).max(1);
        self.outstanding = Some((xid, payload.clone()));
        self.retries = 0;
        vec![
            RrpClientAction::Send(
                self.server.0,
                RrpMessage {
                    kind: RrpKind::Request,
                    client_port: self.port,
                    server_port: self.server.1,
                    xid,
                    payload,
                },
            ),
            RrpClientAction::SetTimer(now + self.rto),
        ]
    }

    /// Handles an incoming message addressed to this client port.
    pub fn on_message(&mut self, msg: &RrpMessage, _now: Nanos) -> Vec<RrpClientAction> {
        let Some((xid, _)) = self.outstanding else {
            return Vec::new();
        };
        if msg.kind != RrpKind::Reply || msg.xid != xid || msg.client_port != self.port {
            return Vec::new(); // stale or misdirected
        }
        self.outstanding = None;
        // Idle client: explicitly ACK so the server can free state (a
        // following call would implicitly do it in full VMTP; we keep the
        // simple explicit form).
        vec![
            RrpClientAction::Send(
                self.server.0,
                RrpMessage {
                    kind: RrpKind::Ack,
                    client_port: self.port,
                    server_port: self.server.1,
                    xid,
                    payload: Vec::new(),
                },
            ),
            RrpClientAction::Reply(msg.payload.clone()),
        ]
    }

    /// Retransmission timer fired.
    pub fn on_timer(&mut self, now: Nanos) -> Vec<RrpClientAction> {
        let Some((xid, ref payload)) = self.outstanding else {
            return Vec::new();
        };
        self.retries += 1;
        if self.retries > self.max_retries {
            self.outstanding = None;
            return vec![RrpClientAction::Failed];
        }
        vec![
            RrpClientAction::Send(
                self.server.0,
                RrpMessage {
                    kind: RrpKind::Request,
                    client_port: self.port,
                    server_port: self.server.1,
                    xid,
                    payload: payload.clone(),
                },
            ),
            RrpClientAction::SetTimer(now + (self.rto << self.retries.min(4))),
        ]
    }
}

/// Server-side actions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RrpServerAction {
    /// Transmit a message to a client address.
    Send(Ipv4Addr, RrpMessage),
    /// Deliver a request to the service; the glue calls
    /// [`RrpServer::reply`] with the response payload.
    Deliver {
        /// Client address the request came from.
        client: (Ipv4Addr, u16),
        /// Transaction to answer.
        xid: u16,
        /// Request payload.
        payload: Vec<u8>,
    },
}

/// Per-transaction server state for duplicate suppression and reply
/// retransmission (at-most-once execution).
#[derive(Debug, Clone)]
enum TxnState {
    /// Executing; duplicates are dropped.
    InService,
    /// Replied; duplicates re-send this cached reply.
    Replied(Vec<u8>),
}

/// The server half: executes each transaction at most once.
pub struct RrpServer {
    port: u16,
    txns: HashMap<(Ipv4Addr, u16, u16), TxnState>,
}

impl RrpServer {
    /// Creates a server bound to `port`.
    pub fn new(port: u16) -> RrpServer {
        RrpServer {
            port,
            txns: HashMap::new(),
        }
    }

    /// Handles an incoming message from `src`.
    pub fn on_message(&mut self, src: Ipv4Addr, msg: &RrpMessage) -> Vec<RrpServerAction> {
        if msg.server_port != self.port {
            return Vec::new();
        }
        let key = (src, msg.client_port, msg.xid);
        match msg.kind {
            RrpKind::Request => match self.txns.get(&key) {
                None => {
                    self.txns.insert(key, TxnState::InService);
                    vec![RrpServerAction::Deliver {
                        client: (src, msg.client_port),
                        xid: msg.xid,
                        payload: msg.payload.clone(),
                    }]
                }
                Some(TxnState::InService) => Vec::new(), // duplicate while busy
                Some(TxnState::Replied(reply)) => vec![RrpServerAction::Send(
                    src,
                    RrpMessage {
                        kind: RrpKind::Reply,
                        client_port: msg.client_port,
                        server_port: self.port,
                        xid: msg.xid,
                        payload: reply.clone(),
                    },
                )],
            },
            RrpKind::Ack => {
                self.txns.remove(&key);
                Vec::new()
            }
            RrpKind::Reply => Vec::new(), // nonsensical at a server
        }
    }

    /// The service finished executing `xid` for `client`: emit the reply
    /// and cache it for duplicate requests.
    pub fn reply(
        &mut self,
        client: (Ipv4Addr, u16),
        xid: u16,
        payload: Vec<u8>,
    ) -> Vec<RrpServerAction> {
        let key = (client.0, client.1, xid);
        self.txns.insert(key, TxnState::Replied(payload.clone()));
        vec![RrpServerAction::Send(
            client.0,
            RrpMessage {
                kind: RrpKind::Reply,
                client_port: client.1,
                server_port: self.port,
                xid,
                payload,
            },
        )]
    }

    /// Transactions currently held (for tests).
    pub fn txn_count(&self) -> usize {
        self.txns.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const S: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn extract_send_c(actions: &[RrpClientAction]) -> Option<RrpMessage> {
        actions.iter().find_map(|a| match a {
            RrpClientAction::Send(_, m) => Some(m.clone()),
            _ => None,
        })
    }

    fn extract_send_s(actions: &[RrpServerAction]) -> Option<RrpMessage> {
        actions.iter().find_map(|a| match a {
            RrpServerAction::Send(_, m) => Some(m.clone()),
            _ => None,
        })
    }

    #[test]
    fn wire_roundtrip() {
        let m = RrpMessage {
            kind: RrpKind::Request,
            client_port: 7,
            server_port: 9,
            xid: 0x1234,
            payload: b"call".to_vec(),
        };
        assert_eq!(RrpMessage::parse(&m.build()), Some(m));
        assert_eq!(RrpMessage::parse(&[1, 2, 3]), None);
    }

    #[test]
    fn request_reply_ack_cycle() {
        let mut client = RrpClient::new(100, (S, 9), 1_000_000);
        let mut server = RrpServer::new(9);

        let actions = client.call(b"ping".to_vec(), 0);
        let req = extract_send_c(&actions).unwrap();
        assert_eq!(req.kind, RrpKind::Request);

        let sactions = server.on_message(C, &req);
        let RrpServerAction::Deliver {
            client: cl,
            xid,
            payload,
        } = &sactions[0]
        else {
            panic!("expected delivery");
        };
        assert_eq!(payload, b"ping");
        let reply_actions = server.reply(*cl, *xid, b"pong".to_vec());
        let reply = extract_send_s(&reply_actions).unwrap();

        let cactions = client.on_message(&reply, 10);
        assert!(cactions
            .iter()
            .any(|a| matches!(a, RrpClientAction::Reply(p) if p == b"pong")));
        let ack = extract_send_c(&cactions).unwrap();
        assert_eq!(ack.kind, RrpKind::Ack);
        assert!(!client.busy());

        server.on_message(C, &ack);
        assert_eq!(server.txn_count(), 0);
    }

    #[test]
    fn duplicate_request_resends_cached_reply_not_reexecute() {
        let mut server = RrpServer::new(9);
        let req = RrpMessage {
            kind: RrpKind::Request,
            client_port: 100,
            server_port: 9,
            xid: 1,
            payload: b"x".to_vec(),
        };
        let a1 = server.on_message(C, &req);
        assert!(matches!(a1[0], RrpServerAction::Deliver { .. }));
        // Duplicate while in service: dropped.
        assert!(server.on_message(C, &req).is_empty());
        server.reply((C, 100), 1, b"answer".to_vec());
        // Duplicate after reply: cached reply, no re-delivery.
        let a3 = server.on_message(C, &req);
        let m = extract_send_s(&a3).unwrap();
        assert_eq!(m.kind, RrpKind::Reply);
        assert_eq!(m.payload, b"answer");
    }

    #[test]
    fn client_retransmits_then_fails() {
        let mut client = RrpClient::new(100, (S, 9), 1_000_000);
        client.call(b"lost".to_vec(), 0);
        for i in 1..=5 {
            let actions = client.on_timer(i * 1_000_000);
            assert!(
                extract_send_c(&actions).is_some(),
                "retry {i} should retransmit"
            );
        }
        let actions = client.on_timer(99_000_000);
        assert_eq!(actions, vec![RrpClientAction::Failed]);
        assert!(!client.busy());
    }

    #[test]
    fn stale_reply_ignored() {
        let mut client = RrpClient::new(100, (S, 9), 1_000_000);
        client.call(b"a".to_vec(), 0);
        let stale = RrpMessage {
            kind: RrpKind::Reply,
            client_port: 100,
            server_port: 9,
            xid: 999,
            payload: vec![],
        };
        assert!(client.on_message(&stale, 1).is_empty());
        assert!(client.busy());
    }
}
