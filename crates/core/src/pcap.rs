//! pcap export: write captured simulation traffic in the classic
//! libpcap file format, openable in Wireshark/tcpdump.
//!
//! The simulated Ethernet frames are bit-exact Ethernet II, so standard
//! tools decode the whole stack (Ethernet → IPv4 → TCP) including the
//! checksums this reproduction computes for real. AN1 frames use a
//! user-reserved link type since the format is this project's
//! reconstruction.

use std::io::{self, Write};
use std::path::Path;

/// Link types for the pcap global header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkType {
    /// DLT_EN10MB — standard Ethernet.
    Ethernet,
    /// DLT_USER0 — our AN1 framing (dst/src/type/bqi/announce).
    An1,
}

impl LinkType {
    fn code(self) -> u32 {
        match self {
            LinkType::Ethernet => 1,
            LinkType::An1 => 147,
        }
    }
}

/// Serializes `(time, frame)` records into pcap bytes (little-endian,
/// microsecond timestamps, format version 2.4). Accepts any byte
/// container — `Vec<u8>` or the zero-copy [`unp_buffers::Frame`] handles
/// a capture tap holds.
pub fn to_pcap_bytes<B: AsRef<[u8]>>(frames: &[(u64, B)], linktype: LinkType) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        24 + frames
            .iter()
            .map(|(_, f)| 16 + f.as_ref().len())
            .sum::<usize>(),
    );
    // Global header.
    out.extend_from_slice(&0xa1b2_c3d4u32.to_le_bytes()); // magic
    out.extend_from_slice(&2u16.to_le_bytes()); // version major
    out.extend_from_slice(&4u16.to_le_bytes()); // version minor
    out.extend_from_slice(&0i32.to_le_bytes()); // thiszone
    out.extend_from_slice(&0u32.to_le_bytes()); // sigfigs
    out.extend_from_slice(&65535u32.to_le_bytes()); // snaplen
    out.extend_from_slice(&linktype.code().to_le_bytes());
    for (t_ns, frame) in frames {
        let frame = frame.as_ref();
        let sec = (t_ns / 1_000_000_000) as u32;
        let usec = ((t_ns % 1_000_000_000) / 1_000) as u32;
        out.extend_from_slice(&sec.to_le_bytes());
        out.extend_from_slice(&usec.to_le_bytes());
        out.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        out.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        out.extend_from_slice(frame);
    }
    out
}

/// Writes `(time, frame)` records to a pcap file at `path`.
pub fn write_pcap<B: AsRef<[u8]>>(
    path: impl AsRef<Path>,
    frames: &[(u64, B)],
    linktype: LinkType,
) -> io::Result<()> {
    let bytes = to_pcap_bytes(frames, linktype);
    let mut f = std::fs::File::create(path)?;
    f.write_all(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcap_layout_is_well_formed() {
        let frames = vec![
            (1_500_000_000u64, vec![0xaau8; 60]),
            (2_000_123_000u64, vec![0xbbu8; 100]),
        ];
        let bytes = to_pcap_bytes(&frames, LinkType::Ethernet);
        // Global header.
        assert_eq!(&bytes[0..4], &0xa1b2_c3d4u32.to_le_bytes());
        assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), 2);
        assert_eq!(u16::from_le_bytes([bytes[6], bytes[7]]), 4);
        assert_eq!(
            u32::from_le_bytes([bytes[20], bytes[21], bytes[22], bytes[23]]),
            1,
            "linktype Ethernet"
        );
        // First record header at offset 24.
        let sec = u32::from_le_bytes([bytes[24], bytes[25], bytes[26], bytes[27]]);
        let usec = u32::from_le_bytes([bytes[28], bytes[29], bytes[30], bytes[31]]);
        assert_eq!((sec, usec), (1, 500_000));
        let caplen = u32::from_le_bytes([bytes[32], bytes[33], bytes[34], bytes[35]]);
        assert_eq!(caplen, 60);
        // Second record follows the first's payload.
        let r2 = 24 + 16 + 60;
        let sec2 = u32::from_le_bytes([bytes[r2], bytes[r2 + 1], bytes[r2 + 2], bytes[r2 + 3]]);
        assert_eq!(sec2, 2);
        assert_eq!(bytes.len(), 24 + 16 + 60 + 16 + 100);
    }

    #[test]
    fn an1_uses_user_linktype() {
        let bytes = to_pcap_bytes::<Vec<u8>>(&[], LinkType::An1);
        assert_eq!(
            u32::from_le_bytes([bytes[20], bytes[21], bytes[22], bytes[23]]),
            147
        );
        assert_eq!(bytes.len(), 24, "header only");
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("unp_pcap_test.pcap");
        let frames = vec![(0u64, vec![1, 2, 3, 4])];
        write_pcap(&dir, &frames, LinkType::Ethernet).unwrap();
        let read = std::fs::read(&dir).unwrap();
        assert_eq!(read, to_pcap_bytes(&frames, LinkType::Ethernet));
        let _ = std::fs::remove_file(&dir);
    }
}
