//! Deterministic full-stack fault injection.
//!
//! A [`FaultPlan`] is a seeded schedule of link-level faults (drop,
//! duplicate, corrupt, reorder), outage windows, per-host receive-ring
//! pressure, and application crashes, threaded through the world's link
//! delivery and host stepping by [`crate::world::install_faults`]. The
//! same seed always produces the same fault sequence, so a faulted run
//! can be replayed exactly — the differential soak test depends on it.
//!
//! The per-link vocabulary mirrors the `ChannelModel` used by the TCP
//! crate's two-stack loopback harness (tier-2 property tests), so both
//! tiers describe impairments in the same terms; the world-level plan
//! adds what a single loopback pipe cannot express: per-direction
//! overrides, scheduled outages, ring pressure, and process crashes.

use unp_sim::Nanos;

/// Per-link fault probabilities (applied per delivered frame copy).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFaults {
    /// Probability the frame is silently lost.
    pub drop: f64,
    /// Probability the frame is delivered twice.
    pub duplicate: f64,
    /// Probability one payload byte is flipped in flight.
    pub corrupt: f64,
    /// Probability a delivered copy is delayed past later traffic.
    pub reorder: f64,
    /// Maximum extra delay applied to a reordered copy (uniform draw).
    pub reorder_window: Nanos,
}

impl LinkFaults {
    /// No impairment.
    pub fn clean() -> Self {
        LinkFaults {
            drop: 0.0,
            duplicate: 0.0,
            corrupt: 0.0,
            reorder: 0.0,
            reorder_window: 0,
        }
    }

    /// The lossy preset shared with the loopback `ChannelModel`: loss at
    /// `loss`, duplication and corruption at half that, plus reordering
    /// within a 300 µs window.
    pub fn lossy(loss: f64) -> Self {
        LinkFaults {
            drop: loss,
            duplicate: loss / 2.0,
            corrupt: loss / 2.0,
            reorder: loss / 2.0,
            reorder_window: 300_000,
        }
    }
}

/// A scheduled window during which matching frames are dropped outright
/// (a cable pull / switch reboot, not random loss).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outage {
    /// Restrict to frames sent by this host (None = any sender).
    pub from: Option<usize>,
    /// Restrict to frames received by this host (None = any receiver).
    pub to: Option<usize>,
    /// Window start (inclusive).
    pub start: Nanos,
    /// Window end (exclusive).
    pub end: Nanos,
}

/// A window during which a host's receive rings behave as if the
/// consumer stalled: effective capacity is clamped to `cap` slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingPressure {
    /// The slow-consumer host.
    pub host: usize,
    /// Window start (inclusive).
    pub start: Nanos,
    /// Window end (exclusive).
    pub end: Nanos,
    /// Clamped ring capacity during the window.
    pub cap: usize,
}

/// A scheduled application-process crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crash {
    /// The host whose application process dies.
    pub host: usize,
    /// Simulation time of the crash.
    pub at: Nanos,
}

/// What a hostile (byzantine) tenant does during its window. Every kind
/// is driven by the schedule alone — no RNG draws — so a plan with
/// byzantine schedules but nothing else replays byte-identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ByzantineKind {
    /// The tenant's library never wakes up to consume: its receive
    /// rings fill until the per-tenant ring-slot quota starts dropping.
    RingFlood,
    /// Every `period` ns the tenant transmits a burst of `burst` valid
    /// frames, burning shared NIC/tx capacity until its transmit credit
    /// runs dry.
    TransmitFlood { burst: usize, period: Nanos },
    /// Every `period` ns the tenant replays a revoked capability and
    /// fires a template-violating transmit on a valid one — a storm of
    /// kernel check failures.
    CapabilityStorm { period: Nanos },
    /// Every `period` ns the tenant re-announces a stale BQI for one of
    /// its channels to the peer host.
    StaleBqi { period: Nanos },
    /// When crashed, the tenant's library sweep never runs; only the
    /// registry death notice and the kernel owner-reclaim backstop may
    /// clean up after it.
    WedgedRegistry,
}

/// One hostile tenant's scheduled behaviour window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ByzantineSchedule {
    /// The host whose net I/O module the tenant lives on.
    pub host: usize,
    /// The misbehaving tenant id.
    pub tenant: u64,
    /// What it does.
    pub kind: ByzantineKind,
    /// Window start (inclusive).
    pub start: Nanos,
    /// Window end (exclusive).
    pub end: Nanos,
}

impl ByzantineSchedule {
    /// Whether the window covers `now`.
    pub fn active(&self, now: Nanos) -> bool {
        now >= self.start && now < self.end
    }
}

/// What happens to one delivered copy of a frame.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FrameFate {
    /// Lost to a scheduled outage window.
    pub outage: bool,
    /// Lost to random drop.
    pub drop: bool,
    /// One payload byte is flipped before delivery.
    pub corrupt: bool,
    /// Extra arrival delay per delivered copy: one entry normally, two
    /// when duplicated; a nonzero entry means that copy was reordered.
    pub delays: Vec<Nanos>,
}

/// A seeded full-stack fault schedule. Default construction
/// ([`FaultPlan::none`]) is fully disabled: the world behaves
/// byte-identically to a build without fault injection.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Master switch; when false no RNG draw ever happens.
    pub enabled: bool,
    /// Fault probabilities applied to links without an override.
    pub default_link: LinkFaults,
    /// Per-(sender, receiver) overrides — asymmetric schedules.
    pub links: Vec<((usize, usize), LinkFaults)>,
    /// Scheduled outage windows.
    pub outages: Vec<Outage>,
    /// Scheduled slow-consumer windows.
    pub pressure: Vec<RingPressure>,
    /// Scheduled application crashes.
    pub crashes: Vec<Crash>,
    /// Scheduled byzantine-tenant behaviour windows.
    pub byzantine: Vec<ByzantineSchedule>,
    rng: XorShift,
}

impl FaultPlan {
    /// A disabled plan (the world default).
    pub fn none() -> Self {
        FaultPlan {
            enabled: false,
            default_link: LinkFaults::clean(),
            links: Vec::new(),
            outages: Vec::new(),
            pressure: Vec::new(),
            crashes: Vec::new(),
            byzantine: Vec::new(),
            rng: XorShift::new(0),
        }
    }

    /// An enabled plan with no impairment configured — the base for
    /// building custom schedules.
    pub fn clean(seed: u64) -> Self {
        FaultPlan {
            enabled: true,
            rng: XorShift::new(seed),
            ..FaultPlan::none()
        }
    }

    /// An enabled plan applying [`LinkFaults::lossy`] to every link.
    pub fn lossy(seed: u64, loss: f64) -> Self {
        FaultPlan {
            default_link: LinkFaults::lossy(loss),
            ..FaultPlan::clean(seed)
        }
    }

    /// Sets an asymmetric per-direction override.
    pub fn set_link(&mut self, from: usize, to: usize, faults: LinkFaults) {
        if let Some(e) = self.links.iter_mut().find(|(k, _)| *k == (from, to)) {
            e.1 = faults;
        } else {
            self.links.push(((from, to), faults));
        }
    }

    fn link_for(&self, from: usize, to: usize) -> LinkFaults {
        self.links
            .iter()
            .find(|(k, _)| *k == (from, to))
            .map(|(_, f)| *f)
            .unwrap_or(self.default_link)
    }

    fn in_outage(&self, from: usize, to: usize, now: Nanos) -> bool {
        self.outages.iter().any(|o| {
            o.from.is_none_or(|f| f == from)
                && o.to.is_none_or(|t| t == to)
                && now >= o.start
                && now < o.end
        })
    }

    /// Decides the fate of one frame sent `from` → `to` at `now`. Draw
    /// order matches the loopback model: loss, corrupt, duplicate, then
    /// per-copy reorder delay.
    pub fn fate(&mut self, from: usize, to: usize, now: Nanos) -> FrameFate {
        let mut fate = FrameFate::default();
        if !self.enabled {
            fate.delays.push(0);
            return fate;
        }
        if self.in_outage(from, to, now) {
            fate.outage = true;
            return fate;
        }
        let lf = self.link_for(from, to);
        if self.rng.chance(lf.drop) {
            fate.drop = true;
            return fate;
        }
        fate.corrupt = self.rng.chance(lf.corrupt);
        let copies = if self.rng.chance(lf.duplicate) { 2 } else { 1 };
        for _ in 0..copies {
            let delay = if self.rng.chance(lf.reorder) && lf.reorder_window > 0 {
                1 + self.rng.below(lf.reorder_window)
            } else {
                0
            };
            fate.delays.push(delay);
        }
        fate
    }

    /// A deterministic index draw in `[0, span)` — used to pick the
    /// corrupted byte.
    pub fn pick(&mut self, span: usize) -> usize {
        if span == 0 {
            return 0;
        }
        self.rng.below(span as u64) as usize
    }

    /// The clamped ring capacity for `host` at `now`, if a pressure
    /// window is active.
    pub fn ring_cap(&self, host: usize, now: Nanos) -> Option<usize> {
        if !self.enabled {
            return None;
        }
        self.pressure
            .iter()
            .find(|p| p.host == host && now >= p.start && now < p.end)
            .map(|p| p.cap)
    }

    /// Whether `tenant` on `host` is in an active window of `kind`.
    /// Makes no RNG draw — byzantine behaviour is schedule-driven only.
    pub fn byzantine_active(
        &self,
        host: usize,
        tenant: u64,
        kind: ByzantineKind,
        now: Nanos,
    ) -> bool {
        self.enabled
            && self
                .byzantine
                .iter()
                .any(|b| b.host == host && b.tenant == tenant && b.kind == kind && b.active(now))
    }

    /// Whether `tenant` on `host` is ring-flooding at `now` (its library
    /// wakeups are suppressed so rings fill).
    pub fn ring_flood_active(&self, host: usize, tenant: u64, now: Nanos) -> bool {
        self.byzantine_active(host, tenant, ByzantineKind::RingFlood, now)
    }

    /// Whether `tenant` on `host` is marked wedged: its library sweep is
    /// skipped on crash and reclamation falls to the registry/kernel
    /// backstops. Window-independent by design — wedging is a property
    /// of the process, not of a time slice.
    pub fn tenant_wedged(&self, host: usize, tenant: u64) -> bool {
        self.enabled
            && self.byzantine.iter().any(|b| {
                b.host == host && b.tenant == tenant && b.kind == ByzantineKind::WedgedRegistry
            })
    }

    /// All byzantine schedules on `host` whose kind carries a period —
    /// the world turns each into a deterministic tick train.
    pub fn byzantine_on(&self, host: usize) -> Vec<ByzantineSchedule> {
        if !self.enabled {
            return Vec::new();
        }
        self.byzantine
            .iter()
            .filter(|b| b.host == host)
            .copied()
            .collect()
    }
}

/// xorshift64* — the same tiny deterministic PRNG the loopback
/// `ChannelModel` uses, so identical seeds behave comparably across
/// tiers.
#[derive(Debug, Clone)]
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed ^ 0x9E37_79B9_7F4A_7C15)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0.max(1);
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        (self.next() as f64 / u64::MAX as f64) < p
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_never_faults() {
        let mut p = FaultPlan::none();
        for t in 0..1000 {
            let f = p.fate(0, 1, t * 1000);
            assert_eq!(
                f,
                FrameFate {
                    delays: vec![0],
                    ..FrameFate::default()
                }
            );
        }
        assert_eq!(p.ring_cap(0, 0), None);
    }

    #[test]
    fn same_seed_same_fates() {
        let run = || {
            let mut p = FaultPlan::lossy(42, 0.2);
            (0..500).map(|t| p.fate(0, 1, t)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
        // A different seed produces a different sequence.
        let mut q = FaultPlan::lossy(43, 0.2);
        let other: Vec<_> = (0..500).map(|t| q.fate(0, 1, t)).collect();
        assert_ne!(run(), other);
    }

    #[test]
    fn lossy_plan_exercises_every_fault_kind() {
        let mut p = FaultPlan::lossy(7, 0.3);
        let fates: Vec<_> = (0..2000).map(|t| p.fate(0, 1, t)).collect();
        assert!(fates.iter().any(|f| f.drop));
        assert!(fates.iter().any(|f| f.corrupt));
        assert!(fates.iter().any(|f| f.delays.len() == 2));
        assert!(fates.iter().any(|f| f.delays.iter().any(|&d| d > 0)));
        assert!(fates.iter().any(|f| !f.drop && f.delays == vec![0]));
    }

    #[test]
    fn outage_window_beats_link_probabilities() {
        let mut p = FaultPlan::clean(1);
        p.outages.push(Outage {
            from: Some(0),
            to: None,
            start: 100,
            end: 200,
        });
        assert!(!p.fate(0, 1, 99).outage);
        assert!(p.fate(0, 1, 100).outage);
        assert!(p.fate(0, 1, 199).outage);
        assert!(!p.fate(0, 1, 200).outage);
        // Other senders are unaffected.
        assert!(!p.fate(1, 0, 150).outage);
    }

    #[test]
    fn asymmetric_override_applies_one_direction_only() {
        let mut p = FaultPlan::clean(9);
        p.set_link(0, 1, LinkFaults::lossy(1.0));
        assert!(p.fate(0, 1, 0).drop, "forward direction fully lossy");
        let back = p.fate(1, 0, 0);
        assert!(!back.drop && !back.corrupt, "reverse direction clean");
    }

    #[test]
    fn byzantine_windows_are_schedule_driven_and_rng_free() {
        let mut p = FaultPlan::clean(11);
        p.byzantine.push(ByzantineSchedule {
            host: 0,
            tenant: 7,
            kind: ByzantineKind::RingFlood,
            start: 1_000,
            end: 5_000,
        });
        p.byzantine.push(ByzantineSchedule {
            host: 0,
            tenant: 7,
            kind: ByzantineKind::WedgedRegistry,
            start: 0,
            end: 0,
        });
        let rng_before = format!("{:?}", p.rng);
        assert!(!p.ring_flood_active(0, 7, 999));
        assert!(p.ring_flood_active(0, 7, 1_000));
        assert!(p.ring_flood_active(0, 7, 4_999));
        assert!(!p.ring_flood_active(0, 7, 5_000));
        // Other tenants and hosts are unaffected.
        assert!(!p.ring_flood_active(0, 8, 2_000));
        assert!(!p.ring_flood_active(1, 7, 2_000));
        // Wedging ignores the window entirely.
        assert!(p.tenant_wedged(0, 7));
        assert!(!p.tenant_wedged(0, 8));
        assert_eq!(p.byzantine_on(0).len(), 2);
        assert!(p.byzantine_on(1).is_empty());
        // None of the queries advanced the RNG.
        assert_eq!(format!("{:?}", p.rng), rng_before);
    }

    #[test]
    fn disabled_plan_suppresses_byzantine_schedules() {
        let mut p = FaultPlan::none();
        p.byzantine.push(ByzantineSchedule {
            host: 0,
            tenant: 7,
            kind: ByzantineKind::RingFlood,
            start: 0,
            end: u64::MAX,
        });
        assert!(!p.ring_flood_active(0, 7, 100));
        assert!(!p.tenant_wedged(0, 7));
        assert!(p.byzantine_on(0).is_empty());
    }

    #[test]
    fn ring_pressure_window_clamps_capacity() {
        let mut p = FaultPlan::clean(3);
        p.pressure.push(RingPressure {
            host: 1,
            start: 1000,
            end: 2000,
            cap: 4,
        });
        assert_eq!(p.ring_cap(1, 999), None);
        assert_eq!(p.ring_cap(1, 1000), Some(4));
        assert_eq!(p.ring_cap(1, 1999), Some(4));
        assert_eq!(p.ring_cap(1, 2000), None);
        assert_eq!(p.ring_cap(0, 1500), None);
    }
}
