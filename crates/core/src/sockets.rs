//! A BSD-flavored socket facade over the event-driven core.
//!
//! The paper (§3.2): "users of the protocol library continue to create
//! sockets with `socket`, call `bind` to bind to sockets, and use
//! `connect`, `listen`, and `accept` to establish connections over
//! sockets. Data transfer on connected sockets ... is done as usual with
//! `read` and `write` calls. The library handles all the bookkeeping
//! details." Like the paper's layer, this provides "some but not all the
//! functionality of the BSD socket layer".
//!
//! The facade is poll-style rather than thread-blocking (the simulation is
//! single-threaded): operations queue work, and [`SocketSet::pump`] +
//! `Engine::step/run` advance the world. A typical loop:
//!
//! ```ignore
//! let mut socks = SocketSet::new();
//! let listener = socks.listen(&mut w, 1, 80, TcpConfig::default());
//! let client = socks.connect(&mut w, &mut eng, 0, (server_ip, 80), TcpConfig::default());
//! client.write(b"hello");
//! while eng.step(&mut w) {
//!     socks.pump(&mut w, &mut eng);
//!     if let Some(peer) = listener.accept() { /* ... */ }
//!     let data = client.read(usize::MAX);
//! }
//! ```

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use unp_tcp::TcpConfig;
use unp_wire::Ipv4Addr;

use crate::app::{AppLogic, AppOp, AppView};
use crate::world::{self, Eng, World};

/// Connection state visible through a socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SocketState {
    /// Connection establishment in progress.
    Connecting,
    /// Established; data may flow.
    Connected,
    /// The peer closed its direction (EOF after buffered data).
    PeerClosed,
    /// Fully closed.
    Closed,
    /// Reset by the peer or setup failure.
    Reset,
}

#[derive(Debug)]
struct SocketCore {
    host: usize,
    local_port: Option<u16>,
    remote: Option<(Ipv4Addr, u16)>,
    state: SocketState,
    rx: VecDeque<u8>,
    tx: VecDeque<u8>,
    close_requested: bool,
    /// Set when `tx`/close changed outside an upcall; cleared by `pump`.
    needs_kick: bool,
}

/// A connected (or connecting) socket handle. Clonable; all clones refer
/// to the same connection.
#[derive(Clone)]
pub struct Socket {
    core: Rc<RefCell<SocketCore>>,
}

impl Socket {
    fn new(host: usize) -> Socket {
        Socket {
            core: Rc::new(RefCell::new(SocketCore {
                host,
                local_port: None,
                remote: None,
                state: SocketState::Connecting,
                rx: VecDeque::new(),
                tx: VecDeque::new(),
                close_requested: false,
                needs_kick: false,
            })),
        }
    }

    /// Current connection state.
    pub fn state(&self) -> SocketState {
        self.core.borrow().state
    }

    /// The local port, once known.
    pub fn local_port(&self) -> Option<u16> {
        self.core.borrow().local_port
    }

    /// The remote endpoint, once known.
    pub fn peer(&self) -> Option<(Ipv4Addr, u16)> {
        self.core.borrow().remote
    }

    /// Queues bytes for transmission (`write`). Returns the number
    /// accepted (everything, unless the socket is closing).
    pub fn write(&self, data: &[u8]) -> usize {
        let mut c = self.core.borrow_mut();
        if c.close_requested || matches!(c.state, SocketState::Closed | SocketState::Reset) {
            return 0;
        }
        c.tx.extend(data);
        c.needs_kick = true;
        data.len()
    }

    /// Reads up to `max` buffered bytes (`read`). Empty result means "no
    /// data right now" — check [`Socket::state`] for EOF.
    pub fn read(&self, max: usize) -> Vec<u8> {
        let mut c = self.core.borrow_mut();
        let n = max.min(c.rx.len());
        c.rx.drain(..n).collect()
    }

    /// Bytes currently buffered for reading.
    pub fn readable(&self) -> usize {
        self.core.borrow().rx.len()
    }

    /// True once the peer has closed and every buffered byte was read.
    pub fn at_eof(&self) -> bool {
        let c = self.core.borrow();
        matches!(c.state, SocketState::PeerClosed | SocketState::Closed) && c.rx.is_empty()
    }

    /// Requests an orderly close once queued data drains.
    pub fn close(&self) {
        let mut c = self.core.borrow_mut();
        c.close_requested = true;
        c.needs_kick = true;
    }
}

/// The `AppLogic` adapter living inside the connection, sharing state with
/// the handle.
struct SocketApp {
    core: Rc<RefCell<SocketCore>>,
}

impl SocketApp {
    fn drain(&self, view: &AppView) -> Vec<AppOp> {
        let mut c = self.core.borrow_mut();
        // Learn our addresses from the upcall context so pump() can find
        // the connection later.
        if let Some((_, port)) = view.local {
            c.local_port = Some(port);
        }
        if c.remote.is_none() {
            c.remote = view.remote;
        }
        let mut ops = Vec::new();
        if !c.tx.is_empty() {
            let data: Vec<u8> = c.tx.drain(..).collect();
            ops.push(AppOp::Send(data));
        }
        if c.close_requested && !matches!(c.state, SocketState::Closed | SocketState::Reset) {
            ops.push(AppOp::Close);
            c.close_requested = false;
        }
        ops
    }
}

impl AppLogic for SocketApp {
    fn on_connected(&mut self, view: &AppView) -> Vec<AppOp> {
        self.core.borrow_mut().state = SocketState::Connected;
        self.drain(view)
    }

    fn on_data(&mut self, data: &[u8], view: &AppView) -> Vec<AppOp> {
        self.core.borrow_mut().rx.extend(data);
        self.drain(view)
    }

    fn on_send_space(&mut self, view: &AppView) -> Vec<AppOp> {
        self.drain(view)
    }

    fn on_peer_closed(&mut self, view: &AppView) -> Vec<AppOp> {
        self.core.borrow_mut().state = SocketState::PeerClosed;
        self.drain(view)
    }

    fn on_reset(&mut self, _view: &AppView) {
        self.core.borrow_mut().state = SocketState::Reset;
    }
}

/// A listening socket: accepted connections queue here.
#[derive(Clone)]
pub struct ListenSocket {
    accepted: Rc<RefCell<VecDeque<Socket>>>,
    port: u16,
}

impl ListenSocket {
    /// Pops the next accepted connection, if any.
    pub fn accept(&self) -> Option<Socket> {
        self.accepted.borrow_mut().pop_front()
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.port
    }
}

/// The socket layer for one world: tracks handles so queued writes can be
/// pushed into their connections between engine steps.
#[derive(Default)]
pub struct SocketSet {
    sockets: Vec<Socket>,
    /// Accepted-socket trackers from listeners, folded into `sockets` on
    /// each pump.
    pending_accepts: Vec<Rc<RefCell<Vec<Socket>>>>,
}

impl SocketSet {
    /// Creates an empty set.
    pub fn new() -> SocketSet {
        SocketSet::default()
    }

    /// `socket` + `connect`: opens a connection from `host` to `remote`.
    pub fn connect(
        &mut self,
        w: &mut World,
        eng: &mut Eng,
        host: usize,
        remote: (Ipv4Addr, u16),
        cfg: TcpConfig,
    ) -> Socket {
        let sock = Socket::new(host);
        {
            let mut c = sock.core.borrow_mut();
            c.remote = Some(remote);
        }
        let app = SocketApp {
            core: Rc::clone(&sock.core),
        };
        world::connect(w, eng, host, remote, cfg, Box::new(app), 4096);
        self.sockets.push(sock.clone());
        sock
    }

    /// `socket` + `bind` + `listen`: every accepted connection appears on
    /// the returned [`ListenSocket`].
    pub fn listen(
        &mut self,
        w: &mut World,
        host: usize,
        port: u16,
        cfg: TcpConfig,
    ) -> ListenSocket {
        let accepted: Rc<RefCell<VecDeque<Socket>>> = Rc::new(RefCell::new(VecDeque::new()));
        let acc = Rc::clone(&accepted);
        // Track accepted sockets in the set as they appear.
        let tracked: Rc<RefCell<Vec<Socket>>> = Rc::new(RefCell::new(Vec::new()));
        let tracked2 = Rc::clone(&tracked);
        world::listen(
            w,
            host,
            port,
            cfg,
            Box::new(move || {
                let sock = Socket::new(host);
                sock.core.borrow_mut().local_port = Some(port);
                sock.core.borrow_mut().state = SocketState::Connected;
                acc.borrow_mut().push_back(sock.clone());
                tracked2.borrow_mut().push(sock.clone());
                Box::new(SocketApp {
                    core: Rc::clone(&sock.core),
                })
            }),
        );
        // The tracked list is folded into the set lazily on pump.
        self.pending_accepts.push(tracked);
        ListenSocket { accepted, port }
    }

    /// Pushes queued writes/closes into their connections. Call once per
    /// engine iteration (cheap when nothing changed).
    pub fn pump(&mut self, w: &mut World, eng: &mut Eng) {
        for tracked in &self.pending_accepts {
            for s in tracked.borrow_mut().drain(..) {
                self.sockets.push(s);
            }
        }
        for sock in &self.sockets {
            let (host, kick, key) = {
                let mut c = sock.core.borrow_mut();
                if !c.needs_kick {
                    continue;
                }
                c.needs_kick = false;
                (c.host, true, c.local_port.zip(c.remote))
            };
            if !kick {
                continue;
            }
            let Some((port, remote)) = key else {
                // Active socket pre-establishment: the Connected upcall
                // will drain the queue; re-mark so pump retries later.
                sock.core.borrow_mut().needs_kick = true;
                continue;
            };
            if let Some(cid) = world::find_conn(w, host, port, remote) {
                world::poke_conn(w, eng, host, cid);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{build_two_hosts, Network, OrgKind};

    fn run_pumped(
        w: &mut World,
        eng: &mut Eng,
        socks: &mut SocketSet,
        steps: usize,
        mut done: impl FnMut() -> bool,
    ) -> bool {
        for _ in 0..steps {
            socks.pump(w, eng);
            if done() {
                return true;
            }
            if !eng.step(w) {
                socks.pump(w, eng);
                return done();
            }
        }
        false
    }

    #[test]
    fn socket_api_echo_session() {
        let (mut w, mut eng) = build_two_hosts(Network::Ethernet, OrgKind::UserLibrary);
        let mut socks = SocketSet::new();
        let listener = socks.listen(&mut w, 1, 7, TcpConfig::default());
        let client = socks.connect(
            &mut w,
            &mut eng,
            0,
            (Ipv4Addr::new(10, 0, 0, 2), 7),
            TcpConfig::default(),
        );
        client.write(b"marco");

        // Wait for the server side to appear and answer.
        let mut server: Option<Socket> = None;
        assert!(run_pumped(&mut w, &mut eng, &mut socks, 1_000_000, || {
            if server.is_none() {
                server = listener.accept();
            }
            if let Some(s) = &server {
                if s.readable() >= 5 {
                    let got = s.read(usize::MAX);
                    assert_eq!(got, b"marco");
                    s.write(b"polo");
                    return true;
                }
            }
            false
        }));
        assert!(run_pumped(&mut w, &mut eng, &mut socks, 1_000_000, || {
            client.readable() >= 4
        }));
        assert_eq!(client.read(usize::MAX), b"polo");
        assert_eq!(client.state(), SocketState::Connected);

        // Orderly close both ways.
        client.close();
        assert!(run_pumped(&mut w, &mut eng, &mut socks, 1_000_000, || {
            server.as_ref().map(|s| s.at_eof()).unwrap_or(false)
        }));
        server.as_ref().unwrap().close();
        assert!(run_pumped(&mut w, &mut eng, &mut socks, 1_000_000, || {
            client.at_eof()
        }));
    }

    #[test]
    fn write_before_establishment_is_buffered() {
        let (mut w, mut eng) = build_two_hosts(Network::Ethernet, OrgKind::UserLibrary);
        let mut socks = SocketSet::new();
        let listener = socks.listen(&mut w, 1, 9, TcpConfig::default());
        let client = socks.connect(
            &mut w,
            &mut eng,
            0,
            (Ipv4Addr::new(10, 0, 0, 2), 9),
            TcpConfig::default(),
        );
        // Written immediately, long before the handshake completes.
        client.write(b"early");
        let mut server = None;
        assert!(run_pumped(&mut w, &mut eng, &mut socks, 1_000_000, || {
            if server.is_none() {
                server = listener.accept();
            }
            server.as_ref().map(|s| s.readable() == 5).unwrap_or(false)
        }));
        assert_eq!(server.unwrap().read(10), b"early");
    }

    #[test]
    fn connect_to_dead_port_resets() {
        let (mut w, mut eng) = build_two_hosts(Network::Ethernet, OrgKind::UserLibrary);
        let mut socks = SocketSet::new();
        let client = socks.connect(
            &mut w,
            &mut eng,
            0,
            (Ipv4Addr::new(10, 0, 0, 2), 4444),
            TcpConfig::default(),
        );
        let mut steps = 0;
        while eng.step(&mut w) && steps < 2_000_000 {
            socks.pump(&mut w, &mut eng);
            steps += 1;
        }
        assert_eq!(client.state(), SocketState::Reset);
    }
}
