//! Experiment runners that regenerate the paper's evaluation (§4).
//!
//! Each function builds a fresh two-host world, runs the workload on the
//! virtual clock, and returns the measurement. The `unp-bench` crate's
//! `repro-tables` binary formats these into the paper's tables;
//! `EXPERIMENTS.md` records paper-vs-measured values.

use std::cell::RefCell;
use std::rc::Rc;

use unp_sim::{CostModel, Engine, LinkParams, Nanos, MILLIS};
use unp_tcp::TcpConfig;
use unp_trace::Ctr;
use unp_wire::Ipv4Addr;

use crate::app::{BulkSender, EchoApp, PingPongApp, SinkApp, TransferStats};
use crate::world::{build_two_hosts, connect, listen, Network, OrgKind};

/// Default byte budget for throughput runs (enough for steady state to
/// dominate the handshake).
pub const THROUGHPUT_BYTES: u64 = 2_000_000;

const SERVER: (Ipv4Addr, u16) = (Ipv4Addr::new(10, 0, 0, 2), 80);

fn transfer_cfg() -> TcpConfig {
    TcpConfig::bulk_transfer()
}

/// Table 2: unidirectional TCP throughput in Mb/s for `user_packet`-byte
/// application writes.
pub fn throughput_mbps(network: Network, org: OrgKind, user_packet: usize, total: u64) -> f64 {
    let (mut w, mut eng) = build_two_hosts(network, org);
    let stats = TransferStats::new_shared();
    let st = Rc::clone(&stats);
    // The paper's workload puts one network packet on the wire per user
    // packet below the link MTU ("user packet sizes beyond the
    // link-imposed maximum will require multiple network packet
    // transmissions for each packet"); cap the MSS accordingly so the
    // segment stream matches the measured workload.
    let mut cfg = transfer_cfg();
    cfg.mss_local = user_packet.min(1460);
    listen(
        &mut w,
        1,
        80,
        cfg.clone(),
        Box::new(move || Box::new(SinkApp::new(Rc::clone(&st)))),
    );
    connect(
        &mut w,
        &mut eng,
        0,
        SERVER,
        cfg,
        Box::new(BulkSender::new(total, user_packet)),
        user_packet,
    );
    let drained = eng.run(&mut w, 50_000_000);
    assert!(drained, "throughput run did not drain");
    let s = stats.borrow();
    assert_eq!(s.bytes_received, total, "transfer incomplete");
    s.throughput_bps().expect("bytes moved") / 1e6
}

/// Table 3: mean TCP round-trip time in milliseconds for `size`-byte
/// exchanges ("the first application sends data to the second, which in
/// turn, sends the same amount of data back"), setup excluded.
pub fn latency_ms(network: Network, org: OrgKind, size: usize, rounds: usize) -> f64 {
    let (mut w, mut eng) = build_two_hosts(network, org);
    let stats = TransferStats::new_shared();
    // The stock stack configuration: delayed ACKs let the echo piggyback
    // its acknowledgment on the reply, exactly as the paper's ping-pong
    // traffic would behave; Nagle never delays because each ping is sent
    // with no data outstanding.
    let cfg = TcpConfig::default();
    listen(&mut w, 1, 80, cfg.clone(), Box::new(|| Box::new(EchoApp)));
    connect(
        &mut w,
        &mut eng,
        0,
        SERVER,
        cfg,
        Box::new(PingPongApp::new(size, rounds, Rc::clone(&stats))),
        size,
    );
    let drained = eng.run(&mut w, 50_000_000);
    assert!(drained, "latency run did not drain");
    let s = stats.borrow();
    assert_eq!(s.rtts.len(), rounds, "rounds incomplete");
    s.mean_rtt().expect("rtts") / 1e6
}

/// Table 4: connection setup time in milliseconds — from the application's
/// connect call to its `Connected` upcall, "assuming the passive peer was
/// already listening".
pub fn setup_ms(network: Network, org: OrgKind) -> f64 {
    let (mut w, mut eng) = build_two_hosts(network, org);
    let stats = TransferStats::new_shared();
    let st = Rc::clone(&stats);
    listen(
        &mut w,
        1,
        80,
        TcpConfig::default(),
        Box::new(move || Box::new(SinkApp::new(Rc::clone(&st)).without_verify())),
    );
    let client_stats = TransferStats::new_shared();
    // A ping-pong app with zero rounds: records connected_at, closes.
    connect(
        &mut w,
        &mut eng,
        0,
        SERVER,
        TcpConfig::default(),
        Box::new(PingPongApp::new(1, 0, Rc::clone(&client_stats))),
        1,
    );
    let drained = eng.run(&mut w, 10_000_000);
    assert!(drained, "setup run did not drain");
    let connected_at = client_stats
        .borrow()
        .connected_at
        .expect("connection must establish");
    connected_at as f64 / 1e6
}

/// The five-component breakdown of the user-library setup cost on
/// Ethernet, mirroring the paper's itemization of its 11.9 ms. Returns
/// (label, milliseconds) pairs, model-derived.
pub fn setup_breakdown(costs: &CostModel) -> Vec<(&'static str, f64)> {
    let ms = |n: Nanos| n as f64 / MILLIS as f64;
    // Remote+back: the registry's per-packet device operations for the
    // three-way handshake (2 local sends + 1 local receive on the client,
    // plus the peer's 2 ops awaited synchronously) + protocol processing.
    let remote_and_back = 3 * costs.registry_pkt_op
        + 2 * (costs.registry_pkt_op + costs.tcp_per_segment + costs.ip_per_packet)
        + 2 * costs.tcp_per_segment;
    vec![
        ("remote peer and back", ms(remote_and_back)),
        (
            "non-overlapped outbound processing",
            ms(costs.registry_connect_processing),
        ),
        ("user channel setup", ms(costs.channel_setup)),
        ("application to server and back", ms(2 * costs.registry_rpc)),
        ("TCP state transfer to user level", ms(costs.state_transfer)),
    ]
}

/// Table 1: the raw-mechanism micro-benchmark. Two applications exchange
/// maximum-sized Ethernet packets "without using any higher-level
/// protocols", exercising the shared ring, the library↔kernel signaling,
/// and template checking. Returns `(mechanism_mbps, standalone_mbps)` —
/// the paper compares against "the maximum achievable using the raw
/// hardware with a standalone program and no operating system".
pub fn table1_mechanisms(network: Network) -> (f64, f64) {
    let params = match network {
        Network::Ethernet => LinkParams::ethernet_10mbps(),
        Network::An1 => LinkParams::an1_100mbps(),
    };
    let costs = CostModel::calibrated_1993();
    let payload = params.mtu; // max-sized packets, no protocol headers
    let link_hdr = 14;
    let standalone = params.saturation_payload_bps(payload, link_hdr) / 1e6;

    // A bespoke two-stage pipeline on the virtual clock: sender app →
    // (library call, fast trap, template check, ring op, device) → wire →
    // receiver (interrupt, device, demux, ring, batched signal, library).
    struct Raw {
        tx_cpu: unp_sim::Cpu,
        rx_cpu: unp_sim::Cpu,
        link: unp_netdev::Link,
        delivered: u64,
        first: Option<Nanos>,
        last: Option<Nanos>,
        notify_pending: bool,
    }
    let mut eng: Engine<Raw> = Engine::new();
    let mut raw = Raw {
        tx_cpu: unp_sim::Cpu::new(),
        rx_cpu: unp_sim::Cpu::new(),
        link: unp_netdev::Link::new(params),
        delivered: 0,
        first: None,
        last: None,
        notify_pending: false,
    };
    let frames: u64 = 400;
    let frame_len = payload + link_hdr;
    let is_an1 = network == Network::An1;

    fn send_one(
        r: &mut Raw,
        eng: &mut Engine<Raw>,
        costs: &CostModel,
        frame_len: usize,
        payload: usize,
        is_an1: bool,
        remaining: u64,
    ) {
        if remaining == 0 {
            return;
        }
        let dev = if is_an1 {
            costs.dma_setup
        } else {
            costs.pio(frame_len)
        };
        let tx_cost =
            costs.library_call + costs.fast_trap + costs.template_check + costs.ring_op + dev;
        let done = r.tx_cpu.charge(eng.now(), tx_cost);
        let costs2 = costs.clone();
        let costs3 = costs.clone();
        eng.at(done, move |r: &mut Raw, eng| {
            let (_s, arrival) = r
                .link
                .reserve(unp_netdev::StationId(0), eng.now(), frame_len);
            // Receiver side.
            eng.at(arrival, move |r: &mut Raw, eng| {
                let dev = if is_an1 { 0 } else { costs2.pio(frame_len) };
                let demux = if is_an1 {
                    costs2.bqi_demux
                } else {
                    costs2.filter_run(14)
                };
                let mut rx_cost = costs2.interrupt + dev + demux + costs2.ring_op;
                if !r.notify_pending {
                    r.notify_pending = true;
                    rx_cost += costs2.semaphore_signal + costs2.thread_switch;
                }
                let done = r.rx_cpu.charge(eng.now(), rx_cost + costs2.library_call);
                eng.at(done, move |r: &mut Raw, eng| {
                    r.notify_pending = false;
                    r.delivered += payload as u64;
                    r.first.get_or_insert(eng.now());
                    r.last = Some(eng.now());
                });
            });
            // Pipeline the next frame immediately.
            send_one(r, eng, &costs3, frame_len, payload, is_an1, remaining - 1);
        });
    }
    send_one(
        &mut raw, &mut eng, &costs, frame_len, payload, is_an1, frames,
    );
    eng.run(&mut raw, 100_000_000);
    let (first, last) = (raw.first.expect("ran"), raw.last.expect("ran"));
    let mechanism =
        (raw.delivered - payload as u64) as f64 * 8.0 / ((last - first) as f64 / 1e9) / 1e6;
    (mechanism, standalone)
}

/// Table 5: per-packet demultiplexing cost in microseconds —
/// `(software_us, hardware_us)`. The software figure charges the actual
/// generated BPF program for a connected TCP endpoint; the hardware figure
/// is the AN1's inherent BQI device-management cost. "Copy and DMA costs
/// are not included."
pub fn table5_demux_us() -> (f64, f64) {
    let costs = CostModel::calibrated_1993();
    let spec = unp_filter::programs::DemuxSpec {
        link_header_len: 14,
        protocol: unp_wire::IpProtocol::Tcp,
        local_ip: Ipv4Addr::new(10, 0, 0, 2),
        local_port: 80,
        remote_ip: Some(Ipv4Addr::new(10, 0, 0, 1)),
        remote_port: Some(4000),
    };
    let prog = unp_filter::programs::bpf_demux(&spec);
    use unp_filter::Demux;
    let sw = costs.filter_run(prog.instruction_count()) as f64 / 1e3;
    let hw = costs.bqi_demux as f64 / 1e3;
    (sw, hw)
}

/// Convenience: the cell type experiments share with apps.
pub type SharedStats = Rc<RefCell<TransferStats>>;

// ---------------------------------------------------------------------
// Ablations: what each design choice buys (DESIGN.md §4)
// ---------------------------------------------------------------------

/// Throughput of the user-level library with an ablation applied.
/// `ablate`: "none" | "batching" | "zero_copy".
pub fn ablation_throughput(network: Network, user_packet: usize, total: u64, ablate: &str) -> f64 {
    let (mut w, mut eng) = build_two_hosts(network, OrgKind::UserLibrary);
    match ablate {
        "none" => {}
        "batching" => w.ablate_batching = true,
        "zero_copy" => w.ablate_zero_copy = true,
        other => panic!("unknown ablation {other}"),
    }
    let stats = TransferStats::new_shared();
    let st = Rc::clone(&stats);
    let mut cfg = transfer_cfg();
    cfg.mss_local = user_packet.min(1460);
    listen(
        &mut w,
        1,
        80,
        cfg.clone(),
        Box::new(move || Box::new(SinkApp::new(Rc::clone(&st)))),
    );
    connect(
        &mut w,
        &mut eng,
        0,
        SERVER,
        cfg,
        Box::new(BulkSender::new(total, user_packet)),
        user_packet,
    );
    assert!(eng.run(&mut w, 50_000_000), "ablation run did not drain");
    let s = stats.borrow();
    assert_eq!(s.bytes_received, total);
    s.throughput_bps().expect("bytes moved") / 1e6
}

/// Nagle/delayed-ACK ablation on a small-write workload (the
/// write-write-read RPC pathology is demonstrated in the
/// `app_specific_tuning` example; this measures bulk small-write cost).
pub fn ablation_nagle(total: u64, nagle: bool) -> (f64, u64) {
    let (mut w, mut eng) = build_two_hosts(Network::Ethernet, OrgKind::UserLibrary);
    let stats = TransferStats::new_shared();
    let st = Rc::clone(&stats);
    let mut cfg = transfer_cfg();
    cfg.nagle = nagle;
    listen(
        &mut w,
        1,
        80,
        cfg.clone(),
        Box::new(move || Box::new(SinkApp::new(Rc::clone(&st)))),
    );
    connect(
        &mut w,
        &mut eng,
        0,
        SERVER,
        cfg,
        Box::new(BulkSender::new(total, 128)),
        128,
    );
    assert!(eng.run(&mut w, 100_000_000));
    let s = stats.borrow();
    assert_eq!(s.bytes_received, total);
    (
        s.throughput_bps().expect("moved") / 1e6,
        w.metrics.get(Ctr::FramesSent),
    )
}

/// The request/response-vs-TCP crossover (paper §1.1: specialized
/// protocols "achieve remarkably low latencies \[but\] do not always deliver
/// the highest throughput"). Models `rrp` as one outstanding `size`-byte
/// transaction per round trip over the same per-message costs as the
/// library's data path, and compares with the measured TCP numbers.
/// Returns (rrp_latency_ms, tcp_latency_ms, rrp_tput_mbps, tcp_tput_mbps).
pub fn ablation_rrp_vs_tcp(size: usize) -> (f64, f64, f64, f64) {
    let costs = CostModel::calibrated_1993();
    let params = LinkParams::ethernet_10mbps();
    // One rrp message each way: library call + kernel entry + template +
    // device + wire + interrupt + demux + deliver-up.
    let one_way = |bytes: usize| -> Nanos {
        costs.library_call
            + costs.fast_trap
            + costs.template_check
            + costs.ring_op
            + costs.pio(bytes + 22)
            + params.tx_time(bytes + 22)
            + costs.interrupt
            + costs.pio(bytes + 22)
            + costs.filter_run(14)
            + costs.ring_op
            + costs.semaphore_signal
            + costs.thread_switch
            + costs.library_call
    };
    let rtt = one_way(size) + one_way(size); // request out, reply back
    let rrp_lat_ms = rtt as f64 / 1e6;
    // Throughput with one outstanding request of `size` bytes per RTT
    // (the reply is a small ack-sized message).
    let cycle = one_way(size) + one_way(16);
    let rrp_tput = size as f64 * 8.0 / (cycle as f64 / 1e9) / 1e6;
    let tcp_lat = latency_ms(Network::Ethernet, OrgKind::UserLibrary, size, 10);
    let tcp_tput = throughput_mbps(Network::Ethernet, OrgKind::UserLibrary, 4096, 500_000);
    (rrp_lat_ms, tcp_lat, rrp_tput, tcp_tput)
}

/// Congestion-control ablation on the byte-accurate loopback harness with
/// real loss: transfers `total` bytes at `loss` rate under the given
/// algorithm and reports `(virtual_completion_ms, segments_carried,
/// bytes_retransmitted)`. Run by the `ablations` report; shows what
/// Tahoe/Reno buy over the paper-era uncontrolled stack once links lose
/// packets (on the paper's clean LANs they buy nothing, which is why the
/// default is off).
pub fn ablation_congestion(
    total: usize,
    loss: f64,
    seed: u64,
    cc: crate::CongestionControlChoice,
) -> (f64, u64, u64) {
    use unp_tcp::loopback::{ChannelModel, Loopback, Side};
    let mut cfg = TcpConfig::bulk_transfer();
    cfg.congestion = match cc {
        crate::CongestionControlChoice::Off => unp_tcp::CongestionControl::Off,
        crate::CongestionControlChoice::Tahoe => unp_tcp::CongestionControl::Tahoe,
        crate::CongestionControlChoice::Reno => unp_tcp::CongestionControl::Reno,
    };
    let chan = ChannelModel {
        jitter: 0,
        duplicate: 0.0,
        corrupt: 0.0,
        ..ChannelModel::lossy(seed, loss)
    };
    let mut lb = Loopback::new(cfg.clone(), cfg, chan);
    let data: Vec<u8> = (0..total).map(|i| (i % 251) as u8).collect();
    lb.send(Side::A, &data);
    assert!(
        lb.run_until(5_000_000, |lb| lb.received(Side::B).len() == total),
        "transfer must complete under loss"
    );
    assert_eq!(lb.received(Side::B), &data[..], "stream integrity");
    let stats = lb.tcb(Side::A).expect("conn live").stats();
    (
        lb.now() as f64 / 1e6,
        lb.segments_carried,
        stats.bytes_rexmit,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_orderings_match_paper_shape() {
        // Small transfer to keep the test fast; shapes hold regardless.
        let t = |org| throughput_mbps(Network::Ethernet, org, 4096, 300_000);
        let ultrix = t(OrgKind::InKernel);
        let ours = t(OrgKind::UserLibrary);
        let mach = t(OrgKind::SingleServer);
        assert!(
            ours > mach,
            "library must beat Mach/UX: {ours:.2} vs {mach:.2}"
        );
        assert!(
            ultrix > ours,
            "Ultrix beats the library on Ethernet: {ultrix:.2} vs {ours:.2}"
        );
    }

    #[test]
    fn an1_small_packets_favor_the_library() {
        let ultrix = throughput_mbps(Network::An1, OrgKind::InKernel, 512, 300_000);
        let ours = throughput_mbps(Network::An1, OrgKind::UserLibrary, 512, 300_000);
        assert!(
            ours > ultrix,
            "copy elimination should win at 512 B on AN1: {ours:.2} vs {ultrix:.2}"
        );
    }

    #[test]
    fn latency_ordering() {
        let l = |org| latency_ms(Network::Ethernet, org, 512, 8);
        let ultrix = l(OrgKind::InKernel);
        let ours = l(OrgKind::UserLibrary);
        let mach = l(OrgKind::SingleServer);
        assert!(ultrix < ours && ours < mach, "{ultrix} {ours} {mach}");
    }

    #[test]
    fn setup_ordering() {
        let ultrix = setup_ms(Network::Ethernet, OrgKind::InKernel);
        let mach = setup_ms(Network::Ethernet, OrgKind::SingleServer);
        let ours = setup_ms(Network::Ethernet, OrgKind::UserLibrary);
        assert!(
            ultrix < mach && mach < ours,
            "setup ordering: {ultrix:.2} {mach:.2} {ours:.2}"
        );
        // Paper: ours ≈ 11.9 ms on Ethernet; stay in the regime.
        assert!((6.0..25.0).contains(&ours), "ours setup {ours:.2} ms");
    }

    #[test]
    fn table1_modest_overhead() {
        let (mech, standalone) = table1_mechanisms(Network::Ethernet);
        assert!(mech < standalone);
        assert!(
            mech > standalone * 0.5,
            "mechanisms should cost modestly: {mech:.2} vs {standalone:.2}"
        );
    }

    #[test]
    fn table5_costs_close() {
        let (sw, hw) = table5_demux_us();
        assert!((sw - hw).abs() < 15.0, "sw {sw:.1} hw {hw:.1}");
        assert!(sw > 30.0 && sw < 80.0);
    }

    #[test]
    fn breakdown_sums_near_total() {
        let costs = CostModel::calibrated_1993();
        let parts = setup_breakdown(&costs);
        let sum: f64 = parts.iter().map(|(_, v)| v).sum();
        assert!((8.0..16.0).contains(&sum), "breakdown sum {sum:.2}");
    }
}
