//! `unp-netdev` — simulated links and host-network interfaces.
//!
//! Models the paper's two networks and their very different interfaces:
//!
//! * [`Link`] — a serializing medium. The 10 Mb/s Ethernet is a shared,
//!   half-duplex bus (data and ACKs contend for one channel, with
//!   preamble/IFG framing overhead); the 100 Mb/s AN1 is a switchless
//!   full-duplex point-to-point segment.
//! * [`LanceNic`] — the DEC PMADD-AA-style Ethernet interface: "this
//!   interface does not have DMA capabilities to and from the host memory.
//!   Instead, there are special packet buffers on board the controller that
//!   serve as a staging area for data. The host transfers data between
//!   these buffers and host memory using programmed I/O." No hardware
//!   demultiplexing: every received frame interrupts the host and is
//!   demultiplexed in software.
//! * [`An1Nic`] — the AN1 controller: descriptor DMA plus the **buffer
//!   queue index** table for hardware demultiplexing. The BQI in each
//!   incoming frame's link header selects a ring of pinned host buffers;
//!   the controller DMAs the packet straight into the destination
//!   process's shared memory.

use std::collections::VecDeque;

use unp_buffers::{BqiTable, Frame};
use unp_sim::{LinkParams, Nanos};
use unp_wire::MacAddr;

/// Station identifier on a link (index into the world's host table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StationId(pub usize);

/// A serializing link. Transmissions reserve the medium in FIFO order;
/// half-duplex links have one channel, full-duplex links one per direction.
#[derive(Debug)]
pub struct Link {
    params: LinkParams,
    /// `busy_until[0]` for half duplex; indexed by sender for full duplex.
    busy_until: Vec<Nanos>,
    stations: Vec<(StationId, MacAddr)>,
    /// Frames carried (post-reservation).
    pub frames: u64,
    /// Total payload bytes carried.
    pub bytes: u64,
}

impl Link {
    /// Creates a link with the given physical parameters.
    pub fn new(params: LinkParams) -> Link {
        let channels = if params.half_duplex { 1 } else { 2 };
        Link {
            params,
            busy_until: vec![0; channels],
            stations: Vec::new(),
            frames: 0,
            bytes: 0,
        }
    }

    /// The physical parameters.
    pub fn params(&self) -> &LinkParams {
        &self.params
    }

    /// Attaches a station.
    pub fn attach(&mut self, station: StationId, mac: MacAddr) {
        self.stations.push((station, mac));
    }

    /// Stations that should receive a frame addressed to `dst` sent by
    /// `from` (unicast match or broadcast flood, never the sender).
    pub fn recipients(&self, from: StationId, dst: MacAddr) -> Vec<StationId> {
        self.stations
            .iter()
            .filter(|(sid, mac)| *sid != from && (dst.is_broadcast() || *mac == dst))
            .map(|(sid, _)| *sid)
            .collect()
    }

    /// Reserves the medium for a frame of `len` bytes requested at `now` by
    /// `sender`. Returns `(tx_start, arrival)`: transmission begins when
    /// the channel frees, and the frame arrives at receivers after
    /// serialization plus propagation.
    pub fn reserve(&mut self, sender: StationId, now: Nanos, len: usize) -> (Nanos, Nanos) {
        let ch = if self.params.half_duplex {
            0
        } else {
            sender.0 % self.busy_until.len()
        };
        let mut start = self.busy_until[ch].max(now);
        if self.busy_until[ch] > now {
            // The medium was busy when transmission was attempted: CSMA
            // deference and backoff at load.
            start += self.params.contention;
        }
        let end = start + self.params.tx_time(len);
        self.busy_until[ch] = end;
        self.frames += 1;
        self.bytes += len as u64;
        (start, end + self.params.propagation)
    }

    /// The MAC of an attached station, if known.
    pub fn mac_of(&self, station: StationId) -> Option<MacAddr> {
        self.stations
            .iter()
            .find(|(sid, _)| *sid == station)
            .map(|(_, mac)| *mac)
    }
}

/// A received frame sitting in a Lance on-board buffer, awaiting the host's
/// programmed-I/O copy.
#[derive(Debug, Clone)]
pub struct StagedFrame {
    /// Frame handle (link header included); a refcount on the wire frame,
    /// not a copy.
    pub bytes: Frame,
    /// When the frame finished arriving.
    pub arrived: Nanos,
}

/// The Lance-style Ethernet interface. See module docs.
#[derive(Debug)]
pub struct LanceNic {
    /// Station address.
    pub mac: MacAddr,
    rx_staging: VecDeque<StagedFrame>,
    rx_capacity: usize,
    /// Frames dropped because the staging area was full.
    pub rx_drops: u64,
    /// Frames received into staging.
    pub rx_frames: u64,
}

impl LanceNic {
    /// Default number of on-board receive buffers (the real LANCE had a
    /// small ring; 32 is generous).
    pub const DEFAULT_RX_BUFFERS: usize = 32;

    /// Creates an interface with the default staging capacity.
    pub fn new(mac: MacAddr) -> LanceNic {
        LanceNic {
            mac,
            rx_staging: VecDeque::new(),
            rx_capacity: Self::DEFAULT_RX_BUFFERS,
            rx_drops: 0,
            rx_frames: 0,
        }
    }

    /// A frame arrives from the wire into on-board staging. Returns true
    /// if accepted (an interrupt should be raised), false if dropped.
    pub fn frame_arrived(&mut self, bytes: Frame, now: Nanos) -> bool {
        if self.rx_staging.len() >= self.rx_capacity {
            self.rx_drops += 1;
            unp_trace::emit(Some(bytes.id()), || unp_trace::Event::NicRx {
                len: bytes.len() as u32,
                accepted: false,
            });
            return false;
        }
        self.rx_frames += 1;
        unp_trace::emit(Some(bytes.id()), || unp_trace::Event::NicRx {
            len: bytes.len() as u32,
            accepted: true,
        });
        self.rx_staging.push_back(StagedFrame {
            bytes,
            arrived: now,
        });
        true
    }

    /// The host's interrupt handler pulls the next staged frame (the PIO
    /// copy cost is charged by the caller: `cost.pio(frame.len())`).
    pub fn host_take_frame(&mut self) -> Option<StagedFrame> {
        self.rx_staging.pop_front()
    }

    /// Number of staged frames awaiting the host.
    pub fn staged(&self) -> usize {
        self.rx_staging.len()
    }
}

/// The AN1 interface: DMA plus the BQI demultiplexing table.
///
/// The table itself lives here (it is controller state); the buffer rings
/// it names are host memory owned by the network I/O module, which resolves
/// [`An1Nic::classify`]'s ring id to an actual ring.
#[derive(Debug)]
pub struct An1Nic {
    /// Station address.
    pub mac: MacAddr,
    /// The controller's BQI table ("a table kept in the controller").
    pub bqi_table: BqiTable,
    /// Frames classified by hardware.
    pub rx_frames: u64,
}

impl An1Nic {
    /// Creates an interface whose BQI 0 maps to `kernel_ring`.
    pub fn new(mac: MacAddr, table_size: usize, kernel_ring: unp_buffers::RingId) -> An1Nic {
        An1Nic {
            mac,
            bqi_table: BqiTable::new(table_size, kernel_ring),
            rx_frames: 0,
        }
    }

    /// Hardware classification of an arriving frame: reads the BQI field
    /// from the link header and resolves the destination ring. This is the
    /// paper's protocol-independent hardware demultiplexing.
    pub fn classify(&mut self, frame: &[u8]) -> unp_buffers::RingId {
        self.rx_frames += 1;
        let bqi = unp_wire::An1Frame::new_checked(frame)
            .map(|f| f.bqi())
            .unwrap_or(0);
        self.bqi_table.resolve(bqi)
    }

    /// [`An1Nic::classify`] on a [`Frame`], journaling the NIC receive with
    /// the frame's identity. The DMA engine never drops at this stage — the
    /// ring it resolves to applies its own backpressure.
    pub fn classify_frame(&mut self, frame: &Frame) -> unp_buffers::RingId {
        unp_trace::emit(Some(frame.id()), || unp_trace::Event::NicRx {
            len: frame.len() as u32,
            accepted: true,
        });
        self.classify(frame.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unp_buffers::{OwnerTag, RingId};
    use unp_wire::{An1Repr, EtherType};

    #[test]
    fn link_serializes_back_to_back_frames() {
        let mut link = Link::new(LinkParams::ethernet_10mbps());
        let s = StationId(0);
        let (t0, a0) = link.reserve(s, 0, 1514);
        let (t1, a1) = link.reserve(s, 0, 1514);
        assert_eq!(t0, 0);
        // Second frame waits for the first to finish serializing, plus the
        // CSMA deference/backoff penalty for finding the medium busy.
        assert_eq!(
            t1,
            a0 - link.params().propagation + link.params().contention
        );
        assert!(a1 > a0);
        assert_eq!(link.frames, 2);
    }

    #[test]
    fn half_duplex_contends_across_stations() {
        let mut link = Link::new(LinkParams::ethernet_10mbps());
        let (_, a0) = link.reserve(StationId(0), 0, 1000);
        let (t1, _) = link.reserve(StationId(1), 0, 64);
        assert_eq!(
            t1,
            a0 - link.params().propagation + link.params().contention,
            "bus is shared"
        );
    }

    #[test]
    fn idle_medium_has_no_contention_penalty() {
        let mut link = Link::new(LinkParams::ethernet_10mbps());
        let (_, a0) = link.reserve(StationId(0), 0, 64);
        // Next frame requested after the medium freed: starts immediately.
        let (t1, _) = link.reserve(StationId(1), a0, 64);
        assert_eq!(t1, a0);
    }

    #[test]
    fn full_duplex_directions_independent() {
        let mut link = Link::new(LinkParams::an1_100mbps());
        let (t0, _) = link.reserve(StationId(0), 0, 1000);
        let (t1, _) = link.reserve(StationId(1), 0, 1000);
        assert_eq!(t0, 0);
        assert_eq!(t1, 0, "reverse direction does not contend");
    }

    #[test]
    fn recipients_unicast_and_broadcast() {
        let mut link = Link::new(LinkParams::ethernet_10mbps());
        let m = MacAddr::from_host_index;
        link.attach(StationId(0), m(0));
        link.attach(StationId(1), m(1));
        link.attach(StationId(2), m(2));
        assert_eq!(link.recipients(StationId(0), m(2)), vec![StationId(2)]);
        assert_eq!(
            link.recipients(StationId(0), MacAddr::BROADCAST),
            vec![StationId(1), StationId(2)]
        );
        assert!(link.recipients(StationId(0), m(0)).is_empty(), "no self");
        assert_eq!(link.mac_of(StationId(1)), Some(m(1)));
    }

    #[test]
    fn lance_staging_fifo_and_overflow() {
        let mut nic = LanceNic::new(MacAddr::from_host_index(1));
        for i in 0..LanceNic::DEFAULT_RX_BUFFERS {
            assert!(nic.frame_arrived(Frame::from_vec(vec![i as u8]), i as Nanos));
        }
        assert!(!nic.frame_arrived(Frame::from_vec(vec![99]), 99));
        assert_eq!(nic.rx_drops, 1);
        let first = nic.host_take_frame().unwrap();
        assert_eq!(first.bytes, vec![0]);
        assert_eq!(nic.staged(), LanceNic::DEFAULT_RX_BUFFERS - 1);
    }

    #[test]
    fn an1_hardware_demux_by_bqi() {
        let mut nic = An1Nic::new(MacAddr::from_host_index(1), 8, RingId(0));
        let bqi = nic
            .bqi_table
            .allocate(OwnerTag(7), RingId(3))
            .expect("table space");
        let frame = An1Repr {
            dst: nic.mac,
            src: MacAddr::from_host_index(2),
            ethertype: EtherType::Ipv4,
            bqi,
            announce: 0,
        }
        .build_frame(b"payload");
        assert_eq!(nic.classify(&frame), RingId(3));
        // Unknown/zero BQI falls back to the kernel ring.
        let f0 = An1Repr {
            bqi: 0,
            ..An1Repr::parse(&unp_wire::An1Frame::new_checked(&frame[..]).unwrap())
        }
        .build_frame(b"x");
        assert_eq!(nic.classify(&f0), RingId(0));
        // Garbage frames go to the kernel ring too.
        assert_eq!(nic.classify(&[0u8; 4]), RingId(0));
    }
}
