//! `--explain` mode: the seeded faulty Table-2 workload joined into a
//! cross-host [`CausalGraph`], with the fault-plan oracle cross-check.
//!
//! One bulk transfer runs under a fixed [`FaultPlan::lossy`] schedule
//! with the journal recording; the journal joins into per-frame
//! journeys, every retransmit gets a root cause, and — because the
//! injected schedule is known — the attribution layer is checkable
//! against ground truth:
//!
//! * every retransmit's cause must be established (coverage 1.0), and
//! * every lost data-carrying frame must be claimed by exactly one
//!   attribution, or superseded by a redundant delivery of its range.
//!
//! `repro-tables --explain [f<id> | <port>]` prints the postmortem for
//! one frame or one connection (summary when no target is given).
//! `--explain-gate` is the CI surface: it runs the oracle check, writes
//! `BENCH_causal.json`, and diffs the Chrome trace export against the
//! pinned golden `tests/golden/causal_trace.json` (regenerate with
//! `--explain-baseline` after a reviewed change). The workload is
//! deterministic, so the golden is byte-exact.

use std::rc::Rc;

use unp_core::faults::FaultPlan;
use unp_core::world::{connect, install_faults, listen};
use unp_core::{build_two_hosts, BulkSender, Network, OrgKind, SinkApp, TransferStats};
use unp_tcp::TcpConfig;
use unp_trace::causal::{CausalGraph, JourneyFate};
use unp_wire::Ipv4Addr;

/// Transfer size of the seeded workload. Small on purpose: the gate's
/// golden Chrome trace pins every journey of this exact run.
pub const CAUSAL_TOTAL: u64 = 60_000;
/// User packet size (one MSS per write).
pub const CAUSAL_PACKET: usize = 1460;
/// Fault-plan RNG seed.
pub const CAUSAL_SEED: u64 = 11;
/// Per-frame drop probability (dup/corrupt/reorder at half that — see
/// [`FaultPlan::lossy`]).
pub const CAUSAL_LOSS: f64 = 0.05;

/// Where the pinned Chrome trace golden lives (repo-root relative, like
/// `tables_output.txt` — the gate runs from the repo root).
pub const GOLDEN_TRACE: &str = "tests/golden/causal_trace.json";

/// Runs the seeded faulty Table-2 workload with the journal recording
/// and returns the raw records — the causal graph builds from them here,
/// and the conformance monitor replays and mutates them in
/// [`crate::monitor`]. Panics if the transfer fails to complete.
pub fn lossy_journal() -> Vec<unp_trace::Record> {
    unp_trace::journal_start();
    let (mut w, mut eng) = build_two_hosts(Network::Ethernet, OrgKind::UserLibrary);
    let stats = TransferStats::new_shared();
    let st = Rc::clone(&stats);
    let mut cfg = TcpConfig::bulk_transfer();
    cfg.mss_local = CAUSAL_PACKET.min(1460);
    listen(
        &mut w,
        1,
        80,
        cfg.clone(),
        Box::new(move || Box::new(SinkApp::new(Rc::clone(&st)))),
    );
    connect(
        &mut w,
        &mut eng,
        0,
        (Ipv4Addr::new(10, 0, 0, 2), 80),
        cfg,
        Box::new(BulkSender::new(CAUSAL_TOTAL, CAUSAL_PACKET)),
        CAUSAL_PACKET,
    );
    install_faults(&mut w, &mut eng, FaultPlan::lossy(CAUSAL_SEED, CAUSAL_LOSS));
    assert!(eng.run(&mut w, 2_000_000_000), "causal run did not drain");
    let records = unp_trace::journal_stop();
    assert_eq!(
        stats.borrow().bytes_received,
        CAUSAL_TOTAL,
        "lossy transfer incomplete"
    );
    records
}

/// Runs the seeded faulty Table-2 workload and joins the journal into a
/// causal graph. Panics if the transfer fails to complete or the
/// latency-split invariant breaks — both would invalidate the report.
pub fn causal_section() -> CausalGraph {
    let records = lossy_journal();
    let graph = CausalGraph::build(&records);
    graph
        .check_consistency()
        .expect("latency splits must telescope to end-to-end");
    graph
}

/// The fault-plan oracle: with the injected schedule as ground truth,
/// attribution must be total (coverage 1.0) and every lost data frame
/// claimed exactly once or redundantly delivered.
pub fn oracle_check(graph: &CausalGraph) -> Result<(), String> {
    if graph.coverage() < 1.0 {
        let missing: Vec<String> = graph
            .rexmits
            .iter()
            .filter(|a| !a.cause.is_attributed())
            .map(|a| format!("t={} seq={}", a.t, a.seq))
            .collect();
        return Err(format!(
            "attribution coverage {:.3} < 1.0 (unattributed: {})",
            graph.coverage(),
            missing.join(", ")
        ));
    }
    let claims = graph.claims();
    for (j, loss) in graph.losses() {
        let Some(s) = &j.seg else { continue };
        if s.payload == 0 {
            // A lost pure ACK only matters if it stalled the peer — then
            // it is claimed as an AckLoss; otherwise a later cumulative
            // ACK covered it and there is nothing to attribute.
            continue;
        }
        match claims.get(&j.frame).copied().unwrap_or(0) {
            1 => {}
            0 if graph.superseded(j) => {}
            n => {
                return Err(format!(
                    "lost data frame f{} ({}) claimed by {n} attributions, want 1",
                    j.frame,
                    loss.label()
                ));
            }
        }
    }
    Ok(())
}

/// Counts losses that needed no retransmit because another transmission
/// of the range arrived (the reorder+drop corner the oracle allows).
pub fn superseded_count(graph: &CausalGraph) -> usize {
    let claims = graph.claims();
    graph
        .losses()
        .filter(|(j, _)| {
            j.seg.as_ref().is_some_and(|s| s.payload > 0)
                && claims.get(&j.frame).copied().unwrap_or(0) == 0
                && graph.superseded(j)
        })
        .count()
}

/// Prints the postmortem for `target`: `f<id>` explains one frame,
/// `<port>` one connection, nothing the whole-run summary plus the
/// data connection.
pub fn print_explain(graph: &CausalGraph, target: Option<&str>) {
    match target {
        Some(t) if t.starts_with('f') => match t[1..].parse::<u64>() {
            Ok(frame) => print!("{}", graph.explain_frame(frame)),
            Err(_) => eprintln!("--explain: bad frame id {t:?} (want f<number>)"),
        },
        Some(t) => match t.trim_start_matches(':').parse::<u16>() {
            Ok(port) => print!("{}", graph.explain_conn(port)),
            Err(_) => eprintln!("--explain: bad target {t:?} (want f<frame> or <port>)"),
        },
        None => {
            print!("{}", graph.summary());
            println!();
            print!("{}", graph.explain_conn(80));
        }
    }
}

/// Serializes the run for `BENCH_causal.json`: workload parameters,
/// journey fates, attribution coverage, and per-cause/per-loss counts.
pub fn to_json(graph: &CausalGraph) -> String {
    let arrived = graph
        .journeys
        .iter()
        .filter(|j| j.fate == JourneyFate::Arrived)
        .count();
    let in_flight = graph
        .journeys
        .iter()
        .filter(|j| j.fate == JourneyFate::InFlight)
        .count();
    let mut out = String::from("{\n  \"benchmark\": \"causal_attribution\",\n");
    out.push_str(&format!(
        "  \"workload\": {{\"table\": 2, \"org\": \"user_library\", \"total_bytes\": {CAUSAL_TOTAL}, \"user_packet\": {CAUSAL_PACKET}, \"seed\": {CAUSAL_SEED}, \"loss\": {CAUSAL_LOSS}}},\n"
    ));
    out.push_str(&format!(
        "  \"journeys\": {{\"total\": {}, \"arrived\": {arrived}, \"lost\": {}, \"in_flight\": {in_flight}}},\n",
        graph.journeys.len(),
        graph.losses().count(),
    ));
    out.push_str(&format!(
        "  \"rexmits\": {},\n  \"attribution_coverage\": {:.4},\n  \"superseded_losses\": {},\n",
        graph.rexmits.len(),
        graph.coverage(),
        superseded_count(graph),
    ));
    out.push_str("  \"causes\": {");
    for (i, (label, n)) in graph.cause_counts().into_iter().enumerate() {
        out.push_str(&format!(
            "{}\"{label}\": {n}",
            if i > 0 { ", " } else { "" }
        ));
    }
    out.push_str("},\n  \"losses\": {");
    for (i, (label, n)) in graph.loss_counts().into_iter().enumerate() {
        out.push_str(&format!(
            "{}\"{label}\": {n}",
            if i > 0 { ", " } else { "" }
        ));
    }
    out.push_str("}\n}\n");
    out
}

/// The CI gate body: oracle check, `BENCH_causal.json`, golden Chrome
/// trace diff. Returns the human verdict lines to print on success.
pub fn gate() -> Result<Vec<String>, String> {
    let graph = causal_section();
    oracle_check(&graph)?;
    if graph.rexmits.is_empty() || graph.losses().next().is_none() {
        return Err("seeded plan injected no loss — the oracle checked nothing".into());
    }
    std::fs::write("BENCH_causal.json", to_json(&graph))
        .map_err(|e| format!("write BENCH_causal.json: {e}"))?;
    let trace = graph.render_chrome_trace();
    unp_trace::json::parse(&trace).map_err(|e| format!("chrome trace is not valid JSON: {e}"))?;
    let golden = std::fs::read_to_string(GOLDEN_TRACE)
        .map_err(|e| format!("read {GOLDEN_TRACE}: {e} (regenerate with --explain-baseline)"))?;
    if trace != golden {
        return Err(format!(
            "chrome trace diverged from {GOLDEN_TRACE} ({} vs {} bytes) — review, then refresh with --explain-baseline",
            trace.len(),
            golden.len()
        ));
    }
    Ok(vec![
        format!(
            "causal gate: {} journeys, {} rexmits, {} losses, coverage {:.0}%",
            graph.journeys.len(),
            graph.rexmits.len(),
            graph.losses().count(),
            graph.coverage() * 100.0
        ),
        format!("causal gate: chrome trace matches {GOLDEN_TRACE}"),
        "wrote BENCH_causal.json".into(),
    ])
}

/// Regenerates the golden Chrome trace and `BENCH_causal.json` (the
/// `--explain-baseline` mode; still oracle-checked so a broken run can't
/// become the pin).
pub fn baseline() -> Result<Vec<String>, String> {
    let graph = causal_section();
    oracle_check(&graph)?;
    std::fs::write("BENCH_causal.json", to_json(&graph))
        .map_err(|e| format!("write BENCH_causal.json: {e}"))?;
    std::fs::write(GOLDEN_TRACE, graph.render_chrome_trace())
        .map_err(|e| format!("write {GOLDEN_TRACE}: {e}"))?;
    Ok(vec![
        format!("wrote {GOLDEN_TRACE}"),
        "wrote BENCH_causal.json".into(),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_run_passes_its_own_oracle() {
        let graph = causal_section();
        assert!(
            graph.losses().next().is_some(),
            "the seeded plan must inject at least one loss"
        );
        assert!(!graph.rexmits.is_empty(), "losses must force retransmits");
        oracle_check(&graph).expect("fault-plan oracle");
        let json = to_json(&graph);
        let v = unp_trace::json::parse(&json).expect("BENCH_causal.json parses");
        assert_eq!(
            v.get("attribution_coverage")
                .and_then(unp_trace::json::Value::as_f64),
            Some(1.0)
        );
    }
}
