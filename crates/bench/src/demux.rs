//! Demux section of `--timings`: what the flow-table fast path does for
//! the reproduction itself.
//!
//! Two measurements, both host wall-clock (the *modeled* 1993 demux costs
//! are unchanged by design — see `unp_kernel` docs):
//!
//! * **Workload counters** — a Table-2 bulk run with the software-demux
//!   organization, reporting how many frames the flow table decided vs.
//!   how many fell back to the filter scan, and the average modeled
//!   filter instructions per packet (what the cost model charged).
//! * **Scaling** — a module populated with N active connection bindings,
//!   classifying a frame for the *last*-installed one (the scan's worst
//!   case): ns/packet for the two-tier `classify` against the pure
//!   linear `classify_scan_reference`, at N ∈ {1, 8, 64, 512}. The fast
//!   path should be flat in N; the scan, linear. Results land in
//!   `BENCH_demux.json`.

use std::rc::Rc;
use std::time::Instant;

use unp_buffers::OwnerTag;
use unp_core::world::{connect, listen};
use unp_core::{build_two_hosts, BulkSender, Network, OrgKind, SinkApp, TransferStats};
use unp_filter::programs::DemuxSpec;
use unp_kernel::template::HeaderTemplate;
use unp_kernel::{DemuxStats, NetIoModule};
use unp_tcp::TcpConfig;
use unp_wire::Ipv4Repr;
use unp_wire::{EtherType, EthernetRepr, IpProtocol, Ipv4Addr, MacAddr, SeqNum, TcpFlags, TcpRepr};

/// The channel counts the scaling sweep visits.
pub const SCALING_COUNTS: [usize; 4] = [1, 8, 64, 512];

/// One point of the scaling sweep.
pub struct ScalingPoint {
    /// Active connection bindings installed.
    pub channels: usize,
    /// ns/packet through the two-tier `classify` (flow-table hit).
    pub flow_ns: f64,
    /// ns/packet through the pure linear scan.
    pub scan_ns: f64,
}

/// The whole demux report.
pub struct DemuxSection {
    /// Software-demux counters from the Table-2 bulk workload
    /// (user-library organization on Ethernet), summed over both hosts.
    pub workload: DemuxStats,
    pub scaling: Vec<ScalingPoint>,
}

impl DemuxSection {
    /// Fast-path flatness: ns/packet at the largest sweep point over
    /// ns/packet at the second-smallest (8 channels). The acceptance bar
    /// is ±20% — O(1) demux must not care how many connections exist.
    pub fn fast_path_flatness(&self) -> f64 {
        let at = |n: usize| {
            self.scaling
                .iter()
                .find(|p| p.channels == n)
                .expect("sweep point")
                .flow_ns
        };
        at(512) / at(8)
    }
}

const LOCAL: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

pub(crate) fn spec_for(i: usize) -> DemuxSpec {
    // Unique (remote ip, remote port) per index without u8/u16 overflow up
    // to well past 10^6 channels: the low 60 000 indices cycle the port
    // space, the high bits land in the second IP octet. For i < 60 000
    // this is byte-identical to the historical single-octet scheme.
    let (hi, lo) = (i / 60_000, i % 60_000);
    DemuxSpec {
        link_header_len: 14,
        protocol: IpProtocol::Tcp,
        local_ip: LOCAL,
        local_port: 80,
        remote_ip: Some(Ipv4Addr::new(
            10,
            1 + hi as u8,
            (lo / 250) as u8,
            (lo % 250) as u8,
        )),
        remote_port: Some(1024 + lo as u16),
    }
}

pub(crate) fn template_for(spec: &DemuxSpec) -> HeaderTemplate {
    HeaderTemplate {
        link_header_len: 14,
        src_mac: None,
        dst_mac: None,
        ethertype: EtherType::Ipv4,
        protocol: IpProtocol::Tcp,
        src_ip: spec.local_ip,
        dst_ip: spec.remote_ip.expect("connection spec"),
        src_port: spec.local_port,
        dst_port: spec.remote_port,
        bqi: None,
    }
}

/// A module with `n` active connection bindings, plus a frame addressed to
/// the last-installed one — the linear scan's worst case, the flow table's
/// indifferent case.
pub fn populated_module(n: usize) -> (NetIoModule, Vec<u8>) {
    populated_module_slots(n, 8)
}

/// [`populated_module`] with the ring-slot count exposed: the 10^5–10^6
/// scale sweep uses one-slot rings so channel-count, not ring capacity,
/// dominates the measured footprint.
pub fn populated_module_slots(n: usize, slots: usize) -> (NetIoModule, Vec<u8>) {
    let mut m = NetIoModule::new();
    for i in 0..n {
        let spec = spec_for(i);
        let (id, ..) = m.create_channel(OwnerTag(1), &spec, template_for(&spec), slots, 2048);
        m.activate(id);
    }
    let last = spec_for(n - 1);
    let remote = last.remote_ip.expect("connection spec");
    let seg = TcpRepr {
        src_port: last.remote_port.expect("connection spec"),
        dst_port: last.local_port,
        seq: SeqNum(1),
        ack_num: SeqNum(0),
        flags: TcpFlags::ack(),
        window: 8192,
        mss: None,
    }
    .build_segment(remote, LOCAL, &[0u8; 64]);
    let ip = Ipv4Repr::simple(remote, LOCAL, IpProtocol::Tcp, seg.len());
    let frame = EthernetRepr {
        dst: MacAddr::from_host_index(2),
        src: MacAddr::from_host_index(1),
        ethertype: EtherType::Ipv4,
    }
    .build_frame(&ip.build_packet(&seg));
    (m, frame)
}

/// Best-of-`reps` ns/op — the minimum is the least-noise estimator for a
/// deterministic operation.
pub(crate) fn time_ns(mut f: impl FnMut(), iters: u64, reps: u32) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t0.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

/// Runs the scaling sweep.
pub fn scaling_sweep() -> Vec<ScalingPoint> {
    SCALING_COUNTS
        .iter()
        .map(|&n| {
            let (m, frame) = populated_module(n);
            // Sanity: both paths agree on the target before we time them.
            let (t1, i1, _) = m.classify(&frame);
            assert_eq!((t1, i1), m.classify_scan_reference(&frame));
            assert!(t1.is_some(), "scaling frame must hit");
            let flow_ns = time_ns(
                || {
                    std::hint::black_box(m.classify(std::hint::black_box(&frame)));
                },
                200_000,
                3,
            );
            // Fewer iterations where each op is O(n): keep total work flat.
            let scan_iters = (1_000_000 / n as u64).max(2_000);
            let scan_ns = time_ns(
                || {
                    std::hint::black_box(m.classify_scan_reference(std::hint::black_box(&frame)));
                },
                scan_iters,
                3,
            );
            ScalingPoint {
                channels: n,
                flow_ns,
                scan_ns,
            }
        })
        .collect()
}

/// Runs the Table-2 bulk workload under the user-library organization on
/// Ethernet (software demux) and returns the demux counters, summed over
/// both hosts.
pub fn workload_stats(total: u64) -> DemuxStats {
    let (mut w, mut eng) = build_two_hosts(Network::Ethernet, OrgKind::UserLibrary);
    let stats = TransferStats::new_shared();
    let st = Rc::clone(&stats);
    let cfg = TcpConfig::bulk_transfer();
    listen(
        &mut w,
        1,
        80,
        cfg.clone(),
        Box::new(move || Box::new(SinkApp::new(Rc::clone(&st)))),
    );
    connect(
        &mut w,
        &mut eng,
        0,
        (Ipv4Addr::new(10, 0, 0, 2), 80),
        cfg,
        Box::new(BulkSender::new(total, 4096)),
        4096,
    );
    assert!(eng.run(&mut w, 50_000_000), "bulk run did not drain");
    assert_eq!(stats.borrow().bytes_received, total, "transfer incomplete");
    let mut sum = DemuxStats::default();
    for h in &w.hosts {
        let s = h.netio.demux_stats();
        sum.flow_hits += s.flow_hits;
        sum.listen_hits += s.listen_hits;
        sum.scan_fallbacks += s.scan_fallbacks;
        sum.packets += s.packets;
        sum.filter_instrs += s.filter_instrs;
    }
    sum
}

/// Builds the full demux section.
pub fn demux_section(total: u64) -> DemuxSection {
    DemuxSection {
        workload: workload_stats(total),
        scaling: scaling_sweep(),
    }
}

/// Prints the demux report.
pub fn print_report(d: &DemuxSection) {
    let w = &d.workload;
    println!("== Demux fast path: Table-2 bulk workload (software demux) ==");
    println!(
        "  {} packets: {} flow-table hits, {} listen-table hits, {} scan fallbacks ({:.1}% keyed fast path)",
        w.packets,
        w.flow_hits,
        w.listen_hits,
        w.scan_fallbacks,
        w.keyed_hit_rate() * 100.0
    );
    println!(
        "  avg modeled filter instructions per packet: {:.1} (scan-equivalent; unchanged by the fast path)",
        w.avg_filter_instrs()
    );
    println!();
    println!("== Demux scaling: classify one frame among N connection bindings ==");
    println!(
        "  {:>9} {:>16} {:>16} {:>9}",
        "channels", "flow-table (ns)", "linear scan (ns)", "scan/flow"
    );
    for p in &d.scaling {
        println!(
            "  {:>9} {:>16.1} {:>16.1} {:>8.1}x",
            p.channels,
            p.flow_ns,
            p.scan_ns,
            p.scan_ns / p.flow_ns
        );
    }
    println!(
        "  fast path 512 vs 8 channels: {:.2}x (flat ≡ 1.0; acceptance ±20%)",
        d.fast_path_flatness()
    );
    println!();
}

/// Serializes the demux section as JSON (hand-rolled: the workspace is
/// dependency-free by design).
pub fn to_json(d: &DemuxSection) -> String {
    let w = &d.workload;
    let mut out = String::new();
    out.push_str("{\n  \"benchmark\": \"flow_table_demux\",\n");
    out.push_str(&format!(
        "  \"workload\": {{\"table\": 2, \"packets\": {}, \"flow_hits\": {}, \"listen_hits\": {}, \"scan_fallbacks\": {}, \"flow_hit_rate\": {:.4}, \"keyed_hit_rate\": {:.4}, \"avg_filter_instrs\": {:.2}}},\n",
        w.packets,
        w.flow_hits,
        w.listen_hits,
        w.scan_fallbacks,
        w.flow_hit_rate(),
        w.keyed_hit_rate(),
        w.avg_filter_instrs()
    ));
    out.push_str("  \"scaling\": [\n");
    for (i, p) in d.scaling.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"channels\": {}, \"flow_ns_per_packet\": {:.1}, \"scan_ns_per_packet\": {:.1}, \"scan_over_flow\": {:.2}}}{}\n",
            p.channels,
            p.flow_ns,
            p.scan_ns,
            p.scan_ns / p.flow_ns,
            if i + 1 < d.scaling.len() { "," } else { "" }
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"fast_path_flatness_8_to_512\": {:.3}\n}}\n",
        d.fast_path_flatness()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn populated_module_hits_last_channel_on_flow_path() {
        for n in [1usize, 8, 64] {
            let (m, frame) = populated_module(n);
            assert_eq!(m.flow_table_len(), n, "all bindings must distill");
            let (target, instrs, path) = m.classify(&frame);
            assert_eq!(path, unp_kernel::DemuxPath::FlowTable);
            assert_eq!((target, instrs), m.classify_scan_reference(&frame));
        }
    }

    #[test]
    fn workload_mostly_flow_hits() {
        // The bulk transfer's data packets all carry a fully-specified
        // 5-tuple for an installed connection binding: the flow table must
        // decide the overwhelming majority of them.
        let w = workload_stats(100_000);
        assert!(w.packets > 0, "workload moved no packets");
        assert!(
            w.flow_hit_rate() > 0.5,
            "fast path decided only {:.1}% of {} packets",
            w.flow_hit_rate() * 100.0,
            w.packets
        );
    }

    #[test]
    fn fast_path_flat_scan_linear() {
        // Semantic shape of the sweep, with generous slack so debug builds
        // and loaded CI hosts pass: the flow path must not grow anything
        // like linearly from 8 to 512 channels (64x work for the scan),
        // and the scan must visibly grow. The precise ±20% flatness bar is
        // checked on the release artifact in BENCH_demux.json.
        let sweep = scaling_sweep();
        let at = |n: usize| sweep.iter().find(|p| p.channels == n).unwrap();
        assert!(
            at(512).flow_ns < at(8).flow_ns * 5.0,
            "flow path grew {:.1}x from 8 to 512 channels",
            at(512).flow_ns / at(8).flow_ns
        );
        assert!(
            at(512).scan_ns > at(8).scan_ns * 2.0,
            "scan path only grew {:.1}x from 8 to 512 channels",
            at(512).scan_ns / at(8).scan_ns
        );
    }

    #[test]
    fn json_is_shaped() {
        let d = DemuxSection {
            workload: DemuxStats {
                flow_hits: 85,
                listen_hits: 5,
                scan_fallbacks: 10,
                packets: 100,
                filter_instrs: 700,
            },
            scaling: SCALING_COUNTS
                .iter()
                .map(|&n| ScalingPoint {
                    channels: n,
                    flow_ns: 50.0,
                    scan_ns: 50.0 * n as f64,
                })
                .collect(),
        };
        let j = to_json(&d);
        assert!(j.contains("\"fast_path_flatness_8_to_512\""));
        assert!(j.contains("\"channels\": 512"));
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "unbalanced JSON"
        );
    }
}
