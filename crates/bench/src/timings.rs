//! `--timings` mode: wall-clock and allocation accounting for the table
//! reproductions.
//!
//! The paper tables report *simulated* 1993 time; this module reports what
//! the reproduction itself costs to run — wall-clock per table, discrete
//! events executed, and the zero-copy frame path's allocation behaviour
//! (fresh heap buffers vs. pool-recycled ones, bytes memcpy'd). It also
//! runs the Table-2 bulk workload twice, with the frame pool enabled and
//! disabled, to measure what the freelist saves; the results land in
//! `BENCH_zero_copy.json` so successive commits can be compared.

use std::rc::Rc;
use std::time::Instant;

use unp_buffers::{frame_stats, reset_frame_stats, FramePool, FrameStats};
use unp_core::world::{connect, listen};
use unp_core::{build_two_hosts, BulkSender, Network, OrgKind, SinkApp, TransferStats};
use unp_tcp::TcpConfig;
use unp_wire::Ipv4Addr;

/// One timed table reproduction.
pub struct Timing {
    pub name: &'static str,
    pub wall_ms: f64,
    pub events: u64,
    pub stats: FrameStats,
}

/// Runs `f` with the frame and event counters zeroed, returning what it
/// spent.
pub fn timed(name: &'static str, f: impl FnOnce()) -> Timing {
    reset_frame_stats();
    unp_sim::reset_events_executed();
    let t0 = Instant::now();
    f();
    Timing {
        name,
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        events: unp_sim::events_executed(),
        stats: frame_stats(),
    }
}

/// One side of the pooled-vs-unpooled comparison.
pub struct PoolRun {
    pub throughput_mbps: f64,
    pub stats: FrameStats,
}

/// Frame-pool ablation on the reproduction itself: the Table-2 bulk
/// workload (user-library organization, Ethernet) with the pool recycling
/// buffers vs. every allocation fresh.
pub struct PoolComparison {
    pub user_packet: usize,
    pub total_bytes: u64,
    pub pooled: PoolRun,
    pub unpooled: PoolRun,
}

impl PoolComparison {
    /// Heap allocations per delivered frame, pooled path.
    pub fn pooled_allocs_per_frame(&self) -> f64 {
        allocs_per_frame(&self.pooled.stats)
    }

    /// Heap allocations per delivered frame, pool disabled.
    pub fn unpooled_allocs_per_frame(&self) -> f64 {
        allocs_per_frame(&self.unpooled.stats)
    }

    /// How many times fewer heap allocations the pool makes per frame.
    pub fn alloc_reduction_factor(&self) -> f64 {
        self.unpooled_allocs_per_frame() / self.pooled_allocs_per_frame()
    }
}

fn allocs_per_frame(s: &FrameStats) -> f64 {
    let frames = s.frames_fresh + s.frames_recycled;
    if frames == 0 {
        return 0.0;
    }
    s.frames_fresh as f64 / frames as f64
}

/// Runs the Table-2 bulk transfer once, with the given pool policy, and
/// returns throughput plus the frame counters for the steady-state run
/// (world construction excluded).
fn table2_bulk(user_packet: usize, total: u64, pooled: bool) -> PoolRun {
    let (mut w, mut eng) = build_two_hosts(Network::Ethernet, OrgKind::UserLibrary);
    if !pooled {
        w.pool = FramePool::disabled(w.pool.buf_size());
    }
    let stats = TransferStats::new_shared();
    let st = Rc::clone(&stats);
    let mut cfg = TcpConfig::bulk_transfer();
    cfg.mss_local = user_packet.min(1460);
    listen(
        &mut w,
        1,
        80,
        cfg.clone(),
        Box::new(move || Box::new(SinkApp::new(Rc::clone(&st)))),
    );
    connect(
        &mut w,
        &mut eng,
        0,
        (Ipv4Addr::new(10, 0, 0, 2), 80),
        cfg,
        Box::new(BulkSender::new(total, user_packet)),
        user_packet,
    );
    reset_frame_stats();
    assert!(eng.run(&mut w, 50_000_000), "bulk run did not drain");
    let frame_counters = frame_stats();
    let s = stats.borrow();
    assert_eq!(s.bytes_received, total, "transfer incomplete");
    PoolRun {
        throughput_mbps: s.throughput_bps().expect("bytes moved") / 1e6,
        stats: frame_counters,
    }
}

/// Runs the pooled-vs-unpooled ablation.
pub fn pool_comparison(user_packet: usize, total_bytes: u64) -> PoolComparison {
    PoolComparison {
        user_packet,
        total_bytes,
        pooled: table2_bulk(user_packet, total_bytes, true),
        unpooled: table2_bulk(user_packet, total_bytes, false),
    }
}

/// Prints the timings report.
pub fn print_report(timings: &[Timing], cmp: &PoolComparison) {
    println!("== Timings: reproduction runtime (host wall-clock) ==");
    println!(
        "{:<12} {:>10} {:>12} {:>10} {:>10} {:>8} {:>12}",
        "table", "wall (ms)", "events", "fresh", "recycled", "cow", "bytes copied"
    );
    for t in timings {
        println!(
            "{:<12} {:>10.1} {:>12} {:>10} {:>10} {:>8} {:>12}",
            t.name,
            t.wall_ms,
            t.events,
            t.stats.frames_fresh,
            t.stats.frames_recycled,
            t.stats.cow_copies,
            t.stats.bytes_copied
        );
    }
    println!();
    println!(
        "== Frame pool ablation: Table-2 bulk workload ({} B writes, {} B total) ==",
        cmp.user_packet, cmp.total_bytes
    );
    for (label, run) in [("pooled", &cmp.pooled), ("pool disabled", &cmp.unpooled)] {
        println!(
            "  {label:<14} {:>7.1} Mb/s   {:>7} fresh  {:>7} recycled  ({:.3} heap allocs/frame)",
            run.throughput_mbps,
            run.stats.frames_fresh,
            run.stats.frames_recycled,
            allocs_per_frame(&run.stats)
        );
    }
    println!(
        "  pool cuts heap allocations {:.1}x per delivered frame",
        cmp.alloc_reduction_factor()
    );
    println!();
}

fn json_stats(s: &FrameStats) -> String {
    format!(
        "{{\"frames_fresh\": {}, \"frames_recycled\": {}, \"cow_copies\": {}, \"bytes_copied\": {}}}",
        s.frames_fresh, s.frames_recycled, s.cow_copies, s.bytes_copied
    )
}

/// Serializes the report as JSON (hand-rolled: the workspace is
/// dependency-free by design).
pub fn to_json(timings: &[Timing], cmp: &PoolComparison) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"benchmark\": \"zero_copy_frame_path\",\n  \"tables\": [\n");
    for (i, t) in timings.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"wall_ms\": {:.3}, \"events\": {}, \"frames\": {}}}{}\n",
            t.name,
            t.wall_ms,
            t.events,
            json_stats(&t.stats),
            if i + 1 < timings.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"pool_comparison\": {\n");
    out.push_str(&format!(
        "    \"workload\": {{\"table\": 2, \"user_packet\": {}, \"total_bytes\": {}}},\n",
        cmp.user_packet, cmp.total_bytes
    ));
    for (label, run) in [("pooled", &cmp.pooled), ("unpooled", &cmp.unpooled)] {
        out.push_str(&format!(
            "    \"{label}\": {{\"throughput_mbps\": {:.3}, \"frames\": {}}},\n",
            run.throughput_mbps,
            json_stats(&run.stats)
        ));
    }
    out.push_str(&format!(
        "    \"pooled_allocs_per_frame\": {:.4},\n    \"unpooled_allocs_per_frame\": {:.4},\n    \"alloc_reduction_factor\": {:.2}\n",
        cmp.pooled_allocs_per_frame(),
        cmp.unpooled_allocs_per_frame(),
        cmp.alloc_reduction_factor()
    ));
    out.push_str("  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_halves_allocations_on_bulk_workload() {
        // The tentpole's acceptance bar: >= 2x fewer heap allocations per
        // delivered frame with the pool on, same throughput result.
        let cmp = pool_comparison(4096, 200_000);
        assert!(
            cmp.alloc_reduction_factor() >= 2.0,
            "pool saved only {:.2}x (pooled {:.4} vs unpooled {:.4} allocs/frame)",
            cmp.alloc_reduction_factor(),
            cmp.pooled_allocs_per_frame(),
            cmp.unpooled_allocs_per_frame()
        );
        assert!(
            (cmp.pooled.throughput_mbps - cmp.unpooled.throughput_mbps).abs() < 1e-9,
            "pooling must not change simulation results"
        );
    }

    #[test]
    fn json_is_shaped() {
        let t = vec![Timing {
            name: "table2",
            wall_ms: 1.5,
            events: 42,
            stats: FrameStats::default(),
        }];
        let cmp = pool_comparison(1024, 50_000);
        let j = to_json(&t, &cmp);
        assert!(j.contains("\"alloc_reduction_factor\""));
        assert!(j.contains("\"table2\""));
        // Balanced braces — cheap well-formedness check without a parser.
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "unbalanced JSON"
        );
    }
}
