//! `--profile` mode: journal-driven critical-path decomposition plus the
//! channel-churn scaling sweep.
//!
//! Two halves, mirroring the two clocks in play:
//!
//! * **Stage decomposition** (simulated time, deterministic): the Table-2
//!   bulk workload runs per user packet size with the journal recording,
//!   [`unp_trace::profile::Profile::build`] joins it into per-frame
//!   [`PathTrace`](unp_trace::profile::PathTrace)s, and each delivered
//!   frame's end-to-end latency is decomposed into per-stage components
//!   that sum exactly (no tolerance — sim time doesn't jitter). Signaled
//!   wakeup spans are cross-checked against the PR 3 cost model: exact,
//!   or strictly shorter when a running batch continuation scooped the
//!   frame; never longer.
//! * **Churn sweep** (host wall-clock): a module populated with N ∈
//!   {8, 64, 512, 4096} active channels, timing `rebuild_active` in
//!   isolation (the O(N) cache rebuild every activation/teardown pays),
//!   a full create→activate→destroy churn cycle (two rebuilds), and
//!   both demux tiers — the ROADMAP's "profile `rebuild_active` under
//!   churn at scale" item.
//!
//! `repro-tables --profile` prints both and writes `BENCH_profile.json`.
//! The stage means also feed the CI perf gate: `--profile-baseline`
//! writes `BENCH_profile_baseline.json` from a quick run, and
//! `--profile-gate <baseline>` re-runs the quick workload and fails on
//! regression past the tolerance band (warning on improvement, so the
//! baseline gets refreshed).

use std::rc::Rc;

use unp_buffers::OwnerTag;
use unp_core::world::{connect, listen};
use unp_core::{build_two_hosts, BulkSender, Network, OrgKind, SinkApp, TransferStats};
use unp_sim::CostModel;
use unp_tcp::TcpConfig;
use unp_trace::profile::{PathOutcome, Profile, Stage};
use unp_wire::Ipv4Addr;

use crate::demux::{populated_module, spec_for, template_for, time_ns};
use crate::tables::T2_SIZES;
use crate::trace::wakeup_model;

/// The channel counts the churn sweep visits (the ISSUE's 8→4096 span).
pub const CHURN_COUNTS: [usize; 4] = [8, 64, 512, 4096];

/// Relative tolerance of the CI perf gate.
pub const GATE_TOLERANCE: f64 = 0.05;

/// One stage-decomposition row: the profile of one Table-2 bulk run.
pub struct ProfileRow {
    /// User packet size of the workload.
    pub user_packet: usize,
    /// The joined profile.
    pub profile: Profile,
    /// Signaled wakeup spans equal to the modeled cost.
    pub wakeup_exact: u64,
    /// Signaled wakeup spans strictly under the model (batch-scooped).
    pub wakeup_scooped: u64,
    /// Signaled wakeup spans over the model — must be zero.
    pub wakeup_over: u64,
}

/// One churn-sweep point (host wall-clock nanoseconds per operation).
pub struct ChurnPoint {
    /// Active channels installed.
    pub channels: usize,
    /// One isolated `rebuild_active` pass.
    pub rebuild_ns: f64,
    /// A full create→activate→destroy cycle (two rebuilds plus flow-table
    /// insert/remove and ring setup/teardown).
    pub churn_ns: f64,
    /// Flow-table classify of a hit frame.
    pub flow_ns: f64,
    /// Linear-scan classify of the same frame (worst case: last binding).
    pub scan_ns: f64,
    /// Exact-match entries in the flow table.
    pub flow_table_len: usize,
}

/// Runs the Table-2 bulk workload with the journal recording and joins
/// the result into a [`ProfileRow`].
fn profiled_bulk(user_packet: usize, total: u64, costs: &CostModel) -> ProfileRow {
    unp_trace::journal_start();
    let (mut w, mut eng) = build_two_hosts(Network::Ethernet, OrgKind::UserLibrary);
    let stats = TransferStats::new_shared();
    let st = Rc::clone(&stats);
    let mut cfg = TcpConfig::bulk_transfer();
    cfg.mss_local = user_packet.min(1460);
    listen(
        &mut w,
        1,
        80,
        cfg.clone(),
        Box::new(move || Box::new(SinkApp::new(Rc::clone(&st)))),
    );
    connect(
        &mut w,
        &mut eng,
        0,
        (Ipv4Addr::new(10, 0, 0, 2), 80),
        cfg,
        Box::new(BulkSender::new(total, user_packet)),
        user_packet,
    );
    assert!(eng.run(&mut w, 50_000_000), "profiled run did not drain");
    let records = unp_trace::journal_stop();
    assert_eq!(stats.borrow().bytes_received, total, "transfer incomplete");

    let profile = Profile::build(&records);
    profile
        .check_consistency()
        .expect("stage decomposition must be self-consistent");

    // Cross-check every signaled frame's ring→wakeup span against the
    // PR 3 model: exact, or strictly shorter when scooped by a running
    // batch continuation. Over the model would mean the join or the cost
    // charging is wrong.
    let (mut exact, mut scooped, mut over) = (0u64, 0u64, 0u64);
    for tr in &profile.traces {
        if tr.signaled != Some(true) {
            continue;
        }
        let (Some(ring), Some(wake)) = (tr.stage_time(Stage::Ring), tr.stage_time(Stage::Wakeup))
        else {
            continue;
        };
        let span = wake - ring;
        let model = wakeup_model(costs, tr.filter_instrs as usize);
        if span == model {
            exact += 1;
        } else if span < model {
            scooped += 1;
        } else {
            over += 1;
        }
    }
    ProfileRow {
        user_packet,
        profile,
        wakeup_exact: exact,
        wakeup_scooped: scooped,
        wakeup_over: over,
    }
}

/// Runs the profiled Table-2 sweep.
pub fn profile_section(total: u64) -> Vec<ProfileRow> {
    let costs = CostModel::calibrated_1993();
    T2_SIZES
        .iter()
        .map(|&size| profiled_bulk(size, total, &costs))
        .collect()
}

/// Runs the churn sweep.
pub fn churn_sweep() -> Vec<ChurnPoint> {
    CHURN_COUNTS
        .iter()
        .map(|&n| {
            let (mut m, frame) = populated_module(n);
            let flow_table_len = m.flow_table_len();
            // O(n) ops get fewer iterations so total sweep work stays flat.
            let on_iters = (1_000_000 / n as u64).max(100);
            let rebuild_ns = time_ns(|| m.force_rebuild_active(), on_iters, 3);
            let churn_ns = time_ns(
                || {
                    let spec = spec_for(n);
                    let (id, ..) =
                        m.create_channel(OwnerTag(1), &spec, template_for(&spec), 8, 2048);
                    m.activate(id);
                    assert!(m.destroy_channel(id, OwnerTag(1)));
                },
                on_iters,
                3,
            );
            let flow_ns = time_ns(
                || {
                    std::hint::black_box(m.classify(std::hint::black_box(&frame)));
                },
                200_000,
                3,
            );
            let scan_iters = (1_000_000 / n as u64).max(500);
            let scan_ns = time_ns(
                || {
                    std::hint::black_box(m.classify_scan_reference(std::hint::black_box(&frame)));
                },
                scan_iters,
                3,
            );
            ChurnPoint {
                channels: n,
                rebuild_ns,
                churn_ns,
                flow_ns,
                scan_ns,
                flow_table_len,
            }
        })
        .collect()
}

/// The CI-gated means: per-stage component means pooled over every row
/// (count-weighted — deterministic sim time, so these are exactly
/// reproducible for a fixed workload), plus the pooled end-to-end mean.
pub fn gate_means(rows: &[ProfileRow]) -> Vec<(&'static str, f64)> {
    let pooled = |hists: Vec<&unp_trace::Histogram>| {
        let count: u64 = hists.iter().map(|h| h.count()).sum();
        let sum: u128 = hists.iter().map(|h| h.sum()).sum();
        if count > 0 {
            sum as f64 / count as f64
        } else {
            0.0
        }
    };
    let mut out = Vec::new();
    for &s in Stage::ALL.iter().skip(1) {
        out.push((
            s.label(),
            pooled(rows.iter().map(|r| &r.profile.stages[s as usize]).collect()),
        ));
    }
    out.push((
        "end_to_end",
        pooled(rows.iter().map(|r| &r.profile.end_to_end).collect()),
    ));
    out
}

/// Prints the profile report and asserts the cross-checks.
pub fn print_report(rows: &[ProfileRow], churn: &[ChurnPoint]) {
    println!("== Profile: critical-path latency decomposition (journal join) ==");
    println!("   (Table-2 bulk workload, user-library org, Ethernet; sim ns)");
    println!(
        "{:<8} {:>9} {:>10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>12}",
        "pkt (B)",
        "delivered",
        "e2e mean",
        "demux",
        "ring",
        "wakeup",
        "tcp",
        "deliver",
        "wk ex/sc/ov"
    );
    for r in rows {
        let p = &r.profile;
        let mean = |s: Stage| p.stages[s as usize].mean().unwrap_or(0.0);
        println!(
            "{:<8} {:>9} {:>10.0} {:>8.0} {:>8.0} {:>8.0} {:>8.0} {:>8.0} {:>5}/{}/{}",
            r.user_packet,
            p.delivered(),
            p.end_to_end.mean().unwrap_or(0.0),
            mean(Stage::Demux),
            mean(Stage::Ring),
            mean(Stage::Wakeup),
            mean(Stage::Tcp),
            mean(Stage::Deliver),
            r.wakeup_exact,
            r.wakeup_scooped,
            r.wakeup_over,
        );
        assert_eq!(
            r.wakeup_over, 0,
            "a signaled wakeup span can never exceed the modeled cost"
        );
        assert!(p.delivered() > 0, "workload delivered nothing");
        // Outcome accounting covers every trace.
        let total: u64 = PathOutcome::ALL.iter().map(|&o| p.outcome_count(o)).sum();
        assert_eq!(total as usize, p.traces.len(), "outcome counts must tile");
    }
    println!("  per-frame stage components sum exactly to the journal end-to-end");
    println!("  latency (check_consistency); signaled wakeups match the PR 3 model");
    println!();
    println!("== Churn sweep: rebuild_active and demux tiers vs channel count ==");
    println!("   (host wall-clock ns/op; churn = create+activate+destroy)");
    println!(
        "  {:>9} {:>12} {:>12} {:>10} {:>12} {:>10}",
        "channels", "rebuild", "churn", "flow", "scan", "flow tbl"
    );
    for c in churn {
        println!(
            "  {:>9} {:>12.1} {:>12.1} {:>10.1} {:>12.1} {:>10}",
            c.channels, c.rebuild_ns, c.churn_ns, c.flow_ns, c.scan_ns, c.flow_table_len
        );
    }
    println!();
}

/// Serializes the full profile report as JSON (hand-rolled: the
/// workspace is dependency-free by design) — `BENCH_profile.json`.
pub fn to_json(rows: &[ProfileRow], churn: &[ChurnPoint], total: u64) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"benchmark\": \"critical_path_profile\",\n");
    out.push_str(&format!(
        "  \"workload\": {{\"table\": 2, \"org\": \"user_library\", \"network\": \"ethernet\", \"total_bytes\": {total}}},\n"
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let p = &r.profile;
        out.push_str(&format!(
            "    {{\"user_packet\": {}, \"delivered\": {}, \"wakeup_exact\": {}, \"wakeup_scooped\": {}, \"wakeup_over\": {},\n",
            r.user_packet, p.delivered(), r.wakeup_exact, r.wakeup_scooped, r.wakeup_over
        ));
        out.push_str("     \"stage_mean_ns\": {");
        for (j, &s) in Stage::ALL.iter().skip(1).enumerate() {
            out.push_str(&format!(
                "{}\"{}\": {:.1}",
                if j > 0 { ", " } else { "" },
                s.label(),
                p.stages[s as usize].mean().unwrap_or(0.0)
            ));
        }
        out.push_str(&format!(
            "}},\n     \"end_to_end_mean_ns\": {:.1}}}{}\n",
            p.end_to_end.mean().unwrap_or(0.0),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"churn\": [\n");
    for (i, c) in churn.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"channels\": {}, \"rebuild_active_ns\": {:.1}, \"churn_cycle_ns\": {:.1}, \"flow_classify_ns\": {:.1}, \"scan_classify_ns\": {:.1}, \"flow_table_len\": {}}}{}\n",
            c.channels,
            c.rebuild_ns,
            c.churn_ns,
            c.flow_ns,
            c.scan_ns,
            c.flow_table_len,
            if i + 1 < churn.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&gate_json_body(rows));
    out.push_str("}\n");
    out
}

fn gate_json_body(rows: &[ProfileRow]) -> String {
    let mut out = String::from("  \"gate\": {\"stage_mean_ns\": {");
    for (i, (label, mean)) in gate_means(rows).iter().enumerate() {
        out.push_str(&format!(
            "{}\"{label}\": {mean:.1}",
            if i > 0 { ", " } else { "" }
        ));
    }
    out.push_str("}}\n");
    out
}

/// The committed-baseline file: just the gated means.
pub fn baseline_json(rows: &[ProfileRow]) -> String {
    format!("{{\n{}}}\n", gate_json_body(rows))
}

/// Compares current gate means against a committed baseline's JSON text.
/// Returns warnings (improvements past the band — refresh the baseline)
/// or an error describing the first regression past the band.
pub fn check_gate(current: &[(&'static str, f64)], baseline: &str) -> Result<Vec<String>, String> {
    let mut warnings = Vec::new();
    for &(label, cur) in current {
        let needle = format!("\"{label}\":");
        let Some(pos) = baseline.find(&needle) else {
            return Err(format!("baseline has no entry for stage \"{label}\""));
        };
        let rest = baseline[pos + needle.len()..].trim_start();
        let num: String = rest
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.')
            .collect();
        let base: f64 = num
            .parse()
            .map_err(|_| format!("unparseable baseline value for \"{label}\""))?;
        if base == 0.0 {
            continue;
        }
        if cur > base * (1.0 + GATE_TOLERANCE) {
            return Err(format!(
                "stage {label} regressed: {cur:.1} ns vs baseline {base:.1} ns (+{:.1}%, band {:.0}%)",
                (cur / base - 1.0) * 100.0,
                GATE_TOLERANCE * 100.0
            ));
        }
        if cur < base * (1.0 - GATE_TOLERANCE) {
            warnings.push(format!(
                "stage {label} improved: {cur:.1} ns vs baseline {base:.1} ns — refresh the committed baseline"
            ));
        }
    }
    Ok(warnings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiled_run_is_self_consistent() {
        let costs = CostModel::calibrated_1993();
        let r = profiled_bulk(4096, 200_000, &costs);
        let p = &r.profile;
        assert!(p.delivered() > 30, "bulk run must deliver many frames");
        assert_eq!(r.wakeup_over, 0);
        assert!(r.wakeup_exact > 0, "signaled path exercised");
        p.check_consistency().unwrap();
        // Every delivered frame decomposes exactly.
        for tr in p.traces.iter().filter(|t| t.is_complete()) {
            let sum: u64 = tr.components().iter().map(|&(_, dt)| dt).sum();
            assert_eq!(Some(sum), tr.end_to_end());
        }
        // The folded output names the stages with their qualifiers.
        let folded = p.folded();
        assert!(folded.contains("rx;tcp_segment "));
        assert!(folded.contains("rx;wakeup_batch;"));
    }

    #[test]
    fn gate_accepts_itself_and_catches_regressions() {
        let rows_means = vec![("demux_classify", 100.0), ("end_to_end", 1000.0)];
        let baseline = "{\n  \"gate\": {\"stage_mean_ns\": {\"demux_classify\": 100.0, \"end_to_end\": 1000.0}}\n}\n";
        assert!(check_gate(&rows_means, baseline).unwrap().is_empty());
        // +4% sits inside the band; +6% fails.
        let ok = vec![("demux_classify", 104.0), ("end_to_end", 1000.0)];
        assert!(check_gate(&ok, baseline).is_ok());
        let bad = vec![("demux_classify", 106.0), ("end_to_end", 1000.0)];
        assert!(check_gate(&bad, baseline).is_err());
        // -6% passes with a refresh warning.
        let faster = vec![("demux_classify", 94.0), ("end_to_end", 1000.0)];
        let warns = check_gate(&faster, baseline).unwrap();
        assert_eq!(warns.len(), 1);
        // A missing stage is an error, not a silent pass.
        assert!(check_gate(&[("ring_enqueue", 1.0)], baseline).is_err());
    }

    #[test]
    fn churn_point_shapes() {
        // One tiny point, just to pin the API; the real sweep runs in
        // --profile.
        let (mut m, _frame) = populated_module(4);
        let before = m.flow_table_len();
        let spec = spec_for(4);
        let (id, ..) = m.create_channel(OwnerTag(1), &spec, template_for(&spec), 8, 2048);
        m.activate(id);
        assert_eq!(m.flow_table_len(), before + 1);
        assert!(m.destroy_channel(id, OwnerTag(1)));
        assert_eq!(m.flow_table_len(), before);
    }
}
