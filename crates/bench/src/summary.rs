//! `BENCH_summary.json`: one consolidated artifact folding the headline
//! scalar out of every committed `BENCH_*.json`.
//!
//! Each artifact-writing mode leaves a detailed per-mode file; this
//! module re-reads them with [`unp_trace::json`] (the same reader the
//! export tests round-trip through) and pulls a handful of named
//! scalars into one object, so a dashboard — or a reviewer — gets the
//! repo's whole performance story from one file. Sources that have not
//! been generated yet are listed under `"missing"` rather than failing:
//! the summary describes what exists.

use unp_trace::json::{parse, Value};

/// The headline extractions: `(file, [(summary key, path)])` where the
/// path is dot-separated with `[i]`/`[-1]` array indexing.
const SOURCES: &[(&str, &[(&str, &str)])] = &[
    (
        "BENCH_zero_copy.json",
        &[
            (
                "pooled_allocs_per_frame",
                "pool_comparison.pooled_allocs_per_frame",
            ),
            (
                "alloc_reduction_factor",
                "pool_comparison.alloc_reduction_factor",
            ),
        ],
    ),
    (
        "BENCH_demux.json",
        &[
            ("flow_hit_rate", "workload.flow_hit_rate"),
            ("fast_path_flatness_8_to_512", "fast_path_flatness_8_to_512"),
        ],
    ),
    (
        "BENCH_trace.json",
        &[
            ("wakeup_mean_ns", "rows[0].wakeup.mean_ns"),
            ("proc_mean_ns", "rows[0].proc.mean_ns"),
        ],
    ),
    (
        "BENCH_profile.json",
        &[
            ("end_to_end_mean_ns", "gate.stage_mean_ns.end_to_end"),
            (
                "demux_classify_mean_ns",
                "gate.stage_mean_ns.demux_classify",
            ),
        ],
    ),
    (
        "BENCH_demux_scale.json",
        &[
            ("churn_cycle_ns_at_max_scale", "points[-1].churn_cycle_ns"),
            (
                "flow_classify_ns_at_max_scale",
                "points[-1].flow_classify_ns",
            ),
        ],
    ),
    (
        "BENCH_causal.json",
        &[
            ("attribution_coverage", "attribution_coverage"),
            ("rexmits_attributed", "rexmits"),
        ],
    ),
    (
        "BENCH_isolation.json",
        &[
            ("innocent_throughput_ratio_min", "throughput_ratio_min"),
            ("quota_drops_misattributed", "quota_drops_misattributed"),
        ],
    ),
    (
        "BENCH_monitor.json",
        &[
            ("golden_violations", "golden_violations"),
            ("monitor_overhead_ratio", "overhead.ratio"),
            ("peak_observer_mem_bytes", "scale.peak_observer_mem_bytes"),
        ],
    ),
];

/// Walks `path` (`a.b[0].c`, `[-1]` for the last element) through a
/// parsed document.
fn lookup<'a>(v: &'a Value, path: &str) -> Option<&'a Value> {
    let mut cur = v;
    for seg in path.split('.') {
        let (key, idx) = match seg.find('[') {
            Some(i) => (&seg[..i], Some(&seg[i + 1..seg.len() - 1])),
            None => (seg, None),
        };
        if !key.is_empty() {
            cur = cur.get(key)?;
        }
        if let Some(ix) = idx {
            let items = cur.items()?;
            cur = match ix {
                "-1" => items.last()?,
                _ => items.get(ix.parse::<usize>().ok()?)?,
            };
        }
    }
    Some(cur)
}

/// Renders an extracted scalar back out (integers stay integers).
fn scalar(v: &Value) -> Option<String> {
    let n = v.as_f64()?;
    if n.fract() == 0.0 && n.abs() < 1e15 {
        Some(format!("{}", n as i64))
    } else {
        Some(format!("{n}"))
    }
}

/// Builds the consolidated summary from the `BENCH_*.json` files in the
/// current directory (the repo root, where the artifacts live).
pub fn collect() -> String {
    let mut out = String::from("{\n  \"benchmark\": \"summary\",\n  \"sources\": {");
    let mut missing: Vec<&str> = Vec::new();
    let mut first_src = true;
    for &(file, keys) in SOURCES {
        let Ok(text) = std::fs::read_to_string(file) else {
            missing.push(file);
            continue;
        };
        let Ok(doc) = parse(&text) else {
            missing.push(file);
            continue;
        };
        if !first_src {
            out.push(',');
        }
        first_src = false;
        out.push_str(&format!("\n    \"{file}\": {{"));
        let mut first_key = true;
        for &(name, path) in keys {
            let Some(val) = lookup(&doc, path).and_then(scalar) else {
                continue;
            };
            if !first_key {
                out.push_str(", ");
            }
            first_key = false;
            out.push_str(&format!("\"{name}\": {val}"));
        }
        out.push('}');
    }
    out.push_str("\n  },\n  \"missing\": [");
    for (i, file) in missing.iter().enumerate() {
        out.push_str(&format!("{}\"{file}\"", if i > 0 { ", " } else { "" }));
    }
    out.push_str("]\n}\n");
    out
}

/// Writes `BENCH_summary.json` and announces it.
pub fn write() {
    let path = "BENCH_summary.json";
    std::fs::write(path, collect()).expect("write summary json");
    println!("wrote {path}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_walks_nested_paths() {
        let doc = parse(r#"{"a": {"b": [{"c": 7}, {"c": 9}]}, "n": 1.5}"#).unwrap();
        assert_eq!(lookup(&doc, "a.b[0].c").and_then(Value::as_u64), Some(7));
        assert_eq!(lookup(&doc, "a.b[-1].c").and_then(Value::as_u64), Some(9));
        assert_eq!(lookup(&doc, "n").and_then(Value::as_f64), Some(1.5));
        assert_eq!(lookup(&doc, "a.missing"), None);
        assert_eq!(lookup(&doc, "n[0]"), None, "scalar is not indexable");
    }

    #[test]
    fn summary_parses_even_with_everything_missing() {
        // `collect` reads the cwd; under `cargo test` that holds no
        // artifacts, so every source lands in `missing` — and the output
        // must still be valid JSON.
        let v = parse(&collect()).expect("summary JSON parses");
        assert!(v.get("sources").is_some());
        assert!(v.get("missing").is_some());
    }
}
