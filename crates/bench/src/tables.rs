//! Table generators: each function prints one paper table with the paper's
//! published values alongside the reproduction's measurements.

use unp_core::experiments as exp;
use unp_core::{Network, OrgKind};
use unp_sim::CostModel;

/// User packet sizes of Table 2.
pub const T2_SIZES: [usize; 4] = [512, 1024, 2048, 4096];
/// Payload sizes of Table 3.
pub const T3_SIZES: [usize; 3] = [1, 512, 1460];

/// Paper values for Table 2 (Mb/s): (system, network, [sizes...]).
pub const T2_PAPER: [(&str, Network, OrgKind, [f64; 4]); 5] = [
    (
        "Ultrix 4.2A",
        Network::Ethernet,
        OrgKind::InKernel,
        [5.8, 7.6, 7.6, 7.6],
    ),
    (
        "Mach 3.0/UX (mapped)",
        Network::Ethernet,
        OrgKind::SingleServer,
        [2.1, 2.5, 3.2, 3.5],
    ),
    (
        "Our (Mach) Implementation",
        Network::Ethernet,
        OrgKind::UserLibrary,
        [4.3, 4.6, 4.8, 5.0],
    ),
    (
        "Ultrix 4.2A",
        Network::An1,
        OrgKind::InKernel,
        [4.8, 10.2, 11.9, 11.9],
    ),
    (
        "Our (Mach) Implementation",
        Network::An1,
        OrgKind::UserLibrary,
        [6.7, 8.1, 9.4, 11.9],
    ),
];

/// Paper values for Table 3 (ms RTT).
pub const T3_PAPER: [(&str, Network, OrgKind, [f64; 3]); 5] = [
    (
        "Ultrix 4.2A",
        Network::Ethernet,
        OrgKind::InKernel,
        [1.6, 3.5, 6.2],
    ),
    (
        "Mach 3.0/UX (mapped)",
        Network::Ethernet,
        OrgKind::SingleServer,
        [7.8, 10.8, 16.0],
    ),
    (
        "Our (Mach) Implementation",
        Network::Ethernet,
        OrgKind::UserLibrary,
        [2.8, 5.2, 9.9],
    ),
    (
        "Ultrix 4.2A",
        Network::An1,
        OrgKind::InKernel,
        [1.8, 2.7, 3.2],
    ),
    (
        "Our (Mach) Implementation",
        Network::An1,
        OrgKind::UserLibrary,
        [2.7, 3.4, 4.7],
    ),
];

/// Paper values for Table 4 (ms): (system, network, setup time).
pub const T4_PAPER: [(&str, Network, OrgKind, f64); 4] = [
    (
        "Ultrix 4.2A / Ethernet",
        Network::Ethernet,
        OrgKind::InKernel,
        2.6,
    ),
    (
        "Ultrix 4.2A / DEC SRC AN1",
        Network::An1,
        OrgKind::InKernel,
        2.9,
    ),
    (
        "Mach 3.0/UX / Ethernet (mapped)",
        Network::Ethernet,
        OrgKind::SingleServer,
        6.8,
    ),
    (
        "Ours / Ethernet",
        Network::Ethernet,
        OrgKind::UserLibrary,
        11.9,
    ),
];

/// Extra Table-4 row: ours on AN1 (paper: 12.3).
pub const T4_OURS_AN1: (&str, Network, OrgKind, f64) = (
    "Ours / DEC SRC AN1",
    Network::An1,
    OrgKind::UserLibrary,
    12.3,
);

fn net_label(n: Network) -> &'static str {
    match n {
        Network::Ethernet => "Ethernet",
        Network::An1 => "DEC SRC AN1",
    }
}

/// Prints Table 1: impact of the mechanisms on raw throughput.
pub fn table1() {
    println!("== Table 1: Impact of Our Mechanisms on Throughput ==");
    println!("(raw data exchange, max-sized packets, no transport protocol)");
    println!(
        "{:<14} {:>18} {:>18} {:>10}",
        "Network", "Mechanisms (Mb/s)", "Standalone (Mb/s)", "Fraction"
    );
    for net in [Network::Ethernet, Network::An1] {
        let (mech, standalone) = exp::table1_mechanisms(net);
        println!(
            "{:<14} {:>18.2} {:>18.2} {:>9.0}%",
            net_label(net),
            mech,
            standalone,
            mech / standalone * 100.0
        );
    }
    println!();
}

/// Prints Table 2: throughput measurements.
pub fn table2(total_bytes: u64) {
    println!("== Table 2: Throughput Measurements (megabits/second) ==");
    println!(
        "{:<42} {:>7} {:>7} {:>7} {:>7}   (paper: ...)",
        "System", 512, 1024, 2048, 4096
    );
    for (name, net, org, paper) in T2_PAPER {
        let mut row = Vec::new();
        for &size in &T2_SIZES {
            row.push(exp::throughput_mbps(net, org, size, total_bytes));
        }
        println!(
            "{:<42} {:>7.1} {:>7.1} {:>7.1} {:>7.1}   (paper: {:.1} {:.1} {:.1} {:.1})",
            format!("{} / {}", name, net_label(net)),
            row[0],
            row[1],
            row[2],
            row[3],
            paper[0],
            paper[1],
            paper[2],
            paper[3]
        );
    }
    println!();
}

/// Prints Table 3: round-trip latencies.
pub fn table3(rounds: usize) {
    println!("== Table 3: Round Trip Latencies (milliseconds) ==");
    println!(
        "{:<42} {:>7} {:>7} {:>7}   (paper: ...)",
        "System", 1, 512, 1460
    );
    for (name, net, org, paper) in T3_PAPER {
        let mut row = Vec::new();
        for &size in &T3_SIZES {
            row.push(exp::latency_ms(net, org, size, rounds));
        }
        println!(
            "{:<42} {:>7.1} {:>7.1} {:>7.1}   (paper: {:.1} {:.1} {:.1})",
            format!("{} / {}", name, net_label(net)),
            row[0],
            row[1],
            row[2],
            paper[0],
            paper[1],
            paper[2]
        );
    }
    println!();
}

/// Prints Table 4: connection setup cost plus the paper's breakdown of the
/// user-library Ethernet case.
pub fn table4() {
    println!("== Table 4: Connection Setup Cost (milliseconds) ==");
    for (name, net, org, paper) in T4_PAPER.iter().chain(std::iter::once(&T4_OURS_AN1)) {
        let measured = exp::setup_ms(*net, *org);
        println!("{:<42} {:>7.1}   (paper: {:.1})", name, measured, paper);
    }
    println!();
    println!("-- Breakdown of the user-library setup (model components) --");
    let costs = CostModel::calibrated_1993();
    let parts = exp::setup_breakdown(&costs);
    let mut total = 0.0;
    for (label, ms) in &parts {
        println!("  {:<38} {:>6.1} ms", label, ms);
        total += ms;
    }
    println!("  {:<38} {:>6.1} ms", "total (components)", total);
    println!();
}

/// Prints Table 5: demultiplexing cost comparison.
pub fn table5() {
    println!("== Table 5: Hardware/Software Demultiplexing Tradeoffs ==");
    let (sw, hw) = exp::table5_demux_us();
    println!("{:<38} {:>8}   (paper)", "Network Interface", "us/pkt");
    println!("{:<38} {:>8.0}   (52)", "Lance Ethernet (software BPF)", sw);
    println!("{:<38} {:>8.0}   (50)", "AN1 (hardware BQI)", hw);
    println!();
}

/// Prints the Figure 1 organization sweep: Table-2 workload at 4 KB across
/// *all five* organizations (the paper measures three; the dedicated-server
/// and message-variant rows quantify its qualitative claims).
pub fn fig1_sweep(total_bytes: u64) {
    println!("== Figure 1 sweep: all organizations, Ethernet, 4 KB writes ==");
    let orgs = [
        OrgKind::InKernel,
        OrgKind::SingleServer,
        OrgKind::SingleServerMsg,
        OrgKind::DedicatedServer,
        OrgKind::UserLibrary,
    ];
    println!(
        "{:<32} {:>12} {:>12} {:>10}",
        "Organization", "Tput (Mb/s)", "RTT (ms)", "Setup (ms)"
    );
    for org in orgs {
        let tput = exp::throughput_mbps(Network::Ethernet, org, 4096, total_bytes);
        let rtt = exp::latency_ms(Network::Ethernet, org, 512, 20);
        let setup = exp::setup_ms(Network::Ethernet, org);
        println!(
            "{:<32} {:>12.1} {:>12.1} {:>10.1}",
            org.label(),
            tput,
            rtt,
            setup
        );
    }
    println!();
}

/// Prints the ablation studies: what each mechanism of the design buys.
pub fn ablations(total_bytes: u64) {
    println!("== Ablations: contribution of each mechanism (user-level library) ==");
    println!();
    println!("-- Notification batching (Ethernet, 4 kB writes) --");
    let with = exp::ablation_throughput(Network::Ethernet, 4096, total_bytes, "none");
    let without = exp::ablation_throughput(Network::Ethernet, 4096, total_bytes, "batching");
    println!("  batching on            {with:>8.2} Mb/s");
    println!(
        "  signal every packet    {without:>8.2} Mb/s   ({:+.0}%)",
        (without / with - 1.0) * 100.0
    );
    println!();
    println!("-- Copy-eliminating buffer organization (AN1, 512 B writes) --");
    let with = exp::ablation_throughput(Network::An1, 512, total_bytes, "none");
    let without = exp::ablation_throughput(Network::An1, 512, total_bytes, "zero_copy");
    println!("  zero-copy region       {with:>8.2} Mb/s");
    println!(
        "  with copies            {without:>8.2} Mb/s   ({:+.0}%)",
        (without / with - 1.0) * 100.0
    );
    println!();
    println!("-- Nagle coalescing (Ethernet, 128 B application writes) --");
    let (t_on, f_on) = exp::ablation_nagle(total_bytes / 4, true);
    let (t_off, f_off) = exp::ablation_nagle(total_bytes / 4, false);
    println!("  nagle on               {t_on:>8.2} Mb/s  ({f_on} frames)");
    println!("  nagle off              {t_off:>8.2} Mb/s  ({f_off} frames)");
    println!();
    println!("-- Congestion control under 5% loss (loopback, 200 kB, real loss) --");
    println!("   (on a fast low-RTT LAN, loss recovery needs no window collapse:");
    println!("    the 1993 stacks' choice to run without congestion control was");
    println!("    right for their environment — Tahoe pays full slow-start restarts)");
    for (name, cc) in [
        (
            "off (1993 LAN stacks)",
            unp_core::CongestionControlChoice::Off,
        ),
        ("Tahoe", unp_core::CongestionControlChoice::Tahoe),
        ("Reno", unp_core::CongestionControlChoice::Reno),
    ] {
        let (ms, segs, rexmit) = exp::ablation_congestion(200_000, 0.05, 7, cc);
        println!("  {name:<22} {ms:>9.0} ms  {segs:>5} segments  {rexmit:>7} bytes rexmit");
    }
    println!();
    println!("-- Protocol specialization: rrp (request/response) vs TCP --");
    let (rrp_lat, tcp_lat, rrp_tput, tcp_tput) = exp::ablation_rrp_vs_tcp(512);
    println!("  512 B transaction:  rrp {rrp_lat:>6.2} ms   TCP {tcp_lat:>6.2} ms");
    println!("  bulk throughput:    rrp {rrp_tput:>6.2} Mb/s TCP {tcp_tput:>6.2} Mb/s");
    println!("  (the paper's motivation: latency-specialized transports win");
    println!("   transactions, windowed byte streams win bulk — both coexist");
    println!("   as user-level libraries)");
    println!();
}
