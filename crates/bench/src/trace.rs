//! `--trace` mode: journal-driven latency breakdown of the user-library
//! receive path, cross-checked against the cost model.
//!
//! The reproduced tables are built from *modeled* costs: every hop of a
//! received frame (demux, ring placement, semaphore wakeup, protocol
//! processing) charges a constant from [`CostModel`]. The journal records
//! the same hops as timestamped events, so joining a frame's records by id
//! reconstructs the latency the model actually produced — and the two must
//! agree. Concretely:
//!
//! * A **signaled** delivery schedules the library wakeup at interrupt
//!   priority, which preempts rather than queues, so the span from
//!   `ring_enqueue(signal=true)` to the `wakeup_batch` that consumed the
//!   frame equals `demux + ring_op + semaphore_signal + wakeup_resched +
//!   thread_switch` *exactly* — unless a still-running library thread's
//!   batch continuation scooped the frame out of the ring first, in which
//!   case the span is strictly *shorter* (the batching win). A span can
//!   never exceed the model.
//! * Per-frame protocol processing is charged at normal priority and can
//!   queue behind other work (ACK transmission shares the CPU), so the
//!   span from a frame's batch becoming runnable to its `tcp_segment(rx)`
//!   record is bounded below by the modeled per-frame cost; the minimum
//!   observed span approaches the model on an otherwise idle CPU.
//!
//! `repro-tables --trace` runs the Table-2 bulk workload per user packet
//! size with the journal recording, prints the breakdown, asserts the
//! invariants above, and writes `BENCH_trace.json`.

use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use unp_core::world::{connect, listen};
use unp_core::{build_two_hosts, BulkSender, Network, OrgKind, SinkApp, TransferStats};
use unp_sim::{CostModel, DemuxPath, Nanos};
use unp_tcp::TcpConfig;
use unp_trace::{Dir, Event, Record};
use unp_wire::Ipv4Addr;

use crate::tables::T2_SIZES;

/// Summary of one span population (simulated nanoseconds).
#[derive(Debug, Clone, Copy, Default)]
pub struct SpanStats {
    pub count: u64,
    pub min: Nanos,
    pub max: Nanos,
    sum: u128,
}

impl SpanStats {
    fn push(&mut self, v: Nanos) {
        if self.count == 0 || v < self.min {
            self.min = v;
        }
        self.max = self.max.max(v);
        self.sum += v as u128;
        self.count += 1;
    }

    /// Arithmetic mean, or 0 for an empty population.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// The journal join for one Table-2 run.
pub struct TraceRow {
    /// Application write size (the table column).
    pub user_packet: usize,
    /// Frames placed into connection rings.
    pub ring_enqueues: u64,
    /// Enqueues that posted a semaphore.
    pub signaled: u64,
    /// Enqueues batched behind a pending notification.
    pub batched: u64,
    /// ring_enqueue(signal) → consuming wakeup_batch spans.
    pub wakeup: SpanStats,
    /// Wakeup spans exactly equal to the modeled cost.
    pub wakeup_model_matches: u64,
    /// Signaled frames a running library thread consumed before their own
    /// semaphore wakeup fired (span < model).
    pub wakeup_scooped: u64,
    /// Wakeup spans exceeding the model — must always be zero.
    pub wakeup_over_model: u64,
    /// Batch-runnable → tcp_segment(rx) spans, one per processed frame.
    pub proc: SpanStats,
    /// Modeled per-frame processing cost at the workload's full frame
    /// size (the dominant population in a bulk transfer).
    pub proc_model: Nanos,
    /// Processing spans at or above their frame's modeled cost.
    pub proc_ge_model: u64,
    /// Bytes the journal saw cross into the application.
    pub app_bytes: u64,
}

/// Modeled signaled-wakeup latency for a software delivery whose filter
/// scan executed `instrs` instructions.
pub fn wakeup_model(c: &CostModel, instrs: usize) -> Nanos {
    c.demux_cost(DemuxPath::FilterScan, instrs)
        + c.ring_op
        + c.semaphore_signal
        + c.wakeup_resched
        + c.thread_switch
}

/// Modeled per-frame library receive cost for `wire` bytes past the link
/// header on the Ethernet (software demux) path.
fn proc_model(c: &CostModel, wire: usize) -> Nanos {
    c.tcp_per_segment
        + c.ip_per_packet
        + c.checksum(wire)
        + c.library_call
        + c.lib_upcall_sync
        + c.lib_sw_rx_per_byte * wire as Nanos
}

/// Joins one run's journal into a [`TraceRow`].
pub fn analyze(user_packet: usize, records: &[Record], costs: &CostModel) -> TraceRow {
    let mut row = TraceRow {
        user_packet,
        ring_enqueues: 0,
        signaled: 0,
        batched: 0,
        wakeup: SpanStats::default(),
        wakeup_model_matches: 0,
        wakeup_scooped: 0,
        wakeup_over_model: 0,
        proc: SpanStats::default(),
        proc_model: proc_model(costs, 40 + user_packet.min(1460)),
        proc_ge_model: 0,
        app_bytes: 0,
    };
    // Per-frame scan length, from demux_classify.
    let mut instrs: HashMap<u64, usize> = HashMap::new();
    // Signaled enqueues awaiting the wakeup that consumes them.
    let mut pending_signal: HashMap<u64, Nanos> = HashMap::new();
    // Ring order per (host, channel) — channel ids are only unique within
    // one host's net I/O module — to attribute frames to batches.
    let mut ring: HashMap<(u16, u32), VecDeque<u64>> = HashMap::new();
    // Frame → owning (host, channel), and channel → time its batch
    // processor became free (wakeup, or the previous frame's completion).
    let mut frame_chan: HashMap<u64, (u16, u32)> = HashMap::new();
    let mut cursor: HashMap<(u16, u32), Nanos> = HashMap::new();
    for r in records {
        match &r.event {
            Event::DemuxClassify {
                filter_instrs,
                matched: true,
                ..
            } => {
                if let Some(f) = r.frame {
                    instrs.insert(f, *filter_instrs as usize);
                }
            }
            Event::RingEnqueue {
                channel, signal, ..
            } => {
                row.ring_enqueues += 1;
                let f = r.frame.expect("ring_enqueue carries its frame");
                let key = (r.host.expect("ring_enqueue carries its host"), *channel);
                ring.entry(key).or_default().push_back(f);
                frame_chan.insert(f, key);
                if *signal {
                    row.signaled += 1;
                    pending_signal.insert(f, r.time);
                } else {
                    row.batched += 1;
                }
            }
            Event::WakeupBatch { channel, frames } => {
                // This wakeup consumed the oldest `frames` ring entries.
                let key = (r.host.expect("wakeup_batch carries its host"), *channel);
                let fifo = ring.entry(key).or_default();
                for _ in 0..*frames {
                    let Some(f) = fifo.pop_front() else { break };
                    let Some(t0) = pending_signal.remove(&f) else {
                        continue; // batched frame: no signal span to close
                    };
                    let span = r.time - t0;
                    row.wakeup.push(span);
                    let model = wakeup_model(costs, instrs.get(&f).copied().unwrap_or(0));
                    match span.cmp(&model) {
                        std::cmp::Ordering::Equal => row.wakeup_model_matches += 1,
                        std::cmp::Ordering::Less => row.wakeup_scooped += 1,
                        std::cmp::Ordering::Greater => row.wakeup_over_model += 1,
                    }
                }
                if *frames > 0 {
                    cursor.insert(key, r.time);
                }
            }
            Event::TcpSegment {
                dir: Dir::Rx, wire, ..
            } => {
                let Some(ch) = r.frame.and_then(|f| frame_chan.get(&f)).copied() else {
                    continue;
                };
                if let Some(free_at) = cursor.get(&ch).copied() {
                    let span = r.time - free_at;
                    row.proc.push(span);
                    if span >= proc_model(costs, *wire as usize) {
                        row.proc_ge_model += 1;
                    }
                    cursor.insert(ch, r.time);
                }
            }
            Event::AppDeliver { bytes, .. } => row.app_bytes += *bytes as u64,
            _ => {}
        }
    }
    row
}

/// Runs the Table-2 bulk workload once with the journal recording and
/// joins the result.
fn traced_bulk(user_packet: usize, total: u64, costs: &CostModel) -> TraceRow {
    unp_trace::journal_start();
    let (mut w, mut eng) = build_two_hosts(Network::Ethernet, OrgKind::UserLibrary);
    let stats = TransferStats::new_shared();
    let st = Rc::clone(&stats);
    let mut cfg = TcpConfig::bulk_transfer();
    cfg.mss_local = user_packet.min(1460);
    listen(
        &mut w,
        1,
        80,
        cfg.clone(),
        Box::new(move || Box::new(SinkApp::new(Rc::clone(&st)))),
    );
    connect(
        &mut w,
        &mut eng,
        0,
        (Ipv4Addr::new(10, 0, 0, 2), 80),
        cfg,
        Box::new(BulkSender::new(total, user_packet)),
        user_packet,
    );
    assert!(eng.run(&mut w, 50_000_000), "traced run did not drain");
    let records = unp_trace::journal_stop();
    assert_eq!(stats.borrow().bytes_received, total, "transfer incomplete");
    analyze(user_packet, &records, costs)
}

/// Runs the traced Table-2 sweep.
pub fn trace_section(total: u64) -> Vec<TraceRow> {
    let costs = CostModel::calibrated_1993();
    T2_SIZES
        .iter()
        .map(|&size| traced_bulk(size, total, &costs))
        .collect()
}

/// Prints the breakdown and asserts the model cross-checks.
pub fn print_report(rows: &[TraceRow]) {
    println!("== Trace: journaled receive-path latency vs the cost model ==");
    println!("   (Table-2 bulk workload, user-library org, Ethernet)");
    println!(
        "{:<8} {:>8} {:>9} {:>8} {:>28} {:>30}",
        "pkt (B)",
        "enqueue",
        "signaled",
        "batched",
        "wakeup ns (exact+scooped)",
        "proc ns (model/min/mean)"
    );
    for r in rows {
        println!(
            "{:<8} {:>8} {:>9} {:>8} {:>13} ({:>4}+{:<3}/{:<4}) {:>10} /{:>8} /{:>9.0}",
            r.user_packet,
            r.ring_enqueues,
            r.signaled,
            r.batched,
            r.wakeup.mean().round() as u64,
            r.wakeup_model_matches,
            r.wakeup_scooped,
            r.wakeup.count,
            r.proc_model,
            r.proc.min,
            r.proc.mean(),
        );
        assert_eq!(
            r.wakeup_over_model, 0,
            "a signaled wakeup span can never exceed the modeled cost"
        );
        assert_eq!(
            r.wakeup_model_matches + r.wakeup_scooped,
            r.wakeup.count,
            "every signaled span is either exact or scooped early"
        );
        assert_eq!(
            r.proc_ge_model, r.proc.count,
            "a frame cannot be processed faster than the model charges"
        );
    }
    println!("  every signaled wakeup span == modeled demux+ring+signal+resched+switch,");
    println!("  except frames a running batch continuation consumed early (scooped)");
    println!("  every per-frame processing span >= modeled tcp+ip+checksum+upcall cost");
    println!();
}

/// Serializes the rows as JSON (hand-rolled: the workspace is
/// dependency-free by design).
pub fn to_json(rows: &[TraceRow], total: u64) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"benchmark\": \"packet_lifecycle_trace\",\n");
    out.push_str(&format!(
        "  \"workload\": {{\"table\": 2, \"org\": \"user_library\", \"network\": \"ethernet\", \"total_bytes\": {total}}},\n"
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"user_packet\": {}, \"ring_enqueues\": {}, \"signaled\": {}, \"batched\": {},\n",
            r.user_packet, r.ring_enqueues, r.signaled, r.batched
        ));
        out.push_str(&format!(
            "     \"wakeup\": {{\"count\": {}, \"model_matches\": {}, \"scooped\": {}, \"min_ns\": {}, \"mean_ns\": {:.1}, \"max_ns\": {}}},\n",
            r.wakeup.count,
            r.wakeup_model_matches,
            r.wakeup_scooped,
            r.wakeup.min,
            r.wakeup.mean(),
            r.wakeup.max
        ));
        out.push_str(&format!(
            "     \"proc\": {{\"count\": {}, \"model_full_ns\": {}, \"ge_model\": {}, \"min_ns\": {}, \"mean_ns\": {:.1}, \"max_ns\": {}}},\n",
            r.proc.count,
            r.proc_model,
            r.proc_ge_model,
            r.proc.min,
            r.proc.mean(),
            r.proc.max
        ));
        out.push_str(&format!(
            "     \"app_bytes\": {}}}{}\n",
            r.app_bytes,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traced_run_matches_the_model() {
        let costs = CostModel::calibrated_1993();
        let row = traced_bulk(4096, 200_000, &costs);
        assert_eq!(row.app_bytes, 200_000, "journal missed app deliveries");
        assert!(row.signaled > 0 && row.batched > 0, "both paths exercised");
        assert_eq!(row.wakeup_over_model, 0, "span exceeded the model");
        assert_eq!(
            row.wakeup_model_matches + row.wakeup_scooped,
            row.wakeup.count
        );
        assert!(
            row.wakeup_model_matches * 10 >= row.wakeup.count * 9,
            "exact matches must dominate: {} exact of {}",
            row.wakeup_model_matches,
            row.wakeup.count
        );
        assert_eq!(row.proc_ge_model, row.proc.count);
        // The smallest span in the population is a pure ACK (40-byte
        // segment) on the sender side; it still pays that frame's model.
        assert!(row.proc.min >= proc_model(&costs, 40), "min span sane");
    }

    #[test]
    fn json_is_shaped() {
        let rows = trace_section(100_000);
        let j = to_json(&rows, 100_000);
        assert!(j.contains("\"packet_lifecycle_trace\""));
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "unbalanced JSON"
        );
    }
}
