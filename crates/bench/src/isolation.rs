//! `--isolation-gate`: the multi-tenant isolation oracle as a CI gate.
//!
//! The same scenario as `tests/isolation.rs`, run twice from one seed:
//! three innocent tenants stream to a server while a hostile tenant —
//! budgeted with per-tenant ring-slot and transmit-credit quotas — runs
//! the byzantine repertoire (ring flood, transmit flood, capability
//! storm, stale BQI, wedged crash). The baseline run disables the
//! byzantine schedules and budgets; the hostile run arms them. The gate
//! asserts the isolation envelope:
//!
//! * innocent streams complete byte-exact in both runs,
//! * innocent throughput ≥ 60% of baseline, completion ≤ 1.5x + 10 ms,
//! * innocent p99 app-deliver latency ≤ 2.5x baseline + 5 ms,
//! * every quota drop is causally attributed to the hostile tenant,
//! * zero resources leak after the hostile tenant's wedged crash.
//!
//! `BENCH_isolation.json` records the measured ratios so the summary
//! artifact (and a reviewer) can see how much headroom the envelope has.

use std::cell::RefCell;
use std::rc::Rc;

use unp_buffers::OwnerTag;
use unp_core::faults::{ByzantineKind, ByzantineSchedule, FaultPlan};
use unp_core::world::{connect_as, crash_tenant, install_faults, listen, listen_as};
use unp_core::{build_hosts, BulkSender, Network, OrgKind, SinkApp, TransferStats};
use unp_kernel::TenantBudget;
use unp_tcp::TcpConfig;
use unp_trace::causal::{CausalGraph, Loss};
use unp_trace::profile::Profile;
use unp_trace::Ctr;

/// Innocent tenants sharing the client host with the hostile one.
pub const INNOCENTS: usize = 3;
/// Bytes each innocent tenant streams.
pub const XFER: u64 = 150_000;
/// The hostile tenant id.
pub const HOSTILE: u64 = 66;
/// Fault-plan seed (RNG is unused by the byzantine schedules, but the
/// plan carries it).
pub const SEED: u64 = 21;
/// Byzantine window bounds (connection setup rides the slow registry
/// path, so the window opens well after all handshakes settle).
pub const BYZ_START: u64 = 160_000_000;
pub const CRASH_AT: u64 = 320_000_000;

/// One run's innocent-side measurements.
pub struct RunMeasure {
    /// Per-innocent (throughput bps, completion instant ns).
    pub innocents: Vec<(f64, u64)>,
    /// p99 of innocent frames' end-to-end app-deliver latency (ns).
    pub p99_ns: u64,
    /// Kernel-counted quota drops / tx credit rejections.
    pub quota_drops: u64,
    pub tx_rejections: u64,
    /// Tenants named by `Loss::QuotaExceeded` in the causal graph.
    pub quota_loss_tenants: Vec<u64>,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Runs the scenario once. With `hostile` the budgets, byzantine
/// schedules, and wedged crash are armed; without it the same topology,
/// traffic, and crash instant run unimpaired.
pub fn run_scenario(hostile: bool) -> RunMeasure {
    unp_trace::journal_start();
    let (mut w, mut eng) = build_hosts(2, Network::Ethernet, OrgKind::UserLibrary);
    let server_ip = w.hosts[1].ip;
    let client_ip = w.hosts[0].ip;

    let mut sinks = Vec::new();
    for i in 0..INNOCENTS {
        let st = TransferStats::new_shared();
        let sh = Rc::clone(&st);
        listen(
            &mut w,
            1,
            81 + i as u16,
            TcpConfig::default(),
            Box::new(move || Box::new(SinkApp::new(Rc::clone(&sh)))),
        );
        eng.at(i as u64 * 10_000_000 + 1, move |w, eng| {
            connect_as(
                w,
                eng,
                0,
                Some(OwnerTag(11 + i as u64)),
                (server_ip, 81 + i as u16),
                TcpConfig::default(),
                Box::new(BulkSender::new(XFER, 4096)),
                4096,
            );
        });
        sinks.push(st);
    }

    // The hostile tenant: a held-open active connection (the flood
    // vehicle) and a listener fed by the server (the ring-flood victim).
    let hostile_rx = TransferStats::new_shared();
    let hr = Rc::clone(&hostile_rx);
    listen_as(
        &mut w,
        0,
        OwnerTag(HOSTILE),
        90,
        TcpConfig::default(),
        Box::new(move || Box::new(SinkApp::new(Rc::clone(&hr)).without_verify())),
    );
    let server_sink = TransferStats::new_shared();
    let ss = Rc::clone(&server_sink);
    listen(
        &mut w,
        1,
        80,
        TcpConfig::default(),
        Box::new(move || Box::new(SinkApp::new(Rc::clone(&ss)).without_verify())),
    );
    eng.at(31_000_000, move |w, eng| {
        connect_as(
            w,
            eng,
            0,
            Some(OwnerTag(HOSTILE)),
            (server_ip, 80),
            TcpConfig::default(),
            Box::new(BulkSender::new(30_000, 4096).without_close()),
            4096,
        );
    });
    eng.at(36_000_000, move |w, eng| {
        connect_as(
            w,
            eng,
            1,
            None,
            (client_ip, 90),
            TcpConfig::default(),
            Box::new(BulkSender::new(400_000, 4096).without_close()),
            4096,
        );
    });

    let mut plan = FaultPlan::clean(SEED);
    if hostile {
        w.hosts[0].netio.set_tenant_budget(
            OwnerTag(HOSTILE),
            TenantBudget {
                ring_slots: 8,
                tx_credit: 40,
                max_channels: 4,
            },
        );
        for kind in [
            ByzantineKind::RingFlood,
            ByzantineKind::TransmitFlood {
                burst: 12,
                period: 2_000_000,
            },
            ByzantineKind::CapabilityStorm { period: 3_000_000 },
            ByzantineKind::StaleBqi { period: 5_000_000 },
            ByzantineKind::WedgedRegistry,
        ] {
            plan.byzantine.push(ByzantineSchedule {
                host: 0,
                tenant: HOSTILE,
                kind,
                start: BYZ_START,
                end: CRASH_AT,
            });
        }
    }
    install_faults(&mut w, &mut eng, plan);

    // Server-side channel ids of the innocent streams, harvested once
    // everything is established, to scope the latency profile.
    let chan_ids: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
    let cm = Rc::clone(&chan_ids);
    eng.at(BYZ_START - 1_000_000, move |w, _eng| {
        let mut ids: Vec<u32> = w.hosts[1]
            .conns
            .values()
            .filter(|c| (81..81 + INNOCENTS as u16).contains(&c.tcb.local().1))
            .filter_map(|c| c.chan.as_ref().map(|ci| ci.id.0))
            .collect();
        ids.sort_unstable();
        *cm.borrow_mut() = ids;
    });
    eng.at(CRASH_AT, move |w, eng| {
        crash_tenant(w, eng, 0, OwnerTag(HOSTILE));
    });

    assert!(
        eng.run(&mut w, 2_500_000_000),
        "isolation run did not drain"
    );

    let innocent_chans = chan_ids.borrow().clone();
    assert_eq!(
        innocent_chans.len(),
        INNOCENTS,
        "handshakes missed the window"
    );
    let records = unp_trace::journal_stop();

    for (i, st) in sinks.iter().enumerate() {
        let s = st.borrow();
        assert_eq!(s.bytes_received, XFER, "innocent {i} lost bytes");
        assert!(s.peer_closed && !s.reset, "innocent {i} stream failed");
    }
    for h in &w.hosts {
        assert_eq!(h.netio.channel_count(), 0, "host {} leaked channels", h.idx);
        assert!(h.conns.is_empty(), "host {} leaked connections", h.idx);
        assert_eq!(h.registry.tracked(), 0, "host {} registry lingers", h.idx);
    }

    let profile = Profile::build(&records);
    let mut lat: Vec<u64> = profile
        .traces
        .iter()
        .filter(|t| {
            t.is_complete()
                && t.host == Some(1)
                && t.channel.is_some_and(|c| innocent_chans.contains(&c))
        })
        .filter_map(|t| t.end_to_end())
        .collect();
    lat.sort_unstable();
    assert!(!lat.is_empty(), "no innocent deliveries profiled");

    let graph = CausalGraph::build(&records);
    let quota_loss_tenants: Vec<u64> = graph
        .losses()
        .filter_map(|(_, l)| match l {
            Loss::QuotaExceeded { tenant, .. } => Some(tenant),
            _ => None,
        })
        .collect();

    RunMeasure {
        innocents: sinks
            .iter()
            .map(|s| {
                let s = s.borrow();
                (
                    s.throughput_bps().expect("throughput"),
                    s.last_byte_at.expect("completion"),
                )
            })
            .collect(),
        p99_ns: percentile(&lat, 0.99),
        quota_drops: w.metrics.get(Ctr::ChQuotaDrops),
        tx_rejections: w.metrics.get(Ctr::TxQuotaRejections),
        quota_loss_tenants,
    }
}

/// The gate: runs baseline + hostile, checks the envelope, and returns
/// the report lines (Err = gate failure text).
pub fn gate() -> Result<(Vec<String>, String), String> {
    let base = run_scenario(false);
    let hot = run_scenario(true);
    let mut lines = Vec::new();

    if base.quota_drops != 0 || base.tx_rejections != 0 {
        return Err(format!(
            "baseline run charged quotas ({} drops, {} rejections) with no budgets set",
            base.quota_drops, base.tx_rejections
        ));
    }
    if hot.quota_drops == 0 {
        return Err("hostile run produced no quota drops — the ring flood never bit".into());
    }
    if hot.tx_rejections == 0 {
        return Err("hostile run produced no tx rejections — the credit never ran out".into());
    }
    if hot.quota_loss_tenants.len() as u64 != hot.quota_drops {
        return Err(format!(
            "causal trace attributed {} quota losses, kernel counted {}",
            hot.quota_loss_tenants.len(),
            hot.quota_drops
        ));
    }
    if let Some(&t) = hot.quota_loss_tenants.iter().find(|&&t| t != HOSTILE) {
        return Err(format!(
            "quota drop attributed to tenant {t}, want {HOSTILE}"
        ));
    }
    lines.push(format!(
        "isolation gate: {} quota drops + {} tx rejections, all attributed to tenant {}",
        hot.quota_drops, hot.tx_rejections, HOSTILE
    ));

    let mut tput_ratio_min = f64::INFINITY;
    for (i, (&(tb, lb), &(th, lh))) in base.innocents.iter().zip(&hot.innocents).enumerate() {
        let ratio = th / tb;
        tput_ratio_min = tput_ratio_min.min(ratio);
        if th < 0.6 * tb {
            return Err(format!(
                "innocent {i} throughput {th:.0} bps < 60% of baseline {tb:.0}"
            ));
        }
        if lh > lb + lb / 2 + 10_000_000 {
            return Err(format!(
                "innocent {i} completion {lh} ns outside 1.5x+10ms of baseline {lb}"
            ));
        }
        lines.push(format!(
            "  innocent {i}: throughput {:.2} Mb/s vs {:.2} baseline ({:.0}%)",
            th / 1e6,
            tb / 1e6,
            ratio * 100.0
        ));
    }
    let p99_bound = 5 * base.p99_ns / 2 + 5_000_000;
    if hot.p99_ns > p99_bound {
        return Err(format!(
            "innocent p99 latency {} ns > bound {} (baseline {})",
            hot.p99_ns, p99_bound, base.p99_ns
        ));
    }
    lines.push(format!(
        "  innocent p99 app-deliver latency {:.3} ms vs {:.3} ms baseline (bound {:.3})",
        hot.p99_ns as f64 / 1e6,
        base.p99_ns as f64 / 1e6,
        p99_bound as f64 / 1e6
    ));

    let json = to_json(&base, &hot, tput_ratio_min);
    Ok((lines, json))
}

/// `BENCH_isolation.json`: the measured envelope headroom.
pub fn to_json(base: &RunMeasure, hot: &RunMeasure, tput_ratio_min: f64) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"isolation\",\n");
    out.push_str(&format!(
        "  \"innocent_tenants\": {INNOCENTS},\n  \"hostile_tenant\": {HOSTILE},\n  \"seed\": {SEED},\n"
    ));
    out.push_str(&format!(
        "  \"quota_drops\": {},\n  \"tx_rejections\": {},\n  \"quota_drops_misattributed\": {},\n",
        hot.quota_drops,
        hot.tx_rejections,
        hot.quota_loss_tenants
            .iter()
            .filter(|&&t| t != HOSTILE)
            .count()
    ));
    out.push_str(&format!(
        "  \"throughput_ratio_min\": {:.4},\n  \"p99_baseline_ns\": {},\n  \"p99_hostile_ns\": {},\n  \"p99_ratio\": {:.4},\n",
        tput_ratio_min,
        base.p99_ns,
        hot.p99_ns,
        hot.p99_ns as f64 / base.p99_ns.max(1) as f64
    ));
    out.push_str("  \"innocents\": [");
    for (i, (&(tb, _), &(th, _))) in base.innocents.iter().zip(&hot.innocents).enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"baseline_bps\": {tb:.0}, \"hostile_bps\": {th:.0}}}"
        ));
    }
    out.push_str("]\n}\n");
    out
}
