//! `--monitor` / `--monitor-gate`: the streaming conformance monitor
//! exercised as a benchmark artifact — `BENCH_monitor.json`.
//!
//! Four measurements, each a leg of the checker-soundness argument:
//!
//! * **golden** — the seeded lossy Table-2 journal (the causal gate's
//!   workload), a clean variant, and a *live* attached bulk run must all
//!   produce zero violations while every checker validates real events
//!   (the non-vacuity counts in [`unp_trace::CheckStats`]).
//! * **mutations** — every [`mutations::BugClass`] injected into the
//!   lossy journal must surface as its expected
//!   [`unp_trace::ViolationKind`]: zero violations on conformant runs
//!   means nothing unless each checker still catches its bug class.
//! * **overhead** — wall-clock of the bulk workload with the monitor
//!   attached (journal off) over the same run with no observers; the
//!   gate bounds the ratio at [`OVERHEAD_BOUND`].
//! * **scale** — the 8→10^6-channel mixed population from
//!   [`crate::scale`], monitor attached and journal off, delivering a
//!   fixed [`SCALE_SAMPLE`] of probe frames per point: observer memory
//!   ([`unp_trace::Monitor::memory_bytes`]) must track the *touched*
//!   state (rings seen, connections seen), not the population.

use std::rc::Rc;
use std::time::Instant;

use unp_buffers::Frame;
use unp_core::faults::FaultPlan;
use unp_core::world::{connect, install_faults, listen};
use unp_core::{build_two_hosts, BulkSender, Network, OrgKind, SinkApp, TransferStats};
use unp_kernel::Delivery;
use unp_tcp::TcpConfig;
use unp_trace::monitor::mutations::{self, BugClass};
use unp_trace::{CheckStats, Monitor, Record};
use unp_wire::Ipv4Addr;

use crate::causal::{lossy_journal, CAUSAL_LOSS, CAUSAL_PACKET, CAUSAL_SEED, CAUSAL_TOTAL};
use crate::scale::{frame_to, mixed_spec, scale_module, SCALE_COUNTS};

/// Monitor-on wall-clock must stay within this factor of monitor-off on
/// the bulk workload (the ISSUE's ≤5% overhead budget).
pub const OVERHEAD_BOUND: f64 = 1.05;
/// Timing attempts before the overhead gate gives up (wall-clock on a
/// loaded CI host is noisy; any attempt within the bound passes).
pub const OVERHEAD_ATTEMPTS: usize = 3;
/// Interleaved (off, on) timing pairs per attempt; each side keeps its
/// minimum.
const OVERHEAD_PAIRS: usize = 5;
/// Bytes of the overhead-timing bulk transfer.
const OVERHEAD_TOTAL: u64 = 1_000_000;
/// Probe frames delivered per scale-sweep point — fixed, so observer
/// memory growing with the population (rather than with this sample)
/// would be visible immediately.
pub const SCALE_SAMPLE: usize = 256;
/// Flight-recorder per-host window used for the postmortem demo.
pub const DEMO_RECORDER_CAP: usize = 64;

/// One scale-sweep point: population vs what the monitor held.
pub struct ScaleMonPoint {
    /// Channels installed in the module.
    pub channels: usize,
    /// Probe frames actually delivered (≤ [`SCALE_SAMPLE`]).
    pub sampled: usize,
    /// [`unp_trace::Monitor::memory_bytes`] at detach.
    pub monitor_mem_bytes: u64,
    /// Ring events the residency checker folded.
    pub ring_events: u64,
    /// Violations flagged (must be zero).
    pub violations: u64,
}

/// The whole `--monitor` measurement set.
pub struct MonitorReport {
    /// Violations on the seeded lossy journal replay.
    pub lossy_violations: u64,
    /// Violations on the clean (no-fault) journal replay.
    pub clean_violations: u64,
    /// Violations from the monitor *attached live* to the bulk run.
    pub live_violations: u64,
    /// Non-vacuity counts from the lossy replay.
    pub checked: CheckStats,
    /// `(class, violations of the expected kind)` per mutation.
    pub mutations: Vec<(BugClass, u64)>,
    /// Best monitor-on / monitor-off wall-clock ratio observed.
    pub overhead_ratio: f64,
    /// Monitor-off seconds at the best ratio.
    pub off_secs: f64,
    /// Monitor-on seconds at the best ratio.
    pub on_secs: f64,
    /// Timing attempts consumed (1 = first try was inside the bound).
    pub overhead_attempts: usize,
    /// Postmortem window length from the recorder demo.
    pub postmortem_records: usize,
    /// Recorder occupancy at the end of the demo replay.
    pub recorder_occupancy: usize,
    /// The scale sweep.
    pub scale: Vec<ScaleMonPoint>,
}

impl MonitorReport {
    /// Total violations across every conformant leg — the gate's
    /// headline scalar (`"golden_violations"`), which must be zero.
    pub fn golden_violations(&self) -> u64 {
        self.lossy_violations
            + self.clean_violations
            + self.live_violations
            + self.scale.iter().map(|p| p.violations).sum::<u64>()
    }

    /// Mutation classes whose expected violation kind surfaced.
    pub fn mutations_caught(&self) -> usize {
        self.mutations.iter().filter(|(_, n)| *n > 0).count()
    }

    /// Peak observer memory across the scale sweep.
    pub fn peak_observer_mem(&self) -> u64 {
        self.scale
            .iter()
            .map(|p| p.monitor_mem_bytes)
            .max()
            .unwrap_or(0)
    }
}

/// The causal-gate workload without its fault plan: same transfer, clean
/// schedule, journal recording.
fn clean_journal() -> Vec<Record> {
    unp_trace::journal_start();
    run_bulk(CAUSAL_TOTAL, CAUSAL_PACKET, None);
    unp_trace::journal_stop()
}

/// One bulk transfer (Table-2 organization); returns wall-clock seconds.
fn run_bulk(total: u64, packet: usize, faults: Option<FaultPlan>) -> f64 {
    let t0 = Instant::now();
    let (mut w, mut eng) = build_two_hosts(Network::Ethernet, OrgKind::UserLibrary);
    let stats = TransferStats::new_shared();
    let st = Rc::clone(&stats);
    let mut cfg = TcpConfig::bulk_transfer();
    cfg.mss_local = packet.min(1460);
    listen(
        &mut w,
        1,
        80,
        cfg.clone(),
        Box::new(move || Box::new(SinkApp::new(Rc::clone(&st)))),
    );
    connect(
        &mut w,
        &mut eng,
        0,
        (Ipv4Addr::new(10, 0, 0, 2), 80),
        cfg,
        Box::new(BulkSender::new(total, packet)),
        packet,
    );
    if let Some(plan) = faults {
        install_faults(&mut w, &mut eng, plan);
    }
    assert!(eng.run(&mut w, 20_000_000_000), "bulk run did not drain");
    assert_eq!(stats.borrow().bytes_received, total, "transfer incomplete");
    t0.elapsed().as_secs_f64()
}

/// One interleaved timing attempt: [`OVERHEAD_PAIRS`] (off, on) pairs,
/// each side keeping its minimum. Each "on" run gets a fresh monitor
/// (channel ids restart per world, so carrying ring state across runs
/// would be checking a fiction) and must see zero violations — the
/// overhead measurement doubles as the live-attachment golden run.
fn overhead_attempt() -> (f64, f64, u64) {
    let mut off = f64::INFINITY;
    let mut on = f64::INFINITY;
    let mut violations = 0;
    // Warm the path once before timing (allocator, branch history).
    unp_trace::reset_run();
    run_bulk(OVERHEAD_TOTAL, CAUSAL_PACKET, None);
    for _ in 0..OVERHEAD_PAIRS {
        unp_trace::reset_run();
        off = off.min(run_bulk(OVERHEAD_TOTAL, CAUSAL_PACKET, None));
        unp_trace::reset_run();
        let h = unp_trace::attach(Box::new(Monitor::new()));
        on = on.min(run_bulk(OVERHEAD_TOTAL, CAUSAL_PACKET, None));
        let live = unp_trace::detach_as::<Monitor>(h).expect("live monitor");
        violations += live.total_violations();
    }
    (off, on, violations)
}

/// Replays the lossy journal through one mutant per bug class and
/// counts violations of the expected kind. Panics if the journal offers
/// no site for a class — that is a workload-coverage failure, not a
/// checker pass.
fn mutation_coverage(records: &[Record]) -> Vec<(BugClass, u64)> {
    BugClass::ALL
        .iter()
        .map(|&class| {
            let mutant = mutations::mutate(records, class, CAUSAL_SEED).unwrap_or_else(|| {
                panic!(
                    "lossy journal has no mutation site for {} — workload lost coverage",
                    class.label()
                )
            });
            let mon = Monitor::new().run_over(&mutant);
            (class, mon.count(class.expected_kind()))
        })
        .collect()
}

/// One monitor-attached scale point: build the mixed population, attach
/// a fresh monitor (journal off), deliver the sampled probe frames, and
/// harvest what the observer held.
fn scale_point(n: usize) -> ScaleMonPoint {
    unp_trace::reset_run();
    let (mut m, ..) = scale_module(n);
    let handle = unp_trace::attach(Box::new(Monitor::new()));
    let sample = SCALE_SAMPLE.min(n);
    let step = (n / sample).max(1);
    for k in 0..sample {
        let i = k * step;
        let spec = mixed_spec(i);
        // Listen/residual bindings leave the remote (partly) wild; any
        // remote in the probe space the sweep already reserves works.
        let remote = (
            spec.remote_ip.unwrap_or(Ipv4Addr::new(10, 8, 0, 1)),
            spec.remote_port.unwrap_or(9999),
        );
        let frame = Frame::from_vec(frame_to((spec.local_ip, spec.local_port), remote));
        match m.deliver_software(&frame) {
            Delivery::Channel { .. } => {}
            other => panic!("scale probe fell through at n={n} i={i}: {other:?}"),
        }
    }
    let mon = unp_trace::detach_as::<Monitor>(handle).expect("scale monitor");
    ScaleMonPoint {
        channels: n,
        sampled: sample,
        monitor_mem_bytes: mon.memory_bytes(),
        ring_events: mon.checked().ring_events,
        violations: mon.total_violations(),
    }
}

/// Runs every measurement. `progress` gets one line per long phase (the
/// 10^6 scale point takes a few seconds to build).
pub fn monitor_section(progress: impl Fn(&str)) -> MonitorReport {
    progress("monitor: recording seeded lossy journal");
    let lossy = lossy_journal();
    let lossy_mon = Monitor::new().run_over(&lossy);
    progress("monitor: recording clean journal");
    let clean = clean_journal();
    let clean_mon = Monitor::new().run_over(&clean);

    progress("monitor: mutation coverage (8 bug classes)");
    let muts = mutation_coverage(&lossy);

    progress("monitor: overhead timing");
    let mut best = (f64::INFINITY, 0.0, 0.0);
    let mut live_violations = 0;
    let mut attempts = 0;
    for _ in 0..OVERHEAD_ATTEMPTS {
        attempts += 1;
        let (off, on, v) = overhead_attempt();
        live_violations += v;
        let ratio = on / off;
        if ratio < best.0 {
            best = (ratio, off, on);
        }
        if best.0 <= OVERHEAD_BOUND {
            break;
        }
    }

    // Postmortem demo: the ack-regression mutant through a recorder-fed
    // monitor freezes a window around the violation.
    let demo = demo_monitor(&lossy);
    let postmortem_records = demo.postmortem().map(<[Record]>::len).unwrap_or(0);

    let scale = SCALE_COUNTS
        .iter()
        .map(|&n| {
            progress(&format!("monitor: scale point {n}"));
            scale_point(n)
        })
        .collect();

    MonitorReport {
        lossy_violations: lossy_mon.total_violations(),
        clean_violations: clean_mon.total_violations(),
        live_violations,
        checked: lossy_mon.checked(),
        mutations: muts,
        overhead_ratio: best.0,
        off_secs: best.1,
        on_secs: best.2,
        overhead_attempts: attempts,
        postmortem_records,
        recorder_occupancy: demo.recorder_occupancy(),
        scale,
    }
}

/// The recorder demo: ack-regression mutant replayed through
/// [`Monitor::with_recorder`] — used by the report and by `--monitor`'s
/// printed postmortem excerpt.
pub fn demo_monitor(lossy: &[Record]) -> Monitor {
    let mutant = mutations::mutate(lossy, BugClass::AckRegression, CAUSAL_SEED)
        .expect("lossy journal offers an ack mutation site");
    Monitor::with_recorder(DEMO_RECORDER_CAP).run_over(&mutant)
}

/// Prints the human report.
pub fn print_report(r: &MonitorReport) {
    println!("== Streaming conformance monitor ==");
    println!(
        "  golden runs: lossy {} violations, clean {}, live {}  (checked: {} acks, {} transitions, {} rexmits, {} ring, {} pool, {} classify)",
        r.lossy_violations,
        r.clean_violations,
        r.live_violations,
        r.checked.tcp_acks,
        r.checked.transitions,
        r.checked.rexmits,
        r.checked.ring_events,
        r.checked.pool_events,
        r.checked.demux_classifies,
    );
    println!(
        "  mutation harness: {}/{} bug classes caught",
        r.mutations_caught(),
        r.mutations.len()
    );
    for (class, n) in &r.mutations {
        println!(
            "    {:<22} -> {} {} violation{}",
            class.label(),
            n,
            class.expected_kind().label(),
            if *n == 1 { "" } else { "s" }
        );
    }
    println!(
        "  overhead: monitor-on/off {:.3}x (bound {:.2}x; {:.1} ms on vs {:.1} ms off, {} attempt{})",
        r.overhead_ratio,
        OVERHEAD_BOUND,
        r.on_secs * 1e3,
        r.off_secs * 1e3,
        r.overhead_attempts,
        if r.overhead_attempts == 1 { "" } else { "s" }
    );
    println!(
        "  recorder demo: postmortem froze {} records (occupancy {} of {}/host)",
        r.postmortem_records, r.recorder_occupancy, DEMO_RECORDER_CAP
    );
    println!("  scale sweep (monitor on, journal off, {SCALE_SAMPLE} probe frames/point):");
    println!(
        "    {:>9} {:>8} {:>10} {:>11} {:>10}",
        "channels", "sampled", "ring evts", "mon mem (B)", "violations"
    );
    for p in &r.scale {
        println!(
            "    {:>9} {:>8} {:>10} {:>11} {:>10}",
            p.channels, p.sampled, p.ring_events, p.monitor_mem_bytes, p.violations
        );
    }
    println!();
}

/// Serializes the report (hand-rolled JSON; the workspace is
/// dependency-free by design) — `BENCH_monitor.json`.
pub fn to_json(r: &MonitorReport) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"monitor\",\n");
    out.push_str(&format!(
        "  \"golden_violations\": {},\n",
        r.golden_violations()
    ));
    out.push_str(&format!(
        "  \"workload\": {{\"table\": 2, \"total_bytes\": {CAUSAL_TOTAL}, \"user_packet\": {CAUSAL_PACKET}, \"seed\": {CAUSAL_SEED}, \"loss\": {CAUSAL_LOSS}}},\n"
    ));
    out.push_str(&format!(
        "  \"golden\": {{\"lossy_violations\": {}, \"clean_violations\": {}, \"live_violations\": {}}},\n",
        r.lossy_violations, r.clean_violations, r.live_violations
    ));
    let c = &r.checked;
    out.push_str(&format!(
        "  \"checked\": {{\"tcp_acks\": {}, \"transitions\": {}, \"rexmits\": {}, \"ring_events\": {}, \"pool_events\": {}, \"demux_classifies\": {}, \"quota_drops\": {}}},\n",
        c.tcp_acks, c.transitions, c.rexmits, c.ring_events, c.pool_events, c.demux_classifies, c.quota_drops
    ));
    out.push_str(&format!(
        "  \"mutations\": {{\"classes\": {}, \"caught\": {}, \"per_class\": {{",
        r.mutations.len(),
        r.mutations_caught()
    ));
    for (i, (class, n)) in r.mutations.iter().enumerate() {
        out.push_str(&format!(
            "{}\"{}\": {n}",
            if i > 0 { ", " } else { "" },
            class.label()
        ));
    }
    out.push_str("}},\n");
    out.push_str(&format!(
        "  \"overhead\": {{\"ratio\": {:.4}, \"bound\": {OVERHEAD_BOUND}, \"off_secs\": {:.4}, \"on_secs\": {:.4}, \"attempts\": {}}},\n",
        r.overhead_ratio, r.off_secs, r.on_secs, r.overhead_attempts
    ));
    out.push_str(&format!(
        "  \"recorder\": {{\"capacity_per_host\": {DEMO_RECORDER_CAP}, \"postmortem_records\": {}, \"occupancy\": {}}},\n",
        r.postmortem_records, r.recorder_occupancy
    ));
    out.push_str(&format!(
        "  \"scale\": {{\"sample_frames\": {SCALE_SAMPLE}, \"peak_observer_mem_bytes\": {}, \"points\": [\n",
        r.peak_observer_mem()
    ));
    for (i, p) in r.scale.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"channels\": {}, \"sampled\": {}, \"ring_events\": {}, \"monitor_mem_bytes\": {}, \"violations\": {}}}{}\n",
            p.channels,
            p.sampled,
            p.ring_events,
            p.monitor_mem_bytes,
            p.violations,
            if i + 1 < r.scale.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]}\n}\n");
    out
}

/// The CI gate body: every leg must hold. Returns the verdict lines to
/// print on success.
pub fn gate(r: &MonitorReport) -> Result<Vec<String>, String> {
    if r.golden_violations() != 0 {
        return Err(format!(
            "conformant runs flagged {} violations (lossy {}, clean {}, live {}, scale {})",
            r.golden_violations(),
            r.lossy_violations,
            r.clean_violations,
            r.live_violations,
            r.scale.iter().map(|p| p.violations).sum::<u64>()
        ));
    }
    let c = &r.checked;
    for (name, n) in [
        ("tcp_acks", c.tcp_acks),
        ("transitions", c.transitions),
        ("rexmits", c.rexmits),
        ("ring_events", c.ring_events),
        ("pool_events", c.pool_events),
        ("demux_classifies", c.demux_classifies),
    ] {
        if n == 0 {
            return Err(format!(
                "checker vacuous: {name} validated 0 events on the lossy workload"
            ));
        }
    }
    if r.mutations_caught() != r.mutations.len() {
        let missed: Vec<&str> = r
            .mutations
            .iter()
            .filter(|(_, n)| *n == 0)
            .map(|(c, _)| c.label())
            .collect();
        return Err(format!(
            "mutation harness: {}/{} classes caught (missed: {})",
            r.mutations_caught(),
            r.mutations.len(),
            missed.join(", ")
        ));
    }
    if r.overhead_ratio > OVERHEAD_BOUND {
        return Err(format!(
            "monitor overhead {:.3}x exceeds {OVERHEAD_BOUND}x after {} attempts",
            r.overhead_ratio, r.overhead_attempts
        ));
    }
    if r.postmortem_records == 0 {
        return Err("recorder demo froze an empty postmortem".into());
    }
    Ok(vec![
        format!(
            "monitor gate: 0 violations on golden runs ({} acks, {} rexmits, {} ring events checked)",
            r.checked.tcp_acks, r.checked.rexmits, r.checked.ring_events
        ),
        format!(
            "monitor gate: {}/{} mutation classes caught",
            r.mutations_caught(),
            r.mutations.len()
        ),
        format!(
            "monitor gate: overhead {:.3}x (bound {OVERHEAD_BOUND}x), peak observer mem {} bytes at 10^6 channels",
            r.overhead_ratio,
            r.peak_observer_mem()
        ),
    ])
}

/// Prints the `--monitor` postmortem excerpt: the demo mutant's first
/// violation and the tail of its frozen flight-recorder window.
pub fn print_postmortem_demo(lossy: &[Record]) {
    let demo = demo_monitor(lossy);
    println!("== Postmortem demo: seeded ack-regression mutant ==");
    for v in demo.violations().iter().take(3) {
        println!("  violation: {}", v.line());
    }
    if let Some(window) = demo.postmortem() {
        let rendered = unp_trace::render(window);
        let lines: Vec<&str> = rendered.lines().collect();
        let tail = lines.len().saturating_sub(8);
        println!(
            "  flight recorder window: {} records; last {}:",
            window.len(),
            lines.len() - tail
        );
        for l in &lines[tail..] {
            println!("    {l}");
        }
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossy_journal_replays_clean_and_mutations_catch() {
        let lossy = lossy_journal();
        let mon = Monitor::new().run_over(&lossy);
        assert_eq!(
            mon.total_violations(),
            0,
            "conformant lossy run must be violation-free: {:?}",
            mon.violations().first()
        );
        let c = mon.checked();
        assert!(c.tcp_acks > 0 && c.rexmits > 0 && c.ring_events > 0);
        assert!(c.pool_events > 0 && c.demux_classifies > 0 && c.transitions > 0);
        for (class, n) in mutation_coverage(&lossy) {
            assert!(n > 0, "{} not caught", class.label());
        }
        let demo = demo_monitor(&lossy);
        assert!(demo.postmortem().is_some_and(|w| !w.is_empty()));
    }

    #[test]
    fn scale_point_memory_tracks_sample_not_population() {
        let small = scale_point(64);
        let big = scale_point(4096);
        assert_eq!(small.violations + big.violations, 0);
        assert!(big.ring_events >= SCALE_SAMPLE as u64);
        // 64x the population, same sample: observer state must not grow
        // with the channel count (allow slack for hash-map capacity).
        assert!(
            big.monitor_mem_bytes <= small.monitor_mem_bytes.max(1) * 4,
            "monitor memory scaled with population: {} -> {}",
            small.monitor_mem_bytes,
            big.monitor_mem_bytes
        );
    }

    #[test]
    fn report_json_is_shaped() {
        let r = MonitorReport {
            lossy_violations: 0,
            clean_violations: 0,
            live_violations: 0,
            checked: CheckStats {
                tcp_acks: 10,
                transitions: 4,
                rexmits: 2,
                ring_events: 9,
                pool_events: 8,
                demux_classifies: 9,
                quota_drops: 0,
            },
            mutations: vec![(BugClass::AckRegression, 1), (BugClass::RingLeak, 2)],
            overhead_ratio: 1.01,
            off_secs: 0.5,
            on_secs: 0.505,
            overhead_attempts: 1,
            postmortem_records: 17,
            recorder_occupancy: 64,
            scale: vec![ScaleMonPoint {
                channels: 8,
                sampled: 8,
                monitor_mem_bytes: 1024,
                ring_events: 8,
                violations: 0,
            }],
        };
        let j = to_json(&r);
        let v = unp_trace::json::parse(&j).expect("monitor json parses");
        assert_eq!(
            v.get("golden_violations")
                .and_then(unp_trace::json::Value::as_u64),
            Some(0)
        );
        assert_eq!(
            v.get("scale")
                .and_then(|s| s.get("peak_observer_mem_bytes"))
                .and_then(unp_trace::json::Value::as_u64),
            Some(1024)
        );
        assert!(gate(&r).is_ok());
        let mut bad = r;
        bad.lossy_violations = 1;
        assert!(gate(&bad).is_err());
    }
}
