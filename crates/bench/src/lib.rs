//! `unp-bench` — benchmark harness and paper-table reproduction.
//!
//! * `cargo run -p unp-bench --release --bin repro-tables` regenerates
//!   every table of the paper's §4 (plus the Figure 1 organization sweep
//!   and the ablation studies) on the simulated testbed.
//! * `cargo bench -p unp-bench` runs the Criterion micro-benchmarks over
//!   the real hot-path code (checksum, filter VMs, timing wheel, TCP
//!   segment processing) on the host machine.

pub mod causal;
pub mod demux;
pub mod isolation;
pub mod monitor;
pub mod profile;
pub mod scale;
pub mod summary;
pub mod tables;
pub mod timings;
pub mod trace;
