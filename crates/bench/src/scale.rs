//! Million-channel demux scale sweep — `BENCH_demux_scale.json`.
//!
//! Pushes the churn/classify measurements past the `--profile` sweep's
//! 4096-channel ceiling into the 10^5–10^6 range the ISSUE's incremental
//! maintenance targets. At each N the module holds a mixed population
//! (exact connection bindings, fully-wildcard listen bindings, and
//! half-specified residual bindings, in the ratios a busy server would
//! see), and we measure, in host wall-clock ns/op:
//!
//! * **churn** — one create→activate→destroy cycle at population N. With
//!   incremental maintenance this is O(log N) and should stay roughly
//!   flat; the from-scratch `force_rebuild_active` oracle alongside it is
//!   O(N) and shows what every single event used to cost.
//! * **per-tier classify** — one frame resolved by each tier: exact
//!   5-tuple flow table, 3-tuple listen table, and the residual filter
//!   scan (worst case: the last residual binding).
//! * **memory** — table populations and [`NetIoModule::demux_mem_bytes`],
//!   the demux-structure footprint excluding ring payload memory.

use unp_buffers::OwnerTag;
use unp_filter::programs::DemuxSpec;
use unp_kernel::{DemuxPath, NetIoModule};
use unp_wire::Ipv4Repr;
use unp_wire::{EtherType, EthernetRepr, IpProtocol, Ipv4Addr, MacAddr, SeqNum, TcpFlags, TcpRepr};

use crate::demux::{spec_for, template_for, time_ns};

/// The channel counts the scale sweep visits (8 → 10^6).
pub const SCALE_COUNTS: [usize; 7] = [8, 64, 512, 4096, 65_536, 262_144, 1_000_000];

/// Out of every [`MIX_PERIOD`] channels, one is a listen binding and one a
/// residual (half-specified) binding; the rest are exact connections.
const MIX_PERIOD: usize = 64;

/// One point of the scale sweep.
pub struct ScalePoint {
    /// Total active channels installed.
    pub channels: usize,
    /// One create→activate→destroy cycle (incremental maintenance).
    pub churn_ns: f64,
    /// One from-scratch `force_rebuild_active` pass (the old per-event cost).
    pub rebuild_ns: f64,
    /// Classify resolved by the exact-match flow table.
    pub flow_ns: f64,
    /// Classify resolved by the 3-tuple listen table.
    pub listen_ns: f64,
    /// Classify resolved by the residual filter scan (last binding).
    pub scan_ns: f64,
    /// Exact-match entries in the flow table.
    pub flow_table_len: usize,
    /// 3-tuple entries in the listen table.
    pub listen_table_len: usize,
    /// Demux-structure footprint in bytes (tables + scan order + Fenwick
    /// + residual set; excludes ring payload memory).
    pub mem_bytes: usize,
}

/// The spec for slot `i` of the mixed population. Every [`MIX_PERIOD`]th
/// pair of slots is a listen binding and a residual binding; each
/// category owns a disjoint local-address space so a frame aimed at one
/// tier can never be stolen by another.
pub fn mixed_spec(i: usize) -> DemuxSpec {
    let k = i / MIX_PERIOD;
    let (a, b) = ((k / 250) as u8, (k % 250) as u8);
    match i % MIX_PERIOD {
        // Listen binding: local fully specified, remote fully wildcard.
        // Slots 2/3 (not the period's tail) so even the smallest sweep
        // point (8 channels) holds every tier.
        2 => DemuxSpec {
            link_header_len: 14,
            protocol: IpProtocol::Tcp,
            local_ip: Ipv4Addr::new(10, 2, a, b),
            local_port: 81,
            remote_ip: None,
            remote_port: None,
        },
        // Residual binding: half-specified remote, undistillable.
        3 => DemuxSpec {
            link_header_len: 14,
            protocol: IpProtocol::Tcp,
            local_ip: Ipv4Addr::new(10, 3, a, b),
            local_port: 82,
            remote_ip: Some(Ipv4Addr::new(10, 9, 0, 1)),
            remote_port: None,
        },
        // Exact connection binding (the common case).
        _ => spec_for(i),
    }
}

/// A TCP frame from `remote` to `local`.
pub fn frame_to(local: (Ipv4Addr, u16), remote: (Ipv4Addr, u16)) -> Vec<u8> {
    let seg = TcpRepr {
        src_port: remote.1,
        dst_port: local.1,
        seq: SeqNum(1),
        ack_num: SeqNum(0),
        flags: TcpFlags::ack(),
        window: 8192,
        mss: None,
    }
    .build_segment(remote.0, local.0, &[0u8; 64]);
    let ip = Ipv4Repr::simple(remote.0, local.0, IpProtocol::Tcp, seg.len());
    EthernetRepr {
        dst: MacAddr::from_host_index(2),
        src: MacAddr::from_host_index(1),
        ethertype: EtherType::Ipv4,
    }
    .build_frame(&ip.build_packet(&seg))
}

/// Builds the mixed-population module at size `n` (one-slot rings so the
/// measured footprint is the demux structures, not ring capacity) plus
/// one probe frame per tier.
///
/// The keyed probes target the *first*-installed exact and listen
/// bindings (ids 0 and 2, below the first residual id 3): first-match
/// semantics make any keyed hit verify no lower-id residual binding
/// shadows it, so probing early ids keeps that shadow window empty and
/// the measurement isolates pure tier cost. The scan probe targets the
/// *last* residual binding — the filter scan's worst case, walking the
/// entire residual set.
pub fn scale_module(n: usize) -> (NetIoModule, Vec<u8>, Vec<u8>, Vec<u8>) {
    assert!(n >= 4, "population must include every tier");
    let mut m = NetIoModule::new();
    let mut last_residual = 3usize;
    for i in 0..n {
        let spec = mixed_spec(i);
        let (id, ..) = m.create_channel(OwnerTag(1), &spec, template_for_any(&spec), 1, 2048);
        m.activate(id);
        if i % MIX_PERIOD == 3 {
            last_residual = i;
        }
    }
    let exact = mixed_spec(0);
    let flow_frame = frame_to(
        (exact.local_ip, exact.local_port),
        (
            exact.remote_ip.expect("exact spec"),
            exact.remote_port.expect("exact spec"),
        ),
    );
    let listen = mixed_spec(2);
    // From a remote no exact binding names: only the listen table matches.
    let listen_frame = frame_to(
        (listen.local_ip, listen.local_port),
        (Ipv4Addr::new(10, 8, 0, 1), 9999),
    );
    let residual = mixed_spec(last_residual);
    // Matches the last residual binding's filter and nothing keyed: the
    // classify walks the whole residual set before deciding.
    let scan_frame = frame_to(
        (residual.local_ip, residual.local_port),
        (residual.remote_ip.expect("residual spec"), 9999),
    );
    (m, flow_frame, listen_frame, scan_frame)
}

/// A header template for any spec shape (wildcard remotes allowed, unlike
/// the connection-only [`template_for`]).
fn template_for_any(spec: &DemuxSpec) -> unp_kernel::template::HeaderTemplate {
    if spec.remote_ip.is_some() && spec.remote_port.is_some() {
        return template_for(spec);
    }
    unp_kernel::template::HeaderTemplate {
        link_header_len: 14,
        src_mac: None,
        dst_mac: None,
        ethertype: EtherType::Ipv4,
        protocol: IpProtocol::Tcp,
        src_ip: spec.local_ip,
        dst_ip: spec.remote_ip.unwrap_or(Ipv4Addr::new(0, 0, 0, 0)),
        src_port: spec.local_port,
        dst_port: spec.remote_port,
        bqi: None,
    }
}

/// Runs the scale sweep. O(n) operations get proportionally fewer
/// iterations so total sweep work stays near-flat; `log()`-style progress
/// goes to stdout since the 10^6 point takes a few seconds to build.
pub fn scale_sweep() -> Vec<ScalePoint> {
    SCALE_COUNTS
        .iter()
        .map(|&n| {
            let (mut m, flow_frame, listen_frame, scan_frame) = scale_module(n);
            // Sanity: each probe frame resolves on its intended tier and
            // agrees with the linear-scan oracle before we time it.
            for (frame, want) in [
                (&flow_frame, DemuxPath::FlowTable),
                (&listen_frame, DemuxPath::ListenTable),
                (&scan_frame, DemuxPath::FilterScan),
            ] {
                let (t, i, path) = m.classify(frame);
                assert_eq!(path, want, "probe frame must hit its tier at n={n}");
                assert!(t.is_some(), "probe frame must match at n={n}");
                assert_eq!((t, i), m.classify_scan_reference(frame));
            }
            // Rebuild, classify and footprint are measured *before* churn:
            // every churn cycle mints a fresh channel id, so measuring
            // churn first would grow the id space (and the Fenwick the
            // O(N) rebuild walks) by iters slots, turning the rebuild
            // column into a measurement of the benchmark's own history.
            let rebuild_iters = (2_000_000 / n as u64).max(4);
            let rebuild_ns = time_ns(|| m.force_rebuild_active(), rebuild_iters, 3);
            let keyed = |frame: &Vec<u8>| {
                time_ns(
                    || {
                        std::hint::black_box(m.classify(std::hint::black_box(frame)));
                    },
                    200_000,
                    3,
                )
            };
            let flow_ns = keyed(&flow_frame);
            let listen_ns = keyed(&listen_frame);
            let scan_iters = (2_000_000 / n as u64).max(8);
            let scan_ns = time_ns(
                || {
                    std::hint::black_box(m.classify(std::hint::black_box(&scan_frame)));
                },
                scan_iters,
                3,
            );
            let (flow_table_len, listen_table_len, mem_bytes) = (
                m.flow_table_len(),
                m.listen_table_len(),
                m.demux_mem_bytes(),
            );
            let churn_iters = 50_000u64.min((2_000_000 / n as u64).max(1_000));
            let churn_ns = time_ns(
                || {
                    let spec = spec_for(n);
                    let (id, ..) =
                        m.create_channel(OwnerTag(1), &spec, template_for(&spec), 1, 2048);
                    m.activate(id);
                    assert!(m.destroy_channel(id, OwnerTag(1)));
                },
                churn_iters,
                3,
            );
            ScalePoint {
                channels: n,
                churn_ns,
                rebuild_ns,
                flow_ns,
                listen_ns,
                scan_ns,
                flow_table_len,
                listen_table_len,
                mem_bytes,
            }
        })
        .collect()
}

/// Prints the scale report.
pub fn print_report(points: &[ScalePoint]) {
    println!("== Demux at scale: mixed population, incremental churn, per-tier classify ==");
    println!("   (host wall-clock ns/op; mem = demux structures, not ring payloads)");
    println!(
        "  {:>9} {:>11} {:>13} {:>9} {:>9} {:>12} {:>10} {:>9} {:>10}",
        "channels",
        "churn (ns)",
        "rebuild (ns)",
        "flow",
        "listen",
        "scan",
        "flow tbl",
        "lstn tbl",
        "mem (MB)"
    );
    for p in points {
        println!(
            "  {:>9} {:>11.1} {:>13.1} {:>9.1} {:>9.1} {:>12.1} {:>10} {:>9} {:>10.2}",
            p.channels,
            p.churn_ns,
            p.rebuild_ns,
            p.flow_ns,
            p.listen_ns,
            p.scan_ns,
            p.flow_table_len,
            p.listen_table_len,
            p.mem_bytes as f64 / 1e6
        );
    }
    println!();
}

/// Serializes the sweep as JSON (hand-rolled: the workspace is
/// dependency-free by design) — `BENCH_demux_scale.json`.
pub fn to_json(points: &[ScalePoint]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"benchmark\": \"demux_scale\",\n");
    out.push_str(&format!(
        "  \"mix\": {{\"period\": {MIX_PERIOD}, \"listen_per_period\": 1, \"residual_per_period\": 1}},\n"
    ));
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"channels\": {}, \"churn_cycle_ns\": {:.1}, \"rebuild_active_ns\": {:.1}, \"flow_classify_ns\": {:.1}, \"listen_classify_ns\": {:.1}, \"scan_classify_ns\": {:.1}, \"flow_table_len\": {}, \"listen_table_len\": {}, \"demux_mem_bytes\": {}}}{}\n",
            p.channels,
            p.churn_ns,
            p.rebuild_ns,
            p.flow_ns,
            p.listen_ns,
            p.scan_ns,
            p.flow_table_len,
            p.listen_table_len,
            p.mem_bytes,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// The CI churn-scaling gate: per-event churn must not scale with the
/// population. We require the 4096-channel churn cycle to stay within a
/// constant factor of the 64-channel one — the seed's O(N) rebuild was
/// ~56x here (62.8 µs vs 1.1 µs rebuild inside the cycle), so the bound
/// has real teeth while leaving generous room for timer noise on loaded
/// CI hosts.
pub const CHURN_GATE_FACTOR: f64 = 8.0;

/// Runs the gate measurement (small counts only — fast enough for CI).
/// Returns `(churn_at_64, churn_at_4096)`.
pub fn churn_gate_measure() -> (f64, f64) {
    let at = |n: usize| {
        let (mut m, ..) = scale_module(n);
        time_ns(
            || {
                let spec = spec_for(n);
                let (id, ..) = m.create_channel(OwnerTag(1), &spec, template_for(&spec), 1, 2048);
                m.activate(id);
                assert!(m.destroy_channel(id, OwnerTag(1)));
            },
            20_000,
            5,
        )
    };
    (at(64), at(4096))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_module_tiers_resolve_and_agree() {
        for n in [64usize, 256] {
            let (m, flow_frame, listen_frame, scan_frame) = scale_module(n);
            let (t, i, path) = m.classify(&flow_frame);
            assert_eq!(path, DemuxPath::FlowTable);
            assert_eq!((t, i), m.classify_scan_reference(&flow_frame));
            let (t, i, path) = m.classify(&listen_frame);
            assert_eq!(path, DemuxPath::ListenTable);
            assert_eq!((t, i), m.classify_scan_reference(&listen_frame));
            let (t, i, path) = m.classify(&scan_frame);
            assert_eq!(path, DemuxPath::FilterScan);
            assert_eq!((t, i), m.classify_scan_reference(&scan_frame));
            assert!(m.caches_match_rebuild());
        }
    }

    #[test]
    fn scale_module_populates_every_tier() {
        let (m, ..) = scale_module(256);
        assert_eq!(m.flow_table_len(), 256 - 2 * (256 / MIX_PERIOD));
        assert_eq!(m.listen_table_len(), 256 / MIX_PERIOD);
        assert!(m.demux_mem_bytes() > 0);
    }

    #[test]
    fn json_is_shaped() {
        let points = vec![ScalePoint {
            channels: 64,
            churn_ns: 100.0,
            rebuild_ns: 1000.0,
            flow_ns: 50.0,
            listen_ns: 55.0,
            scan_ns: 400.0,
            flow_table_len: 62,
            listen_table_len: 1,
            mem_bytes: 4096,
        }];
        let j = to_json(&points);
        assert!(j.contains("\"demux_mem_bytes\": 4096"));
        assert!(j.contains("\"listen_classify_ns\": 55.0"));
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "unbalanced JSON"
        );
    }
}
