//! Regenerates every table of the paper's evaluation section.
//!
//! Usage:
//! ```text
//! cargo run -p unp-bench --release --bin repro-tables            # all
//! cargo run -p unp-bench --release --bin repro-tables -- table2  # one
//! cargo run -p unp-bench --release --bin repro-tables -- quick   # smaller workloads
//! cargo run -p unp-bench --release --bin repro-tables -- --timings
//! #   also time each table (host wall-clock, events, frame allocations),
//! #   run the frame-pool ablation and the demux fast-path report, and
//! #   write BENCH_zero_copy.json + BENCH_demux.json
//! cargo run -p unp-bench --release --bin repro-tables -- --trace
//! #   also rerun the Table-2 workload with the event journal recording,
//! #   print the receive-path latency breakdown cross-checked against the
//! #   modeled costs, and write BENCH_trace.json
//! cargo run -p unp-bench --release --bin repro-tables -- --profile
//! #   also join the journal into per-frame path traces, print the
//! #   per-stage latency decomposition and the 8→4096-channel churn
//! #   sweep (rebuild_active timing), write BENCH_profile.json, then run
//! #   the 8→10^6-channel mixed-population scale sweep (incremental
//! #   churn, per-tier classify, memory footprint) and write
//! #   BENCH_demux_scale.json
//! cargo run -p unp-bench --release --bin repro-tables -- --churn-gate
//! #   CI gate: per-event channel churn at 4096 channels must stay within
//! #   a constant factor of 64 channels (incremental maintenance must not
//! #   scale with the population); exit 1 otherwise; skips the tables
//! cargo run -p unp-bench --release --bin repro-tables -- --profile-baseline
//! #   (re)generate BENCH_profile_baseline.json for the CI perf gate
//! #   from the quick workload; skips the tables
//! cargo run -p unp-bench --release --bin repro-tables -- --profile-gate <baseline>
//! #   re-run the quick workload and compare stage means against the
//! #   committed baseline: exit 1 on regression past the tolerance band,
//! #   warn on improvement; skips the tables
//! cargo run -p unp-bench --release --bin repro-tables -- --explain [f<id> | <port>]
//! #   run the seeded faulty Table-2 workload, join the journal into the
//! #   cross-host causal graph, and print the postmortem for one frame
//! #   (f<id>), one connection (<port>), or the whole run; skips the tables
//! cargo run -p unp-bench --release --bin repro-tables -- --explain-gate
//! #   CI gate: same workload, assert the fault-plan oracle (attribution
//! #   coverage 1.0, every lost data frame claimed exactly once or
//! #   superseded), write BENCH_causal.json, and diff the Chrome trace
//! #   export against tests/golden/causal_trace.json; skips the tables
//! cargo run -p unp-bench --release --bin repro-tables -- --explain-baseline
//! #   (re)generate the golden Chrome trace + BENCH_causal.json
//! cargo run -p unp-bench --release --bin repro-tables -- --isolation-gate
//! #   CI gate: run the multi-tenant isolation oracle (three innocent
//! #   tenants + one byzantine tenant, baseline vs hostile run of the
//! #   same seed), assert the isolation envelope, and write
//! #   BENCH_isolation.json; skips the tables
//! cargo run -p unp-bench --release --bin repro-tables -- --monitor
//! #   run the streaming conformance monitor over the golden workloads,
//! #   the mutation harness, the overhead timing, and the monitored
//! #   scale sweep; print the report plus a seeded postmortem demo and
//! #   write BENCH_monitor.json; skips the tables
//! cargo run -p unp-bench --release --bin repro-tables -- --monitor-gate
//! #   CI gate: same measurements, assert zero violations on conformant
//! #   runs, non-vacuous checkers, 8/8 mutation classes caught, and the
//! #   overhead bound; write BENCH_monitor.json; skips the tables
//! cargo run -p unp-bench --release --bin repro-tables -- --summary
//! #   fold the headline scalar of every committed BENCH_*.json into
//! #   BENCH_summary.json (also written by the artifact modes above)
//! ```

use unp_bench::{
    causal, demux, isolation, monitor, profile, scale, summary, tables, timings, trace,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "quick");
    let want_timings = args.iter().any(|a| a == "--timings" || a == "timings");
    let want_trace = args.iter().any(|a| a == "--trace" || a == "trace");
    let want_profile = args.iter().any(|a| a == "--profile" || a == "profile");
    let want_baseline = args.iter().any(|a| a == "--profile-baseline");
    let want_churn_gate = args.iter().any(|a| a == "--churn-gate");
    let gate_path = args
        .iter()
        .position(|a| a == "--profile-gate")
        .map(|i| args.get(i + 1).expect("--profile-gate <baseline>").clone());
    let explain_pos = args.iter().position(|a| a == "--explain");
    let want_explain_gate = args.iter().any(|a| a == "--explain-gate");
    let want_explain_baseline = args.iter().any(|a| a == "--explain-baseline");
    let want_summary = args.iter().any(|a| a == "--summary");
    let want_isolation_gate = args.iter().any(|a| a == "--isolation-gate");
    let want_monitor = args.iter().any(|a| a == "--monitor");
    let want_monitor_gate = args.iter().any(|a| a == "--monitor-gate");
    let total: u64 = if quick { 400_000 } else { 2_000_000 };
    let rounds = if quick { 10 } else { 30 };

    if want_explain_gate || want_explain_baseline {
        let result = if want_explain_gate {
            causal::gate()
        } else {
            causal::baseline()
        };
        match result {
            Ok(lines) => {
                for l in lines {
                    println!("{l}");
                }
            }
            Err(msg) => {
                eprintln!("causal gate FAILED: {msg}");
                std::process::exit(1);
            }
        }
        return;
    }

    if let Some(i) = explain_pos {
        let graph = causal::causal_section();
        causal::print_explain(&graph, args.get(i + 1).map(String::as_str));
        return;
    }

    if want_isolation_gate {
        match isolation::gate() {
            Ok((lines, json)) => {
                for l in lines {
                    println!("{l}");
                }
                let path = "BENCH_isolation.json";
                std::fs::write(path, json).expect("write isolation json");
                println!("wrote {path}");
                summary::write();
            }
            Err(msg) => {
                eprintln!("isolation gate FAILED: {msg}");
                std::process::exit(1);
            }
        }
        return;
    }

    if want_monitor || want_monitor_gate {
        let report = monitor::monitor_section(|line| println!("{line}"));
        monitor::print_report(&report);
        if want_monitor {
            let lossy = causal::lossy_journal();
            monitor::print_postmortem_demo(&lossy);
        }
        let json = monitor::to_json(&report);
        let path = "BENCH_monitor.json";
        std::fs::write(path, &json).expect("write monitor json");
        println!("wrote {path}");
        summary::write();
        if want_monitor_gate {
            match monitor::gate(&report) {
                Ok(lines) => {
                    for l in lines {
                        println!("{l}");
                    }
                }
                Err(msg) => {
                    eprintln!("monitor gate FAILED: {msg}");
                    std::process::exit(1);
                }
            }
        }
        return;
    }

    if want_summary {
        summary::write();
        return;
    }

    if want_churn_gate {
        let (at_64, at_4096) = scale::churn_gate_measure();
        let ratio = at_4096 / at_64;
        println!(
            "churn gate: create+activate+destroy {at_64:.1} ns @ 64 channels, {at_4096:.1} ns @ 4096 ({ratio:.2}x, bound {:.0}x)",
            scale::CHURN_GATE_FACTOR
        );
        if ratio > scale::CHURN_GATE_FACTOR {
            eprintln!(
                "churn gate FAILED: per-event churn scaled {ratio:.2}x from 64 to 4096 channels (bound {:.0}x) — incremental maintenance has regressed to O(N)",
                scale::CHURN_GATE_FACTOR
            );
            std::process::exit(1);
        }
        return;
    }

    // The gate/baseline modes are CI tools: deterministic quick workload,
    // no table regeneration.
    if want_baseline || gate_path.is_some() {
        let rows = profile::profile_section(400_000);
        let means = profile::gate_means(&rows);
        if want_baseline {
            let path = "BENCH_profile_baseline.json";
            std::fs::write(path, profile::baseline_json(&rows)).expect("write baseline json");
            println!("wrote {path}");
        }
        if let Some(path) = gate_path {
            let baseline = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
            match profile::check_gate(&means, &baseline) {
                Ok(warnings) => {
                    for w in &warnings {
                        println!("warning: {w}");
                    }
                    println!("profile gate: stage means within ±5% of {path}");
                }
                Err(msg) => {
                    eprintln!("profile gate FAILED: {msg}");
                    std::process::exit(1);
                }
            }
        }
        return;
    }

    let selectors: Vec<&String> = args
        .iter()
        .filter(|a| {
            *a != "--timings"
                && *a != "timings"
                && *a != "--trace"
                && *a != "trace"
                && *a != "--profile"
                && *a != "profile"
        })
        .collect();
    let pick =
        |name: &str| selectors.is_empty() || selectors.iter().any(|a| *a == name || *a == "quick");

    println!("Reproduction of \"Implementing Network Protocols at User Level\"");
    println!("(Thekkath, Nguyen, Moy, Lazowska — SIGCOMM 1993)\n");

    type TableFn<'a> = (&'static str, Box<dyn FnOnce() + 'a>);
    let runs: Vec<TableFn> = vec![
        ("table1", Box::new(tables::table1)),
        ("table2", Box::new(move || tables::table2(total))),
        ("table3", Box::new(move || tables::table3(rounds))),
        ("table4", Box::new(tables::table4)),
        ("table5", Box::new(tables::table5)),
        ("fig1", Box::new(move || tables::fig1_sweep(total))),
        ("ablations", Box::new(move || tables::ablations(total))),
    ];

    let mut timed = Vec::new();
    for (name, run) in runs {
        if !pick(name) {
            continue;
        }
        if want_timings {
            timed.push(timings::timed(name, run));
        } else {
            run();
        }
    }

    if want_timings {
        let cmp = timings::pool_comparison(4096, total);
        timings::print_report(&timed, &cmp);
        let json = timings::to_json(&timed, &cmp);
        let path = "BENCH_zero_copy.json";
        std::fs::write(path, &json).expect("write benchmark json");
        println!("wrote {path}");

        let d = demux::demux_section(total);
        demux::print_report(&d);
        let json = demux::to_json(&d);
        let path = "BENCH_demux.json";
        std::fs::write(path, &json).expect("write benchmark json");
        println!("wrote {path}");
    }

    if want_trace {
        let trace_total = if quick { 400_000 } else { 1_000_000 };
        let rows = trace::trace_section(trace_total);
        trace::print_report(&rows);
        let json = trace::to_json(&rows, trace_total);
        let path = "BENCH_trace.json";
        std::fs::write(path, &json).expect("write benchmark json");
        println!("wrote {path}");
    }

    if want_profile {
        let profile_total = if quick { 400_000 } else { 1_000_000 };
        let rows = profile::profile_section(profile_total);
        let churn = profile::churn_sweep();
        profile::print_report(&rows, &churn);
        let json = profile::to_json(&rows, &churn, profile_total);
        let path = "BENCH_profile.json";
        std::fs::write(path, &json).expect("write benchmark json");
        println!("wrote {path}");

        let points = scale::scale_sweep();
        scale::print_report(&points);
        let json = scale::to_json(&points);
        let path = "BENCH_demux_scale.json";
        std::fs::write(path, &json).expect("write benchmark json");
        println!("wrote {path}");
    }

    // Every artifact-writing mode refreshes the consolidated summary so
    // it never trails the per-mode files it folds.
    if want_timings || want_trace || want_profile {
        summary::write();
    }
}
