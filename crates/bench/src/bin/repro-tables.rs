//! Regenerates every table of the paper's evaluation section.
//!
//! Usage:
//! ```text
//! cargo run -p unp-bench --release --bin repro-tables            # all
//! cargo run -p unp-bench --release --bin repro-tables -- table2  # one
//! cargo run -p unp-bench --release --bin repro-tables -- quick   # smaller workloads
//! cargo run -p unp-bench --release --bin repro-tables -- --timings
//! #   also time each table (host wall-clock, events, frame allocations),
//! #   run the frame-pool ablation and the demux fast-path report, and
//! #   write BENCH_zero_copy.json + BENCH_demux.json
//! cargo run -p unp-bench --release --bin repro-tables -- --trace
//! #   also rerun the Table-2 workload with the event journal recording,
//! #   print the receive-path latency breakdown cross-checked against the
//! #   modeled costs, and write BENCH_trace.json
//! ```

use unp_bench::{demux, tables, timings, trace};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "quick");
    let want_timings = args.iter().any(|a| a == "--timings" || a == "timings");
    let want_trace = args.iter().any(|a| a == "--trace" || a == "trace");
    let total: u64 = if quick { 400_000 } else { 2_000_000 };
    let rounds = if quick { 10 } else { 30 };
    let selectors: Vec<&String> = args
        .iter()
        .filter(|a| *a != "--timings" && *a != "timings" && *a != "--trace" && *a != "trace")
        .collect();
    let pick =
        |name: &str| selectors.is_empty() || selectors.iter().any(|a| *a == name || *a == "quick");

    println!("Reproduction of \"Implementing Network Protocols at User Level\"");
    println!("(Thekkath, Nguyen, Moy, Lazowska — SIGCOMM 1993)\n");

    type TableFn<'a> = (&'static str, Box<dyn FnOnce() + 'a>);
    let runs: Vec<TableFn> = vec![
        ("table1", Box::new(tables::table1)),
        ("table2", Box::new(move || tables::table2(total))),
        ("table3", Box::new(move || tables::table3(rounds))),
        ("table4", Box::new(tables::table4)),
        ("table5", Box::new(tables::table5)),
        ("fig1", Box::new(move || tables::fig1_sweep(total))),
        ("ablations", Box::new(move || tables::ablations(total))),
    ];

    let mut timed = Vec::new();
    for (name, run) in runs {
        if !pick(name) {
            continue;
        }
        if want_timings {
            timed.push(timings::timed(name, run));
        } else {
            run();
        }
    }

    if want_timings {
        let cmp = timings::pool_comparison(4096, total);
        timings::print_report(&timed, &cmp);
        let json = timings::to_json(&timed, &cmp);
        let path = "BENCH_zero_copy.json";
        std::fs::write(path, &json).expect("write benchmark json");
        println!("wrote {path}");

        let d = demux::demux_section(total);
        demux::print_report(&d);
        let json = demux::to_json(&d);
        let path = "BENCH_demux.json";
        std::fs::write(path, &json).expect("write benchmark json");
        println!("wrote {path}");
    }

    if want_trace {
        let trace_total = if quick { 400_000 } else { 1_000_000 };
        let rows = trace::trace_section(trace_total);
        trace::print_report(&rows);
        let json = trace::to_json(&rows, trace_total);
        let path = "BENCH_trace.json";
        std::fs::write(path, &json).expect("write benchmark json");
        println!("wrote {path}");
    }
}
