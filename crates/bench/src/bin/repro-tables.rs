//! Regenerates every table of the paper's evaluation section.
//!
//! Usage:
//! ```text
//! cargo run -p unp-bench --release --bin repro-tables            # all
//! cargo run -p unp-bench --release --bin repro-tables -- table2  # one
//! cargo run -p unp-bench --release --bin repro-tables -- quick   # smaller workloads
//! ```

use unp_bench::tables;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "quick");
    let total: u64 = if quick { 400_000 } else { 2_000_000 };
    let rounds = if quick { 10 } else { 30 };
    let pick = |name: &str| args.is_empty() || args.iter().any(|a| a == name || a == "quick");

    println!("Reproduction of \"Implementing Network Protocols at User Level\"");
    println!("(Thekkath, Nguyen, Moy, Lazowska — SIGCOMM 1993)\n");
    if pick("table1") {
        tables::table1();
    }
    if pick("table2") {
        tables::table2(total);
    }
    if pick("table3") {
        tables::table3(rounds);
    }
    if pick("table4") {
        tables::table4();
    }
    if pick("table5") {
        tables::table5();
    }
    if pick("fig1") {
        tables::fig1_sweep(total);
    }
    if pick("ablations") {
        tables::ablations(total);
    }
}
