//! Criterion micro-benchmarks over the real hot-path code (run on the host
//! machine — these measure our Rust implementation, complementing the
//! modeled 1993 costs the table reproductions use).
//!
//! * Internet checksum throughput;
//! * the three packet-demultiplexing generations (CSPF interpreter, BPF
//!   VM, compiled match) — the modern-hardware analogue of Table 5;
//! * hierarchical timing wheel vs. the sorted-list baseline — the
//!   Varghese & Lauck ablation;
//! * TCP segment build/parse and full loopback transfer throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use unp_buffers::FramePool;
use unp_filter::programs::{bpf_demux, cspf_demux, DemuxSpec};
use unp_filter::{CompiledDemux, Demux};
use unp_tcp::loopback::{ChannelModel, Loopback, Side};
use unp_tcp::TcpConfig;
use unp_timers::{SortedTimerList, TimerService, TimerWheel};
use unp_wire::{
    checksum, EtherType, EthernetRepr, IpProtocol, Ipv4Addr, Ipv4Repr, MacAddr, SeqNum, TcpFlags,
    TcpPacket, TcpRepr, IPV4_HEADER_LEN,
};

fn bench_checksum(c: &mut Criterion) {
    let mut g = c.benchmark_group("checksum");
    for size in [64usize, 512, 1460] {
        let data: Vec<u8> = (0..size).map(|i| i as u8).collect();
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("rfc1071_{size}"), |b| {
            b.iter(|| checksum(black_box(&data)))
        });
    }
    // The one's-complement word sum itself: the u64 8-byte-folding loop
    // against the straightforward 2-byte loop, at a full MTU payload. The
    // wide loop must not lose (acceptance bar for the checksum satellite).
    let data: Vec<u8> = (0..1500).map(|i| i as u8).collect();
    g.throughput(Throughput::Bytes(1500));
    g.bench_function("sum_be_words_wide_1500", |b| {
        b.iter(|| unp_wire::checksum::sum_be_words(black_box(&data)))
    });
    g.bench_function("sum_be_words_naive_1500", |b| {
        b.iter(|| unp_wire::checksum::sum_be_words_reference(black_box(&data)))
    });
    g.finish();
}

fn demux_frame() -> Vec<u8> {
    let src = Ipv4Addr::new(10, 0, 0, 1);
    let dst = Ipv4Addr::new(10, 0, 0, 2);
    let t = TcpRepr {
        src_port: 4000,
        dst_port: 80,
        seq: SeqNum(1),
        ack_num: SeqNum(2),
        flags: TcpFlags::ack(),
        window: 8192,
        mss: None,
    };
    let seg = t.build_segment(src, dst, &[0u8; 512]);
    let ip = Ipv4Repr::simple(src, dst, IpProtocol::Tcp, seg.len());
    EthernetRepr {
        dst: MacAddr::from_host_index(2),
        src: MacAddr::from_host_index(1),
        ethertype: EtherType::Ipv4,
    }
    .build_frame(&ip.build_packet(&seg))
}

fn bench_demux(c: &mut Criterion) {
    let spec = DemuxSpec {
        link_header_len: 14,
        protocol: IpProtocol::Tcp,
        local_ip: Ipv4Addr::new(10, 0, 0, 2),
        local_port: 80,
        remote_ip: Some(Ipv4Addr::new(10, 0, 0, 1)),
        remote_port: Some(4000),
    };
    let frame = demux_frame();
    let bpf = bpf_demux(&spec);
    let cspf = cspf_demux(&spec);
    let compiled = CompiledDemux::from_spec(&spec);
    assert!(bpf.matches(&frame) && cspf.matches(&frame) && compiled.matches(&frame));

    let mut g = c.benchmark_group("demux");
    g.bench_function("cspf_interpreter", |b| {
        b.iter(|| cspf.matches(black_box(&frame)))
    });
    g.bench_function("bpf_vm", |b| b.iter(|| bpf.matches(black_box(&frame))));
    g.bench_function("compiled", |b| {
        b.iter(|| compiled.matches(black_box(&frame)))
    });
    // The miss path matters as much: every foreign packet runs the filter.
    let mut other = frame.clone();
    other[37] ^= 1; // different dst port
    g.bench_function("bpf_vm_miss", |b| b.iter(|| bpf.matches(black_box(&other))));
    g.finish();
}

fn bench_demux_scaling(c: &mut Criterion) {
    // The flow-table tentpole's headline: classifying a frame among N
    // active connection bindings. The two-tier `classify` (exact-match
    // flow table + wildcard scan) should be flat in N; the 1993-style
    // pure linear scan grows with it. The frame targets the
    // last-installed binding — the scan's worst case.
    let mut g = c.benchmark_group("demux_scaling");
    for n in unp_bench::demux::SCALING_COUNTS {
        let (m, frame) = unp_bench::demux::populated_module(n);
        g.bench_function(format!("flow_table_{n}"), |b| {
            b.iter(|| m.classify(black_box(&frame)))
        });
        g.bench_function(format!("linear_scan_{n}"), |b| {
            b.iter(|| m.classify_scan_reference(black_box(&frame)))
        });
    }
    g.finish();
}

fn bench_timers(c: &mut Criterion) {
    let mut g = c.benchmark_group("timers");
    for n in [32u64, 1024] {
        g.bench_function(format!("wheel_start_stop_{n}"), |b| {
            b.iter(|| {
                let mut w: TimerWheel<u64> = TimerWheel::new(0);
                let ids: Vec<_> = (0..n).map(|i| w.start(i * 1_000_000, i)).collect();
                for id in ids {
                    black_box(w.stop(id));
                }
            })
        });
        g.bench_function(format!("list_start_stop_{n}"), |b| {
            b.iter(|| {
                let mut l: SortedTimerList<u64> = SortedTimerList::new();
                let ids: Vec<_> = (0..n).map(|i| l.start(i * 1_000_000, i)).collect();
                for id in ids {
                    black_box(l.stop(id));
                }
            })
        });
    }
    // The TCP pattern: constant restart of one timer among many pending.
    g.bench_function("wheel_tcp_restart_pattern", |b| {
        b.iter(|| {
            let mut w: TimerWheel<u64> = TimerWheel::new(0);
            let _guards: Vec<_> = (0..256u64)
                .map(|i| w.start((i + 10) * 2_000_000, i))
                .collect();
            let mut id = w.start(1_000_000, 999);
            for i in 0..100u64 {
                w.stop(id);
                id = w.start(1_000_000 + i * 10_000, 999);
            }
            black_box(w.pending())
        })
    });
    g.finish();
}

fn bench_tcp_wire(c: &mut Criterion) {
    let src = Ipv4Addr::new(10, 0, 0, 1);
    let dst = Ipv4Addr::new(10, 0, 0, 2);
    let repr = TcpRepr {
        src_port: 4000,
        dst_port: 80,
        seq: SeqNum(100),
        ack_num: SeqNum(200),
        flags: TcpFlags::ack(),
        window: 8192,
        mss: None,
    };
    let payload = vec![0xa5u8; 1460];
    let mut g = c.benchmark_group("tcp_wire");
    g.throughput(Throughput::Bytes(1460));
    g.bench_function("build_segment_1460", |b| {
        b.iter(|| repr.build_segment(black_box(src), black_box(dst), black_box(&payload)))
    });
    let seg = repr.build_segment(src, dst, &payload);
    g.bench_function("parse_verify_1460", |b| {
        b.iter(|| {
            let p = TcpPacket::new_checked(black_box(&seg[..])).unwrap();
            assert!(p.verify_checksum(src, dst));
            TcpRepr::parse(&p)
        })
    });
    g.finish();
}

fn bench_frame_path(c: &mut Criterion) {
    // End-to-end frame construction for one full-MSS TCP segment on
    // Ethernet, the data path's innermost loop: the zero-copy way (one
    // pooled buffer, headers emitted into headroom — what
    // `core::world::emit_tcp_segment` does) against the allocating way
    // (nested build_segment → build_packet → build_frame, one Vec and one
    // copy per layer — what the path did before the frame refactor).
    let src = Ipv4Addr::new(10, 0, 0, 1);
    let dst = Ipv4Addr::new(10, 0, 0, 2);
    let repr = TcpRepr {
        src_port: 4000,
        dst_port: 80,
        seq: SeqNum(100),
        ack_num: SeqNum(200),
        flags: TcpFlags::ack(),
        window: 8192,
        mss: None,
    };
    let eth = EthernetRepr {
        dst: MacAddr::from_host_index(2),
        src: MacAddr::from_host_index(1),
        ethertype: EtherType::Ipv4,
    };
    let payload = vec![0xa5u8; 1460];
    let hlen = repr.header_len();
    let lhl = 14;
    let pool = FramePool::new(lhl + IPV4_HEADER_LEN + hlen + payload.len(), 64);

    let mut g = c.benchmark_group("frame_path");
    g.throughput(Throughput::Bytes(1460));
    g.bench_function("pooled_headroom_build_1460", |b| {
        b.iter(|| {
            let mut f = pool.alloc(lhl + IPV4_HEADER_LEN + hlen, black_box(&payload));
            f.prepend(hlen);
            repr.emit_into(f.as_mut_slice(), src, dst).unwrap();
            let ip = Ipv4Repr::simple(src, dst, IpProtocol::Tcp, hlen + payload.len());
            ip.emit(f.prepend(IPV4_HEADER_LEN)).unwrap();
            eth.emit(f.prepend(lhl)).unwrap();
            black_box(f.len())
            // Frame drops here; its buffer goes back to the pool freelist.
        })
    });
    g.bench_function("vec_nested_build_1460", |b| {
        b.iter(|| {
            let seg = repr.build_segment(src, dst, black_box(&payload));
            let ip = Ipv4Repr::simple(src, dst, IpProtocol::Tcp, seg.len());
            let frame = eth.build_frame(&ip.build_packet(&seg));
            black_box(frame.len())
        })
    });
    // Sanity outside the timed loops: the two paths emit identical bytes.
    let mut f = pool.alloc(lhl + IPV4_HEADER_LEN + hlen, &payload);
    f.prepend(hlen);
    repr.emit_into(f.as_mut_slice(), src, dst).unwrap();
    let ip = Ipv4Repr::simple(src, dst, IpProtocol::Tcp, hlen + payload.len());
    ip.emit(f.prepend(IPV4_HEADER_LEN)).unwrap();
    eth.emit(f.prepend(lhl)).unwrap();
    let seg = repr.build_segment(src, dst, &payload);
    let ipr = Ipv4Repr::simple(src, dst, IpProtocol::Tcp, seg.len());
    assert_eq!(&f[..], &eth.build_frame(&ipr.build_packet(&seg))[..]);
    g.finish();
}

fn bench_trace_overhead(c: &mut Criterion) {
    // The disabled-mode guarantee: with the journal quiescent, every emit
    // site in the hot path reduces to one relaxed atomic load and the
    // event constructor closure is never run. `classify` carries a real
    // `demux_classify` emission, so comparing it quiescent vs recording —
    // and against the `demux_scaling` numbers, which match PR 2's — shows
    // the instrumentation costs nothing when off.
    let (m, frame) = unp_bench::demux::populated_module(64);
    assert!(!unp_trace::journal_enabled());
    let mut g = c.benchmark_group("trace_overhead");
    g.throughput(Throughput::Elements(256));
    g.bench_function("classify_quiescent_x256", |b| {
        b.iter(|| {
            for _ in 0..256 {
                black_box(m.classify(black_box(&frame)));
            }
        })
    });
    g.bench_function("classify_recording_x256", |b| {
        b.iter(|| {
            unp_trace::journal_start();
            for _ in 0..256 {
                black_box(m.classify(black_box(&frame)));
            }
            unp_trace::journal_stop().len()
        })
    });
    g.finish();
    assert!(!unp_trace::journal_enabled());

    let mut g = c.benchmark_group("trace_emit");
    g.bench_function("emit_quiescent", |b| {
        b.iter(|| {
            unp_trace::emit(black_box(Some(1)), || unp_trace::Event::NicTx {
                len: black_box(1500),
            })
        })
    });
    g.finish();
}

fn bench_loopback_transfer(c: &mut Criterion) {
    // End-to-end protocol work for a 256 kB transfer over the clean
    // loopback harness: measures the real state-machine throughput of the
    // whole stack on modern hardware.
    let mut g = c.benchmark_group("stack");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(256 * 1024));
    g.bench_function("loopback_256k_transfer", |b| {
        b.iter(|| {
            let mut lb = Loopback::new(
                TcpConfig::bulk_transfer(),
                TcpConfig::bulk_transfer(),
                ChannelModel::clean(),
            );
            let data = vec![7u8; 256 * 1024];
            lb.send(Side::A, &data);
            lb.close(Side::A);
            assert!(lb.run_until(10_000_000, |lb| lb.received(Side::B).len() == data.len()));
            black_box(lb.received(Side::B).len())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_checksum,
    bench_demux,
    bench_demux_scaling,
    bench_timers,
    bench_tcp_wire,
    bench_frame_path,
    bench_trace_overhead,
    bench_loopback_transfer
);
criterion_main!(benches);
