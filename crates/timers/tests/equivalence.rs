//! Property test: the hierarchical timing wheel and the sorted-list
//! baseline are observationally equivalent under arbitrary interleavings
//! of start / stop / advance — the wheel is an optimization, never a
//! semantic change.

use proptest::prelude::*;

use unp_timers::{SortedTimerList, TimerId, TimerService, TimerWheel};

#[derive(Debug, Clone)]
enum Op {
    Start { delay: u64 },
    StopNth(usize),
    Advance { by: u64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..5_000_000_000).prop_map(|delay| Op::Start { delay }),
        any::<usize>().prop_map(Op::StopNth),
        (1u64..2_000_000_000).prop_map(|by| Op::Advance { by }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wheel_equals_sorted_list(ops in proptest::collection::vec(arb_op(), 1..80)) {
        let mut wheel: TimerWheel<u64> = TimerWheel::new(0);
        let mut list: SortedTimerList<u64> = SortedTimerList::new();
        let mut now = 0u64;
        let mut token = 0u64;
        let mut live: Vec<(TimerId, TimerId)> = Vec::new();

        for op in ops {
            match op {
                Op::Start { delay } => {
                    let deadline = now + delay;
                    let wid = wheel.start(deadline, token);
                    let lid = list.start(deadline, token);
                    live.push((wid, lid));
                    token += 1;
                }
                Op::StopNth(n) => {
                    if live.is_empty() {
                        continue;
                    }
                    let (wid, lid) = live.remove(n % live.len());
                    let a = wheel.stop(wid);
                    let b = list.stop(lid);
                    prop_assert_eq!(a, b, "stop results diverged");
                }
                Op::Advance { by } => {
                    now += by;
                    let mut fw = Vec::new();
                    let mut fl = Vec::new();
                    wheel.advance(now, &mut fw);
                    list.advance(now, &mut fl);
                    prop_assert_eq!(&fw, &fl, "fired sets diverged at t={}", now);
                    // Remove fired tokens from the live list (they are gone
                    // from both services).
                    live.retain(|&(wid, _)| {
                        // A fired timer can no longer be stopped.
                        // (We can't query by id, so probe via stop on a
                        // clone-free API: skip — handled by stop() equality
                        // above; just drop entries whose token fired.)
                        let _ = wid;
                        true
                    });
                    if !fw.is_empty() {
                        // Rebuild live from scratch is impossible without
                        // token→id maps; instead allow stops of fired ids:
                        // both services return None equally, which the
                        // StopNth branch asserts.
                    }
                }
            }
            prop_assert_eq!(wheel.pending(), list.pending(), "pending diverged");
            prop_assert_eq!(wheel.next_deadline(), list.next_deadline(), "next deadline diverged");
        }
    }
}
