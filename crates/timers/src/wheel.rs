//! Hierarchical timing wheel (Varghese & Lauck, SOSP '87 — the paper's
//! reference \[25\] for fast timer facilities).
//!
//! Four levels of 64 slots each, with a ~1 ms base tick (2²⁰ ns), cover
//! deadlines up to ≈ 4.9 hours; anything farther sits in an overflow list
//! that is drained as the horizon advances. Start and stop are O(1);
//! advancing performs amortized O(1) work per tick plus O(k) for the k
//! timers fired or cascaded.

use std::collections::HashMap;

use crate::{Nanos, TimerId, TimerService};

/// log2 of the base tick in nanoseconds (2²⁰ ns ≈ 1.05 ms).
const TICK_SHIFT: u32 = 20;
/// log2 of slots per level.
const SLOT_SHIFT: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_SHIFT;
/// Number of levels.
const LEVELS: usize = 4;

struct Entry<T> {
    deadline: Nanos,
    seq: u64,
    token: T,
}

/// A hierarchical timing wheel. See module docs.
pub struct TimerWheel<T> {
    /// `levels[l][slot]` holds ids of entries expiring in that slot's span.
    levels: Vec<Vec<Vec<u64>>>,
    /// Entries too far out for the top level.
    overflow: Vec<u64>,
    entries: HashMap<u64, Entry<T>>,
    /// Current time, in ticks, already processed.
    current_tick: u64,
    next_id: u64,
    next_seq: u64,
}

impl<T> TimerWheel<T> {
    /// Creates a wheel whose notion of "now" starts at `start` nanoseconds.
    pub fn new(start: Nanos) -> TimerWheel<T> {
        TimerWheel {
            levels: (0..LEVELS)
                .map(|_| (0..SLOTS).map(|_| Vec::new()).collect())
                .collect(),
            overflow: Vec::new(),
            entries: HashMap::new(),
            current_tick: start >> TICK_SHIFT,
            next_id: 0,
            next_seq: 0,
        }
    }

    /// Ticks covered by level `l` (one slot's span is `SLOTS^l` ticks).
    fn level_span_ticks(l: usize) -> u64 {
        1u64 << (SLOT_SHIFT * (l as u32 + 1))
    }

    /// Places an entry id into the right slot for its deadline.
    fn place(&mut self, id: u64) {
        let deadline_tick = self.entries[&id].deadline >> TICK_SHIFT;
        let delta = deadline_tick.saturating_sub(self.current_tick);
        for l in 0..LEVELS {
            if delta < Self::level_span_ticks(l) {
                let slot_unit = 1u64 << (SLOT_SHIFT * l as u32);
                let slot = ((deadline_tick / slot_unit) % SLOTS as u64) as usize;
                self.levels[l][slot].push(id);
                return;
            }
        }
        self.overflow.push(id);
    }
}

impl<T> TimerService<T> for TimerWheel<T> {
    fn start(&mut self, deadline: Nanos, token: T) -> TimerId {
        let id = self.next_id;
        self.next_id += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.insert(
            id,
            Entry {
                deadline,
                seq,
                token,
            },
        );
        self.place(id);
        TimerId(id)
    }

    fn stop(&mut self, id: TimerId) -> Option<T> {
        // Lazy removal: the slot entry becomes a dead id skipped later.
        self.entries.remove(&id.0).map(|e| e.token)
    }

    fn advance(&mut self, now: Nanos, fired: &mut Vec<T>) {
        let target_tick = now >> TICK_SHIFT;
        let mut ripe: Vec<(Nanos, u64, u64)> = Vec::new(); // (deadline, seq, id)

        while self.current_tick <= target_tick {
            let tick = self.current_tick;
            // Cascade coarser levels *before* harvesting level 0, so timers
            // landing on this exact tick reach their level-0 slot in time.
            for l in 1..LEVELS {
                let unit = 1u64 << (SLOT_SHIFT * l as u32);
                if !tick.is_multiple_of(unit) {
                    break;
                }
                let slot = ((tick / unit) % SLOTS as u64) as usize;
                for id in std::mem::take(&mut self.levels[l][slot]) {
                    if self.entries.contains_key(&id) {
                        self.place(id);
                    }
                }
            }
            // Retry overflow placement as the top level's cursor advances.
            let top_unit = 1u64 << (SLOT_SHIFT * (LEVELS as u32 - 1));
            if tick.is_multiple_of(top_unit) && !self.overflow.is_empty() {
                for id in std::mem::take(&mut self.overflow) {
                    if self.entries.contains_key(&id) {
                        self.place(id);
                    }
                }
            }
            // Harvest the level-0 slot for this tick.
            let slot0 = (tick % SLOTS as u64) as usize;
            if tick < target_tick {
                // The whole tick has elapsed: everything in it is ripe.
                for id in std::mem::take(&mut self.levels[0][slot0]) {
                    if let Some(e) = self.entries.get(&id) {
                        ripe.push((e.deadline, e.seq, id));
                    }
                }
                self.current_tick += 1;
            } else {
                // Partial tick: fire only sub-tick deadlines `<= now`; the
                // rest stay in the slot for a later advance. Leave
                // `current_tick` at `target_tick` so the slot (and, on a
                // boundary, the already-emptied cascade slots) are
                // revisited then.
                let entries = &self.entries;
                let slot = &mut self.levels[0][slot0];
                slot.retain(|id| match entries.get(id) {
                    Some(e) if e.deadline <= now => {
                        ripe.push((e.deadline, e.seq, *id));
                        false
                    }
                    Some(_) => true,
                    None => false, // stopped: drop the dead id
                });
                break;
            }
        }
        self.current_tick = self.current_tick.max(target_tick);

        // Level-0 placement is per-tick, but within a tick entries may have
        // sub-tick deadline differences; sort for deterministic fire order.
        ripe.sort_unstable_by_key(|&(d, s, _)| (d, s));
        for (_, _, id) in ripe {
            if let Some(e) = self.entries.remove(&id) {
                fired.push(e.token);
            }
        }
    }

    fn next_deadline(&self) -> Option<Nanos> {
        // O(n) scan; used by event loops that only need it occasionally.
        self.entries.values().map(|e| e.deadline).min()
    }

    fn pending(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_at_exact_tick_boundaries() {
        let mut w: TimerWheel<&str> = TimerWheel::new(0);
        w.start(1 << TICK_SHIFT, "a");
        let mut fired = Vec::new();
        w.advance((1 << TICK_SHIFT) - 1, &mut fired);
        assert!(fired.is_empty(), "must not fire early");
        w.advance(1 << TICK_SHIFT, &mut fired);
        assert_eq!(fired, vec!["a"]);
    }

    #[test]
    fn long_deadline_cascades_correctly() {
        // A deadline far beyond level 0: 1000 ticks out lives in level 1+.
        let mut w: TimerWheel<u32> = TimerWheel::new(0);
        let deadline = 1000u64 << TICK_SHIFT;
        w.start(deadline, 42);
        let mut fired = Vec::new();
        w.advance(deadline - (1 << TICK_SHIFT), &mut fired);
        assert!(fired.is_empty());
        w.advance(deadline, &mut fired);
        assert_eq!(fired, vec![42]);
    }

    #[test]
    fn overflow_deadline_eventually_fires() {
        let mut w: TimerWheel<u32> = TimerWheel::new(0);
        // Beyond LEVELS*6 bits of ticks: > 2^24 ticks.
        let deadline = (1u64 << 25) << TICK_SHIFT;
        w.start(deadline, 7);
        let mut fired = Vec::new();
        w.advance(deadline, &mut fired);
        assert_eq!(fired, vec![7]);
    }

    #[test]
    fn stopped_timers_leave_no_residue() {
        let mut w: TimerWheel<u32> = TimerWheel::new(0);
        let ids: Vec<_> = (0..100)
            .map(|i| w.start((i + 1) << TICK_SHIFT, i as u32))
            .collect();
        for id in &ids {
            assert!(w.stop(*id).is_some());
        }
        assert_eq!(w.pending(), 0);
        let mut fired = Vec::new();
        w.advance(200 << TICK_SHIFT, &mut fired);
        assert!(fired.is_empty());
    }

    #[test]
    fn many_timers_fire_in_deadline_order() {
        let mut w: TimerWheel<u64> = TimerWheel::new(0);
        // Insert in reverse.
        for i in (0..500u64).rev() {
            w.start((i + 1) * 777_000, i);
        }
        let mut fired = Vec::new();
        w.advance(501 * 777_000, &mut fired);
        let expect: Vec<u64> = (0..500).collect();
        assert_eq!(fired, expect);
    }

    #[test]
    fn wheel_started_at_nonzero_time() {
        let start = 123_456_789_000;
        let mut w: TimerWheel<&str> = TimerWheel::new(start);
        w.start(start + 5_000_000, "x");
        let mut fired = Vec::new();
        w.advance(start + 10_000_000, &mut fired);
        assert_eq!(fired, vec!["x"]);
    }

    #[test]
    fn restart_pattern_retransmission_style() {
        // TCP restarts its retransmit timer constantly; stop+start must not
        // leak or misfire.
        let mut w: TimerWheel<u32> = TimerWheel::new(0);
        let mut id = w.start(10 << TICK_SHIFT, 1);
        for i in 0..50u64 {
            assert!(w.stop(id).is_some());
            id = w.start((20 + i) << TICK_SHIFT, 1);
        }
        assert_eq!(w.pending(), 1);
        let mut fired = Vec::new();
        w.advance(100 << TICK_SHIFT, &mut fired);
        assert_eq!(fired, vec![1]);
    }
}
