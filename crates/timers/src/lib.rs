//! `unp-timers` — timer facilities for transport protocols.
//!
//! The paper notes that "practically every message arrival and departure
//! involves timer operations" and points to hashed/hierarchical timing
//! wheels (Varghese & Lauck, SOSP '87) as the known fast implementation.
//! This crate provides:
//!
//! * [`TimerWheel`] — a hierarchical timing wheel with O(1) start/stop and
//!   amortized O(1) per-tick advance, used by the protocol library;
//! * [`SortedTimerList`] — the naive ordered-list implementation used as the
//!   baseline in the ablation benchmark (`cargo bench -p unp-bench`).
//!
//! Both implement [`TimerService`] so the protocol code is generic over
//! the timer substrate.

pub mod list;
pub mod wheel;

pub use list::SortedTimerList;
pub use wheel::TimerWheel;

/// Time type shared with the simulator (nanoseconds).
pub type Nanos = u64;

/// Opaque handle to a started timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(pub u64);

/// A facility that fires opaque tokens at requested deadlines.
///
/// `T` is the payload delivered on expiry (the protocol's timer kind plus
/// connection identifier).
pub trait TimerService<T> {
    /// Starts a timer firing at absolute time `deadline`, returning a handle
    /// usable with [`TimerService::stop`].
    fn start(&mut self, deadline: Nanos, token: T) -> TimerId;

    /// Stops a pending timer. Returns the token if it had not fired.
    fn stop(&mut self, id: TimerId) -> Option<T>;

    /// Advances the clock to `now`, collecting every token whose deadline is
    /// `<= now` in deadline order (ties in start order).
    fn advance(&mut self, now: Nanos, fired: &mut Vec<T>);

    /// The earliest pending deadline, if any — what the event loop sleeps on.
    fn next_deadline(&self) -> Option<Nanos>;

    /// Number of timers pending.
    fn pending(&self) -> usize;
}

#[cfg(test)]
mod conformance {
    //! Conformance tests run against both implementations.

    use super::*;

    fn exercise<S: TimerService<u32>>(mut s: S) {
        let mut fired = Vec::new();

        // Fire order follows deadlines, not insertion order.
        s.start(300, 3);
        s.start(100, 1);
        s.start(200, 2);
        assert_eq!(s.pending(), 3);
        assert_eq!(s.next_deadline(), Some(100));
        s.advance(250, &mut fired);
        assert_eq!(fired, vec![1, 2]);
        assert_eq!(s.pending(), 1);

        // Stop prevents firing and returns the token.
        let id = s.start(400, 4);
        assert_eq!(s.stop(id), Some(4));
        assert_eq!(s.stop(id), None);
        fired.clear();
        s.advance(1000, &mut fired);
        assert_eq!(fired, vec![3]);
        assert_eq!(s.pending(), 0);
        assert_eq!(s.next_deadline(), None);

        // Deadlines in the past fire on the next advance.
        s.start(500, 5);
        fired.clear();
        s.advance(1000, &mut fired);
        assert_eq!(fired, vec![5]);

        // Equal deadlines fire in start order.
        s.start(2000, 7);
        s.start(2000, 8);
        fired.clear();
        s.advance(2000, &mut fired);
        assert_eq!(fired, vec![7, 8]);
    }

    #[test]
    fn wheel_conformance() {
        exercise(TimerWheel::new(0));
    }

    #[test]
    fn list_conformance() {
        exercise(SortedTimerList::new());
    }
}
