//! Sorted-list timer baseline.
//!
//! The classic pre-timing-wheel implementation (BSD `callout` lists):
//! insertion keeps a list ordered by deadline, so `start` is O(n) and
//! `advance` pops from the front. Exists to quantify the timing-wheel
//! ablation in the benchmark suite.

use std::collections::VecDeque;

use crate::{Nanos, TimerId, TimerService};

struct Node<T> {
    deadline: Nanos,
    seq: u64,
    id: u64,
    token: Option<T>,
}

/// An ordered-list timer service. See module docs.
pub struct SortedTimerList<T> {
    // Sorted by (deadline, seq). Dead nodes keep their slot with
    // `token: None` until reached.
    nodes: VecDeque<Node<T>>,
    next_id: u64,
    next_seq: u64,
    live: usize,
}

impl<T> SortedTimerList<T> {
    /// Creates an empty list.
    pub fn new() -> SortedTimerList<T> {
        SortedTimerList {
            nodes: VecDeque::new(),
            next_id: 0,
            next_seq: 0,
            live: 0,
        }
    }
}

impl<T> Default for SortedTimerList<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimerService<T> for SortedTimerList<T> {
    fn start(&mut self, deadline: Nanos, token: T) -> TimerId {
        let id = self.next_id;
        self.next_id += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        let node = Node {
            deadline,
            seq,
            id,
            token: Some(token),
        };
        // O(n) ordered insert, mirroring the BSD callout list.
        let pos = self
            .nodes
            .iter()
            .position(|n| (n.deadline, n.seq) > (deadline, seq))
            .unwrap_or(self.nodes.len());
        self.nodes.insert(pos, node);
        self.live += 1;
        TimerId(id)
    }

    fn stop(&mut self, id: TimerId) -> Option<T> {
        for n in self.nodes.iter_mut() {
            if n.id == id.0 {
                let t = n.token.take();
                if t.is_some() {
                    self.live -= 1;
                }
                return t;
            }
        }
        None
    }

    fn advance(&mut self, now: Nanos, fired: &mut Vec<T>) {
        while let Some(front) = self.nodes.front() {
            if front.deadline > now {
                break;
            }
            let node = self.nodes.pop_front().expect("peeked above");
            if let Some(t) = node.token {
                self.live -= 1;
                fired.push(t);
            }
        }
    }

    fn next_deadline(&self) -> Option<Nanos> {
        self.nodes
            .iter()
            .find(|n| n.token.is_some())
            .map(|n| n.deadline)
    }

    fn pending(&self) -> usize {
        self.live
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_keeps_order() {
        let mut l = SortedTimerList::new();
        l.start(30, "c");
        l.start(10, "a");
        l.start(20, "b");
        let mut fired = Vec::new();
        l.advance(100, &mut fired);
        assert_eq!(fired, vec!["a", "b", "c"]);
    }

    #[test]
    fn stop_middle_entry() {
        let mut l = SortedTimerList::new();
        l.start(10, 1);
        let id = l.start(20, 2);
        l.start(30, 3);
        assert_eq!(l.stop(id), Some(2));
        assert_eq!(l.pending(), 2);
        let mut fired = Vec::new();
        l.advance(100, &mut fired);
        assert_eq!(fired, vec![1, 3]);
    }

    #[test]
    fn next_deadline_skips_dead_nodes() {
        let mut l = SortedTimerList::new();
        let id = l.start(10, 1);
        l.start(20, 2);
        l.stop(id);
        assert_eq!(l.next_deadline(), Some(20));
    }
}
