//! `unp-sim` — a deterministic discrete-event simulation engine.
//!
//! The SIGCOMM '93 paper's results were measured on DECstation 5000/200
//! workstations (25 MHz R3000) running Ultrix 4.2A or Mach 3.0, attached to
//! 10 Mb/s Ethernet and the 100 Mb/s DEC SRC AN1. That testbed is
//! unobtainable, so the reproduction executes the *real* protocol code on a
//! virtual clock: every structural operation the paper charges for — traps,
//! Mach IPCs, context switches, semaphore signals, data copies, checksums,
//! filter interpretation, DMA setup — is billed to a per-host CPU model
//! using the calibrated [`costs::CostModel`].
//!
//! The engine is single-threaded and fully deterministic: events at equal
//! times fire in schedule order, and all randomness flows through seeded
//! RNGs owned by the world.

pub mod costs;
pub mod cpu;

pub use costs::{CostModel, DemuxPath, LinkParams};
pub use cpu::Cpu;

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Simulated time in nanoseconds since world start.
pub type Nanos = u64;

/// One microsecond in [`Nanos`].
pub const MICROS: Nanos = 1_000;
/// One millisecond in [`Nanos`].
pub const MILLIS: Nanos = 1_000_000;
/// One second in [`Nanos`].
pub const SECONDS: Nanos = 1_000_000_000;

thread_local! {
    static EVENTS_EXECUTED: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Events executed by every engine on this thread since the last
/// [`reset_events_executed`]. The per-engine [`Engine::executed`] counter
/// dies with its engine; experiment runners build engines internally, so
/// `repro-tables --timings` reads this aggregate instead.
pub fn events_executed() -> u64 {
    EVENTS_EXECUTED.with(|c| c.get())
}

/// Resets the thread-wide executed-event counter.
pub fn reset_events_executed() {
    EVENTS_EXECUTED.with(|c| c.set(0));
}

/// Identifier of a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

type EventFn<W> = Box<dyn FnOnce(&mut W, &mut Engine<W>)>;

/// A discrete-event engine generic over the world type `W`.
///
/// Closures scheduled on the engine receive `(&mut W, &mut Engine<W>)` so
/// they can mutate the world and schedule follow-up events.
pub struct Engine<W> {
    now: Nanos,
    seq: u64,
    heap: BinaryHeap<Reverse<(Nanos, u64)>>,
    pending: HashMap<u64, EventFn<W>>,
    executed: u64,
    /// Heap entries whose event has been cancelled but not yet popped.
    tombstones: usize,
}

impl<W> Default for Engine<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Engine<W> {
    /// Creates an empty engine at time zero.
    pub fn new() -> Engine<W> {
        Engine {
            now: 0,
            seq: 0,
            heap: BinaryHeap::new(),
            pending: HashMap::new(),
            executed: 0,
            tombstones: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently scheduled.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Number of entries in the internal time heap, live and tombstoned.
    /// Exposed so tests can assert the heap stays bounded under mass
    /// cancellation.
    pub fn heap_len(&self) -> usize {
        self.heap.len()
    }

    /// Schedules `f` to run at absolute time `time` (clamped to `now`).
    pub fn at<F>(&mut self, time: Nanos, f: F) -> EventId
    where
        F: FnOnce(&mut W, &mut Engine<W>) + 'static,
    {
        let time = time.max(self.now);
        let id = self.seq;
        self.seq += 1;
        self.heap.push(Reverse((time, id)));
        self.pending.insert(id, Box::new(f));
        EventId(id)
    }

    /// Schedules `f` to run `delay` after the current time.
    pub fn after<F>(&mut self, delay: Nanos, f: F) -> EventId
    where
        F: FnOnce(&mut W, &mut Engine<W>) + 'static,
    {
        self.at(self.now + delay, f)
    }

    /// Cancels a scheduled event. Returns true if it had not yet run.
    ///
    /// Cancellation is a tombstone: the closure is dropped immediately but
    /// the `(time, id)` entry stays in the heap until popped. When
    /// tombstones outnumber live events the heap is compacted in place, so
    /// a workload that schedules and cancels many timers (e.g. TCP
    /// retransmission timers answered by ACKs) keeps the heap at O(live)
    /// rather than O(ever scheduled).
    pub fn cancel(&mut self, id: EventId) -> bool {
        let cancelled = self.pending.remove(&id.0).is_some();
        if cancelled {
            self.tombstones += 1;
            self.maybe_compact();
        }
        cancelled
    }

    /// Rebuilds the heap without tombstoned entries once they dominate.
    /// The `> 64` floor keeps small heaps from compacting on every other
    /// cancel, where the O(n) rebuild would cost more than the garbage.
    fn maybe_compact(&mut self) {
        if self.tombstones > 64 && self.tombstones > self.pending.len() {
            let pending = &self.pending;
            self.heap
                .retain(|Reverse((_, id))| pending.contains_key(id));
            self.tombstones = 0;
        }
    }

    /// Runs the next event, if any. Returns false when the queue is empty.
    pub fn step(&mut self, world: &mut W) -> bool {
        while let Some(Reverse((time, id))) = self.heap.pop() {
            if let Some(f) = self.pending.remove(&id) {
                self.now = time;
                unp_trace::set_time(time);
                self.executed += 1;
                EVENTS_EXECUTED.with(|c| c.set(c.get() + 1));
                f(world, self);
                return true;
            }
            // Cancelled entry: skip.
            self.tombstones = self.tombstones.saturating_sub(1);
        }
        false
    }

    /// Runs events until the queue empties or `limit` events have executed.
    /// Returns true if the queue drained.
    pub fn run(&mut self, world: &mut W, limit: u64) -> bool {
        for _ in 0..limit {
            if !self.step(world) {
                return true;
            }
        }
        self.heap.is_empty()
    }

    /// Runs events with times `<= deadline`. Events scheduled later remain
    /// queued. Advances `now` to `deadline` if the queue drains earlier.
    pub fn run_until(&mut self, world: &mut W, deadline: Nanos) {
        loop {
            // Peek at the next *live* event time.
            let next = loop {
                match self.heap.peek() {
                    Some(Reverse((t, id))) => {
                        if self.pending.contains_key(id) {
                            break Some(*t);
                        }
                        self.heap.pop();
                        self.tombstones = self.tombstones.saturating_sub(1);
                    }
                    None => break None,
                }
            };
            match next {
                Some(t) if t <= deadline => {
                    self.step(world);
                }
                _ => break,
            }
        }
        self.now = self.now.max(deadline);
        unp_trace::set_time(self.now);
    }
}

/// Formats a nanosecond duration in engineering units for reports.
pub fn fmt_nanos(n: Nanos) -> String {
    if n >= SECONDS {
        format!("{:.3} s", n as f64 / SECONDS as f64)
    } else if n >= MILLIS {
        format!("{:.3} ms", n as f64 / MILLIS as f64)
    } else if n >= MICROS {
        format!("{:.3} us", n as f64 / MICROS as f64)
    } else {
        format!("{n} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct World {
        log: Vec<(Nanos, &'static str)>,
    }

    #[test]
    fn events_run_in_time_order() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        eng.at(300, |w, e| w.log.push((e.now(), "c")));
        eng.at(100, |w, e| w.log.push((e.now(), "a")));
        eng.at(200, |w, e| w.log.push((e.now(), "b")));
        assert!(eng.run(&mut w, 100));
        assert_eq!(w.log, vec![(100, "a"), (200, "b"), (300, "c")]);
    }

    #[test]
    fn equal_times_run_in_schedule_order() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        eng.at(50, |w, _| w.log.push((50, "first")));
        eng.at(50, |w, _| w.log.push((50, "second")));
        eng.run(&mut w, 10);
        assert_eq!(w.log, vec![(50, "first"), (50, "second")]);
    }

    #[test]
    fn events_can_schedule_more_events() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        eng.at(10, |_, e| {
            e.after(5, |w, e| w.log.push((e.now(), "chained")));
        });
        eng.run(&mut w, 10);
        assert_eq!(w.log, vec![(15, "chained")]);
    }

    #[test]
    fn cancellation() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        let id = eng.at(10, |w, _| w.log.push((10, "never")));
        assert!(eng.cancel(id));
        assert!(!eng.cancel(id));
        eng.run(&mut w, 10);
        assert!(w.log.is_empty());
    }

    #[test]
    fn past_times_clamp_to_now() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        eng.at(100, |w, e| {
            e.at(5, |w, e| w.log.push((e.now(), "clamped")));
            w.log.push((e.now(), "outer"));
        });
        eng.run(&mut w, 10);
        assert_eq!(w.log, vec![(100, "outer"), (100, "clamped")]);
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        eng.at(10, |w, _| w.log.push((10, "early")));
        eng.at(1000, |w, _| w.log.push((1000, "late")));
        eng.run_until(&mut w, 500);
        assert_eq!(w.log, vec![(10, "early")]);
        assert_eq!(eng.now(), 500);
        assert_eq!(eng.pending(), 1);
        eng.run_until(&mut w, 2000);
        assert_eq!(w.log.len(), 2);
    }

    #[test]
    fn run_until_skips_cancelled_head() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        let id = eng.at(10, |w, _| w.log.push((10, "no")));
        eng.at(20, |w, _| w.log.push((20, "yes")));
        eng.cancel(id);
        eng.run_until(&mut w, 100);
        assert_eq!(w.log, vec![(20, "yes")]);
    }

    #[test]
    fn mass_cancellation_keeps_heap_bounded() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        // A retransmission-timer-like workload: schedule a timer, then
        // cancel it before it fires, thousands of times, with a handful of
        // long-lived events outstanding the whole time.
        for i in 0..8 {
            eng.at(1_000_000 + i, |w, e| w.log.push((e.now(), "keeper")));
        }
        for round in 0..10_000u64 {
            let id = eng.at(500_000 + round, |w, _| w.log.push((0, "never")));
            assert!(eng.cancel(id));
            // Without compaction the heap would hold every tombstone ever
            // scheduled (~round entries). With it, the heap stays at
            // O(live + compaction floor).
            assert!(
                eng.heap_len() <= eng.pending() + 130,
                "heap grew unbounded: {} entries with {} live at round {round}",
                eng.heap_len(),
                eng.pending()
            );
        }
        assert_eq!(eng.pending(), 8);
        // The survivors still fire, in order.
        assert!(eng.run(&mut w, 100));
        assert_eq!(w.log.len(), 8);
        assert!(w.log.iter().all(|(_, tag)| *tag == "keeper"));
    }

    #[test]
    fn compaction_preserves_cancel_then_run_semantics() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        // Interleave live and cancelled events across the compaction
        // threshold and check exactly the live ones run, in time order.
        let mut expect = Vec::new();
        for i in 0..500u64 {
            let t = 10 + i;
            let id = eng.at(t, move |w, e| w.log.push((e.now(), "live")));
            if i % 3 != 0 {
                eng.cancel(id);
            } else {
                expect.push(t);
            }
        }
        assert!(eng.run(&mut w, 1_000));
        assert_eq!(
            w.log.iter().map(|(t, _)| *t).collect::<Vec<_>>(),
            expect,
            "live events must be unaffected by compaction"
        );
    }

    #[test]
    fn fmt_nanos_units() {
        assert_eq!(fmt_nanos(500), "500 ns");
        assert_eq!(fmt_nanos(1_500), "1.500 us");
        assert_eq!(fmt_nanos(2_500_000), "2.500 ms");
        assert_eq!(fmt_nanos(3_000_000_000), "3.000 s");
    }
}
