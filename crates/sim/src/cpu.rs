//! A single-CPU queueing model per host.
//!
//! Each host has one CPU (the DECstation 5000/200 is a uniprocessor). Work
//! items are charged serially: a request issued at time `t` begins at
//! `max(t, free_at)` and completes `cost` later. This produces the queueing
//! behaviour the paper observed under load ("this time difference increases
//! due to increased queueing delays as packets arrive at the device and
//! await service").

use crate::Nanos;

/// A serially-shared CPU.
#[derive(Debug, Clone, Default)]
pub struct Cpu {
    free_at: Nanos,
    busy_total: Nanos,
}

impl Cpu {
    /// Creates an idle CPU.
    pub fn new() -> Cpu {
        Cpu::default()
    }

    /// Charges `cost` of CPU time for work requested at `now`. Returns the
    /// completion time, after any queueing behind earlier work.
    pub fn charge(&mut self, now: Nanos, cost: Nanos) -> Nanos {
        let start = self.free_at.max(now);
        self.free_at = start + cost;
        self.busy_total += cost;
        self.free_at
    }

    /// Charges `cost` at *interrupt priority*: the work starts immediately
    /// (preempting any queued process- or thread-level work, which is
    /// pushed back by the same amount) and completes at `now + cost`.
    /// Models interrupt-driven device handling in real kernels.
    pub fn charge_priority(&mut self, now: Nanos, cost: Nanos) -> Nanos {
        let done = now + cost;
        // Deferred work resumes after the interrupt.
        self.free_at = self.free_at.max(now) + cost;
        self.busy_total += cost;
        done
    }

    /// Time at which the CPU next becomes idle.
    pub fn free_at(&self) -> Nanos {
        self.free_at
    }

    /// Total busy time accumulated (for utilization reporting).
    pub fn busy_total(&self) -> Nanos {
        self.busy_total
    }

    /// Utilization over `[0, horizon]`.
    pub fn utilization(&self, horizon: Nanos) -> f64 {
        if horizon == 0 {
            0.0
        } else {
            self.busy_total.min(horizon) as f64 / horizon as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_cpu_starts_immediately() {
        let mut cpu = Cpu::new();
        assert_eq!(cpu.charge(100, 50), 150);
        assert_eq!(cpu.free_at(), 150);
    }

    #[test]
    fn busy_cpu_queues() {
        let mut cpu = Cpu::new();
        cpu.charge(0, 100);
        // Requested at t=10 but CPU busy until 100.
        assert_eq!(cpu.charge(10, 20), 120);
    }

    #[test]
    fn gap_leaves_cpu_idle() {
        let mut cpu = Cpu::new();
        cpu.charge(0, 10);
        assert_eq!(cpu.charge(1000, 10), 1010);
        assert_eq!(cpu.busy_total(), 20);
    }

    #[test]
    fn utilization() {
        let mut cpu = Cpu::new();
        cpu.charge(0, 250);
        assert!((cpu.utilization(1000) - 0.25).abs() < 1e-9);
        assert_eq!(Cpu::new().utilization(0), 0.0);
    }
}
