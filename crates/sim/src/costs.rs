//! The calibrated cost model: what structural operations cost on the
//! paper's hardware.
//!
//! Every constant is justified either directly from the paper or from
//! contemporaneous measurements of the same platforms (DECstation 5000/200
//! = 25 MHz R3000 ≈ 40 ns/cycle; Ultrix 4.2A; Mach 3.0 MK74 + UX36). The
//! absolute values matter less than the *ratios*: the paper's orderings
//! follow from structure (how many traps/IPCs/copies/signals each
//! organization performs per packet), so a consistent model reproduces the
//! shape of every table.
//!
//! Calibration provenance, per constant, is given in the doc comments.

use crate::{Nanos, MICROS};

/// Which demultiplexing machinery classified an incoming frame. The kernel
/// tags every delivery with the path taken so per-path costs can be
/// charged and fast-path hit rates reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DemuxPath {
    /// Exact-match flow-table lookup (O(1) in the number of bindings).
    FlowTable,
    /// Wildcard 3-tuple (protocol, local ip, local port) table lookup —
    /// listening and unconnected-UDP bindings, also O(1).
    ListenTable,
    /// Linear scan interpreting each binding's filter program — the
    /// paper-era software path, and the fallback for frames or bindings
    /// without any keyed identity (fragments, non-IP, half-wildcard
    /// bindings, mismatched link framing).
    FilterScan,
    /// The NIC classified the frame itself (AN1 BQI table).
    Hardware,
}

/// Structural operation costs, in nanoseconds of host CPU time.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// A standard kernel trap (syscall entry + exit + sanity checks),
    /// as in Ultrix `read`/`write`. ~20 µs on a 25 MHz R3000 (null
    /// syscall measurements of that era run 10–30 µs).
    pub trap: Nanos,
    /// A *specialized* kernel entry — the paper notes "a kernel crossing to
    /// access the network device can be made fast because it is a
    /// specialized entry point", and similarly that library↔app crossings
    /// avoid full trap sanity checks. About half a standard trap.
    pub fast_trap: Nanos,
    /// One-way Mach IPC between address spaces (message through the kernel,
    /// including the receiver dispatch). Mach 3.0-era RPC round trips ran
    /// 300–500 µs on this class of machine; one way ≈ 160 µs.
    pub mach_ipc_one_way: Nanos,
    /// Full process context switch (address-space switch). ~90 µs.
    pub context_switch: Nanos,
    /// User-level C-Threads switch within one address space. ~15 µs.
    pub thread_switch: Nanos,
    /// Posting a lightweight kernel↔user semaphore and waking the waiter
    /// (excludes the thread switch to run it). ~35 µs.
    pub semaphore_signal: Nanos,
    /// Rescheduling a *blocked* library thread on a semaphore post: the
    /// kernel run-queue work and the address-space/thread dispatch to get
    /// the application running again. ~350 µs. Paid only when a wakeup is
    /// actually posted — batched packets are absorbed by the already-
    /// running thread, which is why the paper's AN1 throughput reaches
    /// parity with Ultrix while its single-packet latency sits ~0.9 ms
    /// higher (Table 3).
    pub wakeup_resched: Nanos,
    /// Device interrupt service overhead per packet (interrupt entry,
    /// device register handling, buffer replenish, dispatch), before any
    /// data movement. ~80 µs.
    pub interrupt: Nanos,
    /// Per-byte cost of a host memory-to-memory copy. The DS5000/200
    /// sustains ≈ 25 MB/s bcopy → 40 ns/B.
    pub copy_per_byte: Nanos,
    /// Per-byte cost of the Internet checksum pass. Roughly one load+add per
    /// 2 bytes at 25 MHz → 45 ns/B (4.3BSD did not integrate checksum with
    /// copy, and neither do the compared systems — paper §4).
    pub checksum_per_byte: Nanos,
    /// Per-byte cost of programmed I/O to/from the Lance-style Ethernet
    /// controller's on-board staging buffers (the PMADD-AA has no DMA).
    /// PIO over TURBOchannel is slower than memory copy: ~120 ns/B.
    pub pio_per_byte: Nanos,
    /// Fixed cost to post one transmit DMA descriptor on the AN1 interface
    /// (register writes across TURBOchannel plus completion handling).
    /// ~50 µs — part of the "more complex machinery" the paper notes the
    /// AN1 interface has.
    pub dma_setup: Nanos,
    /// Fixed per-segment TCP protocol path (input or output: PCB work,
    /// state machine, header build/parse, mbuf handling — excludes
    /// checksums and copies, charged per byte). Calibrated to the paper's
    /// own end-to-end numbers: Ultrix at 11.9 Mb/s on AN1 implies a
    /// ~0.9–1.0 ms total per-segment path, of which this fixed protocol
    /// portion is ~220 µs (≈5,500 R3000 cycles).
    pub tcp_per_segment: Nanos,
    /// Fixed per-packet IP processing (header validate/build, route). ~35 µs.
    pub ip_per_packet: Nanos,
    /// Fixed per-packet UDP processing. ~45 µs.
    pub udp_per_packet: Nanos,
    /// Dispatch overhead to enter the software demultiplexer. Paper Table 5:
    /// total software demux on the Lance is 52 µs; we split it into dispatch
    /// plus per-instruction interpretation so filter length matters.
    pub filter_dispatch: Nanos,
    /// Interpreting one packet-filter instruction. The paper calls
    /// interpretation "memory intensive"; at 25 MHz with a stack machine,
    /// ~3 µs/instruction. A typical TCP/IP demux program is ~12–16
    /// instructions → 52 µs total with dispatch.
    pub filter_per_instr: Nanos,
    /// Device management machinery inherent to hardware BQI demultiplexing
    /// (ring bookkeeping, descriptor recycling). Paper Table 5: 50 µs.
    pub bqi_demux: Nanos,
    /// One exact-match flow-table lookup, had the 1993 kernel synthesized
    /// one: a hash over the 5-tuple plus one key compare — "the
    /// demultiplexing logic requires only a few instructions" (paper §3.3),
    /// ~5 µs at 25 MHz. The reproduced tables do **not** charge this: the
    /// compared 1993 systems interpret a filter per packet, so the worlds
    /// charge the [`DemuxPath::FilterScan`] model on the software path
    /// regardless of which host mechanism computed the decision (the flow
    /// table is a mechanism change in the reproduction, not a behavior
    /// change in the model). The constant exists so ablations can report
    /// what a synthesized exact-match demux would have saved.
    pub flow_demux: Nanos,
    /// Library-internal procedure call/bookkeeping per socket operation
    /// (the "cheap crossing" between application and library). ~6 µs.
    pub library_call: Nanos,
    /// Per-segment cost of the library's multithreaded structure: the
    /// per-connection thread upcall, C-Threads mutex/condition traffic,
    /// and user-level timer bookkeeping. The paper names these as exactly
    /// what keeps the library from beating the in-kernel stack: "the
    /// overheads introduced by using multiple threads, context switching,
    /// synchronization, and timers". ~100 µs.
    pub lib_upcall_sync: Nanos,
    /// Buffer-layer bookkeeping per packet when using the shared-memory
    /// ring (descriptor handling on either side). ~12 µs.
    pub ring_op: Nanos,
    /// Matching one outgoing packet header against its send-capability
    /// template in the network I/O module ("the logic required ... is quite
    /// short" — a few field compares). ~10 µs.
    pub template_check: Nanos,
    /// Socket-layer overhead in monolithic kernels (socket buffer handling
    /// above TCP, sleep/wakeup of the user process). ~50 µs.
    pub socket_layer: Nanos,

    // ----- Mach/UX emulation costs (Fig. 1 single-server organization) ----
    /// One emulated UNIX system call through the UX server: trap, kernel
    /// message to the server, server work dispatch, reply, reschedule.
    /// Contemporary Mach 3.0 + UX measurements put socket-path emulated
    /// calls near a millisecond; ~900 µs.
    pub ux_syscall: Nanos,
    /// Kernel→UX-server per-packet receive dispatch (thread wakeup +
    /// scheduling into the server address space). ~1.3 ms — this, charged
    /// once per segment, is what makes Mach/UX throughput collapse in the
    /// paper's Table 2 and its 1-byte RTT sit ~6 ms above Ultrix's.
    pub ux_pkt_dispatch: Nanos,
    /// Per-byte overhead of the user-library's *software-demux* receive
    /// path (Ethernet): moving data through the shared region under
    /// user-level thread synchronization. Calibrated from the paper's own
    /// measurement that delivering a maximum-sized Ethernet packet to the
    /// user-level protocol code costs "about 0.8 ms greater than in
    /// Ultrix", a difference that "increases under load due to increased
    /// queueing delays" and reduced batching (≈0.95 µs/B × 1460 ≈ 1.4 ms
    /// loaded), while "the times to deliver AN1 packets ... are
    /// comparable" (hardware path: not charged).
    pub lib_sw_rx_per_byte: Nanos,
    /// Protocol/socket control-block setup per endpoint in the monolithic
    /// stacks (PCB allocation, socket creation on accept). ~500 µs,
    /// calibrated from Ultrix's 2.6 ms connection setup vs its 1.6 ms
    /// 1-byte RTT.
    pub pcb_setup: Nanos,
    /// The pre-copy-elimination small-buffer path in the 4.3BSD-derived
    /// kernels: sub-1024-byte user packets take the mbuf-chain copy path
    /// ("Ultrix uses an identical [copy-eliminating] mechanism, but it is
    /// invoked only when the user packet size is 1024 bytes or larger"),
    /// with its extra buffer handling. ~150 µs per small segment.
    pub small_pkt_overhead: Nanos,
    /// Per-byte cost of moving received data from the UX server to the
    /// application through Mach IPC (out-of-line memory handling and the
    /// server-side socket-buffer copy). ~1 µs/B — dominates the Mach/UX
    /// Table-2 row, which the paper shows scaling badly with size.
    pub ux_data_per_byte: Nanos,
    /// Extra registry work on AN1 to program the BQI machinery during
    /// setup ("the machinery involved to setup the BQI has to be
    /// exercised" — paper Table 4: 12.3 ms vs 11.9 ms).
    pub bqi_setup: Nanos,

    // ----- Registry-server costs (paper §4, Table 4 breakdown) -----------
    /// One application↔registry RPC leg. The paper measures "the time to
    /// go from the application to the server and back is about 900 µs";
    /// one way ≈ 450 µs.
    pub registry_rpc: Nanos,
    /// Non-overlappable outbound connection processing in the registry
    /// ("allocating connection identifiers, executing the start of
    /// connection set up phase, etc., and accounts for about 1.5 ms").
    pub registry_connect_processing: Nanos,
    /// "Nearly 3.4 ms are spent in setting up user channels to the network
    /// device when the connection set up is being completed."
    pub channel_setup: Nanos,
    /// "It takes about 1.4 ms to transfer and set up TCP state to user
    /// level."
    pub state_transfer: Nanos,
    /// The registry's per-packet device access during the handshake:
    /// "the registry server does not access the network device using
    /// shared memory, but instead uses standard Mach IPCs" — charged per
    /// handshake segment sent or received, ≈ 600 µs (IPC + kernel path),
    /// which with the three-way exchange yields the paper's ~4.6 ms
    /// "time to get to the remote peer and back".
    pub registry_pkt_op: Nanos,
}

impl CostModel {
    /// The model calibrated against the paper's published measurements.
    pub fn calibrated_1993() -> CostModel {
        CostModel {
            trap: 20 * MICROS,
            lib_sw_rx_per_byte: 880,
            pcb_setup: 500 * MICROS,
            small_pkt_overhead: 150 * MICROS,
            ux_data_per_byte: 1_000,
            bqi_setup: 400 * MICROS,
            fast_trap: 10 * MICROS,
            mach_ipc_one_way: 160 * MICROS,
            context_switch: 90 * MICROS,
            thread_switch: 15 * MICROS,
            semaphore_signal: 35 * MICROS,
            wakeup_resched: 350 * MICROS,
            interrupt: 80 * MICROS,
            copy_per_byte: 40,
            checksum_per_byte: 45,
            pio_per_byte: 120,
            dma_setup: 50 * MICROS,
            tcp_per_segment: 220 * MICROS,
            ip_per_packet: 35 * MICROS,
            udp_per_packet: 45 * MICROS,
            filter_dispatch: 10 * MICROS,
            filter_per_instr: 3 * MICROS,
            bqi_demux: 50 * MICROS,
            flow_demux: 5 * MICROS,
            library_call: 6 * MICROS,
            lib_upcall_sync: 100 * MICROS,
            ring_op: 12 * MICROS,
            template_check: 10 * MICROS,
            socket_layer: 50 * MICROS,
            ux_syscall: 900 * MICROS,
            ux_pkt_dispatch: 1_300 * MICROS,
            registry_rpc: 450 * MICROS,
            registry_connect_processing: 1_500 * MICROS,
            channel_setup: 3_400 * MICROS,
            state_transfer: 1_400 * MICROS,
            registry_pkt_op: 600 * MICROS,
        }
    }

    /// Cost of copying `len` bytes host-memory-to-host-memory.
    pub fn copy(&self, len: usize) -> Nanos {
        self.copy_per_byte * len as Nanos
    }

    /// Cost of checksumming `len` bytes.
    pub fn checksum(&self, len: usize) -> Nanos {
        self.checksum_per_byte * len as Nanos
    }

    /// Cost of moving `len` bytes by programmed I/O.
    pub fn pio(&self, len: usize) -> Nanos {
        self.pio_per_byte * len as Nanos
    }

    /// Cost of interpreting an `n`-instruction demux filter.
    pub fn filter_run(&self, n: usize) -> Nanos {
        self.filter_dispatch + self.filter_per_instr * n as Nanos
    }

    /// Cost of demultiplexing one frame via `path`, where `filter_instrs`
    /// is the filter-instruction count the scan interpreted (or, for a
    /// flow-table decision, *would have* interpreted — see
    /// [`CostModel::flow_demux`] for why the reproduced tables charge the
    /// scan model on both software paths).
    pub fn demux_cost(&self, path: DemuxPath, filter_instrs: usize) -> Nanos {
        match path {
            // Either keyed tier is one hash probe plus one key compare;
            // the 3-tuple probe hashes fewer bytes but the difference is
            // below the model's resolution.
            DemuxPath::FlowTable | DemuxPath::ListenTable => self.flow_demux,
            DemuxPath::FilterScan => self.filter_run(filter_instrs),
            DemuxPath::Hardware => self.bqi_demux,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::calibrated_1993()
    }
}

/// Physical parameters of a simulated link.
#[derive(Debug, Clone)]
pub struct LinkParams {
    /// Raw signalling rate in bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation delay.
    pub propagation: Nanos,
    /// Extra bytes serialized per frame (preamble, SFD, FCS, and the
    /// inter-frame gap expressed in byte times).
    pub overhead_bytes: usize,
    /// Minimum serialized frame size (padding applied below this).
    pub min_frame: usize,
    /// Link MTU: maximum payload carried in one frame after the link header.
    pub mtu: usize,
    /// True if the medium is shared/half-duplex (Ethernet bus): frames in
    /// either direction serialize on one channel. AN1 point-to-point links
    /// are full duplex.
    pub half_duplex: bool,
    /// Mean medium-acquisition overhead charged when a frame finds the
    /// channel busy: CSMA/CD deference plus collision backoff at load.
    /// Zero for point-to-point links.
    pub contention: Nanos,
}

impl LinkParams {
    /// Classic 10 Mb/s Ethernet: preamble 8 + FCS 4 + IFG 12 byte-times of
    /// overhead, 64-byte minimum frame (60 + FCS counted in overhead),
    /// 1500-byte MTU, shared medium.
    pub fn ethernet_10mbps() -> LinkParams {
        LinkParams {
            bandwidth_bps: 10_000_000,
            propagation: 5 * MICROS,
            overhead_bytes: 24,
            min_frame: 60,
            mtu: 1500,
            half_duplex: true,
            contention: 150 * MICROS,
        }
    }

    /// 100 Mb/s AN1 segment. The paper's driver "encapsulates data into an
    /// Ethernet datagram and restricts network transmissions to 1500-byte
    /// packets", so the MTU matches Ethernet even though AN1 frames could
    /// be 64 KB. Point-to-point, full duplex, switchless private segment.
    pub fn an1_100mbps() -> LinkParams {
        LinkParams {
            bandwidth_bps: 100_000_000,
            propagation: 2 * MICROS,
            overhead_bytes: 24,
            min_frame: 60,
            mtu: 1500,
            half_duplex: false,
            contention: 0,
        }
    }

    /// Time to serialize a frame of `len` bytes (padded to the minimum and
    /// including per-frame overhead bytes).
    pub fn tx_time(&self, len: usize) -> Nanos {
        let wire_bytes = len.max(self.min_frame) + self.overhead_bytes;
        (wire_bytes as u64 * 8).saturating_mul(1_000_000_000) / self.bandwidth_bps
    }

    /// The saturation throughput in user payload bits/s when sending
    /// back-to-back frames each carrying `payload` bytes with `headers`
    /// bytes of protocol headers — the "standalone program" ceiling the
    /// paper compares against in Table 1.
    pub fn saturation_payload_bps(&self, payload: usize, headers: usize) -> f64 {
        let t = self.tx_time(payload + headers);
        (payload as f64 * 8.0) / (t as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ethernet_tx_time_max_frame() {
        let p = LinkParams::ethernet_10mbps();
        // 1514 + 24 = 1538 bytes → 1230.4 µs at 10 Mb/s.
        let t = p.tx_time(1514);
        assert_eq!(t, 1538 * 8 * 100); // 0.1 µs per bit
    }

    #[test]
    fn ethernet_min_frame_padding() {
        let p = LinkParams::ethernet_10mbps();
        assert_eq!(p.tx_time(10), p.tx_time(60));
        assert!(p.tx_time(61) > p.tx_time(60));
    }

    #[test]
    fn an1_is_10x_ethernet() {
        let e = LinkParams::ethernet_10mbps();
        let a = LinkParams::an1_100mbps();
        assert_eq!(e.tx_time(1000) / a.tx_time(1000), 10);
    }

    #[test]
    fn saturation_below_raw_bandwidth() {
        let p = LinkParams::ethernet_10mbps();
        let sat = p.saturation_payload_bps(1460, 54);
        assert!(sat < 10_000_000.0);
        assert!(sat > 9_000_000.0, "sat={sat}");
    }

    #[test]
    fn costs_scale_linearly() {
        let c = CostModel::calibrated_1993();
        assert_eq!(c.copy(100), 100 * c.copy_per_byte);
        assert_eq!(c.checksum(0), 0);
        assert!(c.pio(1500) > c.copy(1500));
    }

    #[test]
    fn demux_cost_per_path() {
        let c = CostModel::calibrated_1993();
        assert_eq!(c.demux_cost(DemuxPath::FilterScan, 14), c.filter_run(14));
        assert_eq!(c.demux_cost(DemuxPath::Hardware, 0), c.bqi_demux);
        // An exact-match lookup beats interpreting even a one-binding scan.
        assert!(c.demux_cost(DemuxPath::FlowTable, 7) < c.demux_cost(DemuxPath::FilterScan, 7));
        // Both keyed tiers charge the same hash-probe constant.
        assert_eq!(
            c.demux_cost(DemuxPath::ListenTable, 5),
            c.demux_cost(DemuxPath::FlowTable, 7)
        );
    }

    #[test]
    fn software_demux_cost_matches_table5() {
        // Paper Table 5: 52 µs for software demux on the Lance. A 14-
        // instruction filter at our constants: 10 + 14*3 = 52 µs.
        let c = CostModel::calibrated_1993();
        assert_eq!(c.filter_run(14), 52 * MICROS);
        assert_eq!(c.bqi_demux, 50 * MICROS);
    }
}
