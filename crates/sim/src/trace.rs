//! Lightweight counters and measurement collection for experiments.

use std::collections::BTreeMap;

use crate::Nanos;

/// A set of named counters and duration samples.
///
/// `BTreeMap` keeps report output deterministic and sorted.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    counters: BTreeMap<&'static str, u64>,
    samples: BTreeMap<&'static str, Vec<Nanos>>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Adds `n` to the named counter.
    pub fn count(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Increments the named counter by one.
    pub fn bump(&mut self, name: &'static str) {
        self.count(name, 1);
    }

    /// Records a duration sample under `name`.
    pub fn sample(&mut self, name: &'static str, v: Nanos) {
        self.samples.entry(name).or_default().push(v);
    }

    /// Reads a counter (zero if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All samples recorded under `name`.
    pub fn samples(&self, name: &str) -> &[Nanos] {
        self.samples.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Mean of the samples under `name`, or `None` if there are none.
    pub fn mean(&self, name: &str) -> Option<f64> {
        let s = self.samples(name);
        if s.is_empty() {
            None
        } else {
            Some(s.iter().map(|&v| v as f64).sum::<f64>() / s.len() as f64)
        }
    }

    /// The `p`-quantile (0.0..=1.0) of samples under `name` by
    /// nearest-rank, or `None` if there are none.
    pub fn quantile(&self, name: &str, p: f64) -> Option<Nanos> {
        let mut s = self.samples(name).to_vec();
        if s.is_empty() {
            return None;
        }
        s.sort_unstable();
        let idx = ((p * s.len() as f64).ceil() as usize).clamp(1, s.len()) - 1;
        Some(s[idx])
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut t = Trace::new();
        t.bump("pkts");
        t.count("pkts", 4);
        assert_eq!(t.get("pkts"), 5);
        assert_eq!(t.get("missing"), 0);
    }

    #[test]
    fn sample_statistics() {
        let mut t = Trace::new();
        for v in [10, 20, 30, 40] {
            t.sample("rtt", v);
        }
        assert_eq!(t.mean("rtt"), Some(25.0));
        assert_eq!(t.quantile("rtt", 0.5), Some(20));
        assert_eq!(t.quantile("rtt", 1.0), Some(40));
        assert_eq!(t.mean("none"), None);
        assert_eq!(t.quantile("none", 0.5), None);
    }

    #[test]
    fn counters_iterate_sorted() {
        let mut t = Trace::new();
        t.bump("zz");
        t.bump("aa");
        let names: Vec<_> = t.counters().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["aa", "zz"]);
    }
}
