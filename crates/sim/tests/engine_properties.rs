//! Property tests for the discrete-event engine: execution order matches a
//! reference model under arbitrary schedules and cancellations, and the
//! CPU queueing model conserves busy time.

use proptest::prelude::*;

use unp_sim::{Cpu, Engine, Nanos};

#[derive(Debug, Clone)]
enum Cmd {
    /// Schedule a tagged event at an absolute time.
    At(Nanos),
    /// Cancel the nth previously scheduled (and possibly already-run) event.
    Cancel(usize),
}

fn arb_cmds() -> impl Strategy<Value = Vec<Cmd>> {
    proptest::collection::vec(
        prop_oneof![
            (0u64..1_000_000).prop_map(Cmd::At),
            any::<usize>().prop_map(Cmd::Cancel),
        ],
        1..60,
    )
}

proptest! {
    /// Events fire exactly once, in (time, schedule-order) order, and
    /// cancelled events never fire.
    #[test]
    fn engine_matches_reference(cmds in arb_cmds()) {
        #[derive(Default)]
        struct W {
            fired: Vec<usize>,
        }
        let mut eng: Engine<W> = Engine::new();
        let mut w = W::default();
        let mut handles = Vec::new();
        let mut expected: Vec<(Nanos, usize)> = Vec::new(); // (time, tag)
        let mut cancelled: Vec<usize> = Vec::new();

        for cmd in cmds {
            match cmd {
                Cmd::At(t) => {
                    let tag = handles.len();
                    let id = eng.at(t, move |w: &mut W, _| w.fired.push(tag));
                    handles.push(id);
                    expected.push((t, tag));
                }
                Cmd::Cancel(n) => {
                    if handles.is_empty() {
                        continue;
                    }
                    let idx = n % handles.len();
                    if eng.cancel(handles[idx]) && !cancelled.contains(&idx) {
                        cancelled.push(idx);
                    }
                }
            }
        }
        eng.run(&mut w, 10_000);
        let mut want: Vec<(Nanos, usize)> = expected
            .into_iter()
            .filter(|(_, tag)| !cancelled.contains(tag))
            .collect();
        want.sort_by_key(|&(t, tag)| (t, tag)); // schedule order == tag order
        let want_tags: Vec<usize> = want.into_iter().map(|(_, tag)| tag).collect();
        prop_assert_eq!(w.fired, want_tags);
    }

    /// The CPU model: completions are monotone, never earlier than
    /// request + cost, and total busy time is the sum of charges.
    #[test]
    fn cpu_queueing_laws(charges in proptest::collection::vec((0u64..1_000, 1u64..500), 1..40)) {
        let mut cpu = Cpu::new();
        let mut prev_done = 0;
        let mut total = 0;
        for &(at, cost) in &charges {
            let done = cpu.charge(at, cost);
            prop_assert!(done >= at + cost, "completion before request+cost");
            prop_assert!(done >= prev_done, "completions must be monotone");
            prev_done = done;
            total += cost;
        }
        prop_assert_eq!(cpu.busy_total(), total);
    }

    /// Interrupt-priority charges complete at now+cost and push queued
    /// work back by exactly their cost.
    #[test]
    fn interrupt_priority_laws(base in 1u64..1000, intr in 1u64..500, at in 0u64..800) {
        let mut cpu = Cpu::new();
        let normal_done = cpu.charge(0, base);
        let intr_done = cpu.charge_priority(at, intr);
        prop_assert_eq!(intr_done, at + intr, "interrupt runs immediately");
        // Subsequent normal work sees the displacement.
        let next = cpu.charge(0, 1);
        prop_assert_eq!(next, normal_done.max(at) + intr + 1);
    }
}
