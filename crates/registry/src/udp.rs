//! The UDP registry server.
//!
//! "There is a dedicated registry server for each protocol" (paper §3.1).
//! UDP's registry is far simpler than TCP's — no handshake, no TIME_WAIT
//! inheritance — but the *naming* concern is identical: "connection
//! end-points act as names of the communicating entities and are therefore
//! unique across a machine for a particular protocol. Thus, having
//! untrusted user libraries allocate these names is a security and
//! administrative concern."
//!
//! Connectionless protocols can still use hardware demultiplexing by
//! "discovering the index value of their peer by examining the link-level
//! headers of incoming messages" (paper §2.2); the owner bookkeeping here
//! is what the network I/O module consults when installing those bindings.

use std::collections::HashMap;

use unp_buffers::OwnerTag;

/// Errors from UDP port registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UdpRegistryError {
    /// Another application owns the port.
    PortInUse,
    /// No ephemeral ports remain.
    Exhausted,
    /// The requester does not own the port.
    NotOwner,
}

/// Machine-wide UDP port ownership.
#[derive(Debug, Default)]
pub struct UdpRegistry {
    owners: HashMap<u16, OwnerTag>,
    next_ephemeral: u16,
}

impl UdpRegistry {
    /// Creates an empty registry.
    pub fn new() -> UdpRegistry {
        UdpRegistry {
            owners: HashMap::new(),
            next_ephemeral: 1024,
        }
    }

    /// Registers a specific port to `owner`. Re-binding one's own port is
    /// idempotent; another owner's port is refused.
    pub fn bind(&mut self, owner: OwnerTag, port: u16) -> Result<(), UdpRegistryError> {
        match self.owners.get(&port) {
            Some(&o) if o != owner => Err(UdpRegistryError::PortInUse),
            _ => {
                self.owners.insert(port, owner);
                Ok(())
            }
        }
    }

    /// Allocates an ephemeral port for `owner`.
    pub fn bind_ephemeral(&mut self, owner: OwnerTag) -> Result<u16, UdpRegistryError> {
        for _ in 0..=(5000u16 - 1024) {
            let p = if self.next_ephemeral >= 5000 {
                self.next_ephemeral = 1024;
                5000
            } else {
                let p = self.next_ephemeral;
                self.next_ephemeral += 1;
                p
            };
            if let std::collections::hash_map::Entry::Vacant(e) = self.owners.entry(p) {
                e.insert(owner);
                return Ok(p);
            }
        }
        Err(UdpRegistryError::Exhausted)
    }

    /// Releases a port; only its owner (or the kernel) may.
    pub fn release(&mut self, owner: OwnerTag, port: u16) -> Result<(), UdpRegistryError> {
        match self.owners.get(&port) {
            Some(&o) if o == owner || owner == OwnerTag(0) => {
                self.owners.remove(&port);
                Ok(())
            }
            Some(_) => Err(UdpRegistryError::NotOwner),
            None => Ok(()),
        }
    }

    /// The owner of `port`, if registered.
    pub fn owner(&self, port: u16) -> Option<OwnerTag> {
        self.owners.get(&port).copied()
    }

    /// Releases every port owned by an exiting application; returns how
    /// many were reclaimed (the UDP analogue of connection inheritance —
    /// datagram state needs no quarantine).
    pub fn app_exit(&mut self, owner: OwnerTag) -> usize {
        let before = self.owners.len();
        self.owners.retain(|_, &mut o| o != owner);
        before - self.owners.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const APP1: OwnerTag = OwnerTag(1);
    const APP2: OwnerTag = OwnerTag(2);

    #[test]
    fn bind_conflicts_refused() {
        let mut r = UdpRegistry::new();
        assert_eq!(r.bind(APP1, 53), Ok(()));
        assert_eq!(r.bind(APP2, 53), Err(UdpRegistryError::PortInUse));
        assert_eq!(r.bind(APP1, 53), Ok(()), "idempotent rebind by owner");
        assert_eq!(r.owner(53), Some(APP1));
    }

    #[test]
    fn release_requires_ownership() {
        let mut r = UdpRegistry::new();
        r.bind(APP1, 53).unwrap();
        assert_eq!(r.release(APP2, 53), Err(UdpRegistryError::NotOwner));
        assert_eq!(r.release(OwnerTag(0), 53), Ok(()), "kernel may reap");
        r.bind(APP1, 53).unwrap();
        assert_eq!(r.release(APP1, 53), Ok(()));
        assert_eq!(r.owner(53), None);
    }

    #[test]
    fn ephemeral_allocation_skips_taken_ports() {
        let mut r = UdpRegistry::new();
        r.bind(APP1, 1024).unwrap();
        r.bind(APP1, 1025).unwrap();
        let p = r.bind_ephemeral(APP2).unwrap();
        assert!(p > 1025);
        assert_eq!(r.owner(p), Some(APP2));
    }

    #[test]
    fn app_exit_reclaims_all_ports() {
        let mut r = UdpRegistry::new();
        r.bind(APP1, 53).unwrap();
        r.bind(APP1, 514).unwrap();
        r.bind(APP2, 69).unwrap();
        assert_eq!(r.app_exit(APP1), 2);
        assert_eq!(r.owner(53), None);
        assert_eq!(r.owner(69), Some(APP2), "others untouched");
    }
}
