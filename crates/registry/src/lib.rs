//! `unp-registry` — the registry server.
//!
//! "The registry server runs as a trusted, privileged process managing the
//! allocation and deallocation of communication end-points" (paper §3.4).
//! There is one registry server per protocol. Its duties, all implemented
//! here:
//!
//! * **Port namespace** — end-point names are unique per machine per
//!   protocol; untrusted libraries cannot self-allocate them
//!   ([`PortAllocator`], with post-connection quarantine because
//!   "connection state needs to be maintained after a connection is
//!   shut down. A transient user linkable library is clearly not
//!   appropriate for this").
//! * **Connection establishment** — "the registry server for TCP executes
//!   the three-way handshake as part of the connection establishment",
//!   using the *same* `unp-tcp` state machine the library uses ("our
//!   organization can be logically thought of as the protocol library
//!   providing a set of functions to both the application and the registry
//!   server"). On completion the TCP state is transferred to the
//!   application's library.
//! * **Connection inheritance** — "when the application exits, the registry
//!   server inherits the connections and ensures that the protocol
//!   specified delay period is maintained before the connection is
//!   reused"; on abnormal termination "the protocol server issues a reset
//!   message to the remote peer."

pub mod ports;
pub mod udp;

pub use ports::PortAllocator;
pub use udp::UdpRegistry;

use std::collections::HashMap;

use unp_buffers::OwnerTag;
use unp_filter::programs::DemuxSpec;
use unp_kernel::ChannelStats;
#[cfg(test)]
use unp_tcp::State;
use unp_tcp::{ListenTcb, Tcb, TcpAction, TcpConfig, TcpTimer};
use unp_wire::{IpProtocol, Ipv4Addr, TcpRepr};

/// Time in nanoseconds.
pub type Nanos = u64;

/// Identifier of an in-progress handshake or inherited connection within
/// the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HsId(pub u64);

/// Outputs of the registry state machine, routed by the hosting
/// organization (which charges the paper's costs for each).
#[derive(Debug)]
pub enum RegistryAction {
    /// Transmit a segment to `remote` on behalf of connection `hs`
    /// (via the kernel default path — "the registry server does not access
    /// the network device using shared memory, but instead uses standard
    /// Mach IPCs").
    Send {
        /// Connection this belongs to.
        hs: HsId,
        /// Segment header.
        repr: TcpRepr,
        /// Segment payload (handshakes carry none, but inherited
        /// connections may retransmit data).
        payload: Vec<u8>,
        /// Peer address.
        remote: Ipv4Addr,
    },
    /// Arm a timer for connection `hs`.
    SetTimer(HsId, TcpTimer, Nanos),
    /// Disarm a timer.
    CancelTimer(HsId, TcpTimer),
    /// The three-way handshake completed: transfer this TCP state to the
    /// owning application's library (the paper's 1.4 ms state transfer).
    Complete {
        /// Handshake id.
        hs: HsId,
        /// Owner application.
        owner: OwnerTag,
        /// The established connection block.
        tcb: Box<Tcb>,
    },
    /// The handshake failed (reset by peer or retries exhausted).
    Failed {
        /// Handshake id.
        hs: HsId,
        /// Owner application.
        owner: OwnerTag,
    },
}

/// What [`RegistryServer::owner_died`] reclaimed, for journaling.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeathReport {
    /// Listening ports removed and released.
    pub listeners: Vec<u16>,
    /// In-flight handshakes aborted: `(hs id, local port)`.
    pub handshakes: Vec<(u64, u16)>,
}

struct Pending {
    tcb: Tcb,
    owner: OwnerTag,
    remote_ip: Ipv4Addr,
    /// True once Complete has been emitted (awaiting removal).
    done: bool,
    /// True for connections inherited from exited applications.
    inherited: bool,
}

/// The demux binding the registry installs with the network I/O module at
/// connection setup ("the registry server activates the address
/// demultiplexing mechanism as part of the connection establishment
/// phase"). Connection endpoints are always fully specified — both remote
/// address and port are known by the time the channel is created — so the
/// spec is guaranteed *distillable* into an exact-match [`unp_wire::FlowKey`]
/// and every established connection rides the kernel's O(1) flow-table
/// fast path rather than the per-packet filter scan.
pub fn connection_demux_spec(
    link_header_len: usize,
    local: (Ipv4Addr, u16),
    remote: (Ipv4Addr, u16),
) -> DemuxSpec {
    let spec = DemuxSpec {
        link_header_len,
        protocol: IpProtocol::Tcp,
        local_ip: local.0,
        local_port: local.1,
        remote_ip: Some(remote.0),
        remote_port: Some(remote.1),
    };
    debug_assert!(spec.distill().is_some(), "connection specs are exact-match");
    spec
}

/// The demux binding for a listening endpoint: local address known, remote
/// fully wildcard. Guaranteed distillable into a 3-tuple
/// [`unp_wire::ListenKey`], so passive bindings land in the kernel's keyed
/// listen table rather than the per-packet filter scan.
pub fn listen_demux_spec(link_header_len: usize, local: (Ipv4Addr, u16)) -> DemuxSpec {
    let spec = DemuxSpec {
        link_header_len,
        protocol: IpProtocol::Tcp,
        local_ip: local.0,
        local_port: local.1,
        remote_ip: None,
        remote_port: None,
    };
    debug_assert!(
        spec.distill_listen().is_some(),
        "listen specs are 3-tuple-match"
    );
    spec
}

/// Errors from registry calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegistryError {
    /// The port is already bound or quarantined.
    PortUnavailable,
    /// No ephemeral ports free.
    Exhausted,
    /// Unknown listener or handshake.
    NotFound,
}

/// A channel-stats record the hosting world hands back at teardown,
/// identified by the connection endpoint the channel served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BindingReport {
    /// Local TCP port of the binding.
    pub local_port: u16,
    /// Peer address.
    pub remote: (Ipv4Addr, u16),
    /// The kernel's per-channel counters at teardown.
    pub stats: ChannelStats,
}

impl BindingReport {
    /// Deliveries the channel saw, before the threshold below applies.
    fn software_deliveries(&self) -> u64 {
        self.stats.flow_hits + self.stats.listen_hits + self.stats.scan_fallbacks
    }

    /// True when the binding kept missing both keyed fast paths: enough
    /// software traffic to judge, yet the residual filter scan decided
    /// most of it. Connection setup always installs distillable
    /// (exact-match) specs and passive bindings distill into the 3-tuple
    /// listen table, so a flagged binding means a half-specified wildcard
    /// shadowed it or its framing mismatched the module — worth
    /// surfacing, not silently eating the per-packet scan cost.
    pub fn missed_fast_path(&self) -> bool {
        const MIN_DELIVERIES: u64 = 16;
        self.software_deliveries() >= MIN_DELIVERIES
            && self.stats.scan_fallbacks > self.stats.flow_hits + self.stats.listen_hits
    }
}

/// The registry server for TCP on one host. See module docs.
pub struct RegistryServer {
    local_ip: Ipv4Addr,
    ports: PortAllocator,
    listeners: HashMap<u16, (OwnerTag, TcpConfig)>,
    conns: HashMap<u64, Pending>,
    /// Index (local_port, remote_ip, remote_port) → hs.
    index: HashMap<(u16, Ipv4Addr, u16), u64>,
    /// Channel stats handed back at connection teardown, in arrival order.
    bindings: Vec<BindingReport>,
    next_hs: u64,
    next_iss: u32,
}

impl RegistryServer {
    /// Creates the server for a host owning `local_ip`.
    pub fn new(local_ip: Ipv4Addr) -> RegistryServer {
        RegistryServer {
            local_ip,
            ports: PortAllocator::new(),
            listeners: HashMap::new(),
            conns: HashMap::new(),
            index: HashMap::new(),
            bindings: Vec::new(),
            next_hs: 1,
            // Seed the ISS from the host address so two hosts never share
            // sequence spaces (the 4.3BSD clock-driven scheme's role).
            next_iss: 0x1000_u32.wrapping_add(local_ip.to_u32().wrapping_mul(2654435761)),
        }
    }

    /// Our address.
    pub fn local_ip(&self) -> Ipv4Addr {
        self.local_ip
    }

    fn iss(&mut self) -> u32 {
        // Deterministic spaced ISS (the 4.3BSD clock-driven scheme's role
        // is uniqueness, which spacing provides in simulation).
        self.next_iss = self.next_iss.wrapping_add(64_000);
        self.next_iss
    }

    /// Registers a listening endpoint for `owner` with per-connection
    /// configuration `cfg`.
    pub fn listen(
        &mut self,
        owner: OwnerTag,
        port: u16,
        cfg: TcpConfig,
    ) -> Result<(), RegistryError> {
        if self.listeners.contains_key(&port) || !self.ports.bind(port) {
            return Err(RegistryError::PortUnavailable);
        }
        self.listeners.insert(port, (owner, cfg));
        Ok(())
    }

    /// Stops listening on `port` (the owner's close of a listening socket).
    pub fn unlisten(&mut self, owner: OwnerTag, port: u16) -> Result<(), RegistryError> {
        match self.listeners.get(&port) {
            Some((o, _)) if *o == owner => {
                self.listeners.remove(&port);
                self.ports.release(port);
                Ok(())
            }
            _ => Err(RegistryError::NotFound),
        }
    }

    /// Starts an active open to `remote` on behalf of `owner`. The SYN is
    /// emitted immediately; the caller routes the returned actions.
    pub fn connect(
        &mut self,
        owner: OwnerTag,
        remote: (Ipv4Addr, u16),
        cfg: TcpConfig,
        now: Nanos,
    ) -> Result<(HsId, Vec<RegistryAction>), RegistryError> {
        let port = self
            .ports
            .alloc_ephemeral(remote, now)
            .ok_or(RegistryError::Exhausted)?;
        let iss = self.iss();
        let (tcb, actions) = Tcb::connect((self.local_ip, port), remote, cfg, iss, now);
        let hs = self.next_hs;
        self.next_hs += 1;
        self.index.insert((port, remote.0, remote.1), hs);
        self.conns.insert(
            hs,
            Pending {
                tcb,
                owner,
                remote_ip: remote.0,
                done: false,
                inherited: false,
            },
        );
        Ok((HsId(hs), self.route(hs, actions)))
    }

    /// Processes a TCP segment that arrived on the kernel default path
    /// (handshake traffic, inherited-connection traffic, or strays).
    /// `src` is the sender's address; the segment is already
    /// checksum-verified.
    pub fn on_segment(
        &mut self,
        src: Ipv4Addr,
        repr: &TcpRepr,
        payload: &[u8],
        now: Nanos,
    ) -> Vec<RegistryAction> {
        let key = (repr.dst_port, src, repr.src_port);
        if let Some(&hs) = self.index.get(&key) {
            let actions = {
                let p = self.conns.get_mut(&hs).expect("indexed");
                p.tcb.on_segment(repr, payload, now)
            };
            return self.route(hs, actions);
        }
        // New connection to a listener?
        if let Some((owner, cfg)) = self.listeners.get(&repr.dst_port).cloned() {
            let listener = ListenTcb::new((self.local_ip, repr.dst_port), cfg);
            let iss = self.iss();
            let on_syn = listener.on_syn((src, repr.src_port), repr, iss, now);
            if let Some((tcb, actions)) = on_syn {
                let hs = self.next_hs;
                self.next_hs += 1;
                self.index.insert(key, hs);
                self.conns.insert(
                    hs,
                    Pending {
                        tcb,
                        owner,
                        remote_ip: src,
                        done: false,
                        inherited: false,
                    },
                );
                return self.route(hs, actions);
            }
            // Non-SYN segment to a listening port: no connection; RST it
            // (unless it is itself a RST).
            if repr.flags.rst {
                return Vec::new();
            }
            let rst = Tcb::rst_for((self.local_ip, repr.dst_port), repr, payload.len());
            return vec![RegistryAction::Send {
                hs: HsId(0),
                repr: rst,
                payload: Vec::new(),
                remote: src,
            }];
        }
        // Stray segment to a dead endpoint: answer with RST unless it is
        // itself a RST.
        if repr.flags.rst {
            return Vec::new();
        }
        let rst = Tcb::rst_for((self.local_ip, repr.dst_port), repr, payload.len());
        vec![RegistryAction::Send {
            hs: HsId(0),
            repr: rst,
            payload: Vec::new(),
            remote: src,
        }]
    }

    /// Handles a timer the host armed for connection `hs`.
    pub fn on_timer(&mut self, hs: HsId, timer: TcpTimer, now: Nanos) -> Vec<RegistryAction> {
        let Some(p) = self.conns.get_mut(&hs.0) else {
            return Vec::new();
        };
        let actions = p.tcb.on_timer(timer, now);
        self.route(hs.0, actions)
    }

    /// The owning application exited. Established connections it still
    /// holds are returned to the registry: on a normal exit the registry
    /// inherits them and completes the close protocol (FIN, TIME_WAIT);
    /// on an abnormal exit it resets the peer. Returns actions to route.
    pub fn app_exit(
        &mut self,
        owner: OwnerTag,
        tcbs: Vec<Tcb>,
        abnormal: bool,
        now: Nanos,
    ) -> Vec<RegistryAction> {
        let mut out = Vec::new();
        for mut tcb in tcbs {
            let (local, remote) = (tcb.local(), tcb.remote());
            let key = (local.1, remote.0, remote.1);
            if abnormal {
                let actions = tcb.abort();
                let hs = self.adopt(tcb, owner, remote.0, key);
                out.extend(self.route(hs, actions));
            } else {
                let actions = tcb.close(now).unwrap_or_default();
                let hs = self.adopt(tcb, owner, remote.0, key);
                out.extend(self.route(hs, actions));
            }
        }
        out
    }

    /// Full death cleanup for `owner`, beyond the established connections
    /// [`RegistryServer::app_exit`] inherits: listening sockets are
    /// removed (their ports released for re-binding), and in-flight
    /// handshakes are aborted — the peer of a synchronized handshake gets
    /// a RST on the dead application's behalf, the ephemeral port returns
    /// to the allocator, and a `Failed` action lets the hosting world tear
    /// down the handshake's channel. Inherited connections the registry is
    /// already closing for this owner are left to finish their protocol.
    /// Returns the actions to route plus a report of what was reclaimed.
    pub fn owner_died(&mut self, owner: OwnerTag) -> (Vec<RegistryAction>, DeathReport) {
        let mut report = DeathReport::default();
        let mut out = Vec::new();
        let mut dead_ports: Vec<u16> = self
            .listeners
            .iter()
            .filter(|(_, (o, _))| *o == owner)
            .map(|(&p, _)| p)
            .collect();
        dead_ports.sort_unstable();
        for port in dead_ports {
            self.listeners.remove(&port);
            self.ports.release(port);
            report.listeners.push(port);
        }
        let mut dead_hs: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, p)| p.owner == owner && !p.inherited)
            .map(|(&hs, _)| hs)
            .collect();
        dead_hs.sort_unstable();
        for hs in dead_hs {
            let (actions, port) = {
                let p = self.conns.get_mut(&hs).expect("collected above");
                (p.tcb.abort(), p.tcb.local().1)
            };
            report.handshakes.push((hs, port));
            out.extend(self.route(hs, actions));
        }
        (out, report)
    }

    fn adopt(
        &mut self,
        tcb: Tcb,
        owner: OwnerTag,
        remote_ip: Ipv4Addr,
        key: (u16, Ipv4Addr, u16),
    ) -> u64 {
        let hs = self.next_hs;
        self.next_hs += 1;
        self.index.insert(key, hs);
        self.conns.insert(
            hs,
            Pending {
                tcb,
                owner,
                remote_ip,
                done: true, // never hand an inherited connection to an app
                inherited: true,
            },
        );
        hs
    }

    /// Number of connections the registry currently tracks (handshakes in
    /// progress plus inherited closers).
    pub fn tracked(&self) -> usize {
        self.conns.len()
    }

    /// Records a torn-down channel's kernel counters (the "registry
    /// handoff": the world reads [`unp_kernel::NetIoModule::channel_stats`]
    /// just before destroying the channel and reports them here).
    pub fn record_channel_stats(
        &mut self,
        local_port: u16,
        remote: (Ipv4Addr, u16),
        stats: ChannelStats,
    ) {
        self.bindings.push(BindingReport {
            local_port,
            remote,
            stats,
        });
    }

    /// All channel-stats reports received so far, in arrival order.
    pub fn binding_reports(&self) -> &[BindingReport] {
        &self.bindings
    }

    /// The bindings that kept missing the flow-table fast path (see
    /// [`BindingReport::missed_fast_path`]).
    pub fn flagged_bindings(&self) -> Vec<&BindingReport> {
        self.bindings
            .iter()
            .filter(|b| b.missed_fast_path())
            .collect()
    }

    /// True if `port` can be bound right now.
    pub fn port_free(&self, port: u16, now: Nanos) -> bool {
        self.ports.is_free(port, now)
    }

    /// Converts TCB actions into registry actions, extracting completion.
    fn route(&mut self, hs: u64, actions: Vec<TcpAction>) -> Vec<RegistryAction> {
        let mut out = Vec::new();
        let mut completed = false;
        let mut closed = false;
        let mut reset = false;
        {
            let p = self.conns.get_mut(&hs).expect("routing live conn");
            for a in actions {
                match a {
                    TcpAction::Send(repr, payload) => out.push(RegistryAction::Send {
                        hs: HsId(hs),
                        repr,
                        payload,
                        remote: p.remote_ip,
                    }),
                    TcpAction::SetTimer(t, d) => out.push(RegistryAction::SetTimer(HsId(hs), t, d)),
                    TcpAction::CancelTimer(t) => out.push(RegistryAction::CancelTimer(HsId(hs), t)),
                    TcpAction::Connected => completed = true,
                    TcpAction::ConnClosed => closed = true,
                    TcpAction::Reset => reset = true,
                    // Data/space notifications are meaningless during a
                    // handshake and ignored on inherited closers.
                    TcpAction::DataAvailable | TcpAction::PeerClosed | TcpAction::SendSpace => {}
                }
            }
        }
        if completed {
            let p = self.conns.get_mut(&hs).expect("live");
            if !p.done {
                p.done = true;
                let owner = p.owner;
                let local = p.tcb.local();
                let remote = p.tcb.remote();
                // Replace the TCB with a tombstone-free removal: take it out
                // for transfer and drop the index entry (the channel now
                // bypasses the registry).
                let p = self.conns.remove(&hs).expect("live");
                self.index.remove(&(local.1, remote.0, remote.1));
                out.push(RegistryAction::Complete {
                    hs: HsId(hs),
                    owner,
                    tcb: Box::new(p.tcb),
                });
            }
        } else if closed || reset {
            if let Some(p) = self.conns.remove(&hs) {
                let local = p.tcb.local();
                let remote = p.tcb.remote();
                self.index.remove(&(local.1, remote.0, remote.1));
                // Quarantine the pair for 2MSL from now if this was an
                // inherited close; release the port for handshake failures.
                if p.inherited {
                    self.ports.quarantine(local.1, remote, Nanos::MAX);
                    // The actual 2MSL wait already happened inside the
                    // TCB's TIME_WAIT state for orderly closes; for aborts
                    // the pair is quarantined permanently-in-simulation
                    // (hosts are short-lived); ports release below.
                    self.ports.release(local.1);
                } else {
                    self.ports.release(local.1);
                    if !p.done {
                        out.push(RegistryAction::Failed {
                            hs: HsId(hs),
                            owner: p.owner,
                        });
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const IP_A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const IP_B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    /// Ferries segments between two registries until both sides' handshake
    /// completes or traffic dries up. Returns completed TCBs.
    fn run_handshake(
        ra: &mut RegistryServer,
        rb: &mut RegistryServer,
        mut pending: Vec<(bool, TcpRepr, Vec<u8>)>, // (to_b, repr, payload)
    ) -> (Vec<Tcb>, Vec<Tcb>) {
        let mut done_a = Vec::new();
        let mut done_b = Vec::new();
        let mut now = 0;
        let mut steps = 0;
        while let Some((to_b, repr, payload)) = pending.pop() {
            steps += 1;
            assert!(steps < 100, "handshake livelock");
            now += 100_000;
            let actions = if to_b {
                rb.on_segment(IP_A, &repr, &payload, now)
            } else {
                ra.on_segment(IP_B, &repr, &payload, now)
            };
            for a in actions {
                match a {
                    RegistryAction::Send {
                        repr,
                        payload,
                        remote,
                        ..
                    } => {
                        pending.push((remote == IP_B, repr, payload));
                    }
                    RegistryAction::Complete { tcb, .. } => {
                        if to_b {
                            done_b.push(*tcb);
                        } else {
                            done_a.push(*tcb);
                        }
                    }
                    _ => {}
                }
            }
        }
        (done_a, done_b)
    }

    #[test]
    fn registry_executes_three_way_handshake() {
        let mut ra = RegistryServer::new(IP_A);
        let mut rb = RegistryServer::new(IP_B);
        rb.listen(OwnerTag(20), 80, TcpConfig::default()).unwrap();

        let (_hs, actions) = ra
            .connect(OwnerTag(10), (IP_B, 80), TcpConfig::default(), 0)
            .unwrap();
        let mut pending = Vec::new();
        for a in actions {
            if let RegistryAction::Send {
                repr,
                payload,
                remote,
                ..
            } = a
            {
                pending.push((remote == IP_B, repr, payload));
            }
        }
        let (done_a, done_b) = run_handshake(&mut ra, &mut rb, pending);
        assert_eq!(done_a.len(), 1, "active side completed");
        assert_eq!(done_b.len(), 1, "passive side completed");
        assert_eq!(done_a[0].state(), State::Established);
        assert_eq!(done_b[0].state(), State::Established);
        // Both registries dropped the connection from their tables: the
        // data path now bypasses the server.
        assert_eq!(ra.tracked(), 0);
        assert_eq!(rb.tracked(), 0);
        // The endpoints agree.
        assert_eq!(done_a[0].remote(), done_b[0].local());
        assert_eq!(done_b[0].remote(), done_a[0].local());
    }

    #[test]
    fn connection_specs_are_distillable() {
        // The flow-table fast path depends on setup installing exact-match
        // bindings; pin that here for both link framings.
        for lhl in [14usize, 18] {
            let spec = connection_demux_spec(lhl, (IP_A, 80), (IP_B, 5000));
            let key = spec.distill().expect("setup specs must distill");
            assert_eq!(key.protocol, IpProtocol::Tcp.to_u8());
            assert_eq!((key.local_ip, key.local_port), (IP_A, 80));
            assert_eq!((key.remote_ip, key.remote_port), (IP_B, 5000));
        }
    }

    #[test]
    fn listen_port_conflicts_rejected() {
        let mut r = RegistryServer::new(IP_A);
        assert!(r.listen(OwnerTag(1), 80, TcpConfig::default()).is_ok());
        assert_eq!(
            r.listen(OwnerTag(2), 80, TcpConfig::default()).err(),
            Some(RegistryError::PortUnavailable)
        );
        assert!(r.unlisten(OwnerTag(2), 80).is_err(), "only owner unbinds");
        assert!(r.unlisten(OwnerTag(1), 80).is_ok());
        assert!(r.listen(OwnerTag(2), 80, TcpConfig::default()).is_ok());
    }

    #[test]
    fn stray_segment_answered_with_rst() {
        let mut r = RegistryServer::new(IP_A);
        let stray = TcpRepr {
            src_port: 1234,
            dst_port: 9999,
            seq: unp_wire::SeqNum(5),
            ack_num: unp_wire::SeqNum(0),
            flags: unp_wire::TcpFlags::SYN,
            window: 100,
            mss: None,
        };
        let actions = r.on_segment(IP_B, &stray, &[], 0);
        assert_eq!(actions.len(), 1);
        let RegistryAction::Send { repr, .. } = &actions[0] else {
            panic!("expected RST send");
        };
        assert!(repr.flags.rst);
        // RSTs themselves are not answered (no storm).
        let actions = r.on_segment(IP_B, repr, &[], 0);
        assert!(actions.is_empty());
    }

    #[test]
    fn abnormal_exit_resets_peer() {
        // Build an established pair through the registries.
        let mut ra = RegistryServer::new(IP_A);
        let mut rb = RegistryServer::new(IP_B);
        rb.listen(OwnerTag(20), 80, TcpConfig::default()).unwrap();
        let (_hs, actions) = ra
            .connect(OwnerTag(10), (IP_B, 80), TcpConfig::default(), 0)
            .unwrap();
        let mut pending = Vec::new();
        for a in actions {
            if let RegistryAction::Send {
                repr,
                payload,
                remote,
                ..
            } = a
            {
                pending.push((remote == IP_B, repr, payload));
            }
        }
        let (done_a, _done_b) = run_handshake(&mut ra, &mut rb, pending);
        let tcb_a = done_a.into_iter().next().unwrap();

        // The app on A crashes; registry A resets the peer.
        let actions = ra.app_exit(OwnerTag(10), vec![tcb_a], true, 1_000_000);
        let sent_rst = actions
            .iter()
            .any(|a| matches!(a, RegistryAction::Send { repr, .. } if repr.flags.rst));
        assert!(sent_rst, "abnormal exit must RST the peer: {actions:?}");
    }

    #[test]
    fn owner_death_releases_listeners_and_aborts_handshakes() {
        let mut r = RegistryServer::new(IP_A);
        r.listen(OwnerTag(5), 80, TcpConfig::default()).unwrap();
        r.listen(OwnerTag(6), 81, TcpConfig::default()).unwrap();
        // An in-flight active open by the doomed owner.
        let (hs, _) = r
            .connect(OwnerTag(5), (IP_B, 90), TcpConfig::default(), 0)
            .unwrap();
        assert_eq!(r.tracked(), 1);

        let (actions, report) = r.owner_died(OwnerTag(5));
        assert_eq!(report.listeners, vec![80]);
        assert_eq!(report.handshakes.len(), 1);
        assert_eq!(report.handshakes[0].0, hs.0);
        // The aborted handshake surfaces as Failed so the hosting world
        // can tear down its channel (SYN_SENT aborts emit no RST).
        assert!(actions
            .iter()
            .any(|a| matches!(a, RegistryAction::Failed { hs: f, .. } if *f == hs)));
        assert_eq!(r.tracked(), 0, "aborted handshake reaped");
        // The dead owner's listening port is immediately re-bindable; the
        // survivor's is untouched.
        assert!(r.listen(OwnerTag(9), 80, TcpConfig::default()).is_ok());
        assert_eq!(
            r.listen(OwnerTag(9), 81, TcpConfig::default()).err(),
            Some(RegistryError::PortUnavailable)
        );
        // Idempotent on a second call.
        let (actions, report) = r.owner_died(OwnerTag(5));
        assert!(actions.is_empty());
        assert_eq!(report, DeathReport::default());
    }

    #[test]
    fn connect_allocates_distinct_ephemeral_ports() {
        let mut r = RegistryServer::new(IP_A);
        let (_h1, a1) = r
            .connect(OwnerTag(1), (IP_B, 80), TcpConfig::default(), 0)
            .unwrap();
        let (_h2, a2) = r
            .connect(OwnerTag(1), (IP_B, 80), TcpConfig::default(), 0)
            .unwrap();
        let port_of = |acts: &[RegistryAction]| {
            acts.iter()
                .find_map(|a| match a {
                    RegistryAction::Send { repr, .. } => Some(repr.src_port),
                    _ => None,
                })
                .unwrap()
        };
        assert_ne!(port_of(&a1), port_of(&a2));
        assert_eq!(r.tracked(), 2);
    }

    #[test]
    fn registry_retransmits_syn_on_timer() {
        let mut r = RegistryServer::new(IP_A);
        let (hs, actions) = r
            .connect(OwnerTag(1), (IP_B, 80), TcpConfig::default(), 0)
            .unwrap();
        let syn_count = actions
            .iter()
            .filter(|a| matches!(a, RegistryAction::Send { repr, .. } if repr.flags.syn))
            .count();
        assert_eq!(syn_count, 1);
        // No response: the retransmission timer fires and the SYN reissues.
        let actions = r.on_timer(hs, unp_tcp::TcpTimer::Retransmit, 1_000_000_000);
        assert!(actions
            .iter()
            .any(|a| matches!(a, RegistryAction::Send { repr, .. } if repr.flags.syn)));
        assert_eq!(r.tracked(), 1, "handshake still pending");
    }

    #[test]
    fn handshake_gives_up_and_reports_failure() {
        let mut r = RegistryServer::new(IP_A);
        let cfg = TcpConfig {
            max_retransmits: 2,
            ..TcpConfig::default()
        };
        let (hs, _) = r.connect(OwnerTag(7), (IP_B, 80), cfg, 0).unwrap();
        let mut failed = false;
        let mut now = 0u64;
        for _ in 0..6 {
            now += 70_000_000_000;
            let actions = r.on_timer(hs, unp_tcp::TcpTimer::Retransmit, now);
            if actions
                .iter()
                .any(|a| matches!(a, RegistryAction::Failed { owner, .. } if *owner == OwnerTag(7)))
            {
                failed = true;
                break;
            }
        }
        assert!(failed, "retry budget exhausted must report Failed");
        assert_eq!(r.tracked(), 0, "failed handshake reaped");
        // The ephemeral port was released for reuse.
        let (_hs2, actions2) = r
            .connect(OwnerTag(7), (IP_B, 80), TcpConfig::default(), now)
            .unwrap();
        assert!(!actions2.is_empty());
    }

    #[test]
    fn channel_stats_handoff_flags_scan_heavy_bindings() {
        let mut r = RegistryServer::new(IP_A);
        // Healthy binding: the flow table decided nearly everything.
        r.record_channel_stats(
            80,
            (IP_B, 5000),
            ChannelStats {
                delivered: 100,
                batched: 40,
                flow_hits: 98,
                listen_hits: 0,
                scan_fallbacks: 2,
            },
        );
        // Scan-heavy binding with enough traffic to judge.
        r.record_channel_stats(
            81,
            (IP_B, 5001),
            ChannelStats {
                delivered: 30,
                batched: 5,
                flow_hits: 3,
                listen_hits: 0,
                scan_fallbacks: 27,
            },
        );
        // Scan-heavy but below the traffic threshold: not judged.
        r.record_channel_stats(
            82,
            (IP_B, 5002),
            ChannelStats {
                delivered: 4,
                batched: 0,
                flow_hits: 0,
                listen_hits: 0,
                scan_fallbacks: 4,
            },
        );
        // Listen-table-heavy binding: keyed hits, so healthy, not flagged.
        r.record_channel_stats(
            83,
            (IP_B, 5003),
            ChannelStats {
                delivered: 50,
                batched: 10,
                flow_hits: 0,
                listen_hits: 45,
                scan_fallbacks: 5,
            },
        );
        assert_eq!(r.binding_reports().len(), 4);
        let flagged = r.flagged_bindings();
        assert_eq!(flagged.len(), 1);
        assert_eq!(flagged[0].local_port, 81);
    }

    #[test]
    fn rst_during_handshake_fails_cleanly() {
        let mut r = RegistryServer::new(IP_A);
        let (hs, actions) = r
            .connect(OwnerTag(3), (IP_B, 80), TcpConfig::default(), 0)
            .unwrap();
        let RegistryAction::Send { repr: syn, .. } = &actions[0] else {
            panic!("expected SYN");
        };
        let _ = hs;
        // The peer answers with RST (port closed there).
        let rst = Tcb::rst_for((IP_B, 80), syn, 0);
        let actions = r.on_segment(IP_B, &rst, &[], 1_000_000);
        assert!(
            actions
                .iter()
                .any(|a| matches!(a, RegistryAction::Failed { .. })),
            "RST must fail the handshake: {actions:?}"
        );
        assert_eq!(r.tracked(), 0);
    }
}
