//! The TCP port namespace: machine-wide unique names with post-connection
//! quarantine.
//!
//! "Connection end-points act as names of the communicating entities and
//! are therefore unique across a machine for a particular protocol. Thus,
//! having untrusted user libraries allocate these names is a security and
//! administrative concern" (paper §3.4).

use std::collections::{HashMap, HashSet};

use unp_wire::Ipv4Addr;

use crate::Nanos;

/// First ephemeral port (the 4.3BSD range starts at 1024).
pub const EPHEMERAL_BASE: u16 = 1024;
/// Last ephemeral port in the classic BSD range.
pub const EPHEMERAL_LIMIT: u16 = 5000;

/// Machine-wide TCP port allocation state.
#[derive(Debug)]
pub struct PortAllocator {
    bound: HashSet<u16>,
    next_ephemeral: u16,
    /// (local_port, (remote_ip, remote_port)) pairs under quarantine, with
    /// their release times.
    quarantined: HashMap<(u16, Ipv4Addr, u16), Nanos>,
}

impl Default for PortAllocator {
    fn default() -> Self {
        Self::new()
    }
}

impl PortAllocator {
    /// Creates an empty allocator.
    pub fn new() -> PortAllocator {
        PortAllocator {
            bound: HashSet::new(),
            next_ephemeral: EPHEMERAL_BASE,
            quarantined: HashMap::new(),
        }
    }

    /// Binds a specific port. Returns false if taken.
    pub fn bind(&mut self, port: u16) -> bool {
        self.bound.insert(port)
    }

    /// Releases a bound port.
    pub fn release(&mut self, port: u16) -> bool {
        self.bound.remove(&port)
    }

    /// True if `port` may be bound at `now` (not bound, and not the local
    /// half of any quarantined pair).
    pub fn is_free(&self, port: u16, now: Nanos) -> bool {
        if self.bound.contains(&port) {
            return false;
        }
        !self
            .quarantined
            .iter()
            .any(|(&(p, _, _), &until)| p == port && until > now)
    }

    /// Allocates an ephemeral port for a connection to `remote`, skipping
    /// bound ports and pairs quarantined against this exact remote.
    pub fn alloc_ephemeral(&mut self, remote: (Ipv4Addr, u16), now: Nanos) -> Option<u16> {
        let span = EPHEMERAL_LIMIT - EPHEMERAL_BASE;
        for _ in 0..=span {
            let p = self.next_ephemeral;
            self.next_ephemeral = if p >= EPHEMERAL_LIMIT {
                EPHEMERAL_BASE
            } else {
                p + 1
            };
            let pair_quarantined = self
                .quarantined
                .get(&(p, remote.0, remote.1))
                .is_some_and(|&until| until > now);
            if !self.bound.contains(&p) && !pair_quarantined {
                self.bound.insert(p);
                return Some(p);
            }
        }
        None
    }

    /// Quarantines a (local port, remote) pair until `until` — the 2·MSL
    /// rule enforced by the registry on behalf of exited applications.
    pub fn quarantine(&mut self, port: u16, remote: (Ipv4Addr, u16), until: Nanos) {
        self.quarantined.insert((port, remote.0, remote.1), until);
    }

    /// Drops expired quarantine entries (housekeeping).
    pub fn expire(&mut self, now: Nanos) {
        self.quarantined.retain(|_, &mut until| until > now);
    }

    /// Number of live quarantine entries.
    pub fn quarantined_pairs(&self) -> usize {
        self.quarantined.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const R: (Ipv4Addr, u16) = (Ipv4Addr::new(10, 0, 0, 2), 80);

    #[test]
    fn bind_release_cycle() {
        let mut a = PortAllocator::new();
        assert!(a.bind(80));
        assert!(!a.bind(80));
        assert!(!a.is_free(80, 0));
        assert!(a.release(80));
        assert!(a.is_free(80, 0));
    }

    #[test]
    fn ephemeral_ports_unique_and_in_range() {
        let mut a = PortAllocator::new();
        let mut seen = HashSet::new();
        for _ in 0..100 {
            let p = a.alloc_ephemeral(R, 0).unwrap();
            assert!((EPHEMERAL_BASE..=EPHEMERAL_LIMIT).contains(&p));
            assert!(seen.insert(p), "duplicate ephemeral {p}");
        }
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut a = PortAllocator::new();
        let total = (EPHEMERAL_LIMIT - EPHEMERAL_BASE + 1) as usize;
        for _ in 0..total {
            assert!(a.alloc_ephemeral(R, 0).is_some());
        }
        assert!(a.alloc_ephemeral(R, 0).is_none());
    }

    #[test]
    fn quarantine_blocks_same_pair_only() {
        let mut a = PortAllocator::new();
        let p = a.alloc_ephemeral(R, 0).unwrap();
        a.release(p);
        a.quarantine(p, R, 1000);
        // Reset the rotor so the same port comes up first.
        a.next_ephemeral = p;
        // Same remote: the quarantined pair is skipped.
        let p2 = a.alloc_ephemeral(R, 500).unwrap();
        assert_ne!(p2, p);
        a.release(p2);
        // Different remote: the pair rule does not apply.
        a.next_ephemeral = p;
        let other = (Ipv4Addr::new(10, 0, 0, 3), 80);
        assert_eq!(a.alloc_ephemeral(other, 500), Some(p));
    }

    #[test]
    fn quarantine_expires() {
        let mut a = PortAllocator::new();
        a.quarantine(2000, R, 1000);
        assert!(!a.is_free(2000, 500));
        assert!(a.is_free(2000, 1001));
        a.expire(1001);
        assert_eq!(a.quarantined_pairs(), 0);
    }
}
