//! Property tests: the three demultiplexing technologies implement the
//! same predicate, and the VMs never panic on arbitrary bytes.

use proptest::prelude::*;

use unp_filter::programs::{bpf_demux, cspf_demux, DemuxSpec};
use unp_filter::{BpfInstr, BpfProgram, CompiledDemux, CspfInstr, CspfProgram, Demux};
use unp_wire::{
    EtherType, EthernetRepr, IpProtocol, Ipv4Addr, Ipv4Repr, MacAddr, SeqNum, TcpFlags, TcpRepr,
    UdpRepr,
};

fn arb_ip() -> impl Strategy<Value = Ipv4Addr> {
    (0u8..4, 0u8..4).prop_map(|(a, b)| Ipv4Addr::new(10, 0, a, b))
}

fn build_frame(
    tcp: bool,
    src: Ipv4Addr,
    dst: Ipv4Addr,
    sport: u16,
    dport: u16,
    frag_offset: usize,
) -> Vec<u8> {
    let payload = if tcp {
        TcpRepr {
            src_port: sport,
            dst_port: dport,
            seq: SeqNum(1),
            ack_num: SeqNum(0),
            flags: TcpFlags::ack(),
            window: 512,
            mss: None,
        }
        .build_segment(src, dst, b"pp")
    } else {
        UdpRepr {
            src_port: sport,
            dst_port: dport,
        }
        .build_datagram(src, dst, b"pp")
    };
    let ip = Ipv4Repr {
        frag_offset,
        more_frags: frag_offset > 0,
        ..Ipv4Repr::simple(
            src,
            dst,
            if tcp {
                IpProtocol::Tcp
            } else {
                IpProtocol::Udp
            },
            payload.len(),
        )
    };
    EthernetRepr {
        dst: MacAddr::from_host_index(2),
        src: MacAddr::from_host_index(1),
        ethertype: EtherType::Ipv4,
    }
    .build_frame(&ip.build_packet(&payload))
}

proptest! {
    /// The generated BPF program, the generated CSPF program, and the
    /// compiled matcher agree on every well-formed frame, for every spec.
    #[test]
    fn three_generations_agree(
        spec_tcp in any::<bool>(),
        local_ip in arb_ip(), local_port in 1u16..1024,
        remote in proptest::option::of((arb_ip(), 1u16..1024)),
        pkt_tcp in any::<bool>(),
        src in arb_ip(), dst in arb_ip(),
        sport in 1u16..1024, dport in 1u16..1024,
        frag in prop_oneof![Just(0usize), Just(64usize)],
    ) {
        let spec = DemuxSpec {
            link_header_len: 14,
            protocol: if spec_tcp { IpProtocol::Tcp } else { IpProtocol::Udp },
            local_ip,
            local_port,
            remote_ip: remote.map(|(ip, _)| ip),
            remote_port: remote.map(|(_, p)| p),
        };
        let bpf = bpf_demux(&spec);
        let cspf = cspf_demux(&spec);
        let compiled = CompiledDemux::from_spec(&spec);
        let frame = build_frame(pkt_tcp, src, dst, sport, dport, frag);
        let a = bpf.matches(&frame);
        let b = cspf.matches(&frame);
        let c = compiled.matches(&frame);
        prop_assert_eq!(a, c, "bpf vs compiled diverged");
        prop_assert_eq!(b, c, "cspf vs compiled diverged");
        // Sanity: an exact-match frame for the spec is accepted.
        if frag == 0 && pkt_tcp == spec_tcp {
            let exact = build_frame(
                spec_tcp,
                spec.remote_ip.unwrap_or(src),
                local_ip,
                spec.remote_port.unwrap_or(sport),
                local_port,
                0,
            );
            prop_assert!(compiled.matches(&exact));
            prop_assert!(bpf.matches(&exact));
            prop_assert!(cspf.matches(&exact));
        }
    }

    /// Neither VM panics, loops, or reads out of bounds on arbitrary bytes
    /// with arbitrary (structurally valid) programs.
    #[test]
    fn bpf_vm_total_on_arbitrary_packets(
        pkt in proptest::collection::vec(any::<u8>(), 0..128),
        k1 in any::<u32>(), k2 in any::<u32>(),
    ) {
        // A small program exercising loads, ALU, and branches.
        let prog = BpfProgram::new(vec![
            BpfInstr::LdHalfAbs(k1 % 64),
            BpfInstr::And(0xffff),
            BpfInstr::JmpGt { k: k2 % 1000, jt: 0, jf: 1 },
            BpfInstr::LdxMsh(k1 % 32),
            BpfInstr::LdByteInd(2),
            BpfInstr::Ret(1),
        ]).unwrap();
        let _ = prog.run(&pkt); // must terminate without panicking
    }

    /// The CSPF interpreter is total as well.
    #[test]
    fn cspf_vm_total_on_arbitrary_packets(
        pkt in proptest::collection::vec(any::<u8>(), 0..128),
        words in proptest::collection::vec(any::<u16>(), 0..12),
    ) {
        // Alternate pushes and binary operators; underflow must reject,
        // never panic.
        let mut instrs = Vec::new();
        for (i, w) in words.iter().enumerate() {
            instrs.push(if i % 3 == 0 {
                CspfInstr::PushWord(w % 70)
            } else {
                CspfInstr::PushLit(*w)
            });
            if i % 2 == 1 {
                instrs.push(match w % 4 {
                    0 => CspfInstr::Eq,
                    1 => CspfInstr::And,
                    2 => CspfInstr::Or,
                    _ => CspfInstr::Lt,
                });
            }
        }
        let _ = CspfProgram::new(instrs).run(&pkt);
    }
}
