//! Direct ("compiled") connection demultiplexing.
//!
//! The paper's network I/O module does not interpret a filter language in
//! the common case: "the logic required for address demultiplexing is
//! simple and can be incorporated into the kernel either via run time code
//! synthesis or via compilation ... the demultiplexing logic requires only
//! a few instructions." This type is that synthesized code: a straight-line
//! match on EtherType, IP protocol, addresses, and ports.

#[cfg(test)]
use unp_wire::IpProtocol;
use unp_wire::Ipv4Addr;

use crate::programs::DemuxSpec;
use crate::Demux;

/// A synthesized per-endpoint demux: matches fragments-first TCP/UDP
/// packets for one (local, remote) endpoint pair, where the remote side may
/// be wildcarded (listening sockets).
#[derive(Debug, Clone)]
pub struct CompiledDemux {
    link_header_len: usize,
    protocol: u8,
    local_ip: Ipv4Addr,
    local_port: u16,
    remote_ip: Option<Ipv4Addr>,
    remote_port: Option<u16>,
}

impl CompiledDemux {
    /// Synthesizes the matcher for a demux specification.
    pub fn from_spec(spec: &DemuxSpec) -> CompiledDemux {
        CompiledDemux {
            link_header_len: spec.link_header_len,
            protocol: spec.protocol.to_u8(),
            local_ip: spec.local_ip,
            local_port: spec.local_port,
            remote_ip: spec.remote_ip,
            remote_port: spec.remote_port,
        }
    }
}

impl Demux for CompiledDemux {
    fn matches(&self, frame: &[u8]) -> bool {
        let l = self.link_header_len;
        // EtherType at l-2 (last field of both Ethernet and AN1 headers'
        // dst/src/type prefix — for AN1, the caller passes the full header
        // length and the type still sits at offset 12).
        let Some(ethertype) = frame.get(12..14) else {
            return false;
        };
        if ethertype != [0x08, 0x00] {
            return false;
        }
        let ip = match frame.get(l..) {
            Some(ip) if ip.len() >= 20 => ip,
            _ => return false,
        };
        if ip[0] >> 4 != 4 {
            return false;
        }
        let ihl = usize::from(ip[0] & 0x0f) * 4;
        if ihl < 20 || ip.len() < ihl + 4 {
            return false;
        }
        if ip[9] != self.protocol {
            return false;
        }
        // Non-first fragments carry no transport header; send them to the
        // kernel default path, not a connection binding.
        let frag = u16::from_be_bytes([ip[6], ip[7]]);
        if frag & 0x1fff != 0 {
            return false;
        }
        if ip[16..20] != self.local_ip.0 {
            return false;
        }
        if let Some(rip) = self.remote_ip {
            if ip[12..16] != rip.0 {
                return false;
            }
        }
        let sport = u16::from_be_bytes([ip[ihl], ip[ihl + 1]]);
        let dport = u16::from_be_bytes([ip[ihl + 2], ip[ihl + 3]]);
        if dport != self.local_port {
            return false;
        }
        if let Some(rp) = self.remote_port {
            if sport != rp {
                return false;
            }
        }
        true
    }

    fn instruction_count(&self) -> usize {
        // A handful of compares and two loads — "only a few instructions".
        // 4 fixed checks + 1-2 optional remote checks.
        5 + usize::from(self.remote_ip.is_some()) + usize::from(self.remote_port.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unp_wire::{EtherType, EthernetRepr, Ipv4Repr, MacAddr, UdpRepr};

    fn udp_frame(src: Ipv4Addr, dst: Ipv4Addr, sport: u16, dport: u16) -> Vec<u8> {
        let udp = UdpRepr {
            src_port: sport,
            dst_port: dport,
        };
        let dgram = udp.build_datagram(src, dst, b"hello");
        let ip = Ipv4Repr::simple(src, dst, IpProtocol::Udp, dgram.len());
        EthernetRepr {
            dst: MacAddr::from_host_index(2),
            src: MacAddr::from_host_index(1),
            ethertype: EtherType::Ipv4,
        }
        .build_frame(&ip.build_packet(&dgram))
    }

    #[test]
    fn udp_connection_match() {
        let us = Ipv4Addr::new(10, 0, 0, 2);
        let them = Ipv4Addr::new(10, 0, 0, 1);
        let d = CompiledDemux::from_spec(&DemuxSpec {
            link_header_len: 14,
            protocol: IpProtocol::Udp,
            local_ip: us,
            local_port: 53,
            remote_ip: Some(them),
            remote_port: Some(4000),
        });
        assert!(d.matches(&udp_frame(them, us, 4000, 53)));
        assert!(!d.matches(&udp_frame(them, us, 4000, 54)));
        assert!(!d.matches(&udp_frame(them, us, 4001, 53)));
        assert!(!d.matches(&udp_frame(them, Ipv4Addr::new(10, 0, 0, 3), 4000, 53)));
    }

    #[test]
    fn non_first_fragment_goes_to_default_path() {
        let us = Ipv4Addr::new(10, 0, 0, 2);
        let them = Ipv4Addr::new(10, 0, 0, 1);
        let d = CompiledDemux::from_spec(&DemuxSpec {
            link_header_len: 14,
            protocol: IpProtocol::Udp,
            local_ip: us,
            local_port: 53,
            remote_ip: None,
            remote_port: None,
        });
        let ip = Ipv4Repr {
            frag_offset: 64,
            ..Ipv4Repr::simple(them, us, IpProtocol::Udp, 8)
        };
        let frame = EthernetRepr {
            dst: MacAddr::from_host_index(2),
            src: MacAddr::from_host_index(1),
            ethertype: EtherType::Ipv4,
        }
        .build_frame(&ip.build_packet(&[0u8; 8]));
        assert!(!d.matches(&frame));
    }

    #[test]
    fn instruction_count_reflects_wildcards() {
        let us = Ipv4Addr::new(10, 0, 0, 2);
        let spec = |r: bool| DemuxSpec {
            link_header_len: 14,
            protocol: IpProtocol::Tcp,
            local_ip: us,
            local_port: 80,
            remote_ip: r.then(|| Ipv4Addr::new(10, 0, 0, 1)),
            remote_port: r.then_some(1234),
        };
        let full = CompiledDemux::from_spec(&spec(true));
        let wild = CompiledDemux::from_spec(&spec(false));
        assert!(full.instruction_count() > wild.instruction_count());
    }
}
