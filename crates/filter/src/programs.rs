//! Generators for demultiplexing filter programs.
//!
//! The registry server installs one demux binding per connection endpoint
//! (paper §3.2: "packet demultiplexing code within the network I/O module
//! delivers packets to the correct and authorized end points"). These
//! builders synthesize equivalent programs for each of the three demux
//! technologies from a single [`DemuxSpec`].

use unp_wire::{FlowKey, IpProtocol, Ipv4Addr, ListenKey};

use crate::bpf::{BpfInstr, BpfProgram};
use crate::cspf::{CspfInstr, CspfProgram};

/// What an endpoint wants delivered: IPv4 packets of one transport protocol
/// addressed to `local_ip:local_port`, optionally restricted to one remote
/// peer (connected sockets) or wildcarded (listening sockets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DemuxSpec {
    /// Bytes of link header before the IP header (14 Ethernet, 16 AN1).
    pub link_header_len: usize,
    /// Transport protocol (TCP or UDP).
    pub protocol: IpProtocol,
    /// Local interface address packets must be addressed to.
    pub local_ip: Ipv4Addr,
    /// Local transport port.
    pub local_port: u16,
    /// Remote address for connected endpoints, `None` to wildcard.
    pub remote_ip: Option<Ipv4Addr>,
    /// Remote port for connected endpoints, `None` to wildcard.
    pub remote_port: Option<u16>,
}

impl DemuxSpec {
    /// Distills the spec into an exact-match [`FlowKey`], or `None` when
    /// the spec wildcards the remote side (listening sockets) and so cannot
    /// be decided by a keyed lookup.
    ///
    /// A fully-specified spec accepts a frame **iff**
    /// `FlowKey::extract(frame, spec.link_header_len)` yields exactly this
    /// key — both sides check the same EtherType/version/IHL/first-fragment
    /// conditions — which is what lets a flow table stand in for running
    /// the filter (the fast-path invariant `unp-kernel` relies on).
    pub fn distill(&self) -> Option<FlowKey> {
        Some(FlowKey {
            protocol: self.protocol.to_u8(),
            local_ip: self.local_ip,
            local_port: self.local_port,
            remote_ip: self.remote_ip?,
            remote_port: self.remote_port?,
        })
    }

    /// Distills the spec into a wildcard-match [`ListenKey`], or `None`
    /// unless **both** remote fields are wildcarded (listening sockets,
    /// unconnected UDP). Half-specified specs — one remote field pinned —
    /// fit neither table and stay on the scan tier.
    ///
    /// A fully-wildcard spec accepts a frame **iff**
    /// `ListenKey::extract(frame, spec.link_header_len)` yields exactly
    /// this key: its filter is the fully-specified filter minus the two
    /// remote-field compares, and those compares read bytes that are
    /// present whenever the local-field compares ran, so dropping them
    /// changes *which* frames pass only by the remote fields the key
    /// projection also drops.
    pub fn distill_listen(&self) -> Option<ListenKey> {
        if self.remote_ip.is_some() || self.remote_port.is_some() {
            return None;
        }
        Some(ListenKey {
            protocol: self.protocol.to_u8(),
            local_ip: self.local_ip,
            local_port: self.local_port,
        })
    }
}

/// Builds a BPF program implementing `spec`.
///
/// Layout: a chain of checks falling through on success, each jumping to
/// the trailing `Ret(0)` on failure; variable IP header length handled with
/// the `LdxMsh` idiom exactly as real BPF demux programs do.
#[allow(clippy::vec_init_then_push)] // the program reads as an assembly listing
pub fn bpf_demux(spec: &DemuxSpec) -> BpfProgram {
    let l = spec.link_header_len as u32;
    // First pass: emit with jf = u8::MAX placeholder meaning "to reject".
    const TO_REJECT: u8 = u8::MAX;
    let mut ins: Vec<BpfInstr> = Vec::new();
    ins.push(BpfInstr::LdHalfAbs(12));
    ins.push(BpfInstr::JmpEq {
        k: 0x0800,
        jt: 0,
        jf: TO_REJECT,
    });
    ins.push(BpfInstr::LdByteAbs(l + 9));
    ins.push(BpfInstr::JmpEq {
        k: u32::from(spec.protocol.to_u8()),
        jt: 0,
        jf: TO_REJECT,
    });
    // Reject non-first fragments: transport header absent.
    ins.push(BpfInstr::LdHalfAbs(l + 6));
    ins.push(BpfInstr::JmpSet {
        k: 0x1fff,
        jt: TO_REJECT,
        jf: 0,
    });
    ins.push(BpfInstr::LdWordAbs(l + 16));
    ins.push(BpfInstr::JmpEq {
        k: spec.local_ip.to_u32(),
        jt: 0,
        jf: TO_REJECT,
    });
    if let Some(rip) = spec.remote_ip {
        ins.push(BpfInstr::LdWordAbs(l + 12));
        ins.push(BpfInstr::JmpEq {
            k: rip.to_u32(),
            jt: 0,
            jf: TO_REJECT,
        });
    }
    // X <- IP header length; ports are at X + l (+0 src, +2 dst).
    ins.push(BpfInstr::LdxMsh(l));
    ins.push(BpfInstr::LdHalfInd(l + 2));
    ins.push(BpfInstr::JmpEq {
        k: u32::from(spec.local_port),
        jt: 0,
        jf: TO_REJECT,
    });
    if let Some(rp) = spec.remote_port {
        ins.push(BpfInstr::LdHalfInd(l));
        ins.push(BpfInstr::JmpEq {
            k: u32::from(rp),
            jt: 0,
            jf: TO_REJECT,
        });
    }
    ins.push(BpfInstr::Ret(u32::MAX));
    ins.push(BpfInstr::Ret(0));

    // Patch placeholder jumps to target the trailing reject.
    let reject = ins.len() - 1;
    for (pc, i) in ins.iter_mut().enumerate() {
        let fix = |off: &mut u8| {
            if *off == TO_REJECT {
                *off = (reject - pc - 1) as u8;
            }
        };
        match i {
            BpfInstr::JmpEq { jt, jf, .. }
            | BpfInstr::JmpGt { jt, jf, .. }
            | BpfInstr::JmpSet { jt, jf, .. } => {
                fix(jt);
                fix(jf);
            }
            _ => {}
        }
    }
    BpfProgram::new(ins).expect("generated program is well-formed")
}

/// Builds a CSPF program implementing `spec`.
///
/// The stack machine has no indexed addressing (a genuine limitation of the
/// original Packet Filter), so the program assumes an option-less 20-byte
/// IP header — which our stack guarantees (`unp-wire` rejects options).
/// `link_header_len` must be even (true for Ethernet 14 and AN1 16) because
/// CSPF addresses the packet in 16-bit words.
#[allow(clippy::vec_init_then_push)] // the program reads as an assembly listing
pub fn cspf_demux(spec: &DemuxSpec) -> CspfProgram {
    assert!(
        spec.link_header_len.is_multiple_of(2),
        "CSPF needs word alignment"
    );
    let l = spec.link_header_len as u16;
    let w = |byte_off: u16| byte_off / 2;
    let mut ins = Vec::new();
    // EtherType == 0x0800.
    ins.push(CspfInstr::PushWord(w(12)));
    ins.push(CspfInstr::PushLit(0x0800));
    ins.push(CspfInstr::CandEq);
    // Low byte of (TTL, protocol) word == protocol.
    ins.push(CspfInstr::PushWord(w(l + 8)));
    ins.push(CspfInstr::PushLit(0x00ff));
    ins.push(CspfInstr::And);
    ins.push(CspfInstr::PushLit(u16::from(spec.protocol.to_u8())));
    ins.push(CspfInstr::CandEq);
    // Fragment offset bits must be zero.
    ins.push(CspfInstr::PushWord(w(l + 6)));
    ins.push(CspfInstr::PushLit(0x1fff));
    ins.push(CspfInstr::And);
    ins.push(CspfInstr::PushLit(0));
    ins.push(CspfInstr::CandEq);
    // Destination IP (two words).
    let dip = spec.local_ip.0;
    ins.push(CspfInstr::PushWord(w(l + 16)));
    ins.push(CspfInstr::PushLit(u16::from_be_bytes([dip[0], dip[1]])));
    ins.push(CspfInstr::CandEq);
    ins.push(CspfInstr::PushWord(w(l + 18)));
    ins.push(CspfInstr::PushLit(u16::from_be_bytes([dip[2], dip[3]])));
    ins.push(CspfInstr::CandEq);
    if let Some(rip) = spec.remote_ip {
        ins.push(CspfInstr::PushWord(w(l + 12)));
        ins.push(CspfInstr::PushLit(u16::from_be_bytes([rip.0[0], rip.0[1]])));
        ins.push(CspfInstr::CandEq);
        ins.push(CspfInstr::PushWord(w(l + 14)));
        ins.push(CspfInstr::PushLit(u16::from_be_bytes([rip.0[2], rip.0[3]])));
        ins.push(CspfInstr::CandEq);
    }
    // Ports, assuming IHL = 20.
    ins.push(CspfInstr::PushWord(w(l + 22)));
    ins.push(CspfInstr::PushLit(spec.local_port));
    ins.push(CspfInstr::CandEq);
    if let Some(rp) = spec.remote_port {
        ins.push(CspfInstr::PushWord(w(l + 20)));
        ins.push(CspfInstr::PushLit(rp));
        ins.push(CspfInstr::CandEq);
    }
    // All conjuncts passed.
    ins.push(CspfInstr::PushLit(1));
    CspfProgram::new(ins)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Demux;

    #[test]
    fn cspf_longer_than_bpf() {
        // The stack machine needs more instructions for the same predicate —
        // part of why the paper calls interpretation expensive.
        let spec = DemuxSpec {
            link_header_len: 14,
            protocol: IpProtocol::Tcp,
            local_ip: Ipv4Addr::new(10, 0, 0, 1),
            local_port: 80,
            remote_ip: Some(Ipv4Addr::new(10, 0, 0, 2)),
            remote_port: Some(1234),
        };
        assert!(cspf_demux(&spec).instruction_count() > bpf_demux(&spec).instruction_count());
    }

    #[test]
    #[should_panic(expected = "word alignment")]
    fn cspf_rejects_odd_link_header() {
        let spec = DemuxSpec {
            link_header_len: 13,
            protocol: IpProtocol::Tcp,
            local_ip: Ipv4Addr::new(10, 0, 0, 1),
            local_port: 80,
            remote_ip: None,
            remote_port: None,
        };
        cspf_demux(&spec);
    }

    #[test]
    fn distill_requires_fully_specified_remote() {
        let spec = |rip, rport| DemuxSpec {
            link_header_len: 14,
            protocol: IpProtocol::Tcp,
            local_ip: Ipv4Addr::new(10, 0, 0, 1),
            local_port: 80,
            remote_ip: rip,
            remote_port: rport,
        };
        let full = spec(Some(Ipv4Addr::new(10, 0, 0, 2)), Some(1234));
        let key = full.distill().expect("fully specified");
        assert_eq!(key.protocol, IpProtocol::Tcp.to_u8());
        assert_eq!((key.local_port, key.remote_port), (80, 1234));
        assert!(spec(None, Some(1234)).distill().is_none());
        assert!(spec(Some(Ipv4Addr::new(10, 0, 0, 2)), None)
            .distill()
            .is_none());
        assert!(spec(None, None).distill().is_none());
    }

    #[test]
    fn distilled_key_matches_iff_filter_matches() {
        // The fast-path invariant: for a fully-specified spec, the compiled
        // filter accepts a frame exactly when the frame's extracted key
        // equals the distilled key.
        use crate::CompiledDemux;
        use unp_wire::{EtherType, EthernetRepr, FlowKey, Ipv4Repr, MacAddr, UdpRepr};
        let us = Ipv4Addr::new(10, 0, 0, 2);
        let them = Ipv4Addr::new(10, 0, 0, 1);
        let spec = DemuxSpec {
            link_header_len: 14,
            protocol: IpProtocol::Udp,
            local_ip: us,
            local_port: 53,
            remote_ip: Some(them),
            remote_port: Some(4000),
        };
        let key = spec.distill().unwrap();
        let filt = CompiledDemux::from_spec(&spec);
        let frame = |src: Ipv4Addr, dst: Ipv4Addr, sp: u16, dp: u16| {
            let dgram = UdpRepr {
                src_port: sp,
                dst_port: dp,
            }
            .build_datagram(src, dst, b"x");
            let ip = Ipv4Repr::simple(src, dst, IpProtocol::Udp, dgram.len());
            EthernetRepr {
                dst: MacAddr::from_host_index(2),
                src: MacAddr::from_host_index(1),
                ethertype: EtherType::Ipv4,
            }
            .build_frame(&ip.build_packet(&dgram))
        };
        for f in [
            frame(them, us, 4000, 53),
            frame(them, us, 4000, 54),
            frame(them, us, 4001, 53),
            frame(us, them, 4000, 53),
            frame(Ipv4Addr::new(10, 0, 0, 3), us, 4000, 53),
        ] {
            assert_eq!(
                filt.matches(&f),
                FlowKey::extract(&f, spec.link_header_len) == Some(key),
                "filter and key lookup must agree"
            );
        }
    }

    #[test]
    fn distill_listen_requires_fully_wildcard_remote() {
        let spec = |rip, rport| DemuxSpec {
            link_header_len: 14,
            protocol: IpProtocol::Udp,
            local_ip: Ipv4Addr::new(10, 0, 0, 1),
            local_port: 53,
            remote_ip: rip,
            remote_port: rport,
        };
        let key = spec(None, None).distill_listen().expect("fully wildcard");
        assert_eq!(key.protocol, IpProtocol::Udp.to_u8());
        assert_eq!(
            (key.local_ip, key.local_port),
            (Ipv4Addr::new(10, 0, 0, 1), 53)
        );
        // Half-specified specs fit neither table.
        assert!(spec(None, Some(9)).distill_listen().is_none());
        assert!(spec(Some(Ipv4Addr::new(10, 0, 0, 2)), None)
            .distill_listen()
            .is_none());
        let full = spec(Some(Ipv4Addr::new(10, 0, 0, 2)), Some(9));
        assert!(full.distill_listen().is_none());
        assert!(full.distill().is_some());
    }

    #[test]
    fn distilled_listen_key_matches_iff_filter_matches() {
        // The 3-tuple-tier invariant: for a fully-wildcard spec, the
        // compiled filter accepts a frame exactly when the frame's
        // extracted local projection equals the distilled listen key.
        use crate::CompiledDemux;
        use unp_wire::{EtherType, EthernetRepr, Ipv4Repr, MacAddr, UdpRepr};
        let us = Ipv4Addr::new(10, 0, 0, 2);
        let them = Ipv4Addr::new(10, 0, 0, 1);
        let spec = DemuxSpec {
            link_header_len: 14,
            protocol: IpProtocol::Udp,
            local_ip: us,
            local_port: 53,
            remote_ip: None,
            remote_port: None,
        };
        let key = spec.distill_listen().unwrap();
        let filt = CompiledDemux::from_spec(&spec);
        let frame = |src: Ipv4Addr, dst: Ipv4Addr, sp: u16, dp: u16| {
            let dgram = UdpRepr {
                src_port: sp,
                dst_port: dp,
            }
            .build_datagram(src, dst, b"x");
            let ip = Ipv4Repr::simple(src, dst, IpProtocol::Udp, dgram.len());
            EthernetRepr {
                dst: MacAddr::from_host_index(2),
                src: MacAddr::from_host_index(1),
                ethertype: EtherType::Ipv4,
            }
            .build_frame(&ip.build_packet(&dgram))
        };
        let frames = [
            frame(them, us, 4000, 53),
            frame(them, us, 9999, 53), // any remote port: still a hit
            frame(Ipv4Addr::new(10, 0, 0, 7), us, 4000, 53), // any remote ip
            frame(them, us, 4000, 54), // wrong local port
            frame(us, them, 4000, 53), // wrong local ip
        ];
        for f in &frames {
            assert_eq!(
                filt.matches(f),
                ListenKey::extract(f, spec.link_header_len) == Some(key),
                "wildcard filter and listen-key lookup must agree"
            );
        }
        // Truncations fail both sides identically.
        let f = &frames[0];
        for len in 0..f.len() {
            assert_eq!(
                filt.matches(&f[..len]),
                ListenKey::extract(&f[..len], spec.link_header_len) == Some(key),
                "len {len}"
            );
        }
    }

    #[test]
    fn an1_header_length_supported() {
        let spec = DemuxSpec {
            link_header_len: 16,
            protocol: IpProtocol::Udp,
            local_ip: Ipv4Addr::new(10, 0, 0, 1),
            local_port: 9,
            remote_ip: None,
            remote_port: None,
        };
        // Programs build without panicking and reject garbage.
        assert!(!bpf_demux(&spec).matches(&[0u8; 64]));
        assert!(!cspf_demux(&spec).matches(&[0u8; 64]));
    }
}
