//! A register-based packet filter virtual machine in the style of BPF
//! (McCanne & Jacobson, *The BSD Packet Filter*, USENIX Winter '93 —
//! the paper's reference \[17\]).
//!
//! Two registers (accumulator `A`, index `X`), absolute and indexed loads
//! from the packet, conditional jumps with separate true/false targets, and
//! a return instruction whose operand is the number of bytes to accept
//! (zero = reject). Out-of-bounds loads terminate with reject, as in BPF.

use crate::Demux;

/// One BPF-style instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BpfInstr {
    /// `A <- u32 at [k]` (big-endian).
    LdWordAbs(u32),
    /// `A <- u16 at [k]`.
    LdHalfAbs(u32),
    /// `A <- u8 at [k]`.
    LdByteAbs(u32),
    /// `A <- u16 at [X + k]`.
    LdHalfInd(u32),
    /// `A <- u8 at [X + k]`.
    LdByteInd(u32),
    /// `A <- k`.
    LdImm(u32),
    /// `X <- 4 * (u8 at [k] & 0x0f)` — the BPF "load IP header length" idiom.
    LdxMsh(u32),
    /// `A <- A & k`.
    And(u32),
    /// `A <- A >> k`.
    Rsh(u32),
    /// `A <- A + k`.
    Add(u32),
    /// If `A == k` jump `jt` instructions forward, else `jf`.
    JmpEq { k: u32, jt: u8, jf: u8 },
    /// If `A > k` jump `jt`, else `jf`.
    JmpGt { k: u32, jt: u8, jf: u8 },
    /// If `A & k != 0` jump `jt`, else `jf`.
    JmpSet { k: u32, jt: u8, jf: u8 },
    /// `X <- A`.
    Tax,
    /// `A <- X`.
    Txa,
    /// Accept `k` bytes (0 = reject).
    Ret(u32),
}

/// A validated BPF program.
#[derive(Debug, Clone)]
pub struct BpfProgram {
    instrs: Vec<BpfInstr>,
}

/// Errors from program validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BpfError {
    /// A jump target lies beyond the end of the program.
    JumpOutOfRange(usize),
    /// The final instruction can fall through past the end.
    NoTerminator,
    /// The program is empty.
    Empty,
}

impl BpfProgram {
    /// Validates and wraps an instruction sequence. Programs must be
    /// forward-jumping (BPF is a DAG, guaranteeing termination) and must
    /// end in an unconditional return.
    pub fn new(instrs: Vec<BpfInstr>) -> Result<BpfProgram, BpfError> {
        if instrs.is_empty() {
            return Err(BpfError::Empty);
        }
        for (pc, ins) in instrs.iter().enumerate() {
            if let BpfInstr::JmpEq { jt, jf, .. }
            | BpfInstr::JmpGt { jt, jf, .. }
            | BpfInstr::JmpSet { jt, jf, .. } = ins
            {
                // Target is pc + 1 + offset.
                if pc + 1 + *jt as usize > instrs.len() || pc + 1 + *jf as usize > instrs.len() {
                    // Allow targets up to instrs.len()-1; equality with len
                    // would fall off the end.
                    if pc + 1 + *jt as usize > instrs.len() - 1
                        || pc + 1 + *jf as usize > instrs.len() - 1
                    {
                        return Err(BpfError::JumpOutOfRange(pc));
                    }
                }
            }
        }
        if !matches!(instrs.last(), Some(BpfInstr::Ret(_))) {
            return Err(BpfError::NoTerminator);
        }
        Ok(BpfProgram { instrs })
    }

    /// Runs the program over `pkt`, returning the accepted byte count
    /// (0 = reject). Out-of-bounds loads reject.
    pub fn run(&self, pkt: &[u8]) -> u32 {
        let mut a: u32 = 0;
        let mut x: u32 = 0;
        let mut pc = 0usize;
        // Validation guarantees forward progress; bound defensively anyway.
        let mut steps = 0;
        while pc < self.instrs.len() && steps <= self.instrs.len() {
            steps += 1;
            macro_rules! load {
                ($off:expr, $len:expr) => {{
                    let off = $off as usize;
                    match pkt.get(off..off + $len) {
                        Some(b) => b,
                        None => return 0,
                    }
                }};
            }
            match self.instrs[pc] {
                BpfInstr::LdWordAbs(k) => {
                    let b = load!(k, 4);
                    a = u32::from_be_bytes([b[0], b[1], b[2], b[3]]);
                }
                BpfInstr::LdHalfAbs(k) => {
                    let b = load!(k, 2);
                    a = u32::from(u16::from_be_bytes([b[0], b[1]]));
                }
                BpfInstr::LdByteAbs(k) => {
                    let b = load!(k, 1);
                    a = u32::from(b[0]);
                }
                BpfInstr::LdHalfInd(k) => {
                    let b = load!(x.wrapping_add(k), 2);
                    a = u32::from(u16::from_be_bytes([b[0], b[1]]));
                }
                BpfInstr::LdByteInd(k) => {
                    let b = load!(x.wrapping_add(k), 1);
                    a = u32::from(b[0]);
                }
                BpfInstr::LdImm(k) => a = k,
                BpfInstr::LdxMsh(k) => {
                    let b = load!(k, 1);
                    x = 4 * u32::from(b[0] & 0x0f);
                }
                BpfInstr::And(k) => a &= k,
                BpfInstr::Rsh(k) => a = a.checked_shr(k).unwrap_or(0),
                BpfInstr::Add(k) => a = a.wrapping_add(k),
                BpfInstr::JmpEq { k, jt, jf } => {
                    pc += 1 + if a == k { jt as usize } else { jf as usize };
                    continue;
                }
                BpfInstr::JmpGt { k, jt, jf } => {
                    pc += 1 + if a > k { jt as usize } else { jf as usize };
                    continue;
                }
                BpfInstr::JmpSet { k, jt, jf } => {
                    pc += 1 + if a & k != 0 { jt as usize } else { jf as usize };
                    continue;
                }
                BpfInstr::Tax => x = a,
                BpfInstr::Txa => a = x,
                BpfInstr::Ret(k) => return k,
            }
            pc += 1;
        }
        0
    }

    /// The raw instruction slice.
    pub fn instrs(&self) -> &[BpfInstr] {
        &self.instrs
    }
}

impl Demux for BpfProgram {
    fn matches(&self, frame: &[u8]) -> bool {
        self.run(frame) != 0
    }

    fn instruction_count(&self) -> usize {
        self.instrs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_program_rejected() {
        assert_eq!(BpfProgram::new(vec![]).err(), Some(BpfError::Empty));
    }

    #[test]
    fn must_end_with_ret() {
        assert_eq!(
            BpfProgram::new(vec![BpfInstr::LdImm(1)]).err(),
            Some(BpfError::NoTerminator)
        );
    }

    #[test]
    fn jump_out_of_range_rejected() {
        let p = BpfProgram::new(vec![
            BpfInstr::JmpEq { k: 0, jt: 5, jf: 0 },
            BpfInstr::Ret(0),
        ]);
        assert_eq!(p.err(), Some(BpfError::JumpOutOfRange(0)));
    }

    #[test]
    fn accept_reject_on_byte_value() {
        let p = BpfProgram::new(vec![
            BpfInstr::LdByteAbs(0),
            BpfInstr::JmpEq {
                k: 0xaa,
                jt: 0,
                jf: 1,
            },
            BpfInstr::Ret(u32::MAX),
            BpfInstr::Ret(0),
        ])
        .unwrap();
        assert_eq!(p.run(&[0xaa, 1, 2]), u32::MAX);
        assert_eq!(p.run(&[0xab, 1, 2]), 0);
    }

    #[test]
    fn out_of_bounds_load_rejects() {
        let p = BpfProgram::new(vec![BpfInstr::LdWordAbs(100), BpfInstr::Ret(1)]).unwrap();
        assert_eq!(p.run(&[0u8; 10]), 0);
    }

    #[test]
    fn indexed_load_via_msh() {
        // X = 4*(pkt[0]&0xf); A = pkt[X+1]; accept if A == 7.
        let p = BpfProgram::new(vec![
            BpfInstr::LdxMsh(0),
            BpfInstr::LdByteInd(1),
            BpfInstr::JmpEq { k: 7, jt: 0, jf: 1 },
            BpfInstr::Ret(1),
            BpfInstr::Ret(0),
        ])
        .unwrap();
        // pkt[0] = 0x42 -> x = 8; pkt[9] must be 7.
        let mut pkt = [0u8; 16];
        pkt[0] = 0x42;
        pkt[9] = 7;
        assert_eq!(p.run(&pkt), 1);
        pkt[9] = 8;
        assert_eq!(p.run(&pkt), 0);
    }

    #[test]
    fn alu_ops() {
        // A = pkt16[0] & 0x0fff >> 4 + 1, accept A.
        let p = BpfProgram::new(vec![
            BpfInstr::LdHalfAbs(0),
            BpfInstr::And(0x0fff),
            BpfInstr::Rsh(4),
            BpfInstr::Add(1),
            BpfInstr::Tax,
            BpfInstr::Txa,
            BpfInstr::Ret(5),
        ])
        .unwrap();
        assert_eq!(p.run(&[0xab, 0xcd]), 5);
    }

    #[test]
    fn jset() {
        let p = BpfProgram::new(vec![
            BpfInstr::LdHalfAbs(0),
            BpfInstr::JmpSet {
                k: 0x1fff,
                jt: 1,
                jf: 0,
            },
            BpfInstr::Ret(1), // bits clear
            BpfInstr::Ret(0), // bits set
        ])
        .unwrap();
        assert_eq!(p.run(&[0x20, 0x00]), 1, "only non-offset flag bits set");
        assert_eq!(p.run(&[0x00, 0x01]), 0, "fragment offset nonzero");
    }
}
